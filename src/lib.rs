//! Workspace root crate: re-exports the [`sleepers`] public API so the
//! repository-level examples and integration tests exercise exactly
//! what a downstream user of the library would import.

#![forbid(unsafe_code)]

pub use sleepers::*;

/// Re-export: the multi-cell mesh layer (cell graph, deterministic
/// client mobility, sharded execution).
pub use sw_mesh as mesh;
