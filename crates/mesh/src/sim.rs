//! The mesh: N cell shards over a shared backbone database.
//!
//! Every cell of a [`MeshSimulation`] replicates the same logical
//! database (they share a *backbone* seed, so database contents, the
//! update schedule, and the SIG subset family coincide across shards)
//! while keeping its own client fleet, broadcast channel, and report
//! builder. Mobile units migrate between cells at interval barriers;
//! a handoff is, from the strategy's point of view, nothing but a
//! report gap plus a change of report stream — the paper's own sleep
//! rules decide what survives it.
//!
//! # Determinism
//!
//! The mesh is bit-deterministic at any thread count:
//!
//! * Cells only step **between** barriers, and each cell's step draws
//!   exclusively from that cell's own seed-split streams — the shards
//!   share no mutable state, so stepping them in parallel is a pure
//!   fan-out. [`ParallelRunner::run_mut`] assigns each shard to
//!   exactly one worker per barrier and writes results by index.
//! * Mobility decisions draw from per-unit `StreamId::Mobility`
//!   streams of the *mesh* seed, polled in fixed home-index order at
//!   the barrier (single-threaded), so trajectories are independent of
//!   scheduling.
//! * Migrations apply in home-index order: detach from the source,
//!   compare report-digest logs, attach to the destination. Slot
//!   indices and client ids in every cell are therefore a pure
//!   function of (config, interval), never of thread interleaving.
//!
//! Cell seeds come from [`mesh_seed`] — a separate seed domain from
//! the figure harness's [`cell_seed`](sw_sim::cell_seed) — so meshes
//! never replay a figure sweep's randomness.

use sleepers::capacity::{CapacityStats, CoopConfig, CoopDirectory, CoopFeed, CoopStats};
use sleepers::{
    CellConfig, CellSimulation, MigrationStats, SimulationError, SimulationReport, Strategy,
};
use sw_sim::{mesh_seed, MasterSeed, ParallelRunner, RngStream, StreamId};

use crate::graph::CellGraph;
use crate::mobility::MobilityModel;

/// Configuration for a [`MeshSimulation`].
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// The cell adjacency graph.
    pub graph: CellGraph,
    /// Template for every cell: scenario parameters, per-cell fleet
    /// size, wake mode, safety checking, fault plans, observe label.
    /// The template's `seed` and `backbone` are ignored — each cell
    /// gets its own seed from the mesh seed domain and the mesh seed
    /// as backbone.
    pub base: CellConfig,
    /// Master seed of the mesh: the backbone protocol seed shared by
    /// all shards, and the root of every mobility stream.
    pub seed: MasterSeed,
    /// How units move between cells.
    pub mobility: MobilityModel,
}

impl MeshConfig {
    /// A stationary mesh (no mobility until
    /// [`with_mobility`](Self::with_mobility)).
    pub fn new(graph: CellGraph, base: CellConfig, seed: MasterSeed) -> Self {
        MeshConfig {
            graph,
            base,
            seed,
            mobility: MobilityModel::Stationary,
        }
    }

    /// Sets the mobility model.
    pub fn with_mobility(mut self, mobility: MobilityModel) -> Self {
        self.mobility = mobility;
        self
    }

    /// Arms cooperative misses: at every barrier each cell publishes a
    /// directory of cache entries stamped at the last report time, and
    /// its neighbors (in ascending cell order — ties go to the lowest
    /// cell) may serve a fresh miss from that directory next interval
    /// at `b_coop` bits instead of a full uplink exchange. The served
    /// copy is vouched for against the receiver's own intact report, so
    /// the never-stale guarantee is untouched.
    pub fn with_coop(mut self, coop: CoopConfig) -> Self {
        self.base.coop = Some(coop);
        self
    }

    /// The full per-cell configuration for shard `cell`: the base
    /// template with a cell-specific seed drawn from the mesh seed
    /// domain, the mesh seed as the shared backbone, and (when the
    /// template carries an observe label) a `…/cellN` label suffix.
    ///
    /// A standalone [`CellSimulation`] built from this config is
    /// byte-identical to the mesh shard as long as no unit migrates —
    /// the property the zero-mobility equivalence test pins.
    pub fn cell_config(&self, cell: usize) -> CellConfig {
        let mut config = self.base.clone();
        config.seed = MasterSeed(mesh_seed(self.seed.0, &[cell as u64]));
        config.backbone = Some(self.seed);
        if let Some(label) = &self.base.observe {
            config.observe = Some(format!("{label}/cell{cell}"));
        }
        config
    }
}

/// Where one mobile unit currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Location {
    /// Cell the unit is attached to.
    cell: usize,
    /// Slot index within that cell.
    slot: usize,
    /// Lifetime hop count (cycles the neighbor list under
    /// [`MobilityModel::Periodic`]).
    hops: u64,
}

/// A multi-cell simulation: N [`CellSimulation`] shards stepped in
/// parallel between migration barriers.
pub struct MeshSimulation {
    config: MeshConfig,
    cells: Vec<CellSimulation>,
    /// One mobility stream per unit, indexed by home index (global
    /// unit number at construction: `home = cell·n_per_cell + slot`).
    mobility_rngs: Vec<RngStream>,
    /// Current location per home index.
    locations: Vec<Location>,
    runner: ParallelRunner,
    /// Completed intervals (== barrier number of the *next* barrier).
    intervals_done: u64,
    /// Total accepted migrations across the run.
    migrations: u64,
}

impl MeshSimulation {
    /// Builds every shard. Thread count comes from `SW_THREADS` (see
    /// [`ParallelRunner::from_env`]); results are identical at any
    /// setting.
    pub fn new(config: MeshConfig, strategy: Strategy) -> Result<Self, SimulationError> {
        Self::with_runner(config, strategy, ParallelRunner::from_env())
    }

    /// Builds every shard with an explicit runner (test hook for
    /// pinning thread counts).
    pub fn with_runner(
        config: MeshConfig,
        strategy: Strategy,
        runner: ParallelRunner,
    ) -> Result<Self, SimulationError> {
        let n_cells = config.graph.n_cells();
        let n_per_cell = config.base.n_clients;
        let mut cells = Vec::with_capacity(n_cells);
        for cell in 0..n_cells {
            cells.push(CellSimulation::new(config.cell_config(cell), strategy)?);
        }
        let total = n_cells * n_per_cell;
        let mut mobility_rngs = Vec::with_capacity(total);
        let mut locations = Vec::with_capacity(total);
        for home in 0..total {
            mobility_rngs.push(config.seed.stream(StreamId::Mobility {
                index: home as u64,
            }));
            locations.push(Location {
                cell: home / n_per_cell,
                slot: home % n_per_cell,
                hops: 0,
            });
        }
        Ok(MeshSimulation {
            config,
            cells,
            mobility_rngs,
            locations,
            runner,
            intervals_done: 0,
            migrations: 0,
        })
    }

    /// Runs one interval on every shard (in parallel), then executes
    /// the migration barrier. Errors surface deterministically: if
    /// several shards fail the same interval, the lowest cell index
    /// wins regardless of which worker finished first.
    pub fn step(&mut self) -> Result<(), SimulationError> {
        let results = self
            .runner
            .run_mut(&mut self.cells, |_, cell| cell.step());
        for result in results {
            result?;
        }
        self.intervals_done += 1;
        self.migrate_barrier(self.intervals_done);
        if self.config.base.coop.is_some() {
            self.exchange_coop_directories();
        }
        Ok(())
    }

    /// The cooperative half of the barrier: snapshot every cell's
    /// directory of report-fresh entries, then hand each cell the merge
    /// of its neighbors' directories (ascending cell order, first entry
    /// wins). Runs after migration so arriving travelers' caches are
    /// already counted where they now live. Single-threaded, like the
    /// migration pass — determinism comes from the fixed cell order.
    fn exchange_coop_directories(&mut self) {
        let directories: Vec<CoopDirectory> =
            self.cells.iter().map(|c| c.coop_directory()).collect();
        for (cell, sim) in self.cells.iter_mut().enumerate() {
            let neighbor_dirs: Vec<&CoopDirectory> = self
                .config
                .graph
                .neighbors(cell)
                .iter()
                .map(|&n| &directories[n])
                .collect();
            sim.install_coop_feed(CoopFeed::merge(&neighbor_dirs));
        }
    }

    /// Runs `intervals` intervals and returns the mesh report.
    pub fn run(&mut self, intervals: u64) -> Result<MeshReport, SimulationError> {
        for _ in 0..intervals {
            self.step()?;
        }
        Ok(self.report())
    }

    /// Runs `warmup` unmeasured intervals, zeroes every shard's
    /// metrics, then runs `intervals` measured ones.
    pub fn run_measured(
        &mut self,
        warmup: u64,
        intervals: u64,
    ) -> Result<MeshReport, SimulationError> {
        for _ in 0..warmup {
            self.step()?;
        }
        self.reset_metrics();
        self.run(intervals)
    }

    /// Zeroes every shard's metrics (and the mesh migration total)
    /// without touching caches, protocol state, or unit locations.
    pub fn reset_metrics(&mut self) {
        for cell in &mut self.cells {
            cell.reset_metrics();
        }
        self.migrations = 0;
    }

    /// One migration barrier: poll every unit's mobility model in home
    /// order and hand accepted moves off cell-to-cell. Single-threaded
    /// by design — the barrier is the synchronization point, and home
    /// order makes slot assignment reproducible.
    fn migrate_barrier(&mut self, barrier: u64) {
        for home in 0..self.locations.len() {
            let Location { cell, slot, hops } = self.locations[home];
            let neighbors = self.config.graph.neighbors(cell);
            let dest = match self.config.mobility.decide(
                &mut self.mobility_rngs[home],
                barrier,
                hops,
                neighbors,
            ) {
                Some(dest) => dest,
                None => continue,
            };
            debug_assert_ne!(dest, cell, "graph has no self-loops");
            // The TS handoff clause: a traveler keeps its cache across
            // the handoff only if the destination has been broadcasting
            // the same invalidation information. With a shared backbone
            // the static strategies' reports coincide and this is
            // always true; adaptive/quasi builders fold local feedback
            // into their reports and can genuinely diverge.
            let agree = self.cells[cell].report_history_agrees(&self.cells[dest]);
            let traveler = self.cells[cell].detach_client(slot);
            let new_slot = self.cells[dest].attach_client(traveler, agree);
            self.locations[home] = Location {
                cell: dest,
                slot: new_slot,
                hops: hops + 1,
            };
            self.migrations += 1;
        }
    }

    /// Snapshot of every shard's metrics plus the mesh totals.
    pub fn report(&self) -> MeshReport {
        let cells: Vec<_> = self.cells.iter().map(|c| c.report()).collect();
        // The shards share one clock; their measured-interval counts
        // always agree (and reset together with the metrics).
        let intervals = cells.first().map(|c| c.intervals).unwrap_or(0);
        MeshReport {
            cells,
            intervals,
            migrations: self.migrations,
        }
    }

    /// The shards, in cell order (read-only test hook).
    pub fn cells(&self) -> &[CellSimulation] {
        &self.cells
    }

    /// Which cell the unit with home index `home` currently occupies.
    pub fn client_cell(&self, home: usize) -> usize {
        self.locations[home].cell
    }

    /// Total accepted migrations so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }
}

/// Aggregated output of a mesh run.
#[derive(Debug, Clone)]
pub struct MeshReport {
    /// Per-shard reports, in cell order.
    pub cells: Vec<SimulationReport>,
    /// Intervals each shard simulated (measured since the last metrics
    /// reset; shards always agree).
    pub intervals: u64,
    /// Accepted migrations across the mesh (measured window).
    pub migrations: u64,
}

impl MeshReport {
    /// Mesh-wide hit ratio over query events (NaN when no unit posed a
    /// query, matching [`SimulationReport::hit_ratio`]).
    pub fn hit_ratio(&self) -> f64 {
        let hits: u64 = self.cells.iter().map(|c| c.hit_events).sum();
        let events: u64 = self.cells.iter().map(|c| c.hit_events + c.miss_events).sum();
        if events == 0 {
            f64::NAN
        } else {
            hits as f64 / events as f64
        }
    }

    /// Mesh-wide query events.
    pub fn query_events(&self) -> u64 {
        self.cells.iter().map(|c| c.query_events()).sum()
    }

    /// Mesh-wide uplink traffic in bits (queries sent up across all
    /// cells' channels).
    pub fn uplink_bits(&self) -> u64 {
        self.cells.iter().map(|c| c.traffic.query_bits).sum()
    }

    /// Summed handoff counters across all shards. `migrations_in` and
    /// `migrations_out` each count every accepted migration once (one
    /// cell logs the departure, another the arrival), so at the mesh
    /// level they agree with [`migrations`](MeshReport::migrations)
    /// over the same window.
    pub fn migration(&self) -> MigrationStats {
        let mut total = MigrationStats::default();
        for c in &self.cells {
            total.migrations_in += c.migration.migrations_in;
            total.migrations_out += c.migration.migrations_out;
            total.handoff_drops += c.migration.handoff_drops;
            total.cross_cell_registrations += c.migration.cross_cell_registrations;
        }
        total
    }

    /// Mesh-wide safety violations (stale cache entries validated).
    pub fn safety_violations(&self) -> u64 {
        self.cells.iter().map(|c| c.safety.violations).sum()
    }

    /// Summed eviction statistics across all shards (zero when the
    /// mesh runs unbounded caches).
    pub fn capacity(&self) -> CapacityStats {
        let mut total = CapacityStats::default();
        for c in &self.cells {
            total.absorb(c.capacity);
        }
        total
    }

    /// Summed cooperative-miss statistics across all shards (zero when
    /// [`MeshConfig::with_coop`] was never armed).
    pub fn coop(&self) -> CoopStats {
        let mut total = CoopStats::default();
        for c in &self.cells {
            total.absorb(c.coop);
        }
        total
    }
}
