//! # sw-mesh — the multi-cell network environment
//!
//! The paper's world is a mesh of cells, each served by a mobile
//! support station broadcasting invalidation reports, with mobile
//! units roaming between them (§1's architecture). The single-cell
//! simulator ([`sleepers::CellSimulation`]) models one cell in
//! isolation; this crate composes N of them into a
//! [`MeshSimulation`]: a shared backbone database replicated across
//! every cell, a [`CellGraph`] saying which cells abut, and a
//! deterministic [`MobilityModel`] migrating units at interval
//! barriers.
//!
//! A handoff needs no new protocol: from the unit's strategy's point
//! of view it is a report gap (the transit blackout) plus a change of
//! report stream, so §3's own rules govern recovery — AT drops its
//! cache, TS keeps entries iff the gap stayed inside its window *and*
//! the two cells broadcast the same invalidation history, SIG
//! re-diagnoses by signature, and the stateful baseline re-registers
//! with the new cell's server.
//!
//! ```
//! use sleepers::prelude::*;
//! use sw_mesh::{CellGraph, MeshConfig, MeshSimulation, MobilityModel};
//! use sw_sim::MasterSeed;
//!
//! let params = ScenarioParams::scenario1().with_s(0.3);
//! let base = CellConfig::new(params).with_clients(10).with_hotspot_size(50);
//! let config = MeshConfig::new(CellGraph::ring(4), base, MasterSeed(7))
//!     .with_mobility(MobilityModel::Markov { rate: 0.05 });
//! let mut mesh = MeshSimulation::new(config, Strategy::BroadcastTimestamps).unwrap();
//! let report = mesh.run(100).unwrap();
//! println!("mesh hit ratio: {:.3}", report.hit_ratio());
//! println!("migrations: {}", report.migrations);
//! ```
//!
//! Runs are byte-identical at any `SW_THREADS` setting: cells step in
//! parallel between barriers, but every migration decision and every
//! handoff applies in fixed home-index order on one thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod mobility;
pub mod sim;

pub use graph::CellGraph;
pub use mobility::MobilityModel;
pub use sim::{MeshConfig, MeshReport, MeshSimulation};
