//! Deterministic client mobility.
//!
//! Every mobile unit owns one dedicated random stream
//! (`StreamId::Mobility { index }` of the mesh's master seed), and the
//! mesh polls each unit once per interval barrier in fixed home-index
//! order. Because a unit's draws come only from its own stream, its
//! trajectory is a pure function of the mesh seed and its home index —
//! independent of thread count, of every other unit, and of every
//! stream the single-cell simulator consumes.

use sw_sim::RngStream;

/// How mobile units move between cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityModel {
    /// Nobody moves. The mesh degenerates to independent cells.
    Stationary,
    /// Per-barrier Markov walk: at every interval barrier each unit
    /// flips a `rate`-weighted coin; on heads it hops to a uniformly
    /// drawn neighbor cell. `rate = 0` draws the coin but never moves
    /// (keeping the stream positions identical to any other rate).
    Markov {
        /// Per-barrier hop probability in `[0, 1]`.
        rate: f64,
    },
    /// RNG-free deterministic mobility for tests and the handoff
    /// experiment: every `every` barriers each unit hops to the next
    /// neighbor in cyclic order (its hop count indexes the neighbor
    /// list). Barriers are numbered from 1.
    Periodic {
        /// Barrier period between hops (0 behaves as [`Stationary`]
        /// (Self::Stationary)).
        every: u64,
    },
}

impl MobilityModel {
    /// Decides one unit's move at one barrier. `hops` is the unit's
    /// lifetime hop count (incremented on every accepted move;
    /// [`Periodic`](Self::Periodic) uses it to cycle the neighbor
    /// list). Returns the destination cell, or `None` to stay.
    pub(crate) fn decide(
        &self,
        rng: &mut RngStream,
        barrier: u64,
        hops: u64,
        neighbors: &[usize],
    ) -> Option<usize> {
        match *self {
            MobilityModel::Stationary => None,
            MobilityModel::Markov { rate } => {
                // The coin is flipped before the isolation check so a
                // unit parked in a degenerate single-cell graph keeps
                // the same stream position as everyone else.
                let moving = rng.bernoulli(rate);
                if !moving || neighbors.is_empty() {
                    return None;
                }
                let pick = rng.uniform_index(neighbors.len() as u64) as usize;
                Some(neighbors[pick])
            }
            MobilityModel::Periodic { every } => {
                if every == 0 || neighbors.is_empty() || !barrier.is_multiple_of(every) {
                    return None;
                }
                Some(neighbors[(hops % neighbors.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{MasterSeed, StreamId};

    fn stream() -> RngStream {
        MasterSeed(7).stream(StreamId::Mobility { index: 0 })
    }

    #[test]
    fn stationary_never_moves() {
        let mut rng = stream();
        for barrier in 1..50 {
            assert_eq!(
                MobilityModel::Stationary.decide(&mut rng, barrier, 0, &[1, 2]),
                None
            );
        }
    }

    #[test]
    fn markov_rate_zero_draws_but_stays() {
        let model = MobilityModel::Markov { rate: 0.0 };
        let mut rng = stream();
        let mut twin = stream();
        for barrier in 1..100 {
            assert_eq!(model.decide(&mut rng, barrier, 0, &[1, 2]), None);
            // Exactly one coin per barrier: the stream position matches
            // a twin that drew the same coins by hand.
            twin.bernoulli(0.0);
        }
        assert_eq!(rng.next_u64(), twin.next_u64());
    }

    #[test]
    fn markov_rate_one_always_moves_to_a_neighbor() {
        let model = MobilityModel::Markov { rate: 1.0 };
        let mut rng = stream();
        for barrier in 1..100 {
            let dest = model.decide(&mut rng, barrier, 0, &[3, 5]).unwrap();
            assert!(dest == 3 || dest == 5);
        }
    }

    #[test]
    fn markov_in_isolation_flips_but_cannot_move() {
        let model = MobilityModel::Markov { rate: 1.0 };
        let mut rng = stream();
        assert_eq!(model.decide(&mut rng, 1, 0, &[]), None);
    }

    #[test]
    fn periodic_cycles_neighbors_on_schedule() {
        let model = MobilityModel::Periodic { every: 3 };
        let mut rng = stream();
        assert_eq!(model.decide(&mut rng, 1, 0, &[4, 9]), None);
        assert_eq!(model.decide(&mut rng, 2, 0, &[4, 9]), None);
        assert_eq!(model.decide(&mut rng, 3, 0, &[4, 9]), Some(4));
        assert_eq!(model.decide(&mut rng, 6, 1, &[4, 9]), Some(9));
        assert_eq!(model.decide(&mut rng, 9, 2, &[4, 9]), Some(4));
        // RNG-free: the stream never advanced.
        let mut twin = stream();
        assert_eq!(rng.next_u64(), twin.next_u64());
    }

    #[test]
    fn periodic_zero_is_stationary() {
        let model = MobilityModel::Periodic { every: 0 };
        let mut rng = stream();
        for barrier in 1..20 {
            assert_eq!(model.decide(&mut rng, barrier, 0, &[1]), None);
        }
    }
}
