//! The cell adjacency graph.
//!
//! Cells are numbered `0..n`; an edge means a mobile unit can hand off
//! directly between the two cells. The graph is undirected and fixed
//! for the lifetime of a mesh — the paper's environment is a static
//! arrangement of cells served by stationary MSSs, with only the
//! *units* moving.

/// An undirected graph over `n` cells. Neighbor lists are kept sorted
/// ascending so every iteration order downstream is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellGraph {
    adjacency: Vec<Vec<usize>>,
}

impl CellGraph {
    /// A graph over `n` cells with the given undirected edges.
    /// Self-loops and duplicate edges are rejected.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`, an endpoint is out of range, an edge is a
    /// self-loop, or an edge appears twice.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        assert!(n > 0, "a mesh needs at least one cell");
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a}, {b}) out of range for {n} cells");
            assert_ne!(a, b, "self-loop on cell {a}");
            assert!(
                !adjacency[a].contains(&b),
                "duplicate edge ({a}, {b})"
            );
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        CellGraph { adjacency }
    }

    /// `n` cells in a path: `0 — 1 — … — n−1`.
    pub fn line(n: usize) -> Self {
        let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        Self::from_edges(n, &edges)
    }

    /// `n` cells in a cycle (a line for `n < 3` — a 2-ring would be a
    /// duplicate edge).
    pub fn ring(n: usize) -> Self {
        if n < 3 {
            return Self::line(n);
        }
        let mut edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        edges.push((n - 1, 0));
        Self::from_edges(n, &edges)
    }

    /// A `w × h` 4-connected grid, cell `(x, y)` at index `y·w + x`.
    pub fn grid(w: usize, h: usize) -> Self {
        assert!(w > 0 && h > 0, "grid needs positive dimensions");
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    edges.push((i, i + 1));
                }
                if y + 1 < h {
                    edges.push((i, i + w));
                }
            }
        }
        Self::from_edges(w * h, &edges)
    }

    /// Every pair of cells adjacent.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Self::from_edges(n, &edges)
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.adjacency.len()
    }

    /// The cells reachable from `cell` in one handoff, ascending.
    pub fn neighbors(&self, cell: usize) -> &[usize] {
        &self.adjacency[cell]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_endpoints_have_one_neighbor() {
        let g = CellGraph::line(4);
        assert_eq!(g.n_cells(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(3), &[2]);
    }

    #[test]
    fn ring_wraps_and_degenerates_to_line() {
        let g = CellGraph::ring(4);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(3), &[0, 2]);
        let two = CellGraph::ring(2);
        assert_eq!(two.neighbors(0), &[1]);
        assert_eq!(two.neighbors(1), &[0]);
    }

    #[test]
    fn grid_connectivity() {
        let g = CellGraph::grid(3, 2);
        assert_eq!(g.n_cells(), 6);
        // Corner, edge, and the middle of the top row.
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[0, 2, 4]);
        assert_eq!(g.neighbors(4), &[1, 3, 5]);
    }

    #[test]
    fn complete_graph_is_all_pairs() {
        let g = CellGraph::complete(4);
        for c in 0..4 {
            let expected: Vec<_> = (0..4).filter(|&o| o != c).collect();
            assert_eq!(g.neighbors(c), expected.as_slice());
        }
    }

    #[test]
    fn single_cell_has_no_neighbors() {
        let g = CellGraph::complete(1);
        assert_eq!(g.n_cells(), 1);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        CellGraph::from_edges(2, &[(1, 1)]);
    }
}
