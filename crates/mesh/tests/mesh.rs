//! Mesh acceptance suite: zero-mobility equivalence, thread-count
//! determinism, and per-strategy handoff recovery.

use sleepers::prelude::*;
use sw_mesh::{CellGraph, MeshConfig, MeshSimulation, MobilityModel};
use sw_sim::{MasterSeed, ParallelRunner};

fn quick_params() -> ScenarioParams {
    let mut p = ScenarioParams::scenario1();
    p.n_items = 200;
    p.lambda = 0.05;
    p.mu = 1e-3;
    p.k = 10;
    p
}

fn base_config(s: f64) -> CellConfig {
    CellConfig::new(quick_params().with_s(s))
        .with_clients(8)
        .with_hotspot_size(20)
}

fn strip_observe(mut r: SimulationReport) -> SimulationReport {
    // Wall-clock span timings are the one nondeterministic field.
    r.observe = None;
    r
}

/// Acceptance: a mesh at migration rate 0 is byte-identical to N
/// independent single-cell runs of the same per-cell configs.
#[test]
fn zero_mobility_mesh_equals_independent_cells() {
    for strategy in [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
        Strategy::Stateful,
    ] {
        let config = MeshConfig::new(CellGraph::ring(3), base_config(0.3), MasterSeed(41))
            .with_mobility(MobilityModel::Markov { rate: 0.0 });
        let mut mesh = MeshSimulation::new(config.clone(), strategy).unwrap();
        let mesh_report = mesh.run(80).unwrap();
        assert_eq!(mesh_report.migrations, 0);

        for cell in 0..3 {
            let mut solo = CellSimulation::new(config.cell_config(cell), strategy).unwrap();
            let solo_report = solo.run(80).unwrap();
            assert_eq!(
                format!("{:?}", strip_observe(mesh_report.cells[cell].clone())),
                format!("{:?}", strip_observe(solo_report)),
                "{} cell {cell} diverged from its standalone twin",
                strategy.name()
            );
        }
    }
}

/// Acceptance: a mesh run is byte-identical at any thread count.
#[test]
fn mesh_runs_are_identical_across_thread_counts() {
    let run = |threads: usize| {
        let config = MeshConfig::new(CellGraph::grid(2, 2), base_config(0.3), MasterSeed(42))
            .with_mobility(MobilityModel::Markov { rate: 0.1 });
        let mut mesh = MeshSimulation::with_runner(
            config,
            Strategy::BroadcastTimestamps,
            ParallelRunner::new(threads),
        )
        .unwrap();
        let report = mesh.run(120).unwrap();
        assert!(report.migrations > 0, "mobility must actually fire");
        format!("{report:?}")
    };
    let single = run(1);
    assert_eq!(single, run(2));
    assert_eq!(single, run(8));
}

/// Acceptance: the *intra-cell* parallel report sweep is invisible in
/// a mesh too — shards host boxed units (handoffs move whole units,
/// so the columnar fleet never constructs there), and the chunked
/// sweep must be byte-identical at any worker count even while
/// clients migrate. Fleets are sized so the parallel path actually
/// engages (it fans out at ≥ 256 listening clients per cell).
#[test]
fn mesh_sweep_thread_count_is_invisible() {
    let run = |sweep_threads: usize| {
        let base = base_config(0.1)
            .with_clients(400)
            .with_sweep_threads(sweep_threads);
        let config = MeshConfig::new(CellGraph::line(2), base, MasterSeed(49))
            .with_mobility(MobilityModel::Markov { rate: 0.05 });
        let mut mesh =
            MeshSimulation::new(config, Strategy::BroadcastTimestamps).unwrap();
        let report = mesh.run(40).unwrap();
        assert!(report.migrations > 0, "mobility must actually fire");
        format!("{report:?}")
    };
    let single = run(1);
    assert_eq!(single, run(2), "2 sweep threads changed a mesh run");
    assert_eq!(single, run(8), "8 sweep threads changed a mesh run");
}

/// Migration accounting is conserved: every accepted migration is one
/// departure in the source cell and one arrival in the destination.
#[test]
fn migration_counters_are_conserved() {
    let config = MeshConfig::new(CellGraph::ring(4), base_config(0.3), MasterSeed(43))
        .with_mobility(MobilityModel::Markov { rate: 0.2 });
    let mut mesh = MeshSimulation::new(config, Strategy::Signatures).unwrap();
    let report = mesh.run(100).unwrap();
    let m = report.migration();
    assert!(report.migrations > 0);
    assert_eq!(m.migrations_in, report.migrations);
    assert_eq!(m.migrations_out, report.migrations);
    let present: usize = mesh.cells().iter().map(|c| c.present_clients()).sum();
    assert_eq!(present, 4 * 8, "units are moved, never created or lost");
}

/// TS handoff rule: with a shared backbone (histories agree) and a
/// transit gap of 2L well inside the window w = kL, a migrating
/// workaholic keeps its cache — zero handoff drops.
#[test]
fn ts_keeps_cache_when_gap_inside_window() {
    let config = MeshConfig::new(CellGraph::line(2), base_config(0.0), MasterSeed(44))
        .with_mobility(MobilityModel::Periodic { every: 10 });
    let mut mesh = MeshSimulation::new(config, Strategy::BroadcastTimestamps).unwrap();
    let report = mesh.run(100).unwrap();
    assert!(report.migrations > 0);
    assert_eq!(
        report.migration().handoff_drops,
        0,
        "TS must keep entries across a 2L gap with w = 10L"
    );
}

/// AT handoff rule: the transit blackout spans two intervals, so the
/// first report heard in the new cell always exceeds AT's one-interval
/// memory — every migrating unit with a non-empty cache drops it.
#[test]
fn at_always_drops_on_handoff() {
    let config = MeshConfig::new(CellGraph::line(2), base_config(0.0), MasterSeed(45))
        .with_mobility(MobilityModel::Periodic { every: 10 });
    let mut mesh = MeshSimulation::new(config, Strategy::AmnesicTerminals).unwrap();
    let report = mesh.run(100).unwrap();
    assert!(report.migrations > 0);
    assert!(
        report.migration().handoff_drops > 0,
        "AT's gap rule must fire on the transit blackout"
    );
}

/// Stateful baseline: a migrating unit re-registers with the new
/// cell's server at its first wake-up there, and each registration is
/// charged as control traffic.
#[test]
fn stateful_reregisters_after_handoff() {
    let config = MeshConfig::new(CellGraph::line(2), base_config(0.0), MasterSeed(46))
        .with_mobility(MobilityModel::Periodic { every: 10 });
    let mut mesh = MeshSimulation::new(config, Strategy::Stateful).unwrap();
    // 95 intervals: the last Periodic barrier fires at 90, so every
    // arrival has woken (and registered) by the end of the run.
    let report = mesh.run(95).unwrap();
    assert!(report.migrations > 0);
    let m = report.migration();
    assert!(
        m.cross_cell_registrations > 0,
        "arrivals must re-register with the destination registry"
    );
    assert_eq!(
        m.cross_cell_registrations, m.migrations_in,
        "workaholics re-register exactly once per arrival"
    );
}

/// Never-stale strategies stay never-stale under mobility: a mesh run
/// with safety checking on completes without a `SafetyViolated` abort
/// and counts zero violations.
#[test]
fn never_stale_strategies_stay_safe_under_mobility() {
    for strategy in [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Stateful,
    ] {
        let base = base_config(0.3).with_safety_checking();
        let config = MeshConfig::new(CellGraph::ring(3), base, MasterSeed(47))
            .with_mobility(MobilityModel::Markov { rate: 0.15 });
        let mut mesh = MeshSimulation::new(config, strategy).unwrap();
        let report = mesh
            .run(150)
            .unwrap_or_else(|e| panic!("{} aborted under mobility: {e}", strategy.name()));
        assert!(report.migrations > 0);
        assert_eq!(
            report.safety_violations(),
            0,
            "{} validated a stale entry after a handoff",
            strategy.name()
        );
    }
}

/// Cooperative misses fire and pay for themselves: with bounded
/// caches under the same capacity, the coop mesh serves some misses
/// from neighbor directories and its uplink traffic drops below the
/// non-coop twin's. A coop-served answer installs the same
/// (value, report-stamp) pair the uplink would have returned, so the
/// saving is pure accounting, never a behavior change.
#[test]
fn coop_serves_misses_and_cuts_uplink_bits() {
    let run = |coop: bool| {
        let base = base_config(0.3).with_cache_capacity(8);
        let mut config = MeshConfig::new(CellGraph::ring(4), base, MasterSeed(50))
            .with_mobility(MobilityModel::Markov { rate: 0.05 });
        if coop {
            config = config.with_coop(CoopConfig::default());
        }
        let mut mesh = MeshSimulation::new(config, Strategy::BroadcastTimestamps).unwrap();
        mesh.run(150).unwrap()
    };
    let plain = run(false);
    let coop = run(true);
    assert_eq!(plain.coop().coop_served, 0, "unarmed mesh must not serve coop");
    let stats = coop.coop();
    assert!(stats.coop_served > 0, "coop path never fired");
    assert_eq!(
        stats.coop_bits,
        stats.coop_served * CoopConfig::default().b_coop,
        "each served miss is charged exactly b_coop"
    );
    assert!(
        coop.uplink_bits() < plain.uplink_bits(),
        "coop must cut uplink bits at equal capacity: {} vs {}",
        coop.uplink_bits(),
        plain.uplink_bits()
    );
}

/// The never-stale guarantee survives cooperative serving: vouched
/// copies are only installed when the receiver's own report proves
/// them current, so TS and AT stay violation-free even with tight
/// caches, mobility, and the coop path all armed at once.
#[test]
fn coop_stays_never_stale_under_pressure() {
    for strategy in [Strategy::BroadcastTimestamps, Strategy::AmnesicTerminals] {
        let base = base_config(0.3)
            .with_cache_capacity(6)
            .with_safety_checking();
        let config = MeshConfig::new(CellGraph::ring(3), base, MasterSeed(51))
            .with_mobility(MobilityModel::Markov { rate: 0.1 })
            .with_coop(CoopConfig::default());
        let mut mesh = MeshSimulation::new(config, strategy).unwrap();
        let report = mesh
            .run(150)
            .unwrap_or_else(|e| panic!("{} aborted under coop: {e}", strategy.name()));
        assert_eq!(
            report.safety_violations(),
            0,
            "{} validated a stale coop-served entry",
            strategy.name()
        );
    }
}

/// A coop mesh run is byte-identical at any thread count: the
/// directory exchange is part of the single-threaded barrier.
#[test]
fn coop_runs_are_identical_across_thread_counts() {
    let run = |threads: usize| {
        let base = base_config(0.3).with_cache_capacity(8);
        let config = MeshConfig::new(CellGraph::grid(2, 2), base, MasterSeed(52))
            .with_mobility(MobilityModel::Markov { rate: 0.1 })
            .with_coop(CoopConfig::default());
        let mut mesh = MeshSimulation::with_runner(
            config,
            Strategy::BroadcastTimestamps,
            ParallelRunner::new(threads),
        )
        .unwrap();
        let report = mesh.run(100).unwrap();
        assert!(report.coop().coop_served > 0, "coop path never fired");
        format!("{report:?}")
    };
    let single = run(1);
    assert_eq!(single, run(2));
    assert_eq!(single, run(8));
}

/// Repeated migration of the same units (every barrier on a 2-cell
/// line) keeps the simulation well-formed: slots accumulate but the
/// present population is constant and reports stay finite.
#[test]
fn rapid_migration_soak_stays_well_formed() {
    let config = MeshConfig::new(CellGraph::line(2), base_config(0.3), MasterSeed(48))
        .with_mobility(MobilityModel::Periodic { every: 1 });
    let mut mesh = MeshSimulation::new(config, Strategy::BroadcastTimestamps).unwrap();
    let report = mesh.run(60).unwrap();
    assert_eq!(report.migrations, 60 * 16, "everyone hops every barrier");
    let present: usize = mesh.cells().iter().map(|c| c.present_clients()).sum();
    assert_eq!(present, 16);
    for cell in &report.cells {
        assert_eq!(cell.intervals, 60);
    }
}
