//! Uplink query processing.
//!
//! When a client's cache cannot answer a query it "goes uplink": sends
//! the query over the wireless channel and receives the item's current
//! value. The answer carries the server-clock timestamp of the request
//! (§2: "the obtained copy has the timestamp equal to the timestamp of
//! the request (using the server's clock)").
//!
//! For §8's adaptive Method 1, clients piggyback on each uplink query
//! "all the timestamps of requests about [the item] that were satisfied
//! locally from the time of the previous uplink request" — the server
//! needs the *full* query history per item to compute MHR(i) and
//! AHR(i). [`UplinkProcessor`] records both the uplink counts and the
//! piggybacked local-hit counts per item per evaluation period.

use sw_sim::SimTime;

use crate::database::{Database, ItemId};
use crate::table::ItemTable;

/// Timestamps of cache hits satisfied locally since the client's last
/// uplink request for this item (adaptive Method 1, §8.1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PiggybackInfo {
    /// Times (client-observed) of local cache hits for the queried item.
    pub local_hit_times: Vec<SimTime>,
}

/// The answer to an uplink query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAnswer {
    /// The item queried.
    pub item: ItemId,
    /// Its current value at the server.
    pub value: u64,
    /// Server-clock timestamp assigned to the client's fresh cache entry.
    pub timestamp: SimTime,
}

/// Per-item uplink statistics for one evaluation period.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ItemUplinkStats {
    /// Queries that came uplink (cache misses), `Q[i]` in §8.2.
    pub uplink_queries: u64,
    /// Locally satisfied queries reported via piggybacking; together
    /// with `uplink_queries` this is the total query count `q[i]` of
    /// §8.1.
    pub piggybacked_hits: u64,
}

impl ItemUplinkStats {
    /// Total queries the clients posed for this item, `q[i]`.
    pub fn total_queries(&self) -> u64 {
        self.uplink_queries + self.piggybacked_hits
    }
}

/// Answers uplink queries and accumulates the per-item statistics the
/// adaptive controllers consume.
///
/// The per-item table is dense when the item universe is known (the
/// cell driver sizes it from the database), avoiding hashing on the
/// per-query hot path.
#[derive(Debug, Clone, Default)]
pub struct UplinkProcessor {
    // `ItemTable`'s Default is the hashed layout, matching `new()`.
    stats: ItemTable<ItemUplinkStats>,
    total_uplink: u64,
}

impl UplinkProcessor {
    /// Creates an empty processor over an unknown item universe
    /// (hashed stats table).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a processor whose stats table is dense over items
    /// `0..universe`.
    pub fn with_universe(universe: u64) -> Self {
        UplinkProcessor {
            stats: ItemTable::dense(universe),
            total_uplink: 0,
        }
    }

    /// Processes one uplink query at server time `now`, returning the
    /// answer and recording statistics. `piggyback` carries the client's
    /// local-hit history if the cell runs adaptive Method 1.
    pub fn answer(
        &mut self,
        db: &Database,
        item: ItemId,
        now: SimTime,
        piggyback: Option<&PiggybackInfo>,
    ) -> QueryAnswer {
        let entry = self.stats.get_or_insert_with(item, Default::default);
        entry.uplink_queries += 1;
        if let Some(pb) = piggyback {
            entry.piggybacked_hits += pb.local_hit_times.len() as u64;
        }
        self.total_uplink += 1;
        QueryAnswer {
            item,
            value: db.value(item),
            timestamp: now,
        }
    }

    /// Statistics for `item` in the current evaluation period.
    pub fn item_stats(&self, item: ItemId) -> ItemUplinkStats {
        self.stats.get(item).copied().unwrap_or_default()
    }

    /// All items with activity this period, ascending by item id.
    pub fn active_items(&self) -> impl Iterator<Item = (ItemId, ItemUplinkStats)> + '_ {
        self.stats.iter_sorted().map(|(k, &v)| (k, v))
    }

    /// Total uplink queries since construction (never reset).
    pub fn total_uplink_queries(&self) -> u64 {
        self.total_uplink
    }

    /// Ends the evaluation period: returns the period's statistics and
    /// starts a fresh one (same table layout).
    pub fn end_period(&mut self) -> ItemTable<ItemUplinkStats> {
        self.stats.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::SimDuration;

    fn db() -> Database {
        Database::new(10, |i| i * 7, SimDuration::from_secs(100.0))
    }

    #[test]
    fn answer_carries_current_value_and_request_time() {
        let mut d = db();
        d.apply_update(3, 999, SimTime::from_secs(5.0));
        let mut up = UplinkProcessor::new();
        let ans = up.answer(&d, 3, SimTime::from_secs(7.0), None);
        assert_eq!(ans.value, 999);
        assert_eq!(ans.timestamp, SimTime::from_secs(7.0));
    }

    #[test]
    fn uplink_counts_accumulate() {
        let d = db();
        let mut up = UplinkProcessor::new();
        up.answer(&d, 1, SimTime::from_secs(1.0), None);
        up.answer(&d, 1, SimTime::from_secs(2.0), None);
        up.answer(&d, 2, SimTime::from_secs(3.0), None);
        assert_eq!(up.item_stats(1).uplink_queries, 2);
        assert_eq!(up.item_stats(2).uplink_queries, 1);
        assert_eq!(up.total_uplink_queries(), 3);
    }

    #[test]
    fn piggyback_contributes_to_total_queries() {
        let d = db();
        let mut up = UplinkProcessor::new();
        let pb = PiggybackInfo {
            local_hit_times: vec![
                SimTime::from_secs(0.5),
                SimTime::from_secs(0.8),
                SimTime::from_secs(0.9),
            ],
        };
        up.answer(&d, 4, SimTime::from_secs(1.0), Some(&pb));
        let s = up.item_stats(4);
        assert_eq!(s.uplink_queries, 1);
        assert_eq!(s.piggybacked_hits, 3);
        assert_eq!(s.total_queries(), 4);
    }

    #[test]
    fn end_period_resets_per_item_stats() {
        let d = db();
        let mut up = UplinkProcessor::new();
        up.answer(&d, 1, SimTime::from_secs(1.0), None);
        let period = up.end_period();
        assert_eq!(period.get(1).expect("active item").uplink_queries, 1);
        assert_eq!(up.item_stats(1), ItemUplinkStats::default());
        // The lifetime total survives.
        assert_eq!(up.total_uplink_queries(), 1);
    }

    #[test]
    fn inactive_item_has_zero_stats() {
        let up = UplinkProcessor::new();
        assert_eq!(up.item_stats(9), ItemUplinkStats::default());
    }
}
