//! The update process.
//!
//! §4: "Updates occur following an exponential distribution, at an
//! update rate of μ per item." With `n` independent per-item exponential
//! streams, the superposition is a Poisson process of rate `n·μ` whose
//! events land on a uniformly chosen item — which is how we generate
//! updates so that a 10^6-item database costs the same per event as a
//! 10^3-item one.

use sw_sim::{PoissonProcess, RngStream, SimTime};

use crate::database::{Database, UpdateRecord};

/// Drives item updates into a [`Database`].
#[derive(Debug, Clone)]
pub struct UpdateEngine {
    per_item_rate: f64,
    process: PoissonProcess,
}

impl UpdateEngine {
    /// Creates the engine for a database of `n` items updated at `μ`
    /// per item per second. A rate of zero produces no updates
    /// (Scenarios 5/6 sweep down to very low rates; μ = 0 is the
    /// degenerate "static database" case).
    pub fn new(n: u64, per_item_rate: f64, rng: &mut RngStream) -> Self {
        assert!(
            per_item_rate.is_finite() && per_item_rate >= 0.0,
            "update rate must be non-negative, got {per_item_rate}"
        );
        UpdateEngine {
            per_item_rate,
            process: PoissonProcess::new(n as f64 * per_item_rate, rng),
        }
    }

    /// The per-item update rate μ.
    pub fn per_item_rate(&self) -> f64 {
        self.per_item_rate
    }

    /// Generates and applies every update in `(from, to]`, returning the
    /// applied records in time order.
    ///
    /// Each event picks a uniform item and assigns it a fresh random
    /// value (guaranteed different from the current one, since "update"
    /// in the paper means the value changed).
    pub fn advance(
        &mut self,
        db: &mut Database,
        from: SimTime,
        to: SimTime,
        rng: &mut RngStream,
    ) -> Vec<UpdateRecord> {
        let times = self.process.arrivals_in(from, to, rng);
        let mut out = Vec::with_capacity(times.len());
        for at in times {
            let item = rng.uniform_index(db.len());
            let old = db.value(item);
            let mut value = rng.next_u64();
            if value == old {
                value = value.wrapping_add(1);
            }
            out.push(db.apply_update(item, value, at));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{MasterSeed, SimDuration, StreamId};

    fn setup(n: u64, mu: f64) -> (Database, UpdateEngine, RngStream) {
        let mut rng = MasterSeed::TEST.stream(StreamId::Updates);
        let db = Database::new(n, |i| i, SimDuration::from_secs(1e6));
        let eng = UpdateEngine::new(n, mu, &mut rng);
        (db, eng, rng)
    }

    #[test]
    fn update_count_matches_n_mu_t() {
        let (mut db, mut eng, mut rng) = setup(1000, 1e-3);
        let horizon = SimTime::from_secs(100_000.0);
        let recs = eng.advance(&mut db, SimTime::ZERO, horizon, &mut rng);
        // Expected n·μ·t = 1000 × 1e-3 × 1e5 = 1e5 updates.
        let expected = 100_000.0;
        assert!(
            (recs.len() as f64 - expected).abs() / expected < 0.02,
            "got {} updates, expected ≈{expected}",
            recs.len()
        );
        assert_eq!(db.update_count(), recs.len() as u64);
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let (mut db, mut eng, mut rng) = setup(1000, 0.0);
        let recs = eng.advance(&mut db, SimTime::ZERO, SimTime::from_secs(1e6), &mut rng);
        assert!(recs.is_empty());
    }

    #[test]
    fn updates_change_values() {
        let (mut db, mut eng, mut rng) = setup(100, 0.1);
        let recs = eng.advance(&mut db, SimTime::ZERO, SimTime::from_secs(1000.0), &mut rng);
        assert!(!recs.is_empty());
        for r in &recs {
            assert_ne!(r.value, r.previous, "an update must change the value");
        }
    }

    #[test]
    fn updates_are_time_ordered() {
        let (mut db, mut eng, mut rng) = setup(100, 0.1);
        let recs = eng.advance(&mut db, SimTime::ZERO, SimTime::from_secs(1000.0), &mut rng);
        assert!(recs.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn items_hit_roughly_uniformly() {
        let (mut db, mut eng, mut rng) = setup(10, 1.0);
        let recs = eng.advance(&mut db, SimTime::ZERO, SimTime::from_secs(10_000.0), &mut rng);
        let mut counts = [0u64; 10];
        for r in &recs {
            counts[r.item as usize] += 1;
        }
        let total: u64 = counts.iter().sum();
        let expected = total as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.1,
                "item {i} hit {c} times, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn fraction_updated_matches_eq15() {
        // Eq. 15: n_c = n(1 − e^{−μw}) items updated within a window w.
        let n = 2000u64;
        let mu = 1e-3;
        let w = 500.0;
        let (mut db, mut eng, mut rng) = setup(n, mu);
        eng.advance(&mut db, SimTime::ZERO, SimTime::from_secs(w), &mut rng);
        let changed = db
            .updated_in_window(SimTime::ZERO, SimTime::from_secs(w))
            .len() as f64;
        let expected = n as f64 * (1.0 - (-mu * w).exp());
        assert!(
            (changed - expected).abs() / expected < 0.08,
            "changed {changed}, Eq.15 predicts {expected}"
        );
    }
}
