//! Dense per-item state tables.
//!
//! Item ids are dense (`0..n`, see [`crate::database`]), so per-item
//! side tables on the per-interval hot path — cache entries, uplink
//! stats, adaptive query/update histories — do not need hashing at all:
//! a `Vec<Option<V>>` indexed by id is both faster (no hash, no probe
//! sequence) and naturally id-ordered, which several consumers need
//! (report entries and deterministic iteration). [`ItemTable`] is that
//! table, with a hashed fallback behind the same API for callers whose
//! key universe is unknown or unbounded (e.g. a cache constructed
//! before the database size is known, or unit tests using arbitrary
//! ids).

use std::collections::HashMap;

use crate::database::ItemId;

/// A map from [`ItemId`] to `V`, either dense (vec-indexed over a known
/// universe, growing on demand) or hashed (fallback).
///
/// Iteration order: ascending item id for the dense layout; use
/// [`ItemTable::iter_sorted`] when order matters and the layout is not
/// statically known.
#[derive(Debug, Clone)]
pub enum ItemTable<V> {
    /// Vec-indexed over a dense id universe. `len` counts occupied
    /// slots.
    Dense {
        /// One slot per item id; `None` = absent.
        slots: Vec<Option<V>>,
        /// Occupancy bitmap, one bit per slot (64 slots per word), so
        /// iteration, retain, and clear cost O(occupied + universe/64)
        /// instead of scanning every slot — sparse tables over large
        /// universes (a 30-item cache over 10⁴ ids) iterate in tens of
        /// nanoseconds, not microseconds.
        occupied: Vec<u64>,
        /// Number of occupied slots.
        len: usize,
    },
    /// HashMap fallback for unknown/unbounded key universes.
    Hashed(HashMap<ItemId, V>),
}

/// Iterates the set bit positions of one word, ascending.
struct BitIter {
    bits: u64,
}

impl Iterator for BitIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.bits == 0 {
            return None;
        }
        let b = self.bits.trailing_zeros();
        self.bits &= self.bits - 1;
        Some(b)
    }
}

#[inline]
fn words_for(slots: usize) -> usize {
    slots.div_ceil(64)
}

impl<V> Default for ItemTable<V> {
    /// The hashed fallback — the layout that needs no universe size.
    fn default() -> Self {
        ItemTable::hashed()
    }
}

impl<V> ItemTable<V> {
    /// A dense table pre-sized for ids `0..universe`. Ids beyond the
    /// universe still work — the slot vector grows on insert.
    pub fn dense(universe: u64) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(universe as usize, || None);
        let occupied = vec![0u64; words_for(slots.len())];
        ItemTable::Dense {
            slots,
            occupied,
            len: 0,
        }
    }

    /// A hashed table for arbitrary ids.
    pub fn hashed() -> Self {
        ItemTable::Hashed(HashMap::new())
    }

    /// Whether this table uses the dense layout.
    pub fn is_dense(&self) -> bool {
        matches!(self, ItemTable::Dense { .. })
    }

    /// Layout name for telemetry: `"dense"` for the vec-indexed fast
    /// path, `"hashed"` for the fallback.
    pub fn layout_name(&self) -> &'static str {
        if self.is_dense() {
            "dense"
        } else {
            "hashed"
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        match self {
            ItemTable::Dense { len, .. } => *len,
            ItemTable::Hashed(m) => m.len(),
        }
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the value for `item`.
    #[inline]
    pub fn get(&self, item: ItemId) -> Option<&V> {
        match self {
            ItemTable::Dense { slots, .. } => slots.get(item as usize).and_then(Option::as_ref),
            ItemTable::Hashed(m) => m.get(&item),
        }
    }

    /// Mutably borrows the value for `item`.
    #[inline]
    pub fn get_mut(&mut self, item: ItemId) -> Option<&mut V> {
        match self {
            ItemTable::Dense { slots, .. } => slots.get_mut(item as usize).and_then(Option::as_mut),
            ItemTable::Hashed(m) => m.get_mut(&item),
        }
    }

    /// True if `item` has an entry.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.get(item).is_some()
    }

    /// Inserts `value` for `item`, returning the previous value if any.
    pub fn insert(&mut self, item: ItemId, value: V) -> Option<V> {
        match self {
            ItemTable::Dense {
                slots,
                occupied,
                len,
            } => {
                let idx = item as usize;
                if idx >= slots.len() {
                    slots.resize_with(idx + 1, || None);
                    occupied.resize(words_for(slots.len()), 0);
                }
                let prev = slots[idx].replace(value);
                if prev.is_none() {
                    occupied[idx / 64] |= 1u64 << (idx % 64);
                    *len += 1;
                }
                prev
            }
            ItemTable::Hashed(m) => m.insert(item, value),
        }
    }

    /// Removes and returns the value for `item`.
    pub fn remove(&mut self, item: ItemId) -> Option<V> {
        match self {
            ItemTable::Dense {
                slots,
                occupied,
                len,
            } => {
                let idx = item as usize;
                let removed = slots.get_mut(idx).and_then(Option::take);
                if removed.is_some() {
                    occupied[idx / 64] &= !(1u64 << (idx % 64));
                    *len -= 1;
                }
                removed
            }
            ItemTable::Hashed(m) => m.remove(&item),
        }
    }

    /// Mutably borrows the value for `item`, inserting `default()` first
    /// if absent.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, item: ItemId, default: F) -> &mut V {
        match self {
            ItemTable::Dense {
                slots,
                occupied,
                len,
            } => {
                let idx = item as usize;
                if idx >= slots.len() {
                    slots.resize_with(idx + 1, || None);
                    occupied.resize(words_for(slots.len()), 0);
                }
                if slots[idx].is_none() {
                    slots[idx] = Some(default());
                    occupied[idx / 64] |= 1u64 << (idx % 64);
                    *len += 1;
                }
                slots[idx].as_mut().expect("just filled")
            }
            ItemTable::Hashed(m) => m.entry(item).or_insert_with(default),
        }
    }

    /// Removes all entries in O(occupied). The dense layout keeps its
    /// slot allocation.
    pub fn clear(&mut self) {
        match self {
            ItemTable::Dense {
                slots,
                occupied,
                len,
            } => {
                for (w, word) in occupied.iter_mut().enumerate() {
                    let mut bits = *word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        slots[w * 64 + b] = None;
                    }
                    *word = 0;
                }
                *len = 0;
            }
            ItemTable::Hashed(m) => m.clear(),
        }
    }

    /// Keeps only entries for which `keep(item, &value)` is true;
    /// O(occupied) for the dense layout.
    pub fn retain<F: FnMut(ItemId, &V) -> bool>(&mut self, mut keep: F) {
        match self {
            ItemTable::Dense {
                slots,
                occupied,
                len,
            } => {
                for (w, word) in occupied.iter_mut().enumerate() {
                    let mut bits = *word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let idx = w * 64 + b;
                        let v = slots[idx].as_ref().expect("occupancy bit set");
                        if !keep(idx as ItemId, v) {
                            slots[idx] = None;
                            *word &= !(1u64 << b);
                            *len -= 1;
                        }
                    }
                }
            }
            ItemTable::Hashed(m) => m.retain(|&item, v| keep(item, v)),
        }
    }

    /// Like [`ItemTable::retain`], but `keep` may mutate the value —
    /// the single-pass shape of the §3 report algorithms (restamp the
    /// survivors in place, drop the invalidated). Dense entries are
    /// visited in ascending id order.
    pub fn retain_mut<F: FnMut(ItemId, &mut V) -> bool>(&mut self, mut keep: F) {
        match self {
            ItemTable::Dense {
                slots,
                occupied,
                len,
            } => {
                for (w, word) in occupied.iter_mut().enumerate() {
                    let mut bits = *word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let idx = w * 64 + b;
                        let v = slots[idx].as_mut().expect("occupancy bit set");
                        if !keep(idx as ItemId, v) {
                            slots[idx] = None;
                            *word &= !(1u64 << b);
                            *len -= 1;
                        }
                    }
                }
            }
            ItemTable::Hashed(m) => m.retain(|&item, v| keep(item, v)),
        }
    }

    /// Applies `f` to every entry mutably, in ascending id order for
    /// the dense layout. One pass, no id vector, no re-lookups.
    pub fn for_each_mut<F: FnMut(ItemId, &mut V)>(&mut self, mut f: F) {
        self.retain_mut(|item, v| {
            f(item, v);
            true
        });
    }

    /// Iterates entries. Ascending id order for the dense layout
    /// (walking the occupancy bitmap — O(occupied + universe/64), not
    /// O(universe)), arbitrary order for the hashed fallback.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &V)> {
        let (dense, hashed) = match self {
            ItemTable::Dense {
                slots, occupied, ..
            } => (Some((slots, occupied)), None),
            ItemTable::Hashed(m) => (None, Some(m)),
        };
        dense
            .into_iter()
            .flat_map(|(slots, occupied)| {
                occupied.iter().enumerate().flat_map(move |(w, &bits)| {
                    BitIter { bits }.map(move |b| {
                        let idx = w * 64 + b as usize;
                        (
                            idx as ItemId,
                            slots[idx].as_ref().expect("occupancy bit set"),
                        )
                    })
                })
            })
            .chain(
                hashed
                    .into_iter()
                    .flat_map(|m| m.iter().map(|(&item, v)| (item, v))),
            )
    }

    /// Iterates entries in ascending id order, whatever the layout. For
    /// the dense layout this is free; the hashed fallback sorts a
    /// temporary key vector.
    pub fn iter_sorted(&self) -> Box<dyn Iterator<Item = (ItemId, &V)> + '_> {
        match self {
            ItemTable::Dense { .. } => Box::new(self.iter()),
            ItemTable::Hashed(m) => {
                let mut keys: Vec<ItemId> = m.keys().copied().collect();
                keys.sort_unstable();
                Box::new(
                    keys.into_iter()
                        .map(move |k| (k, m.get(&k).expect("key just collected"))),
                )
            }
        }
    }

    /// All ids with an entry, ascending.
    pub fn sorted_ids(&self) -> Vec<ItemId> {
        self.iter_sorted().map(|(item, _)| item).collect()
    }

    /// Grows a dense table's universe to at least `universe` slots.
    /// No-op for the hashed fallback.
    pub fn reserve_universe(&mut self, universe: u64) {
        if let ItemTable::Dense {
            slots, occupied, ..
        } = self
        {
            if slots.len() < universe as usize {
                slots.resize_with(universe as usize, || None);
                occupied.resize(words_for(slots.len()), 0);
            }
        }
    }

    /// Replaces the table with an empty one of the same layout (and, for
    /// dense, the same universe), returning the old contents.
    pub fn take(&mut self) -> Self {
        match self {
            ItemTable::Dense { slots, .. } => {
                let fresh = ItemTable::dense(slots.len() as u64);
                std::mem::replace(self, fresh)
            }
            ItemTable::Hashed(_) => std::mem::take(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [ItemTable<u64>; 2] {
        [ItemTable::dense(8), ItemTable::hashed()]
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        for mut t in both() {
            assert!(t.is_empty());
            assert_eq!(t.insert(3, 30), None);
            assert_eq!(t.insert(3, 31), Some(30));
            assert_eq!(t.len(), 1);
            assert_eq!(t.get(3), Some(&31));
            assert!(t.contains(3));
            assert!(!t.contains(4));
            assert_eq!(t.remove(3), Some(31));
            assert_eq!(t.remove(3), None);
            assert!(t.is_empty());
        }
    }

    #[test]
    fn dense_grows_beyond_universe() {
        let mut t = ItemTable::dense(2);
        t.insert(100, 1);
        assert_eq!(t.get(100), Some(&1));
        assert_eq!(t.len(), 1);
        assert!(t.get(50).is_none());
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        for mut t in both() {
            *t.get_or_insert_with(5, || 10) += 1;
            *t.get_or_insert_with(5, || 999) += 1;
            assert_eq!(t.get(5), Some(&12));
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn iter_sorted_is_ascending_for_both_layouts() {
        for mut t in both() {
            for item in [7, 2, 5, 0] {
                t.insert(item, item * 10);
            }
            let got: Vec<(u64, u64)> = t.iter_sorted().map(|(i, &v)| (i, v)).collect();
            assert_eq!(got, vec![(0, 0), (2, 20), (5, 50), (7, 70)]);
            assert_eq!(t.sorted_ids(), vec![0, 2, 5, 7]);
        }
    }

    #[test]
    fn retain_and_clear() {
        for mut t in both() {
            for item in 0..6 {
                t.insert(item, item);
            }
            t.retain(|item, _| item % 2 == 0);
            assert_eq!(t.sorted_ids(), vec![0, 2, 4]);
            t.clear();
            assert!(t.is_empty());
            assert!(!t.contains(0));
        }
    }

    #[test]
    fn take_preserves_layout() {
        for mut t in both() {
            let dense = t.is_dense();
            t.insert(1, 1);
            let old = t.take();
            assert_eq!(old.len(), 1);
            assert!(t.is_empty());
            assert_eq!(t.is_dense(), dense);
        }
    }
}
