//! Asynchronous invalidation broadcast (§2, §3.2).
//!
//! "In asynchronous methods, the server broadcasts an invalidation
//! message for a given data item as soon as this item changes its
//! value." §3.2 then argues AT is *equivalent* to this scheme: "in both
//! cases, the total number of messages downloaded by the server is
//! identical; the AT simply groups them together in the periodic
//! invalidation ... Also, in both cases, the client loses his cache
//! entirely upon disconnection."
//!
//! [`AsyncBroadcaster`] implements the per-update broadcast and exposes
//! the message counts the equivalence test compares against AT.

use sw_sim::SimTime;

use crate::database::{ItemId, UpdateRecord};

/// One asynchronous invalidation on the air.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncInvalidation {
    /// The invalidated item.
    pub item: ItemId,
    /// When it was broadcast (same instant as the update).
    pub at: SimTime,
}

/// Broadcasts an invalidation message for every update, immediately.
#[derive(Debug, Clone, Default)]
pub struct AsyncBroadcaster {
    messages_sent: u64,
    ids_sent: Vec<ItemId>,
}

impl AsyncBroadcaster {
    /// Creates the broadcaster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles one update, emitting its invalidation message.
    pub fn on_update(&mut self, rec: &UpdateRecord) -> AsyncInvalidation {
        self.messages_sent += 1;
        self.ids_sent.push(rec.item);
        AsyncInvalidation {
            item: rec.item,
            at: rec.at,
        }
    }

    /// Total invalidation messages broadcast.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Every item id broadcast so far, in order (for the AT-equivalence
    /// test; *not* deduplicated — each update is its own message).
    pub fn ids_sent(&self) -> &[ItemId] {
        &self.ids_sent
    }

    /// Ids broadcast within `(from, to]` — what a client awake for that
    /// span would have heard. Requires the caller to pass the matching
    /// timestamps, so we store only ids; use [`Self::on_update`]'s
    /// return values if per-message times are needed.
    pub fn take_ids(&mut self) -> Vec<ItemId> {
        std::mem::take(&mut self.ids_sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(item: ItemId, at: f64) -> UpdateRecord {
        UpdateRecord {
            item,
            at: SimTime::from_secs(at),
            value: 1,
            previous: 0,
        }
    }

    #[test]
    fn one_message_per_update() {
        let mut b = AsyncBroadcaster::new();
        b.on_update(&upd(1, 1.0));
        b.on_update(&upd(1, 2.0));
        b.on_update(&upd(2, 3.0));
        assert_eq!(b.messages_sent(), 3);
        assert_eq!(b.ids_sent(), &[1, 1, 2]);
    }

    #[test]
    fn invalidation_carries_update_instant() {
        let mut b = AsyncBroadcaster::new();
        let inv = b.on_update(&upd(9, 4.5));
        assert_eq!(inv.at, SimTime::from_secs(4.5));
        assert_eq!(inv.item, 9);
    }

    #[test]
    fn take_ids_drains() {
        let mut b = AsyncBroadcaster::new();
        b.on_update(&upd(1, 1.0));
        assert_eq!(b.take_ids(), vec![1]);
        assert!(b.ids_sent().is_empty());
        assert_eq!(b.messages_sent(), 1);
    }
}
