//! The stateful-server baseline (§2).
//!
//! "The stateful server knows which units currently reside in its cell.
//! It also knows the states of their caches. If a particular data item
//! changes, and it is cached by a user U, then the server will send an
//! invalidation message ... to U. To maintain the server state, the
//! clients must inform the server when they come and go ... and when
//! they are about to disconnect."
//!
//! Disconnection therefore *loses the cache*: the server cannot reach a
//! sleeping client, so on reconnection the client must drop everything
//! and re-register. The idealized version of this server — invalidation
//! messages that are instantaneous and free — is the unattainable
//! strategy whose throughput defines `T_max` (§4.1); the simulated
//! version here charges real invalidation messages to the channel.

use std::collections::{HashMap, HashSet};

use crate::database::{ItemId, UpdateRecord};
use crate::table::ItemTable;

/// A client identifier within the cell.
pub type ClientId = u64;

/// The stateful server's registry of connected clients and their caches.
///
/// The per-update index (`watchers`) is an [`ItemTable`], dense when
/// the item universe is known; `caches` stays client-keyed (client ids
/// are few and the map is only walked on connect/disconnect, not per
/// update).
#[derive(Debug, Clone, Default)]
pub struct StatefulServer {
    /// item → clients caching it (the index used on update).
    watchers: ItemTable<HashSet<ClientId>>,
    /// client → items it caches (for O(cache) disconnect cleanup).
    caches: HashMap<ClientId, HashSet<ItemId>>,
    invalidations_sent: u64,
}

impl StatefulServer {
    /// Creates an empty registry (hashed watcher index).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry with a dense watcher index over items
    /// `0..universe` — no hashing on the per-update path.
    pub fn with_universe(universe: u64) -> Self {
        StatefulServer {
            watchers: ItemTable::dense(universe),
            ..Self::default()
        }
    }

    /// A client announces itself (entering the cell or reconnecting).
    /// Reconnection starts from an empty registered cache.
    pub fn connect(&mut self, client: ClientId) {
        self.caches.entry(client).or_default();
    }

    /// True if the client is currently registered.
    pub fn is_connected(&self, client: ClientId) -> bool {
        self.caches.contains_key(&client)
    }

    /// A client informs the server it now caches `item`.
    ///
    /// # Panics
    /// Panics if the client never connected — the protocol requires
    /// registration first.
    pub fn register_cache(&mut self, client: ClientId, item: ItemId) {
        let cache = self
            .caches
            .get_mut(&client)
            .expect("client must connect before registering cache entries");
        if cache.insert(item) {
            self.watchers
                .get_or_insert_with(item, HashSet::new)
                .insert(client);
        }
    }

    /// A client informs the server it dropped `item` from its cache.
    pub fn unregister_cache(&mut self, client: ClientId, item: ItemId) {
        if let Some(cache) = self.caches.get_mut(&client) {
            if cache.remove(&item) {
                if let Some(w) = self.watchers.get_mut(item) {
                    w.remove(&client);
                    if w.is_empty() {
                        self.watchers.remove(item);
                    }
                }
            }
        }
    }

    /// A client disconnects (or leaves the cell): all its registrations
    /// are dropped — "disconnection automatically implies loosing a
    /// cache" (§1).
    pub fn disconnect(&mut self, client: ClientId) {
        if let Some(items) = self.caches.remove(&client) {
            for item in items {
                if let Some(w) = self.watchers.get_mut(item) {
                    w.remove(&client);
                    if w.is_empty() {
                        self.watchers.remove(item);
                    }
                }
            }
        }
    }

    /// Handles one update: returns the connected clients that must be
    /// sent an invalidation message for the item, and counts the
    /// messages.
    pub fn on_update(&mut self, rec: &UpdateRecord) -> Vec<ClientId> {
        let recipients: Vec<ClientId> = self
            .watchers
            .get(rec.item)
            .map(|s| {
                let mut v: Vec<ClientId> = s.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default();
        self.invalidations_sent += recipients.len() as u64;
        // The server-side registration is dropped too: after the
        // invalidation the client no longer holds the item (it must
        // re-fetch and re-register).
        for c in &recipients {
            if let Some(cache) = self.caches.get_mut(c) {
                cache.remove(&rec.item);
            }
        }
        self.watchers.remove(rec.item);
        recipients
    }

    /// Total invalidation messages sent since construction.
    pub fn invalidations_sent(&self) -> u64 {
        self.invalidations_sent
    }

    /// Number of currently connected clients.
    pub fn connected_clients(&self) -> usize {
        self.caches.len()
    }

    /// Number of (client, item) registrations currently held.
    pub fn registrations(&self) -> usize {
        self.caches.values().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::SimTime;

    fn upd(item: ItemId) -> UpdateRecord {
        UpdateRecord {
            item,
            at: SimTime::from_secs(1.0),
            value: 1,
            previous: 0,
        }
    }

    #[test]
    fn update_notifies_exactly_the_watchers() {
        let mut s = StatefulServer::new();
        s.connect(1);
        s.connect(2);
        s.connect(3);
        s.register_cache(1, 7);
        s.register_cache(2, 7);
        s.register_cache(3, 8);
        let notified = s.on_update(&upd(7));
        assert_eq!(notified, vec![1, 2]);
        assert_eq!(s.invalidations_sent(), 2);
    }

    #[test]
    fn invalidation_drops_registration() {
        let mut s = StatefulServer::new();
        s.connect(1);
        s.register_cache(1, 7);
        s.on_update(&upd(7));
        // The second update to the same item notifies no one: client 1
        // no longer holds it.
        assert!(s.on_update(&upd(7)).is_empty());
    }

    #[test]
    fn disconnect_loses_cache() {
        let mut s = StatefulServer::new();
        s.connect(1);
        s.register_cache(1, 7);
        s.register_cache(1, 8);
        assert_eq!(s.registrations(), 2);
        s.disconnect(1);
        assert_eq!(s.registrations(), 0);
        assert!(!s.is_connected(1));
        assert!(s.on_update(&upd(7)).is_empty());
    }

    #[test]
    fn reconnect_starts_empty() {
        let mut s = StatefulServer::new();
        s.connect(1);
        s.register_cache(1, 7);
        s.disconnect(1);
        s.connect(1);
        assert!(s.is_connected(1));
        assert_eq!(s.registrations(), 0);
    }

    #[test]
    fn unregister_stops_notifications() {
        let mut s = StatefulServer::new();
        s.connect(1);
        s.register_cache(1, 7);
        s.unregister_cache(1, 7);
        assert!(s.on_update(&upd(7)).is_empty());
        assert_eq!(s.invalidations_sent(), 0);
    }

    #[test]
    #[should_panic(expected = "must connect")]
    fn register_without_connect_panics() {
        let mut s = StatefulServer::new();
        s.register_cache(1, 7);
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut s = StatefulServer::new();
        s.connect(1);
        s.register_cache(1, 7);
        s.register_cache(1, 7);
        assert_eq!(s.registrations(), 1);
        assert_eq!(s.on_update(&upd(7)), vec![1]);
        assert_eq!(s.invalidations_sent(), 1);
    }
}
