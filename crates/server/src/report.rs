//! Invalidation-report builders — the server half of each obligation.
//!
//! A [`ReportBuilder`] is invoked once per broadcast instant `T_i` after
//! the interval's updates have been applied, and produces the
//! [`FramePayload`] the MSS puts on the air:
//!
//! * [`TsBuilder`] — Broadcasting Timestamps (§3.1): all `(j, t_j)` with
//!   `T_i − w < t_j ≤ T_i`, `w = kL`;
//! * [`AtBuilder`] — Amnesic Terminals (§3.2): ids updated in
//!   `(T_{i−1}, T_i]`;
//! * [`SigBuilder`] — combined signatures (§3.3), maintained
//!   *incrementally*: each update XOR-patches the `m/(f+1)` expected
//!   combined signatures containing the item, so report construction is
//!   O(m) regardless of database size;
//! * [`NoReportBuilder`] — the no-caching baseline (no report; zero
//!   bits).

use std::sync::Arc;

use sw_signature::{item_signature, CombinedSignature, SigPlan, SubsetFamily, SyndromeDecoder};
use sw_sim::{SimDuration, SimTime};
use sw_wireless::FramePayload;

use crate::database::{Database, UpdateRecord};

/// Converts a [`SimTime`] to the integer-microsecond wire representation.
#[inline]
pub fn wire_micros(t: SimTime) -> u64 {
    (t.as_secs() * 1e6).round() as u64
}

/// The server half of an invalidation obligation.
pub trait ReportBuilder {
    /// Short human-readable strategy name ("TS", "AT", "SIG", "NC").
    fn name(&self) -> &'static str;

    /// Observes one applied update (needed by incremental builders;
    /// default is a no-op).
    fn on_update(&mut self, _rec: &UpdateRecord) {}

    /// Builds the report broadcast at `t_i` (the `i`-th broadcast,
    /// `i ≥ 1`), given the database state *as of* `t_i`.
    fn build(&mut self, i: u64, t_i: SimTime, db: &Database) -> FramePayload;
}

/// Broadcasting Timestamps (TS, §3.1).
///
/// "The server agrees to notify the clients about items that have
/// changed in the last w seconds ... the invalidation report is composed
/// of the timestamps of the latest change for these items."
#[derive(Debug, Clone)]
pub struct TsBuilder {
    window: SimDuration,
}

impl TsBuilder {
    /// Creates a TS builder with window `w = k·L`.
    ///
    /// # Panics
    /// Panics if `k == 0` (the paper requires `w ≥ L`).
    pub fn new(latency: SimDuration, k: u32) -> Self {
        assert!(k >= 1, "TS window multiple k must be at least 1 (w >= L)");
        TsBuilder {
            window: latency.scaled(k as f64),
        }
    }

    /// Creates a TS builder with an explicit window (used by tests; the
    /// adaptive variant lives in `sw-adaptive`).
    pub fn with_window(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "TS window must be positive");
        TsBuilder { window }
    }

    /// The window `w`.
    pub fn window(&self) -> SimDuration {
        self.window
    }
}

impl ReportBuilder for TsBuilder {
    fn name(&self) -> &'static str {
        "TS"
    }

    fn build(&mut self, _i: u64, t_i: SimTime, db: &Database) -> FramePayload {
        let from_secs = (t_i.as_secs() - self.window.as_secs()).max(0.0);
        let from = SimTime::from_secs(from_secs);
        let entries = db
            .updated_in_window(from, t_i)
            .into_iter()
            .map(|(item, at)| (item, wire_micros(at)))
            .collect();
        FramePayload::TimestampReport {
            report_ts_micros: wire_micros(t_i),
            entries,
        }
    }
}

/// Amnesic Terminals (AT, §3.2).
///
/// "The server has the obligation to inform about the identifiers of
/// the items that changed since the last invalidation report."
#[derive(Debug, Clone)]
pub struct AtBuilder {
    latency: SimDuration,
}

impl AtBuilder {
    /// Creates an AT builder for broadcast latency `L`.
    pub fn new(latency: SimDuration) -> Self {
        assert!(!latency.is_zero(), "latency must be positive");
        AtBuilder { latency }
    }
}

impl ReportBuilder for AtBuilder {
    fn name(&self) -> &'static str {
        "AT"
    }

    fn build(&mut self, i: u64, t_i: SimTime, db: &Database) -> FramePayload {
        debug_assert!(i >= 1);
        let from = SimTime::from_secs((t_i.as_secs() - self.latency.as_secs()).max(0.0));
        let ids = db
            .updated_in_window(from, t_i)
            .into_iter()
            .map(|(item, _)| item)
            .collect();
        FramePayload::AmnesicReport {
            report_ts_micros: wire_micros(t_i),
            ids,
        }
    }
}

/// Combined signatures (SIG, §3.3).
///
/// The server "computes the m combined signatures sig_1 … sig_m and
/// broadcasts them". We keep them materialized and XOR-patch on every
/// update. The vector lives behind an [`Arc`] so `build` shares it with
/// the broadcast payload (and every listening client) without copying;
/// the first patch of the next interval copies-on-write exactly once.
#[derive(Debug, Clone)]
pub struct SigBuilder {
    family: SubsetFamily,
    plan: SigPlan,
    sigs: Arc<Vec<CombinedSignature>>,
}

impl SigBuilder {
    /// Creates the builder, computing the initial signatures from the
    /// full database — O(n·m) membership tests, done once.
    pub fn new(plan: SigPlan, family: SubsetFamily, db: &Database) -> Self {
        assert_eq!(family.m(), plan.m, "family/plan m mismatch");
        let mut sigs = vec![0u64; plan.m as usize];
        for item in 0..db.len() {
            let s = item_signature(item, db.value(item), plan.g);
            for j in family.subsets_of(item) {
                sigs[j as usize] ^= s;
            }
        }
        SigBuilder {
            family,
            plan,
            sigs: Arc::new(sigs),
        }
    }

    /// The plan (shared with clients).
    pub fn plan(&self) -> &SigPlan {
        &self.plan
    }

    /// The subset family (shared with clients).
    pub fn family(&self) -> &SubsetFamily {
        &self.family
    }

    /// A decoder configured identically to this builder, for clients.
    pub fn decoder(&self) -> SyndromeDecoder {
        SyndromeDecoder::new(self.family, self.plan)
    }

    /// Current combined signatures (what the next report will carry).
    pub fn current(&self) -> &[CombinedSignature] {
        self.sigs.as_slice()
    }
}

impl ReportBuilder for SigBuilder {
    fn name(&self) -> &'static str {
        "SIG"
    }

    fn on_update(&mut self, rec: &UpdateRecord) {
        let old = item_signature(rec.item, rec.previous, self.plan.g);
        let new = item_signature(rec.item, rec.value, self.plan.g);
        let patch = old ^ new;
        // Copy-on-write: if the last broadcast payload still shares the
        // vector, this clones it once; further patches are in place.
        let sigs = Arc::make_mut(&mut self.sigs);
        for j in self.family.subsets_of(rec.item) {
            sigs[j as usize] ^= patch;
        }
    }

    fn build(&mut self, _i: u64, t_i: SimTime, _db: &Database) -> FramePayload {
        FramePayload::SignatureReport {
            report_ts_micros: wire_micros(t_i),
            sig_bits: self.plan.g,
            signatures: Arc::clone(&self.sigs),
        }
    }
}

/// The no-caching baseline: no report is broadcast (§4.2); every query
/// goes uplink. The builder emits an empty AT report, which costs zero
/// bits on the channel.
#[derive(Debug, Clone, Default)]
pub struct NoReportBuilder;

impl ReportBuilder for NoReportBuilder {
    fn name(&self) -> &'static str {
        "NC"
    }

    fn build(&mut self, _i: u64, t_i: SimTime, _db: &Database) -> FramePayload {
        FramePayload::AmnesicReport {
            report_ts_micros: wire_micros(t_i),
            ids: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_signature::combine;

    fn db() -> Database {
        Database::new(100, |i| i + 1000, SimDuration::from_secs(1e6))
    }

    #[test]
    fn ts_report_covers_window_w() {
        let mut d = db();
        d.apply_update(1, 1, SimTime::from_secs(5.0));
        d.apply_update(2, 2, SimTime::from_secs(55.0));
        d.apply_update(3, 3, SimTime::from_secs(95.0));
        // w = 5 L = 50 s, report at T = 100 s: covers (50, 100].
        let mut b = TsBuilder::new(SimDuration::from_secs(10.0), 5);
        match b.build(10, SimTime::from_secs(100.0), &d) {
            FramePayload::TimestampReport { entries, .. } => {
                let items: Vec<u64> = entries.iter().map(|&(i, _)| i).collect();
                assert_eq!(items, vec![2, 3]);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn ts_report_carries_latest_timestamps() {
        let mut d = db();
        d.apply_update(4, 1, SimTime::from_secs(12.0));
        d.apply_update(4, 2, SimTime::from_secs(17.0));
        let mut b = TsBuilder::new(SimDuration::from_secs(10.0), 10);
        match b.build(2, SimTime::from_secs(20.0), &d) {
            FramePayload::TimestampReport { entries, .. } => {
                assert_eq!(entries, vec![(4, 17_000_000)]);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn at_report_covers_one_interval() {
        let mut d = db();
        d.apply_update(1, 1, SimTime::from_secs(9.0)); // previous interval
        d.apply_update(2, 2, SimTime::from_secs(11.0));
        d.apply_update(3, 3, SimTime::from_secs(20.0)); // boundary: in
        let mut b = AtBuilder::new(SimDuration::from_secs(10.0));
        match b.build(2, SimTime::from_secs(20.0), &d) {
            FramePayload::AmnesicReport { ids, .. } => {
                assert_eq!(ids, vec![2, 3]);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn at_equals_ts_with_k1() {
        let mut d = db();
        d.apply_update(5, 1, SimTime::from_secs(12.0));
        d.apply_update(9, 1, SimTime::from_secs(19.0));
        let mut at = AtBuilder::new(SimDuration::from_secs(10.0));
        let mut ts = TsBuilder::new(SimDuration::from_secs(10.0), 1);
        let at_ids = match at.build(2, SimTime::from_secs(20.0), &d) {
            FramePayload::AmnesicReport { ids, .. } => ids,
            _ => unreachable!(),
        };
        let ts_ids: Vec<u64> = match ts.build(2, SimTime::from_secs(20.0), &d) {
            FramePayload::TimestampReport { entries, .. } => {
                entries.into_iter().map(|(i, _)| i).collect()
            }
            _ => unreachable!(),
        };
        assert_eq!(at_ids, ts_ids);
    }

    #[test]
    fn sig_builder_initial_matches_bruteforce() {
        let d = db();
        let plan = SigPlan::new(5, 16, d.len(), 0.05, SigPlan::DEFAULT_K);
        let family = SubsetFamily::new(77, plan.m, plan.f);
        let b = SigBuilder::new(plan, family, &d);
        // Brute-force a few subsets.
        for j in [0u32, 1, 7, plan.m - 1] {
            let expected = combine(
                family
                    .members(j, d.len())
                    .into_iter()
                    .map(|i| item_signature(i, d.value(i), plan.g)),
            );
            assert_eq!(b.current()[j as usize], expected, "subset {j}");
        }
    }

    #[test]
    fn sig_incremental_matches_recompute() {
        let mut d = db();
        let plan = SigPlan::new(5, 16, d.len(), 0.05, SigPlan::DEFAULT_K);
        let family = SubsetFamily::new(31, plan.m, plan.f);
        let mut b = SigBuilder::new(plan, family, &d);
        // Apply a bunch of updates through the hook.
        for (step, item) in [3u64, 50, 3, 99, 42].iter().enumerate() {
            let rec = d.apply_update(*item, 5_000 + step as u64, SimTime::from_secs(step as f64 + 1.0));
            b.on_update(&rec);
        }
        let fresh = SigBuilder::new(plan, family, &d);
        assert_eq!(b.current(), fresh.current());
    }

    #[test]
    fn sig_report_has_m_signatures() {
        let d = db();
        let plan = SigPlan::new(5, 16, d.len(), 0.05, SigPlan::DEFAULT_K);
        let family = SubsetFamily::new(1, plan.m, plan.f);
        let mut b = SigBuilder::new(plan, family, &d);
        match b.build(1, SimTime::from_secs(10.0), &d) {
            FramePayload::SignatureReport {
                signatures,
                sig_bits,
                ..
            } => {
                assert_eq!(signatures.len(), plan.m as usize);
                assert_eq!(sig_bits, 16);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn no_report_is_empty() {
        let d = db();
        let mut b = NoReportBuilder;
        match b.build(1, SimTime::from_secs(10.0), &d) {
            FramePayload::AmnesicReport { ids, .. } => assert!(ids.is_empty()),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn builder_names() {
        assert_eq!(TsBuilder::new(SimDuration::from_secs(1.0), 1).name(), "TS");
        assert_eq!(AtBuilder::new(SimDuration::from_secs(1.0)).name(), "AT");
        assert_eq!(NoReportBuilder.name(), "NC");
    }

    #[test]
    fn ts_window_clamps_at_origin() {
        // Report at T_1 = 10 with w = 1000: the window must clamp to
        // [0, 10] rather than panic on negative time.
        let mut d = db();
        d.apply_update(0, 1, SimTime::from_secs(5.0));
        let mut b = TsBuilder::new(SimDuration::from_secs(10.0), 100);
        match b.build(1, SimTime::from_secs(10.0), &d) {
            FramePayload::TimestampReport { entries, .. } => {
                assert_eq!(entries.len(), 1);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }
}
