//! Hybrid weighted reports — the §10 future-work extension.
//!
//! "The performance of signatures can be improved by considering the
//! weighted schemes where each data item would be weighted according to
//! the relative frequency it is accessed in a given cell, and according
//! to how often it is updated. For example, the 'hot spot' items can be
//! individually broadcasted, while the rest of the database items would
//! participate in the signatures. In this way, the signature will vary
//! from cell to cell, depending on the local usage patterns."
//!
//! [`HybridSigBuilder`] splits the database into a *hot set* (broadcast
//! AT-style: ids updated in the last interval) and the cold remainder
//! (covered by combined signatures that simply exclude hot members).
//! Hot items get AT's precision and tiny per-update cost; cold items
//! get SIG's nap-resilience at a fixed price.

use std::sync::Arc;

use sw_signature::{item_signature, CombinedSignature, SigPlan, SubsetFamily};
use sw_sim::{SimDuration, SimTime};
use sw_wireless::FramePayload;

use crate::database::{Database, ItemId, UpdateRecord};
use crate::report::{wire_micros, ReportBuilder};

/// The hot/cold split shared by server and clients.
///
/// Item ids are dense, so membership is a bitset probe — one shift and
/// mask on the per-update and per-cached-item hot paths — rather than a
/// hash lookup.
#[derive(Debug, Clone, Default)]
pub struct HotSet {
    bits: Vec<u64>,
    count: usize,
}

impl HotSet {
    /// Creates the hot set from an explicit id list.
    pub fn new(ids: impl IntoIterator<Item = ItemId>) -> Self {
        let mut set = HotSet::default();
        for item in ids {
            set.insert(item);
        }
        set
    }

    /// The `count` most popular items under the library's Zipf
    /// convention (rank = id, item 0 hottest).
    pub fn top_by_rank(count: u64) -> Self {
        HotSet::new(0..count)
    }

    fn insert(&mut self, item: ItemId) {
        let (word, bit) = (item as usize / 64, item % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        if self.bits[word] & (1 << bit) == 0 {
            self.bits[word] |= 1 << bit;
            self.count += 1;
        }
    }

    /// True iff `item` is in the hot set.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.bits
            .get(item as usize / 64)
            .is_some_and(|w| w & (1 << (item % 64)) != 0)
    }

    /// Number of hot items.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no items are hot (degenerates to plain SIG).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Server half of the hybrid scheme.
#[derive(Debug, Clone)]
pub struct HybridSigBuilder {
    latency: SimDuration,
    hot: HotSet,
    plan: SigPlan,
    family: SubsetFamily,
    sigs: Arc<Vec<CombinedSignature>>,
}

impl HybridSigBuilder {
    /// Creates the builder; the combined signatures are computed over
    /// the *cold* items only.
    pub fn new(
        latency: SimDuration,
        hot: HotSet,
        plan: SigPlan,
        family: SubsetFamily,
        db: &Database,
    ) -> Self {
        assert!(!latency.is_zero(), "latency must be positive");
        assert_eq!(family.m(), plan.m, "family/plan m mismatch");
        let mut sigs = vec![0u64; plan.m as usize];
        for item in 0..db.len() {
            if hot.contains(item) {
                continue;
            }
            let s = item_signature(item, db.value(item), plan.g);
            for j in family.subsets_of(item) {
                sigs[j as usize] ^= s;
            }
        }
        HybridSigBuilder {
            latency,
            hot,
            plan,
            family,
            sigs: Arc::new(sigs),
        }
    }

    /// The hot/cold split (shared with clients).
    pub fn hot_set(&self) -> &HotSet {
        &self.hot
    }

    /// The plan (shared with clients).
    pub fn plan(&self) -> &SigPlan {
        &self.plan
    }

    /// The subset family (shared with clients).
    pub fn family(&self) -> &SubsetFamily {
        &self.family
    }
}

impl ReportBuilder for HybridSigBuilder {
    fn name(&self) -> &'static str {
        "HYB"
    }

    fn on_update(&mut self, rec: &UpdateRecord) {
        if self.hot.contains(rec.item) {
            return; // hot items ride the id list, not the signatures
        }
        let patch = item_signature(rec.item, rec.previous, self.plan.g)
            ^ item_signature(rec.item, rec.value, self.plan.g);
        // Copy-on-write against the last broadcast payload, like
        // `SigBuilder::on_update`.
        let sigs = Arc::make_mut(&mut self.sigs);
        for j in self.family.subsets_of(rec.item) {
            sigs[j as usize] ^= patch;
        }
    }

    fn build(&mut self, _i: u64, t_i: SimTime, db: &Database) -> FramePayload {
        let from = SimTime::from_secs((t_i.as_secs() - self.latency.as_secs()).max(0.0));
        let hot_ids = db
            .updated_in_window(from, t_i)
            .into_iter()
            .map(|(item, _)| item)
            .filter(|&item| self.hot.contains(item))
            .collect();
        FramePayload::HybridReport {
            report_ts_micros: wire_micros(t_i),
            hot_ids,
            sig_bits: self.plan.g,
            signatures: Arc::clone(&self.sigs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_signature::combine;

    fn db() -> Database {
        Database::new(200, |i| i + 77, SimDuration::from_secs(1e5))
    }

    fn builder(db: &Database, hot_count: u64) -> HybridSigBuilder {
        let plan = SigPlan::new(5, 16, db.len(), 0.05, SigPlan::DEFAULT_K);
        let family = SubsetFamily::new(0x1234, plan.m, plan.f);
        HybridSigBuilder::new(
            SimDuration::from_secs(10.0),
            HotSet::top_by_rank(hot_count),
            plan,
            family,
            db,
        )
    }

    fn parts(p: FramePayload) -> (Vec<u64>, Vec<u64>) {
        match p {
            FramePayload::HybridReport {
                hot_ids,
                signatures,
                ..
            } => (hot_ids, signatures.to_vec()),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn hot_updates_ride_the_id_list() {
        let mut d = db();
        d.apply_update(3, 1, SimTime::from_secs(15.0)); // hot
        d.apply_update(150, 2, SimTime::from_secs(16.0)); // cold
        let mut b = builder(&d, 10);
        let (hot_ids, _) = parts(b.build(2, SimTime::from_secs(20.0), &d));
        assert_eq!(hot_ids, vec![3], "only the hot update is listed");
    }

    #[test]
    fn cold_updates_patch_the_signatures() {
        let mut d = db();
        let b_before = builder(&d, 10);
        let rec = d.apply_update(150, 999, SimTime::from_secs(5.0));
        let mut b = builder(&db(), 10);
        b.on_update(&rec);
        let fresh = builder(&d, 10);
        assert_eq!(b.sigs, fresh.sigs, "incremental patch = recompute");
        assert_ne!(b.sigs, b_before.sigs, "the cold update changed something");
    }

    #[test]
    fn hot_updates_do_not_touch_signatures() {
        let d = db();
        let mut b = builder(&d, 10);
        b.on_update(&UpdateRecord {
            item: 3,
            at: SimTime::from_secs(1.0),
            value: 42,
            previous: 80,
        });
        // A fresh builder over the unchanged database must agree: the
        // hot update never reached the signature vector.
        assert_eq!(b.sigs, builder(&d, 10).sigs);
    }

    #[test]
    fn signatures_exclude_hot_members() {
        // Brute-force one subset: only cold members contribute.
        let d = db();
        let b = builder(&d, 10);
        for j in [0u32, 3] {
            let expected = combine(
                b.family()
                    .members(j, d.len())
                    .into_iter()
                    .filter(|&i| i >= 10)
                    .map(|i| item_signature(i, d.value(i), 16)),
            );
            assert_eq!(b.sigs[j as usize], expected, "subset {j}");
        }
    }

    #[test]
    fn empty_hot_set_degenerates_to_sig() {
        let d = db();
        let hybrid = builder(&d, 0);
        let plan = SigPlan::new(5, 16, d.len(), 0.05, SigPlan::DEFAULT_K);
        let family = SubsetFamily::new(0x1234, plan.m, plan.f);
        let sig = crate::report::SigBuilder::new(plan, family, &d);
        assert_eq!(hybrid.sigs.as_slice(), sig.current());
    }
}
