//! The server's database: named items, values, and update history.
//!
//! Items are identified by dense ids `0..n` ([`ItemId`]). Every item
//! carries the timestamp of its last update, and the database maintains
//! an [`UpdateLog`] — a pruned, time-ordered log of recent updates — from
//! which the report builders extract their windows:
//!
//! * TS needs `{j : T_i − w < t_j ≤ T_i}` (Eq. 1),
//! * AT needs `{j : T_{i−1} < t_j ≤ T_i}` (Eq. 2).

use std::collections::VecDeque;

use sw_sim::{SimDuration, SimTime};

/// Dense item identifier, `0..n`.
pub type ItemId = u64;

/// One update event: which item changed, when, and to what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateRecord {
    /// Updated item.
    pub item: ItemId,
    /// Server-clock timestamp of the update.
    pub at: SimTime,
    /// The new value.
    pub value: u64,
    /// The value it replaced.
    pub previous: u64,
}

/// Time-ordered log of recent updates, pruned to a retention horizon.
///
/// Retention must cover the largest window any report builder uses
/// (`w = kL` for TS, or the largest per-item window under adaptive TS).
#[derive(Debug, Clone)]
pub struct UpdateLog {
    entries: VecDeque<UpdateRecord>,
    retention: SimDuration,
}

impl UpdateLog {
    /// Creates a log that retains updates for at least `retention`.
    pub fn new(retention: SimDuration) -> Self {
        UpdateLog {
            entries: VecDeque::new(),
            retention,
        }
    }

    /// The retention horizon.
    pub fn retention(&self) -> SimDuration {
        self.retention
    }

    /// Widens the retention horizon (e.g. when an adaptive window
    /// grows). Never shrinks, so already-pruned history is not implied
    /// to exist.
    pub fn widen_retention(&mut self, retention: SimDuration) {
        if retention > self.retention {
            self.retention = retention;
        }
    }

    /// Appends an update; must be called in non-decreasing time order.
    pub fn push(&mut self, rec: UpdateRecord) {
        if let Some(last) = self.entries.back() {
            assert!(
                rec.at >= last.at,
                "update log must be fed in time order: {:?} after {:?}",
                rec.at,
                last.at
            );
        }
        self.entries.push_back(rec);
    }

    /// Drops entries older than `now − retention`.
    pub fn prune(&mut self, now: SimTime) {
        let cutoff = now.saturating_duration_since(SimTime::ZERO);
        if cutoff < self.retention {
            return;
        }
        let horizon = SimTime::from_secs(now.as_secs() - self.retention.as_secs());
        while let Some(front) = self.entries.front() {
            if front.at <= horizon {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }

    /// All updates with `from < t ≤ to`, oldest first.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &UpdateRecord> {
        self.entries
            .iter()
            .filter(move |r| r.at > from && r.at <= to)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The replicated database at one server.
///
/// Values are opaque `u64`s; the timestamp vector gives each item's last
/// update time (`SimTime::ZERO` meaning "never updated since the time
/// origin", which is how the paper treats items unchanged since time 0).
#[derive(Debug, Clone)]
pub struct Database {
    values: Vec<u64>,
    updated_at: Vec<SimTime>,
    log: UpdateLog,
    update_count: u64,
}

impl Database {
    /// Creates a database of `n` items with the given initial values
    /// (all timestamps at the origin). `initial(i)` supplies item `i`'s
    /// starting value.
    pub fn new<F: FnMut(ItemId) -> u64>(n: u64, mut initial: F, retention: SimDuration) -> Self {
        Database {
            values: (0..n).map(&mut initial).collect(),
            updated_at: vec![SimTime::ZERO; n as usize],
            log: UpdateLog::new(retention),
            update_count: 0,
        }
    }

    /// Number of items `n`.
    pub fn len(&self) -> u64 {
        self.values.len() as u64
    }

    /// True for an empty database (not useful, but keeps clippy honest).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current value of `item`.
    #[inline]
    pub fn value(&self, item: ItemId) -> u64 {
        self.values[item as usize]
    }

    /// Timestamp of `item`'s last update.
    #[inline]
    pub fn updated_at(&self, item: ItemId) -> SimTime {
        self.updated_at[item as usize]
    }

    /// Total updates applied since construction.
    pub fn update_count(&self) -> u64 {
        self.update_count
    }

    /// The update log (for report builders).
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// Widens the log's retention (adaptive windows).
    pub fn widen_log_retention(&mut self, retention: SimDuration) {
        self.log.widen_retention(retention);
    }

    /// Applies an update at time `at`, returning the record.
    ///
    /// # Panics
    /// Panics if `item` is out of range or `at` precedes the item's
    /// current timestamp (updates arrive in server-clock order).
    pub fn apply_update(&mut self, item: ItemId, value: u64, at: SimTime) -> UpdateRecord {
        let idx = item as usize;
        assert!(idx < self.values.len(), "item {item} out of range");
        assert!(
            at >= self.updated_at[idx],
            "update at {at:?} precedes item {item}'s last update {:?}",
            self.updated_at[idx]
        );
        let rec = UpdateRecord {
            item,
            at,
            value,
            previous: self.values[idx],
        };
        self.values[idx] = value;
        self.updated_at[idx] = at;
        self.update_count += 1;
        self.log.push(rec);
        rec
    }

    /// Prunes the update log to its retention horizon.
    pub fn prune_log(&mut self, now: SimTime) {
        self.log.prune(now);
    }

    /// Items updated in `(from, to]` with their *latest* update time in
    /// that window, deduplicated, in item order of last occurrence.
    ///
    /// This is exactly the TS list `U_i` of Eq. 1 when called with
    /// `(T_i − w, T_i]`, and the AT list of Eq. 2 with `(T_{i−1}, T_i]`.
    pub fn updated_in_window(&self, from: SimTime, to: SimTime) -> Vec<(ItemId, SimTime)> {
        let mut hits: Vec<(ItemId, SimTime)> =
            self.log.window(from, to).map(|r| (r.item, r.at)).collect();
        // The log is time-ordered, so a stable sort by item keeps each
        // item's records in time order: the last duplicate is the
        // latest update in the window.
        hits.sort_by_key(|&(item, _)| item);
        let mut out: Vec<(ItemId, SimTime)> = Vec::with_capacity(hits.len());
        for (item, at) in hits {
            match out.last_mut() {
                Some((last_item, last_at)) if *last_item == item => *last_at = at,
                _ => out.push((item, at)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(n: u64) -> Database {
        Database::new(n, |i| i * 10, SimDuration::from_secs(1000.0))
    }

    #[test]
    fn initial_values_and_timestamps() {
        let d = db(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.value(3), 30);
        assert_eq!(d.updated_at(3), SimTime::ZERO);
        assert_eq!(d.update_count(), 0);
    }

    #[test]
    fn update_changes_value_and_timestamp() {
        let mut d = db(5);
        let rec = d.apply_update(2, 999, SimTime::from_secs(4.0));
        assert_eq!(rec.previous, 20);
        assert_eq!(d.value(2), 999);
        assert_eq!(d.updated_at(2), SimTime::from_secs(4.0));
        assert_eq!(d.update_count(), 1);
    }

    #[test]
    fn window_extraction_matches_eq1() {
        let mut d = db(10);
        d.apply_update(1, 100, SimTime::from_secs(1.0));
        d.apply_update(2, 200, SimTime::from_secs(5.0));
        d.apply_update(3, 300, SimTime::from_secs(10.0)); // on boundary: included
        d.apply_update(4, 400, SimTime::from_secs(10.5)); // beyond: excluded
        let w = d.updated_in_window(SimTime::from_secs(1.0), SimTime::from_secs(10.0));
        // from is exclusive: item 1 at t=1.0 excluded.
        assert_eq!(
            w,
            vec![
                (2, SimTime::from_secs(5.0)),
                (3, SimTime::from_secs(10.0))
            ]
        );
    }

    #[test]
    fn repeated_updates_deduplicate_to_latest() {
        let mut d = db(10);
        d.apply_update(7, 1, SimTime::from_secs(1.0));
        d.apply_update(7, 2, SimTime::from_secs(2.0));
        d.apply_update(7, 3, SimTime::from_secs(3.0));
        let w = d.updated_in_window(SimTime::ZERO, SimTime::from_secs(10.0));
        assert_eq!(w, vec![(7, SimTime::from_secs(3.0))]);
    }

    #[test]
    fn log_prunes_old_entries() {
        let mut d = Database::new(4, |_| 0, SimDuration::from_secs(10.0));
        d.apply_update(0, 1, SimTime::from_secs(1.0));
        d.apply_update(1, 1, SimTime::from_secs(5.0));
        d.apply_update(2, 1, SimTime::from_secs(50.0));
        d.prune_log(SimTime::from_secs(55.0));
        assert_eq!(d.log().len(), 1);
        // Pruned history no longer appears in windows.
        let w = d.updated_in_window(SimTime::ZERO, SimTime::from_secs(100.0));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, 2);
    }

    #[test]
    fn prune_before_retention_keeps_everything() {
        let mut d = Database::new(4, |_| 0, SimDuration::from_secs(100.0));
        d.apply_update(0, 1, SimTime::from_secs(1.0));
        d.prune_log(SimTime::from_secs(50.0));
        assert_eq!(d.log().len(), 1);
    }

    #[test]
    fn widen_retention_never_shrinks() {
        let mut log = UpdateLog::new(SimDuration::from_secs(100.0));
        log.widen_retention(SimDuration::from_secs(50.0));
        assert_eq!(log.retention().as_secs(), 100.0);
        log.widen_retention(SimDuration::from_secs(500.0));
        assert_eq!(log.retention().as_secs(), 500.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_log_rejected() {
        let mut log = UpdateLog::new(SimDuration::from_secs(10.0));
        log.push(UpdateRecord {
            item: 0,
            at: SimTime::from_secs(5.0),
            value: 1,
            previous: 0,
        });
        log.push(UpdateRecord {
            item: 1,
            at: SimTime::from_secs(4.0),
            value: 1,
            previous: 0,
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_rejected() {
        let mut d = db(3);
        d.apply_update(3, 0, SimTime::from_secs(1.0));
    }

    #[test]
    fn empty_window_is_empty() {
        let d = db(3);
        assert!(d
            .updated_in_window(SimTime::ZERO, SimTime::from_secs(100.0))
            .is_empty());
    }
}
