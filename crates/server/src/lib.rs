//! # sw-server — the stationary data server (MSS side)
//!
//! Implements everything that runs at the Mobile Support Station:
//!
//! * [`database`] — the collection of named items, each with a value and
//!   the timestamp of its last update (§2: "A database is a collection
//!   of named data items ... data are being updated at the servers");
//! * [`update`] — the update process: per-item exponential updates at
//!   rate μ, realized as the superposed Poisson process at rate `n·μ`
//!   (§4 model assumptions);
//! * [`report`] — the report builders that fulfill each obligation:
//!   [`report::TsBuilder`] (§3.1), [`report::AtBuilder`] (§3.2),
//!   [`report::SigBuilder`] (§3.3), plus the windowless
//!   [`report::NoReportBuilder`] for the no-caching baseline;
//! * [`async_bcast`] — the asynchronous per-update invalidation
//!   broadcast that §3.2 proves equivalent to AT;
//! * [`stateful`] — the stateful-server baseline of §2, which tracks
//!   every client's cache contents and sends directed invalidation
//!   messages (the strategy whose idealized, zero-cost version defines
//!   `T_max`);
//! * [`uplink`] — query answering, including the piggybacked local-hit
//!   history that §8's adaptive Method 1 consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_bcast;
pub mod database;
pub mod group;
pub mod hybrid;
pub mod report;
pub mod stateful;
pub mod table;
pub mod update;
pub mod uplink;

pub use async_bcast::AsyncBroadcaster;
pub use database::{Database, ItemId, UpdateLog, UpdateRecord};
pub use group::{GroupMap, GroupReportBuilder};
pub use hybrid::{HotSet, HybridSigBuilder};
pub use report::{AtBuilder, NoReportBuilder, ReportBuilder, SigBuilder, TsBuilder};
pub use stateful::StatefulServer;
pub use table::ItemTable;
pub use update::UpdateEngine;
pub use uplink::{PiggybackInfo, QueryAnswer, UplinkProcessor};
