//! Aggregate (compressed) invalidation reports — the second §10
//! extension, foreshadowed by §2's report taxonomy.
//!
//! §2: "Compressed. The reports contain aggregate information about
//! subsets of items. For example, a compressed report may contain
//! aggregate information about changes by using predicates such as
//! 'There was a change on departure time in one or more of the
//! eastbound flights.'" §10: "Aggregate invalidation reports can be
//! considered, with varying granularity of … items (changes reported
//! only per group of items)."
//!
//! [`GroupReportBuilder`] partitions the database into `G` contiguous
//! groups and broadcasts, AT-style, the ids of groups containing at
//! least one change in the last interval. A group id costs `⌈log₂ G⌉`
//! bits instead of `⌈log₂ n⌉` per item — and one entry can cover any
//! number of same-group changes — at the price of *group-level false
//! alarms*: a client drops every cached member of a changed group.
//! Coarser groups ⇒ smaller reports ⇒ more collateral invalidation;
//! the `ablations` experiment sweeps the trade-off.

use sw_sim::{SimDuration, SimTime};
use sw_wireless::FramePayload;

use crate::database::{Database, ItemId, UpdateRecord};
use crate::report::{wire_micros, ReportBuilder};

/// The item → group mapping shared by server and clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupMap {
    n_items: u64,
    groups: u64,
}

impl GroupMap {
    /// Partitions `n_items` into `groups` contiguous, near-equal
    /// groups.
    pub fn new(n_items: u64, groups: u64) -> Self {
        assert!(n_items > 0, "database cannot be empty");
        assert!(
            groups >= 1 && groups <= n_items,
            "group count must be in 1..=n ({n_items}), got {groups}"
        );
        GroupMap { n_items, groups }
    }

    /// Number of groups `G`.
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// Database size `n`.
    pub fn n_items(&self) -> u64 {
        self.n_items
    }

    /// The group of `item`.
    #[inline]
    pub fn group_of(&self, item: ItemId) -> u64 {
        debug_assert!(item < self.n_items);
        item * self.groups / self.n_items
    }

    /// Items per group, on average.
    pub fn mean_group_size(&self) -> f64 {
        self.n_items as f64 / self.groups as f64
    }

    /// Bits to name one group: `⌈log₂ G⌉`.
    pub fn group_id_bits(&self) -> u32 {
        if self.groups <= 1 {
            1
        } else {
            64 - (self.groups - 1).leading_zeros()
        }
    }
}

/// Server half: an AT report at group granularity. The payload reuses
/// [`FramePayload::AmnesicReport`] with *group* ids; the analytic bits
/// are adjusted to the group id width by scaling the entry count (the
/// channel charges `entries·⌈log₂n⌉`, so we emit
/// `⌈entries·log₂G/log₂n⌉` placeholder-packed ids — see
/// [`GroupReportBuilder::build`] for the exact accounting).
#[derive(Debug, Clone)]
pub struct GroupReportBuilder {
    latency: SimDuration,
    map: GroupMap,
}

impl GroupReportBuilder {
    /// Creates the builder.
    pub fn new(latency: SimDuration, map: GroupMap) -> Self {
        assert!(!latency.is_zero(), "latency must be positive");
        GroupReportBuilder { latency, map }
    }

    /// The shared group map.
    pub fn map(&self) -> &GroupMap {
        &self.map
    }

    /// The changed groups in `(t_i − L, t_i]`, sorted.
    pub fn changed_groups(&self, t_i: SimTime, db: &Database) -> Vec<u64> {
        let from = SimTime::from_secs((t_i.as_secs() - self.latency.as_secs()).max(0.0));
        let mut groups: Vec<u64> = db
            .updated_in_window(from, t_i)
            .into_iter()
            .map(|(item, _)| self.map.group_of(item))
            .collect();
        groups.sort_unstable();
        groups.dedup();
        groups
    }
}

impl ReportBuilder for GroupReportBuilder {
    fn name(&self) -> &'static str {
        "GR"
    }

    fn on_update(&mut self, _rec: &UpdateRecord) {}

    fn build(&mut self, _i: u64, t_i: SimTime, db: &Database) -> FramePayload {
        // Group ids ride an AmnesicReport frame. The wire encoder
        // charges ⌈log₂ n⌉ bits per id; group ids only need
        // ⌈log₂ G⌉. Rather than add a frame variant for an experiment
        // the paper only sketches, we bias the id values: the *client*
        // interprets every id < G as a group id, and the analytic
        // over-charge (log₂n vs log₂G per entry) is conservative
        // against the strategy — the measured savings in the ablation
        // are therefore a lower bound.
        FramePayload::AmnesicReport {
            report_ts_micros: wire_micros(t_i),
            ids: self.changed_groups(t_i, db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_map_partitions_evenly() {
        let m = GroupMap::new(100, 10);
        assert_eq!(m.group_of(0), 0);
        assert_eq!(m.group_of(9), 0);
        assert_eq!(m.group_of(10), 1);
        assert_eq!(m.group_of(99), 9);
        assert_eq!(m.mean_group_size(), 10.0);
    }

    #[test]
    fn group_map_handles_uneven_sizes() {
        let m = GroupMap::new(10, 3);
        let mut counts = [0u32; 3];
        for i in 0..10 {
            counts[m.group_of(i) as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<u32>(), 10);
        assert!(counts.iter().all(|&c| (3..=4).contains(&c)));
    }

    #[test]
    fn one_group_per_item_degenerates_to_at() {
        let m = GroupMap::new(50, 50);
        for i in 0..50 {
            assert_eq!(m.group_of(i), i);
        }
    }

    #[test]
    fn group_id_bits() {
        assert_eq!(GroupMap::new(1000, 10).group_id_bits(), 4);
        assert_eq!(GroupMap::new(1000, 1000).group_id_bits(), 10);
        assert_eq!(GroupMap::new(1000, 1).group_id_bits(), 1);
    }

    #[test]
    fn report_lists_changed_groups_once() {
        let mut db = Database::new(100, |i| i, SimDuration::from_secs(1e4));
        db.apply_update(3, 1, SimTime::from_secs(15.0)); // group 0
        db.apply_update(7, 1, SimTime::from_secs(16.0)); // group 0 too
        db.apply_update(55, 1, SimTime::from_secs(17.0)); // group 5
        let mut b = GroupReportBuilder::new(
            SimDuration::from_secs(10.0),
            GroupMap::new(100, 10),
        );
        match b.build(2, SimTime::from_secs(20.0), &db) {
            FramePayload::AmnesicReport { ids, .. } => assert_eq!(ids, vec![0, 5]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn old_updates_not_reported() {
        let mut db = Database::new(100, |i| i, SimDuration::from_secs(1e4));
        db.apply_update(3, 1, SimTime::from_secs(5.0)); // previous interval
        let mut b = GroupReportBuilder::new(
            SimDuration::from_secs(10.0),
            GroupMap::new(100, 10),
        );
        match b.build(2, SimTime::from_secs(20.0), &db) {
            FramePayload::AmnesicReport { ids, .. } => assert!(ids.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "group count")]
    fn too_many_groups_rejected() {
        let _ = GroupMap::new(10, 11);
    }
}
