//! Effectiveness `e = T/T_max` (Eq. 10) and the figure sweeps.
//!
//! "To 'normalize' the throughput of each one of the techniques, and to
//! be able to fairly compare the effectiveness of each one of them, we
//! define the effectiveness of a strategy as e = T/T_max where T_max is
//! the throughput given by an unattainable strategy in which the caches
//! are invalidated instantaneously, and without incurring any cost."

use serde::{Deserialize, Serialize};
use sw_workload::{ScenarioParams, SweepAxis};

use crate::throughput::Throughputs;

/// Effectiveness of every strategy at one parameter point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EffectivenessPoint {
    /// The swept parameter value (s for Figs. 3–6, μ for Figs. 7–8).
    pub x: f64,
    /// `e_TS`; `None` when the TS report exceeds `L·W` (Scenarios 3/4).
    pub e_ts: Option<f64>,
    /// `e_AT`.
    pub e_at: Option<f64>,
    /// `e_SIG`.
    pub e_sig: Option<f64>,
    /// `e_nc` — the no-caching baseline.
    pub e_nc: f64,
}

impl EffectivenessPoint {
    /// The best usable strategy at this point, by effectiveness.
    pub fn winner(&self) -> (&'static str, f64) {
        let mut best = ("NC", self.e_nc);
        for (name, e) in [("TS", self.e_ts), ("AT", self.e_at), ("SIG", self.e_sig)] {
            if let Some(e) = e {
                if e > best.1 {
                    best = (name, e);
                }
            }
        }
        best
    }
}

/// Computes every strategy's effectiveness at `params`.
pub fn effectiveness_at(params: &ScenarioParams, x: f64) -> EffectivenessPoint {
    let t = Throughputs::compute(params);
    let norm = |v: Option<f64>| v.map(|v| (v / t.t_max).min(1.0));
    EffectivenessPoint {
        x,
        e_ts: norm(t.t_ts),
        e_at: norm(t.t_at),
        e_sig: norm(t.t_sig),
        e_nc: (t.t_nc / t.t_max).min(1.0),
    }
}

/// One strategy's series over a sweep (for plotting / printing).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyCurve {
    /// Strategy name.
    pub name: String,
    /// `(x, e)` points; unusable points are skipped.
    pub points: Vec<(f64, f64)>,
}

/// A full figure: the sweep axis and all four curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sweep {
    /// Figure identifier (e.g. "Figure 3 / Scenario 1").
    pub title: String,
    /// Evaluated points.
    pub points: Vec<EffectivenessPoint>,
}

impl Sweep {
    /// Runs a sweep of `axis` over `base`.
    pub fn run(title: impl Into<String>, base: ScenarioParams, axis: SweepAxis) -> Self {
        let points = axis
            .points()
            .into_iter()
            .map(|x| effectiveness_at(&axis.apply(base, x), x))
            .collect();
        Sweep {
            title: title.into(),
            points,
        }
    }

    /// Extracts the per-strategy curves.
    pub fn curves(&self) -> Vec<StrategyCurve> {
        let mut ts = Vec::new();
        let mut at = Vec::new();
        let mut sig = Vec::new();
        let mut nc = Vec::new();
        for p in &self.points {
            if let Some(e) = p.e_ts {
                ts.push((p.x, e));
            }
            if let Some(e) = p.e_at {
                at.push((p.x, e));
            }
            if let Some(e) = p.e_sig {
                sig.push((p.x, e));
            }
            nc.push((p.x, p.e_nc));
        }
        vec![
            StrategyCurve {
                name: "TS".into(),
                points: ts,
            },
            StrategyCurve {
                name: "AT".into(),
                points: at,
            },
            StrategyCurve {
                name: "SIG".into(),
                points: sig,
            },
            StrategyCurve {
                name: "NC".into(),
                points: nc,
            },
        ]
    }

    /// Finds the crossover `x` past which `a` stops beating `b`
    /// (first point where `e_a < e_b`), if any.
    pub fn crossover(&self, a: &str, b: &str) -> Option<f64> {
        let get = |p: &EffectivenessPoint, name: &str| -> Option<f64> {
            match name {
                "TS" => p.e_ts,
                "AT" => p.e_at,
                "SIG" => p.e_sig,
                "NC" => Some(p.e_nc),
                other => panic!("unknown strategy {other}"),
            }
        };
        for p in &self.points {
            if let (Some(ea), Some(eb)) = (get(p, a), get(p, b)) {
                if ea < eb {
                    return Some(p.x);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effectiveness_is_bounded() {
        for (fig, _, base) in ScenarioParams::all_scenarios() {
            let axis = if fig <= 6 {
                SweepAxis::sleep_default()
            } else {
                SweepAxis::update_default()
            };
            let sweep = Sweep::run("t", base, axis);
            for p in &sweep.points {
                for e in [p.e_ts, p.e_at, p.e_sig, Some(p.e_nc)].into_iter().flatten() {
                    assert!((0.0..=1.0).contains(&e), "e = {e} out of range (fig {fig})");
                }
            }
        }
    }

    #[test]
    fn figure3_sig_dominates_for_sleepers() {
        // §6 Scenario 1 claims SIG is best "during the entire range of
        // s"; §5's own asymptotic analysis, however, proves AT wins at
        // s → 0 ("the best throughput will be exhibited by AT, since its
        // report will be the shortest one"). We assert the §5-consistent
        // shape: SIG dominates once the units sleep at all (s ≥ 0.1),
        // and AT's s = 0 edge over SIG is small (< 15%). EXPERIMENTS.md
        // records this reconciliation.
        let sweep = Sweep::run(
            "fig3",
            ScenarioParams::scenario1(),
            SweepAxis::sleep_default(),
        );
        for p in &sweep.points {
            if p.x < 0.1 || p.x >= 1.0 {
                continue;
            }
            let sig = p.e_sig.unwrap();
            if let Some(ts) = p.e_ts {
                assert!(sig >= ts - 1e-9, "SIG {sig} < TS {ts} at s={}", p.x);
            }
            if let Some(at) = p.e_at {
                assert!(sig >= at - 1e-9, "SIG {sig} < AT {at} at s={}", p.x);
            }
        }
        let p0 = &sweep.points[0];
        let (sig0, at0) = (p0.e_sig.unwrap(), p0.e_at.unwrap());
        assert!(at0 >= sig0, "§5: AT wins for workaholics");
        assert!(sig0 > at0 * 0.85, "SIG should lag AT only slightly at s=0");
    }

    #[test]
    fn figure3_at_collapses_as_s_grows() {
        // §6: "The effectiveness of AT goes rapidly to 0 as s grows."
        let sweep = Sweep::run(
            "fig3",
            ScenarioParams::scenario1(),
            SweepAxis::sleep_default(),
        );
        let at0 = sweep.points[0].e_at.unwrap();
        let at_half = sweep.points[10].e_at.unwrap(); // s = 0.5
        assert!(
            at_half < at0 * 0.1,
            "AT at s=0.5 ({at_half}) should be <10% of s=0 ({at0})"
        );
    }

    #[test]
    fn figure3_nc_is_negligible() {
        // §6: "the effectiveness of the no-caching strategy remains very
        // close to 0 for the entire interval."
        let sweep = Sweep::run(
            "fig3",
            ScenarioParams::scenario1(),
            SweepAxis::sleep_default(),
        );
        for p in &sweep.points {
            assert!(p.e_nc < 0.01, "e_nc = {} at s = {}", p.e_nc, p.x);
        }
    }

    #[test]
    fn figure5_at_dominates_sig_then_nc_wins() {
        // §6 Scenario 3: "AT dominates SIG for the entire range.
        // However, at some point (s = 0.8) the no-caching strategy
        // becomes more advantageous."
        let sweep = Sweep::run(
            "fig5",
            ScenarioParams::scenario3(),
            SweepAxis::sleep_default(),
        );
        for p in &sweep.points {
            let (at, sig) = (p.e_at.unwrap(), p.e_sig.unwrap());
            assert!(at >= sig - 1e-9, "AT {at} < SIG {sig} at s = {}", p.x);
        }
        let crossover = sweep.crossover("AT", "NC").expect("NC must win eventually");
        assert!(
            (0.5..=1.0).contains(&crossover),
            "AT/NC crossover at s = {crossover}, paper reports ≈ 0.8"
        );
    }

    #[test]
    fn figure5_effectiveness_stays_high() {
        // §6: "the values of efficiency remain relatively high, even for
        // s = 1 ... AT can achieve up to 40% of the maximum throughput."
        let p = effectiveness_at(&ScenarioParams::scenario3().with_s(0.0), 0.0);
        assert!(
            p.e_at.unwrap() > 0.4,
            "AT effectiveness {:?} should exceed 40% in Scenario 3",
            p.e_at
        );
    }

    #[test]
    fn figure7_at_beats_ts_for_workaholics() {
        // §6 Scenario 5: "We see AT overperforming TS in the entire
        // range. The TS technique degrades rapidly with the increase on
        // the update rate. SIG ... behaves marginally worse than AT."
        let sweep = Sweep::run(
            "fig7",
            ScenarioParams::scenario5().with_s(0.0),
            SweepAxis::update_default(),
        );
        for p in &sweep.points {
            let at = p.e_at.unwrap();
            let ts = p.e_ts.unwrap();
            let sig = p.e_sig.unwrap();
            assert!(at >= ts - 1e-9, "AT {at} < TS {ts} at μ = {}", p.x);
            assert!(at >= sig - 1e-9, "AT {at} < SIG {sig} at μ = {}", p.x);
        }
        // TS degrades across the sweep.
        let ts_first = sweep.points.first().unwrap().e_ts.unwrap();
        let ts_last = sweep.points.last().unwrap().e_ts.unwrap();
        assert!(ts_last < ts_first);
    }

    #[test]
    fn winner_identifies_best_strategy() {
        let p = effectiveness_at(&ScenarioParams::scenario1().with_s(0.0), 0.0);
        let (name, e) = p.winner();
        assert!(e > 0.0);
        assert!(["TS", "AT", "SIG"].contains(&name));
    }

    #[test]
    fn crossover_detects_and_misses() {
        let sweep = Sweep::run(
            "fig5",
            ScenarioParams::scenario3(),
            SweepAxis::sleep_default(),
        );
        // AT loses to NC somewhere in (0.5, 1.0]…
        assert!(sweep.crossover("AT", "NC").is_some());
        // …but never to SIG in Scenario 3.
        assert_eq!(sweep.crossover("AT", "SIG"), None);
    }

    #[test]
    #[should_panic(expected = "unknown strategy")]
    fn crossover_rejects_unknown_names() {
        let sweep = Sweep::run(
            "fig3",
            ScenarioParams::scenario1(),
            SweepAxis::sleep_default(),
        );
        let _ = sweep.crossover("AT", "LRU");
    }

    #[test]
    fn curves_skip_unusable_points() {
        let sweep = Sweep::run(
            "fig5",
            ScenarioParams::scenario3(),
            SweepAxis::sleep_default(),
        );
        let curves = sweep.curves();
        let ts = curves.iter().find(|c| c.name == "TS").unwrap();
        assert!(ts.points.is_empty(), "TS is unusable in Scenario 3");
        let nc = curves.iter().find(|c| c.name == "NC").unwrap();
        assert_eq!(nc.points.len(), sweep.points.len());
    }
}
