//! The asymptotic tables of §5.
//!
//! Two tables are reproduced:
//!
//! 1. Limits as `s → 0` (workaholics) and `s → 1` (sleepers):
//!
//!    | parameter | s → 0                         | s → 1 |
//!    |-----------|-------------------------------|-------|
//!    | q₀        | e^{−λL}                       | 0     |
//!    | p₀        | e^{−λL}                       | 1     |
//!    | h_TS      | (1−e^{−λL})e^{−μL}/(1−e^{−λL}e^{−μL}) | 0 |
//!    | h_AT      | same                          | 0     |
//!    | h_SIG     | same × P_nf                   | 0     |
//!
//! 2. Limits as `u₀ → 1` (infrequent updates):
//!
//!    | parameter | u₀ → 1 |
//!    |-----------|--------|
//!    | h_TS      | ≈ 1 − s^k (between the Appendix-1 bounds) |
//!    | h_AT      | (1−p₀)/(1−q₀) |
//!    | h_SIG     | (1−p₀)/(1−p₀)·P_nf = P_nf |
//!
//! Each limit is provided symbolically (closed form at the limit) and
//! checked numerically against the general formulas evaluated near the
//! limit — that agreement *is* the table's reproduction test.

use serde::{Deserialize, Serialize};
use sw_workload::ScenarioParams;

use crate::hit_ratio::{h_at, h_sig, h_ts_bounds};
use crate::throughput::sig_p_nf;

/// One row of an asymptotic table: the symbolic limit and the numeric
/// evaluation of the general formula near the limit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LimitRow {
    /// Parameter name as the paper's table lists it.
    pub parameter: String,
    /// Closed-form value at the limit.
    pub symbolic: f64,
    /// General formula evaluated near the limit.
    pub numeric: f64,
}

impl LimitRow {
    /// Absolute disagreement between the symbolic limit and the numeric
    /// approach value.
    pub fn error(&self) -> f64 {
        (self.symbolic - self.numeric).abs()
    }
}

/// The `s → 0` / `s → 1` table (§5, first table), evaluated for a given
/// base scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SleepLimitTable {
    /// Rows for `s → 0`.
    pub workaholic: Vec<LimitRow>,
    /// Rows for `s → 1`.
    pub sleeper: Vec<LimitRow>,
}

/// Builds the §5 sleep-limit table for `base` (s is overridden).
pub fn sleep_limit_table(base: &ScenarioParams) -> SleepLimitTable {
    let eps = 1e-9;
    let p_nf = sig_p_nf(base);

    let lam_l = (-base.lambda * base.latency_secs).exp(); // e^{−λL}
    let u0 = (-base.mu * base.latency_secs).exp();

    // s → 0 symbolic limits.
    let common = (1.0 - lam_l) * u0 / (1.0 - lam_l * u0);
    let near0 = base.with_s(eps);
    let workaholic = vec![
        LimitRow {
            parameter: "q0".into(),
            symbolic: lam_l,
            numeric: near0.derived().q0,
        },
        LimitRow {
            parameter: "p0".into(),
            symbolic: lam_l,
            numeric: near0.derived().p0,
        },
        LimitRow {
            parameter: "h_ts".into(),
            symbolic: common,
            numeric: h_ts_bounds(&near0).midpoint(),
        },
        LimitRow {
            parameter: "h_at".into(),
            symbolic: common,
            numeric: h_at(&near0),
        },
        LimitRow {
            parameter: "h_sig".into(),
            symbolic: common * p_nf,
            numeric: h_sig(&near0, p_nf),
        },
    ];

    // s → 1 symbolic limits: everything collapses.
    let near1 = base.with_s(1.0 - eps);
    let sleeper = vec![
        LimitRow {
            parameter: "q0".into(),
            symbolic: 0.0,
            numeric: near1.derived().q0,
        },
        LimitRow {
            parameter: "p0".into(),
            symbolic: 1.0,
            numeric: near1.derived().p0,
        },
        LimitRow {
            parameter: "h_ts".into(),
            symbolic: 0.0,
            numeric: h_ts_bounds(&near1).midpoint(),
        },
        LimitRow {
            parameter: "h_at".into(),
            symbolic: 0.0,
            numeric: h_at(&near1),
        },
        LimitRow {
            parameter: "h_sig".into(),
            symbolic: 0.0,
            numeric: h_sig(&near1, p_nf),
        },
    ];

    SleepLimitTable {
        workaholic,
        sleeper,
    }
}

/// The `u₀ → 1` table (§5, second table), evaluated for a given base
/// scenario (μ is overridden toward 0).
pub fn update_limit_table(base: &ScenarioParams) -> Vec<LimitRow> {
    let p_nf = sig_p_nf(base);
    let near = base.with_mu(1e-12);
    let d = near.derived();
    let sk = base.s.powi(base.k as i32);
    vec![
        LimitRow {
            parameter: "h_ts (≈ 1 − s^k)".into(),
            symbolic: 1.0 - sk,
            numeric: h_ts_bounds(&near).midpoint(),
        },
        LimitRow {
            parameter: "h_at ((1−p0)/(1−q0))".into(),
            symbolic: (1.0 - d.p0) / (1.0 - d.q0),
            numeric: h_at(&near),
        },
        LimitRow {
            parameter: "h_sig (P_nf)".into(),
            symbolic: p_nf,
            numeric: h_sig(&near, p_nf),
        },
    ]
}

/// §5's qualitative conclusions, checked programmatically. Returns a
/// list of `(claim, holds)` pairs so the experiment harness can print a
/// verdict table.
pub fn section5_conclusions(base: &ScenarioParams) -> Vec<(String, bool)> {
    let mut out = Vec::new();

    // "For workaholics, the strategy AT will be the winner in throughput."
    let w = base.with_s(0.0);
    let t = crate::throughput::Throughputs::compute(&w);
    let at_wins = match (t.t_at, t.t_ts, t.t_sig) {
        (Some(at), Some(ts), Some(sig)) => at >= ts && at >= sig,
        (Some(at), None, Some(sig)) => at >= sig,
        _ => false,
    };
    out.push(("workaholics: AT wins throughput".to_string(), at_wins));

    // "h_at goes to 0 faster than h_ts and h_sig" as s → 1.
    let s9 = base.with_s(0.9);
    let p_nf = sig_p_nf(base);
    let at_fastest =
        h_at(&s9) <= h_ts_bounds(&s9).midpoint() && h_at(&s9) <= h_sig(&s9, p_nf);
    out.push((
        "sleepers: h_at decays fastest".to_string(),
        at_fastest,
    ));

    // "At high rates of updating, the no caching strategy will be a
    // winner."
    let hot = base.with_mu(1.0);
    let t_hot = crate::throughput::Throughputs::compute(&hot);
    let nc_wins = t_hot
        .t_at
        .map(|at| t_hot.t_nc >= at * 0.999)
        .unwrap_or(true);
    out.push((
        "update-intensive: no-caching wins".to_string(),
        nc_wins,
    ));

    // "TS will outperform AT when the update rate is small" (sleepers).
    let sleepy = base.with_s(0.5).with_mu(base.mu.min(1e-4));
    let ts_beats_at = match (
        crate::throughput::throughput_ts(&sleepy),
        crate::throughput::throughput_at(&sleepy),
    ) {
        (Some(ts), Some(at)) => ts >= at,
        _ => false,
    };
    out.push((
        "sleepers + low updates: TS beats AT".to_string(),
        ts_beats_at,
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workaholic_limits_converge() {
        let table = sleep_limit_table(&ScenarioParams::scenario1());
        for row in &table.workaholic {
            assert!(
                row.error() < 1e-6,
                "{}: symbolic {} vs numeric {}",
                row.parameter,
                row.symbolic,
                row.numeric
            );
        }
    }

    #[test]
    fn sleeper_limits_converge() {
        let table = sleep_limit_table(&ScenarioParams::scenario1());
        for row in &table.sleeper {
            assert!(
                row.error() < 1e-6,
                "{}: symbolic {} vs numeric {}",
                row.parameter,
                row.symbolic,
                row.numeric
            );
        }
    }

    #[test]
    fn update_limits_converge() {
        // h_ts's "≈ 1 − s^k" row is an approximation the paper itself
        // flags; allow a loose tolerance there and tight elsewhere.
        for s in [0.0, 0.3, 0.7] {
            let table = update_limit_table(&ScenarioParams::scenario1().with_s(s));
            for row in &table {
                let tol = if row.parameter.starts_with("h_ts") {
                    0.15
                } else {
                    1e-6
                };
                assert!(
                    row.error() < tol,
                    "s={s} {}: symbolic {} vs numeric {}",
                    row.parameter,
                    row.symbolic,
                    row.numeric
                );
            }
        }
    }

    #[test]
    fn all_section5_conclusions_hold_on_scenario1() {
        for (claim, holds) in section5_conclusions(&ScenarioParams::scenario1()) {
            assert!(holds, "§5 claim failed: {claim}");
        }
    }

    #[test]
    fn hsig_limit_is_pnf_when_updates_vanish() {
        // §5 table: u0 → 1 ⇒ h_sig → P_nf for s < 1 … with p0 < 1 the
        // ratio (1−p0)/(1−p0) = 1.
        let base = ScenarioParams::scenario1().with_s(0.5);
        let rows = update_limit_table(&base);
        let hsig = rows.iter().find(|r| r.parameter.starts_with("h_sig")).unwrap();
        assert!(hsig.error() < 1e-6);
        assert!(hsig.symbolic > 0.99, "P_nf should be ≈ 1");
    }
}
