//! Hit-ratio formulas (§4, Appendices 1–3).
//!
//! All hit ratios are per *query event* at the granularity the model
//! uses: a query event occurs in an interval with probability
//! `1 − p_0`, and the cache answers it iff the conditions derived in the
//! appendices hold.

use sw_workload::ScenarioParams;

/// Maximal hit ratio of the idealized stateful server (Eq. 13):
/// `MHR = λ/(λ+μ)` — a miss only when an update intervened between two
/// consecutive queries of the item.
pub fn mhr(lambda: f64, mu: f64) -> f64 {
    if lambda == 0.0 && mu == 0.0 {
        return 0.0;
    }
    lambda / (lambda + mu)
}

/// AT hit ratio (Eq. 20 / Appendix 2, Eq. 41):
///
/// `h_AT = (1 − p_0)·u_0 / (1 − q_0·u_0)`
///
/// Derivation (Appendix 2): a query event hits iff the previous query
/// event was `i` intervals ago, the unit was *awake with no queries* in
/// each of the `i − 1` intervening intervals (a single asleep interval
/// drops the whole cache), and no update touched the item in any of the
/// `i` intervals: `h = (1−p_0) Σ_{i≥1} q_0^{i−1} u_0^i`.
pub fn h_at(params: &ScenarioParams) -> f64 {
    let d = params.derived();
    let denom = 1.0 - d.q0 * d.u0;
    if denom <= 0.0 {
        // q0·u0 = 1 only when λ = μ = 0 and s = 0: no queries ever, the
        // hit ratio is vacuous; define it as 1 (a cache never invalidated).
        return 1.0;
    }
    ((1.0 - d.p0) * d.u0 / denom).clamp(0.0, 1.0)
}

/// SIG hit ratio (Eq. 26 / Appendix 3, Eq. 43):
///
/// `h_SIG = (1 − p_0)·u_0·P_nf / (1 − p_0·u_0)`
///
/// Same structure as AT except sleeping does **not** drop the cache
/// (the geometric factor is `p_0`, no-queries regardless of sleep,
/// instead of `q_0`), discounted by the probability `P_nf` of no false
/// diagnosis. `p_nf` must come from [`crate::throughput::sig_p_nf`] or
/// equivalent.
pub fn h_sig(params: &ScenarioParams, p_nf: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_nf), "P_nf must be a probability");
    let d = params.derived();
    let denom = 1.0 - d.p0 * d.u0;
    if denom <= 0.0 {
        return p_nf;
    }
    ((1.0 - d.p0) * d.u0 * p_nf / denom).clamp(0.0, 1.0)
}

/// The TS hit-ratio bounds of Appendix 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsHitRatioBounds {
    /// Lower bound (from the upper bound on `P_ki`, Eq. 33→36).
    pub lower: f64,
    /// Upper bound (from the lower bound on `P_ki`, Eq. 37→39).
    pub upper: f64,
}

impl TsHitRatioBounds {
    /// Midpoint of the bounds — the point estimate used for plotting.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Width of the bound interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// TS hit-ratio bounds (Appendix 1).
///
/// A query event hits iff (a) the previous query event on the item was
/// `i` intervals ago with no update in those `i` intervals, and (b) when
/// `i > k`, the unit did not sleep `k` or more *consecutive* intervals
/// in between (which would have dropped the whole cache via the
/// `T_i − T_l > w` check).
///
/// For `i ≤ k` the hit probability is `(1−p_0)·p_0^{i−1}·u_0^i`
/// unconditionally (even a full nap shorter than `k` is survivable).
/// For `i > k` the paper bounds the probability `P_ki` of a `k`-streak:
///
/// * upper bound (Eq. 33):
///   `P_ki ≤ s^k·p_0^{i−1−k} + (i−1−k)·q_0·s^k·p_0^{i−2−k}`
///   (a streak can start at the first interval, or be preceded by an
///   awake-no-query interval at one of `i−1−k` positions);
/// * lower bound (Eq. 37): `P_ki ≥ (i−1−k)·s^k·q_0^{i−1−k}` …
///   which as printed can exceed 1 and *cross* the upper bound for
///   large `i` (the `(i−1−k)` factor multiplies a decaying geometric
///   term of the wrong base). We therefore use the sharper elementary
///   bound `P_ki ≥ s^k` for `i > k` — a streak of exactly the first `k`
///   intervals — which is provably a lower bound and keeps
///   `lower ≤ h_ts ≤ upper` consistent for all parameters; the
///   difference is negligible at the paper's operating points.
///
/// Closed forms (summing the geometric series; `x = p_0·u_0`):
///
/// `h_upper = A − (1−p_0)·s^k·u_0^{k+1}·[ 1/(1−p_0·u_0) ]` … wait —
/// see the function body; each series is annotated inline.
pub fn h_ts_bounds(params: &ScenarioParams) -> TsHitRatioBounds {
    let d = params.derived();
    let (p0, q0, u0) = (d.p0, d.q0, d.u0);
    let k = params.k;
    let x = p0 * u0;
    if x >= 1.0 {
        // p0 = u0 = 1: no queries and no updates — vacuous, as in h_at.
        return TsHitRatioBounds {
            lower: 1.0,
            upper: 1.0,
        };
    }
    // A = Σ_{i≥1} (1−p0) p0^{i−1} u0^i = (1−p0)·u0/(1−p0·u0): the hit
    // ratio if the window were infinite (no streak ever matters).
    let a = (1.0 - p0) * u0 / (1.0 - x);

    let sk = if params.s == 0.0 && k == 0 {
        1.0
    } else {
        params.s.powi(k as i32)
    };
    let u0k1 = u0.powi(k as i32 + 1);

    // Lower bound: subtract Σ_{i>k} (1−p0)·P_ki_upper·u0^i with
    // P_ki_upper = s^k·p0^{i−1−k} + (i−1−k)·q0·s^k·p0^{i−2−k}.
    //
    //   Σ_{i>k} (1−p0)·s^k·p0^{i−1−k}·u0^i
    //     = (1−p0)·s^k·u0^{k+1} · Σ_{j≥0} (p0 u0)^j
    //     = (1−p0)·s^k·u0^{k+1} / (1−p0 u0)
    //
    //   Σ_{i>k} (1−p0)·(i−1−k)·q0·s^k·p0^{i−2−k}·u0^i   (j = i−1−k)
    //     = (1−p0)·q0·s^k·u0^{k+1} · Σ_{j≥0} j·p0^{j−1}·u0^j
    //     = (1−p0)·q0·s^k·u0^{k+2} / (1−p0 u0)^2
    let term1 = (1.0 - p0) * sk * u0k1 / (1.0 - x);
    let term2 = (1.0 - p0) * q0 * sk * u0k1 * u0 / ((1.0 - x) * (1.0 - x));
    let lower = (a - term1 - term2).clamp(0.0, 1.0);

    // Upper bound: subtract Σ_{i>k} (1−p0)·s^k·u0^i
    //   = (1−p0)·s^k·u0^{k+1}/(1−u0)           (for u0 < 1)
    // using P_ki ≥ s^k. For u0 = 1 the series diverges against the
    // (1−p0) factor; take the limit via the A-side cancellation:
    // A(u0→1) = 1 and the subtracted mass is s^k·Σ(1−p0)p0^{i−1}… the
    // elementary bound then gives upper = 1 − s^k·(1−p0)·p0^k/(1−p0)…
    // — we evaluate it directly with the geometric-in-p0 form, which is
    // also valid for u0 < 1 and sharper than dividing by (1−u0):
    //   Σ_{i>k} (1−p0)·s^k·p0^{i−1}·u0^i ≤ Σ_{i>k} (1−p0)·s^k·u0^i
    // We keep the p0-form: P_ki ≥ s^k·p0^{i−1−k}·q0^0… no — the honest
    // elementary bound pairs with the *event* probability (1−p0)p0^{i−1}u0^i
    // of the hit-with-infinite-window path, so:
    //   upper = A − Σ_{i>k} (1−p0)·p0^{i−1}·u0^i·s^k·p0^{−k}…
    // Simplest correct version: among histories with the previous query
    // i > k intervals ago and no intervening queries, the first k
    // intervals are each "no query" = asleep (prob s/p0 each) or
    // awake-quiet (q0/p0); all-asleep has conditional probability
    // (s/p0)^k, so
    //   upper = A − Σ_{i>k} (1−p0)·p0^{i−1}·u0^i·(s/p0)^k
    //         = A − (1−p0)·s^k·u0^{k+1}/(1−p0·u0).
    let upper = (a - term1).clamp(0.0, 1.0);

    TsHitRatioBounds {
        lower: lower.min(upper),
        upper,
    }
}

/// Point estimate for `h_TS`: the midpoint of the Appendix-1 bounds.
pub fn h_ts_estimate(params: &ScenarioParams) -> f64 {
    h_ts_bounds(params).midpoint()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioParams {
        ScenarioParams::scenario1()
    }

    #[test]
    fn mhr_matches_eq13() {
        assert!((mhr(0.1, 1e-4) - 0.1 / 0.1001).abs() < 1e-12);
        assert_eq!(mhr(0.0, 0.0), 0.0);
        assert_eq!(mhr(1.0, 0.0), 1.0);
    }

    #[test]
    fn h_at_workaholic_limit() {
        // §5 table: s → 0 ⇒ h_at → (1 − e^{−λL})·e^{−μL} / (1 − e^{−λL}e^{−μL})…
        // Actually at s = 0, p0 = q0 = e^{−λL}, so
        // h_at = (1−q0)u0/(1−q0u0).
        let p = base().with_s(0.0);
        let d = p.derived();
        let expected = (1.0 - d.q0) * d.u0 / (1.0 - d.q0 * d.u0);
        assert!((h_at(&p) - expected).abs() < 1e-12);
    }

    #[test]
    fn h_at_sleeper_limit_is_zero() {
        let p = base().with_s(1.0);
        assert_eq!(h_at(&p), 0.0);
    }

    #[test]
    fn h_at_decreases_with_s() {
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let s = i as f64 / 10.0;
            let h = h_at(&base().with_s(s));
            assert!(h <= prev + 1e-12, "h_at must be non-increasing in s");
            prev = h;
        }
    }

    #[test]
    fn h_at_decreases_with_mu() {
        let h_low = h_at(&base().with_mu(1e-5));
        let h_high = h_at(&base().with_mu(1e-2));
        assert!(h_high < h_low);
    }

    #[test]
    fn h_sig_is_at_discounted_by_pnf_structure() {
        let p = base().with_s(0.5);
        let d = p.derived();
        // With P_nf = 1, h_sig/h_at = (1−q0u0)/(1−p0u0) ≥ 1 (sleep-proof).
        let ratio = h_sig(&p, 1.0) / h_at(&p);
        let expected = (1.0 - d.q0 * d.u0) / (1.0 - d.p0 * d.u0);
        assert!((ratio - expected).abs() < 1e-9);
        assert!(ratio >= 1.0);
    }

    #[test]
    fn h_sig_scales_linearly_with_pnf() {
        let p = base().with_s(0.3);
        let h1 = h_sig(&p, 1.0);
        let h_half = h_sig(&p, 0.5);
        assert!((h_half - 0.5 * h1).abs() < 1e-12);
    }

    #[test]
    fn ts_bounds_are_ordered_and_in_range() {
        for s in [0.0, 0.1, 0.5, 0.9, 1.0] {
            for k in [1u32, 2, 10, 100] {
                let mut p = base().with_s(s);
                p.k = k;
                let b = h_ts_bounds(&p);
                assert!(
                    (0.0..=1.0).contains(&b.lower) && (0.0..=1.0).contains(&b.upper),
                    "bounds out of range at s={s}, k={k}: {b:?}"
                );
                assert!(
                    b.lower <= b.upper + 1e-12,
                    "lower > upper at s={s}, k={k}: {b:?}"
                );
            }
        }
    }

    #[test]
    fn ts_workaholic_equals_infinite_window() {
        // s = 0: no streaks are possible, both bounds collapse to A.
        let p = base().with_s(0.0);
        let b = h_ts_bounds(&p);
        let d = p.derived();
        let a = (1.0 - d.p0) * d.u0 / (1.0 - d.p0 * d.u0);
        assert!((b.lower - a).abs() < 1e-12);
        assert!((b.upper - a).abs() < 1e-12);
    }

    #[test]
    fn ts_sleeper_limit_is_zero() {
        let p = base().with_s(1.0);
        let b = h_ts_bounds(&p);
        assert!(b.upper < 1e-9, "at s=1 no queries hit: {b:?}");
    }

    #[test]
    fn ts_bound_width_shrinks_with_k() {
        // Larger windows push the streak terms to higher order: the
        // uncertainty shrinks.
        let p = base().with_s(0.5);
        let mut prev_width = f64::INFINITY;
        for k in [1u32, 5, 20, 50] {
            let mut q = p;
            q.k = k;
            let w = h_ts_bounds(&q).width();
            assert!(w <= prev_width + 1e-12, "width must shrink with k");
            prev_width = w;
        }
    }

    #[test]
    fn ts_beats_at_for_sleepers_low_updates() {
        // §5: "The strategy TS will outperform AT when the update rate
        // is small" (for non-workaholics): the hit ratio survives naps
        // up to k intervals.
        let p = base().with_s(0.6); // μ = 1e-4, k = 100
        let ts = h_ts_bounds(&p).lower;
        let at = h_at(&p);
        assert!(
            ts > at,
            "TS lower bound {ts} should beat AT {at} for sleepers at low μ"
        );
    }

    #[test]
    fn at_approaches_ts_as_s_to_zero() {
        // §5 table: both approach (1−e^{−λL})e^{−μL}·…/(same denom) as
        // s → 0.
        let p = base().with_s(1e-9);
        let diff = (h_at(&p) - h_ts_estimate(&p)).abs();
        assert!(diff < 1e-6, "h_at and h_ts must coincide at s→0, diff {diff}");
    }

    #[test]
    fn u0_to_1_ts_limit_is_one_minus_sk_shape() {
        // §5 table: as u0 → 1, h_ts ≈ 1 − s^k (plus lower-order terms).
        let mut p = base().with_s(0.5).with_mu(0.0); // u0 = 1
        p.k = 3;
        let b = h_ts_bounds(&p);
        let approx = 1.0 - 0.5f64.powi(3);
        assert!(
            (b.upper - approx).abs() < 0.1 && (b.lower - approx).abs() < 0.15,
            "u0→1 limit should be ≈ 1 − s^k = {approx}, got {b:?}"
        );
    }

    #[test]
    fn u0_to_1_at_limit_matches_table() {
        // §5 table: u0 → 1 ⇒ h_at → (1 − s)·…/(1−q0) = (1−p0)/(1−q0).
        let p = base().with_s(0.4).with_mu(0.0);
        let d = p.derived();
        let expected = (1.0 - d.p0) / (1.0 - d.q0);
        assert!((h_at(&p) - expected).abs() < 1e-12);
    }

    #[test]
    fn update_intensive_all_ratios_collapse() {
        // §5: "for update intensive scenarios (u0 approaching 0), all
        // the hit ratios will approach 0."
        let p = base().with_mu(10.0).with_s(0.2); // u0 = e^{−100} ≈ 0
        assert!(h_at(&p) < 1e-9);
        assert!(h_sig(&p, 1.0) < 1e-9);
        assert!(h_ts_bounds(&p).upper < 1e-9);
    }
}
