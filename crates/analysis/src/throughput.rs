//! Report sizes and throughput formulas (§4).
//!
//! The master equation is Eq. 9: with `B_c` broadcast bits per interval
//! and hit ratio `h`,
//!
//! `T = (L·W − B_c) / ((b_q + b_a)·(1 − h))`
//!
//! queries per interval. Strategies differ in `B_c` and `h`. A strategy
//! whose report alone exceeds `L·W` is *unusable* (the paper drops TS
//! from Scenarios 3/4 on these grounds); we encode that as `None`.

use sw_workload::ScenarioParams;

use crate::hit_ratio::{h_at, h_sig, h_ts_estimate, mhr};

/// Bits to name one item: `⌈log₂ n⌉` (see DESIGN.md §4 on resolving the
/// paper's `log(n)`).
fn id_bits(n: u64) -> f64 {
    if n <= 1 {
        1.0
    } else {
        (64 - (n - 1).leading_zeros()) as f64
    }
}

/// Expected TS report size in bits (Eqs. 15–16):
/// `n_c·(⌈log₂ n⌉ + b_T)` with `n_c = n·(1 − e^{−μw})`.
pub fn ts_report_bits(params: &ScenarioParams) -> f64 {
    let w = params.window_secs();
    let n_c = params.n_items as f64 * (1.0 - (-params.mu * w).exp());
    n_c * (id_bits(params.n_items) + params.timestamp_bits as f64)
}

/// Expected AT report size in bits (Eqs. 18–19):
/// `n_L·⌈log₂ n⌉` with `n_L = n·(1 − e^{−μL})`.
pub fn at_report_bits(params: &ScenarioParams) -> f64 {
    let n_l = params.n_items as f64 * (1.0 - (-params.mu * params.latency_secs).exp());
    n_l * id_bits(params.n_items)
}

/// Number of combined signatures (Eq. 24):
/// `m = ⌈6·(f+1)·(ln(1/δ) + ln n)⌉`.
pub fn sig_m(params: &ScenarioParams) -> u32 {
    sw_signature::required_signatures(params.f, params.n_items, params.sig_delta)
}

/// SIG report size in bits (Eq. 25): `m·g = 6·g·(f+1)(ln(1/δ) + ln n)`.
pub fn sig_report_bits(params: &ScenarioParams) -> f64 {
    sig_m(params) as f64 * params.g as f64
}

/// The probability of no false diagnosis `P_nf` as the paper's analysis
/// uses it: `1 − exp(−(K−1)²·m·p/3)` evaluated at the bound-derivation
/// point `K = 2` (Eq. 22 with the Eq. 24 choice of `m`).
///
/// Note: the *operational* threshold must use `K < 1/(1−1/e) ≈ 1.58`
/// to actually detect invalid items (see `sw_signature::SigPlan`); at
/// that K the realized false-alarm rate is higher than this analytical
/// value. EXPERIMENTS.md quantifies the gap.
pub fn sig_p_nf(params: &ScenarioParams) -> f64 {
    let p = sw_signature::p_valid_in_unmatched(params.f, params.g);
    let m = sig_m(params);
    1.0 - sw_signature::chernoff_false_alarm_bound(2.0, m, p)
}

/// Interval capacity `L·W` in bits.
pub fn interval_bits(params: &ScenarioParams) -> f64 {
    params.latency_secs * params.bandwidth_bps as f64
}

/// Eq. 9, shared by every strategy. Returns `None` when the report does
/// not fit the interval.
fn eq9(params: &ScenarioParams, report_bits: f64, hit_ratio: f64) -> Option<f64> {
    let lw = interval_bits(params);
    if report_bits >= lw {
        return None;
    }
    let per_query = (params.query_bits + params.answer_bits) as f64;
    let miss = (1.0 - hit_ratio).max(1e-15);
    Some((lw - report_bits) / (per_query * miss))
}

/// Maximal throughput `T_max` (Eq. 11): the idealized stateful server
/// with `B_c = 0` and hit ratio `MHR`.
pub fn throughput_max(params: &ScenarioParams) -> f64 {
    eq9(params, 0.0, mhr(params.lambda, params.mu)).expect("B_c = 0 always fits")
}

/// No-caching throughput `T_nc` (Eq. 14): `L·W/(b_q + b_a)`.
pub fn throughput_nc(params: &ScenarioParams) -> f64 {
    eq9(params, 0.0, 0.0).expect("B_c = 0 always fits")
}

/// TS throughput (Eq. 16), `None` when the report exceeds `L·W`.
pub fn throughput_ts(params: &ScenarioParams) -> Option<f64> {
    eq9(params, ts_report_bits(params), h_ts_estimate(params))
}

/// AT throughput (Eq. 19), `None` when the report exceeds `L·W`.
pub fn throughput_at(params: &ScenarioParams) -> Option<f64> {
    eq9(params, at_report_bits(params), h_at(params))
}

/// SIG throughput (Eq. 25), `None` when the report exceeds `L·W`.
pub fn throughput_sig(params: &ScenarioParams) -> Option<f64> {
    let p_nf = sig_p_nf(params);
    eq9(params, sig_report_bits(params), h_sig(params, p_nf))
}

/// All throughputs at one parameter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughputs {
    /// `T_max` (Eq. 11).
    pub t_max: f64,
    /// `T_nc` (Eq. 14).
    pub t_nc: f64,
    /// `T_TS` (Eq. 16); `None` = report does not fit.
    pub t_ts: Option<f64>,
    /// `T_AT` (Eq. 19).
    pub t_at: Option<f64>,
    /// `T_SIG` (Eq. 25).
    pub t_sig: Option<f64>,
}

impl Throughputs {
    /// Computes every strategy's throughput at `params`.
    pub fn compute(params: &ScenarioParams) -> Self {
        Throughputs {
            t_max: throughput_max(params),
            t_nc: throughput_nc(params),
            t_ts: throughput_ts(params),
            t_at: throughput_at(params),
            t_sig: throughput_sig(params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tnc_is_lw_over_query_cost() {
        let p = ScenarioParams::scenario1();
        // L·W = 10·10^4 = 10^5; b_q + b_a = 1024.
        assert!((throughput_nc(&p) - 1e5 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn tmax_dwarfs_tnc_when_updates_rare() {
        // Scenario 1: MHR = 0.1/(0.1001) ⇒ 1/(1−MHR) ≈ 1001.
        let p = ScenarioParams::scenario1();
        let ratio = throughput_max(&p) / throughput_nc(&p);
        assert!(
            (ratio - (0.1f64 + 1e-4) / 1e-4).abs() / ratio < 1e-9,
            "T_max/T_nc should be 1/(1−MHR) = (λ+μ)/μ, got {ratio}"
        );
    }

    #[test]
    fn at_report_small_in_scenario1() {
        // n_L = 1000·(1 − e^{−0.001}) ≈ 1 item → ~10 bits.
        let p = ScenarioParams::scenario1();
        let bits = at_report_bits(&p);
        assert!((bits - 9.995).abs() < 0.1, "AT report = {bits} bits");
    }

    #[test]
    fn ts_report_scenario1() {
        // n_c = 1000·(1 − e^{−0.0001·1000}) = 1000·0.0952 ≈ 95.2 items,
        // 522 bits each ≈ 49.7 kbit — half the interval!
        let p = ScenarioParams::scenario1();
        let bits = ts_report_bits(&p);
        assert!((bits - 95.16 * 522.0).abs() / bits < 0.01, "TS report = {bits}");
    }

    #[test]
    fn ts_unusable_in_scenario3() {
        // §6: "TS is not included in this plot, since the size of the
        // report for this scenario would exceed L" — the defining check.
        let p = ScenarioParams::scenario3();
        assert!(ts_report_bits(&p) > interval_bits(&p));
        assert_eq!(throughput_ts(&p), None);
    }

    #[test]
    fn ts_unusable_in_scenario4() {
        let p = ScenarioParams::scenario4();
        assert_eq!(throughput_ts(&p), None);
    }

    #[test]
    fn ts_usable_in_scenarios_1_2_5_6() {
        for p in [
            ScenarioParams::scenario1(),
            ScenarioParams::scenario2(),
            ScenarioParams::scenario5(),
            ScenarioParams::scenario6(),
        ] {
            assert!(throughput_ts(&p).is_some(), "TS must fit in {p:?}");
        }
    }

    #[test]
    fn sig_m_scenario1_matches_eq24() {
        let p = ScenarioParams::scenario1();
        assert_eq!(sig_m(&p), 654);
        assert!((sig_report_bits(&p) - 654.0 * 16.0).abs() < 1e-9);
    }

    #[test]
    fn sig_pnf_is_essentially_one_at_paper_points() {
        for p in [
            ScenarioParams::scenario1(),
            ScenarioParams::scenario2(),
            ScenarioParams::scenario3(),
        ] {
            let pnf = sig_p_nf(&p);
            assert!(pnf > 0.99, "P_nf = {pnf} at {p:?}");
        }
    }

    #[test]
    fn all_reports_fit_scenario1() {
        let p = ScenarioParams::scenario1();
        let t = Throughputs::compute(&p);
        assert!(t.t_ts.is_some());
        assert!(t.t_at.is_some());
        assert!(t.t_sig.is_some());
    }

    #[test]
    fn at_wins_for_workaholics_scenario1() {
        // §5: "For 'workaholics', the strategy AT will be the winner in
        // throughput" (shortest report, same hit ratio).
        let p = ScenarioParams::scenario1().with_s(0.0);
        let t = Throughputs::compute(&p);
        let at = t.t_at.unwrap();
        assert!(at >= t.t_ts.unwrap(), "AT {at} vs TS {:?}", t.t_ts);
    }

    #[test]
    fn no_cache_wins_for_heavy_sleepers_when_reports_cost() {
        // §5: "At some point, for large values of s (heavy sleepers),
        // no-caching will be the best choice." The crossover requires a
        // non-negligible report: in Scenario 1 the AT report is ~10 bits
        // so AT merely converges to NC from above; in update-intensive
        // Scenario 3 NC strictly wins (the paper puts the crossover at
        // s ≈ 0.8).
        let p3 = ScenarioParams::scenario3().with_s(0.95);
        let t3 = Throughputs::compute(&p3);
        assert!(t3.t_nc > t3.t_at.unwrap(), "NC must win in Scenario 3 at s=0.95");
        // Scenario 1: convergence, not crossover.
        let p1 = ScenarioParams::scenario1().with_s(0.999);
        let t1 = Throughputs::compute(&p1);
        let ratio = t1.t_at.unwrap() / t1.t_nc;
        assert!((0.99..=1.01).contains(&ratio), "AT→NC convergence, got {ratio}");
    }

    #[test]
    fn throughput_monotone_decreasing_in_s_for_at() {
        let base = ScenarioParams::scenario1();
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let t = throughput_at(&base.with_s(i as f64 / 10.0)).unwrap();
            assert!(t <= prev + 1e-9);
            prev = t;
        }
    }
}
