//! # sw-analysis — the paper's analytical model, in closed form
//!
//! Every formula of §4, §5 and the appendices, so the experiment harness
//! can regenerate Figures 3–8 and the asymptotic tables exactly as the
//! authors computed them, and so the integration tests can validate the
//! discrete-event simulator against the model.
//!
//! * [`hit_ratio`] — `MHR` (Eq. 13), `h_AT` (Eq. 20/41), `h_SIG`
//!   (Eq. 26/43), and the `h_TS` bounds (Appendix 1, Eqs. 33–39;
//!   re-derived here because the scanned source is ambiguous — each step
//!   is spelled out in the function docs);
//! * [`throughput`] — report sizes `n_c`/`n_L` (Eqs. 15/18), SIG's `m`
//!   and `B_c` (Eqs. 24/25), and the throughputs `T_max`, `T_nc`,
//!   `T_TS`, `T_AT`, `T_SIG` (Eqs. 9–19, 25);
//! * [`effectiveness`] — `e = T/T_max` (Eq. 10) per strategy, plus the
//!   sweep helpers that produce each figure's series;
//! * [`asymptotics`] — the two limit tables of §5 (s → 0/1, u₀ → 1)
//!   evaluated both symbolically and numerically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asymptotics;
pub mod effectiveness;
pub mod hit_ratio;
pub mod throughput;

pub use effectiveness::{effectiveness_at, EffectivenessPoint, StrategyCurve, Sweep};
pub use hit_ratio::{h_at, h_sig, h_ts_bounds, h_ts_estimate, mhr, TsHitRatioBounds};
pub use throughput::{
    at_report_bits, sig_report_bits, throughput_at, throughput_max, throughput_nc, throughput_sig,
    throughput_ts, ts_report_bits, Throughputs,
};
