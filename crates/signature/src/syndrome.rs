//! Syndrome construction and decoding — the client side of SIG (§3.3).
//!
//! The client caches, next to its items, the combined signatures of
//! every subset that contains a cached item. When a report arrives it
//! builds the syndrome `α_j = 1` iff subset `j` is cached *and* its
//! broadcast signature differs from the cached one, then counts, for
//! each cached item, the unmatching subsets it belongs to:
//!
//! ```text
//! for j in 1..=m { if α_j == 1 { for i in cache { if i ∈ S_j { count[i] += 1 } } } }
//! invalidate i  where  count[i] > m·δ_f        (δ_f = K·p)
//! ```
//!
//! An item in "too many" unmatching signatures is *suspected* of being
//! out of date and dropped — possibly falsely (a false alarm, which only
//! costs an unnecessary uplink query), while a truly changed item escapes
//! only if every one of its subsets collides, probability ≈ 2^−g each.
//!
//! **Refinement over the paper's literal rule.** The paper thresholds
//! the raw count against `m·δ_f = K·m·p`, which silently assumes every
//! item belongs to exactly `m/(f+1)` subsets. At finite `m` the degree
//! `deg(i) = |{j : i ∈ S_j}|` is Binomial with ~13% relative spread, so
//! low-degree items could *never* exceed the global threshold and would
//! stay stale forever. Since both sides can compute `deg(i)` exactly
//! from the shared family, we normalize: invalidate iff
//! `count(i) > θ·deg(i)` with `θ = K·p·(f+1)` — identical in
//! expectation to the paper's rule, immune to degree variance, and
//! guaranteeing every truly-changed item is caught up to signature
//! collisions (θ < 1). EXPERIMENTS.md quantifies the difference.

use crate::bounds::SigPlan;
use crate::sig::CombinedSignature;
use crate::subsets::SubsetFamily;

/// The outcome of decoding one report against one client cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Items declared invalid (to be dropped from the cache).
    pub invalidated: Vec<u64>,
    /// Per-item unmatch counts, parallel to the `cached_items` input.
    pub counts: Vec<u32>,
    /// Per-item subset degrees `deg(i)`, parallel to `cached_items`.
    pub degrees: Vec<u32>,
    /// Number of cached subsets whose signatures did not match.
    pub unmatched_subsets: u32,
    /// The degree-normalized threshold fraction θ = K·p·(f+1): item `i`
    /// is invalidated iff `counts[i] > θ·degrees[i]`.
    pub threshold: f64,
}

/// Decodes syndromes for a fixed subset family and plan.
#[derive(Debug, Clone)]
pub struct SyndromeDecoder {
    family: SubsetFamily,
    plan: SigPlan,
}

impl SyndromeDecoder {
    /// Creates a decoder; `family.m()` must equal `plan.m`.
    pub fn new(family: SubsetFamily, plan: SigPlan) -> Self {
        assert_eq!(
            family.m(),
            plan.m,
            "subset family has {} subsets but the plan requires {}",
            family.m(),
            plan.m
        );
        assert_eq!(
            family.f(),
            plan.f,
            "subset family built for f={} but the plan has f={}",
            family.f(),
            plan.f
        );
        SyndromeDecoder { family, plan }
    }

    /// The shared subset family.
    pub fn family(&self) -> &SubsetFamily {
        &self.family
    }

    /// The plan in force.
    pub fn plan(&self) -> &SigPlan {
        &self.plan
    }

    /// Runs the diagnosis algorithm of §3.3.
    ///
    /// * `cached_items` — the ids currently in the client cache;
    /// * `cached_sigs(j)` — the client's stored signature for subset
    ///   `j`, or `None` if the client does not cache that subset
    ///   ("combined uncached signatures are considered equal to the ones
    ///   that are being broadcast", i.e. they never unmatch);
    /// * `broadcast` — the `m` signatures from the report.
    pub fn diagnose<F>(
        &self,
        cached_items: &[u64],
        cached_sigs: F,
        broadcast: &[CombinedSignature],
    ) -> Diagnosis
    where
        F: Fn(u32) -> Option<CombinedSignature>,
    {
        assert_eq!(
            broadcast.len(),
            self.plan.m as usize,
            "report carries {} signatures, expected m={}",
            broadcast.len(),
            self.plan.m
        );
        let mut counts = vec![0u32; cached_items.len()];
        let mut degrees = vec![0u32; cached_items.len()];
        let mut unmatched_subsets = 0u32;
        for (j, &bsig) in broadcast.iter().enumerate() {
            let j = j as u32;
            let alpha = match cached_sigs(j) {
                Some(csig) => csig != bsig,
                None => false,
            };
            if alpha {
                unmatched_subsets += 1;
            }
            for (idx, &item) in cached_items.iter().enumerate() {
                if self.family.contains(j, item) {
                    degrees[idx] += 1;
                    if alpha {
                        counts[idx] += 1;
                    }
                }
            }
        }
        let threshold = self.plan.degree_threshold_fraction();
        let invalidated = cached_items
            .iter()
            .zip(counts.iter().zip(&degrees))
            .filter(|&(_, (&c, &d))| c as f64 > threshold * d as f64)
            .map(|(&i, _)| i)
            .collect();
        Diagnosis {
            invalidated,
            counts,
            degrees,
            unmatched_subsets,
            threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::{combine, item_signature};
    use std::collections::HashMap;

    /// A tiny in-memory "server": n items with values, producing the m
    /// combined signatures the MSS would broadcast.
    struct MiniServer {
        family: SubsetFamily,
        values: Vec<u64>,
        g: u32,
    }

    impl MiniServer {
        fn new(family: SubsetFamily, n: u64, g: u32) -> Self {
            MiniServer {
                family,
                values: (0..n).map(|i| i * 1000 + 1).collect(),
                g,
            }
        }

        fn update(&mut self, item: u64, value: u64) {
            self.values[item as usize] = value;
        }

        fn broadcast(&self) -> Vec<CombinedSignature> {
            (0..self.family.m())
                .map(|j| {
                    combine(
                        (0..self.values.len() as u64)
                            .filter(|&i| self.family.contains(j, i))
                            .map(|i| item_signature(i, self.values[i as usize], self.g)),
                    )
                })
                .collect()
        }
    }

    fn setup(f: u32, n: u64) -> (MiniServer, SyndromeDecoder) {
        let g = 16;
        let plan = SigPlan::new(f, g, n, 0.05, SigPlan::DEFAULT_K);
        let family = SubsetFamily::new(0xABCD, plan.m, f);
        let server = MiniServer::new(family, n, g);
        (server, SyndromeDecoder::new(family, plan))
    }

    /// Client snapshot: stores all subset signatures touching its items.
    fn snapshot(
        decoder: &SyndromeDecoder,
        server: &MiniServer,
        cached_items: &[u64],
    ) -> HashMap<u32, CombinedSignature> {
        let all = server.broadcast();
        let mut sigs = HashMap::new();
        for &item in cached_items {
            for j in decoder.family().subsets_of(item) {
                sigs.insert(j, all[j as usize]);
            }
        }
        sigs
    }

    #[test]
    fn clean_cache_nothing_invalidated() {
        let (server, decoder) = setup(10, 500);
        let cached: Vec<u64> = (0..20).collect();
        let sigs = snapshot(&decoder, &server, &cached);
        let d = decoder.diagnose(&cached, |j| sigs.get(&j).copied(), &server.broadcast());
        assert!(d.invalidated.is_empty());
        assert_eq!(d.unmatched_subsets, 0);
        assert!(d.counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn updated_cached_item_is_diagnosed() {
        let (mut server, decoder) = setup(10, 500);
        let cached: Vec<u64> = (0..20).collect();
        let sigs = snapshot(&decoder, &server, &cached);
        server.update(5, 999_999);
        let d = decoder.diagnose(&cached, |j| sigs.get(&j).copied(), &server.broadcast());
        assert!(
            d.invalidated.contains(&5),
            "item 5 should be diagnosed; counts: {:?}",
            d.counts
        );
    }

    #[test]
    fn update_to_uncached_item_rarely_kills_valid_cache() {
        // f updates land on items the client does NOT cache; the client's
        // own items should (mostly) survive — this is the false-alarm
        // probability the Chernoff bound controls.
        let (mut server, decoder) = setup(10, 500);
        let cached: Vec<u64> = (0..20).collect();
        let sigs = snapshot(&decoder, &server, &cached);
        for u in 0..10 {
            server.update(400 + u, 777_000 + u);
        }
        let d = decoder.diagnose(&cached, |j| sigs.get(&j).copied(), &server.broadcast());
        assert!(
            d.invalidated.len() <= 2,
            "too many false alarms: {:?}",
            d.invalidated
        );
    }

    #[test]
    fn multiple_updated_items_all_diagnosed() {
        let (mut server, decoder) = setup(10, 500);
        let cached: Vec<u64> = (0..30).collect();
        let sigs = snapshot(&decoder, &server, &cached);
        for item in [3u64, 11, 27] {
            server.update(item, item + 1_000_000);
        }
        let d = decoder.diagnose(&cached, |j| sigs.get(&j).copied(), &server.broadcast());
        for item in [3u64, 11, 27] {
            assert!(d.invalidated.contains(&item), "missed {item}: {:?}", d.invalidated);
        }
    }

    #[test]
    fn sleeping_through_many_updates_still_diagnoses() {
        // SIG's selling point: the report is state-based, so a client
        // that slept through any number of intervals compares against
        // the CURRENT state and still finds its stale items.
        let (mut server, decoder) = setup(10, 500);
        let cached: Vec<u64> = (100..130).collect();
        let sigs = snapshot(&decoder, &server, &cached);
        // Many intervals pass; item 100 is updated repeatedly, ending at
        // a final value.
        for round in 0..50u64 {
            server.update(100, 5_000 + round);
        }
        let d = decoder.diagnose(&cached, |j| sigs.get(&j).copied(), &server.broadcast());
        assert!(d.invalidated.contains(&100));
    }

    #[test]
    fn uncached_subsets_never_unmatch() {
        let (mut server, decoder) = setup(10, 500);
        // Client caches nothing: no subsets cached, so no alarm no matter
        // how much the database churns.
        for i in 0..100 {
            server.update(i, i + 42);
        }
        let d = decoder.diagnose(&[], |_| None, &server.broadcast());
        assert_eq!(d.unmatched_subsets, 0);
        assert!(d.invalidated.is_empty());
    }

    #[test]
    fn counts_are_parallel_to_input() {
        let (mut server, decoder) = setup(10, 200);
        let cached = vec![7u64, 8, 9];
        let sigs = snapshot(&decoder, &server, &cached);
        server.update(8, 123_456);
        let d = decoder.diagnose(&cached, |j| sigs.get(&j).copied(), &server.broadcast());
        assert_eq!(d.counts.len(), 3);
        // The updated item has the (strictly) largest count.
        assert!(d.counts[1] > d.counts[0]);
        assert!(d.counts[1] > d.counts[2]);
    }

    #[test]
    #[should_panic(expected = "report carries")]
    fn wrong_report_length_rejected() {
        let (_, decoder) = setup(10, 200);
        let _ = decoder.diagnose(&[], |_| None, &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "subset family has")]
    fn family_plan_mismatch_rejected() {
        let plan = SigPlan::new(10, 16, 200, 0.05, SigPlan::DEFAULT_K);
        let family = SubsetFamily::new(1, plan.m + 1, 10);
        let _ = SyndromeDecoder::new(family, plan);
    }
}
