//! The a-priori random subset family `S_1 … S_m`.
//!
//! "There are m randomly chosen sets of items (a priori, before any
//! exchange of signatures takes place), called S_1, S_2, …, S_m. Each
//! set is chosen so that an item i is in set S_j with probability
//! 1/(f+1)." (§3.3)
//!
//! Membership is *derived*, not stored: item `i` belongs to `S_j` iff a
//! seeded hash of `(i, j)` falls below `2^64/(f+1)`. Server and client
//! construct the same family from the shared seed, which is exactly the
//! paper's requirement that "the composition of the subsets of each
//! combined signature is universally known and agreed on before any
//! exchange of information takes place" — and it costs O(1) memory no
//! matter how large the database (Scenario 2/4 run n = 10^6).

/// A deterministic family of `m` random subsets with per-item membership
/// probability `1/(f+1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubsetFamily {
    seed: u64,
    m: u32,
    f: u32,
    threshold: u64,
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SubsetFamily {
    /// Creates the family from a shared `seed`, with `m` subsets and
    /// membership probability `1/(f+1)`.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn new(seed: u64, m: u32, f: u32) -> Self {
        assert!(m > 0, "need at least one subset");
        // P[member] = 1/(f+1); threshold on a uniform 64-bit hash.
        let threshold = (u64::MAX as u128 / (f as u128 + 1)) as u64;
        SubsetFamily {
            seed,
            m,
            f,
            threshold,
        }
    }

    /// Number of subsets `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The diagnosable-difference parameter `f`.
    pub fn f(&self) -> u32 {
        self.f
    }

    /// Membership probability `1/(f+1)`.
    pub fn membership_probability(&self) -> f64 {
        1.0 / (self.f as f64 + 1.0)
    }

    /// True iff item `i ∈ S_j` (`j` is zero-based, `j < m`).
    #[inline]
    pub fn contains(&self, j: u32, item: u64) -> bool {
        debug_assert!(j < self.m, "subset index {j} out of range (m={})", self.m);
        let h = mix64(
            self.seed ^ (j as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ item.wrapping_mul(0xA24B_AED4_963E_E407),
        );
        h <= self.threshold
    }

    /// Iterator over the subsets that contain `item` (expected length
    /// `m/(f+1)`).
    pub fn subsets_of(&self, item: u64) -> impl Iterator<Item = u32> + '_ {
        (0..self.m).filter(move |&j| self.contains(j, item))
    }

    /// Materializes subset `j` over a database of `n` items — O(n); used
    /// by tests and small examples, never by the simulator hot path.
    pub fn members(&self, j: u32, n: u64) -> Vec<u64> {
        (0..n).filter(|&i| self.contains(j, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_is_deterministic() {
        let fam = SubsetFamily::new(42, 100, 10);
        for j in 0..100 {
            for i in 0..200 {
                assert_eq!(fam.contains(j, i), fam.contains(j, i));
            }
        }
    }

    #[test]
    fn server_and_client_agree_from_seed() {
        let server = SubsetFamily::new(7, 64, 5);
        let client = SubsetFamily::new(7, 64, 5);
        assert_eq!(server.members(3, 1000), client.members(3, 1000));
    }

    #[test]
    fn different_seeds_different_families() {
        let a = SubsetFamily::new(1, 64, 5);
        let b = SubsetFamily::new(2, 64, 5);
        assert_ne!(a.members(0, 1000), b.members(0, 1000));
    }

    #[test]
    fn membership_probability_close_to_target() {
        let f = 10u32;
        let fam = SubsetFamily::new(99, 200, f);
        let n = 5_000u64;
        let mut members = 0u64;
        for j in 0..fam.m() {
            members += fam.members(j, n).len() as u64;
        }
        let freq = members as f64 / (fam.m() as u64 * n) as f64;
        let expected = 1.0 / (f as f64 + 1.0);
        assert!(
            (freq - expected).abs() / expected < 0.05,
            "membership frequency {freq} vs expected {expected}"
        );
    }

    #[test]
    fn subsets_of_matches_contains() {
        let fam = SubsetFamily::new(5, 128, 8);
        let item = 77;
        let via_iter: Vec<u32> = fam.subsets_of(item).collect();
        let via_scan: Vec<u32> = (0..128).filter(|&j| fam.contains(j, item)).collect();
        assert_eq!(via_iter, via_scan);
    }

    #[test]
    fn expected_subsets_per_item() {
        // Each item is in ~m/(f+1) subsets.
        let fam = SubsetFamily::new(11, 660, 10);
        let mut total = 0usize;
        let items = 500u64;
        for i in 0..items {
            total += fam.subsets_of(i).count();
        }
        let avg = total as f64 / items as f64;
        let expected = 660.0 / 11.0;
        assert!(
            (avg - expected).abs() / expected < 0.05,
            "avg subsets/item {avg} vs {expected}"
        );
    }

    #[test]
    fn f_zero_means_every_item_in_every_subset() {
        let fam = SubsetFamily::new(3, 4, 0);
        assert_eq!(fam.members(0, 100).len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one subset")]
    fn zero_subsets_rejected() {
        let _ = SubsetFamily::new(0, 0, 5);
    }
}
