//! Analytical bounds for the SIG scheme (§4.5).
//!
//! * `p` — probability that a *valid* cached item appears in an
//!   unmatching combined signature (Eq. 21):
//!   `p = (1/(f+1)) · (1 − (1 − 1/(f+1))^f · (1 − 2^−g))`, which the
//!   paper approximates as `(1/(f+1))(1 − 1/e)`.
//! * `p_f` — Chernoff bound on a valid item being falsely diagnosed
//!   (Eq. 22): `p_f ≤ exp(−(K−1)²·m·p/3)` for `1 < K ≤ 2`.
//! * `m` — signatures required so that the probability of *any* false
//!   diagnosis among the valid cached items stays below `δ` (Eq. 24):
//!   `m ≥ 6(f+1)(ln(1/δ) + ln n)`.
//! * `P_nf = 1 − p_f` — feeds the SIG hit ratio `h_sig` (Eq. 26/43).

/// Exact per-subset probability that a valid cached item sits in an
/// unmatching signature (Eq. 21 before approximation).
///
/// `f` is the number of items that truly need invalidation, `g` the
/// signature width in bits.
pub fn p_valid_in_unmatched(f: u32, g: u32) -> f64 {
    let fp1 = f as f64 + 1.0;
    let member = 1.0 / fp1;
    // Probability that at least one of the f invalid items is in the
    // subset and flips its signature.
    let some_invalid = (1.0 - (1.0 - member).powi(f as i32)) * (1.0 - 2f64.powi(-(g as i32)));
    member * some_invalid
}

/// The paper's closed-form approximation of Eq. 21:
/// `p ≈ (1/(f+1))(1 − 1/e)`.
pub fn p_valid_in_unmatched_approx(f: u32) -> f64 {
    (1.0 / (f as f64 + 1.0)) * (1.0 - (-1.0f64).exp())
}

/// Chernoff bound of Eq. 22 on the probability that a valid item's
/// unmatch count exceeds the threshold `K·m·p`:
/// `p_f ≤ exp(−(K−1)²·m·p/3)`.
///
/// # Panics
/// Panics unless `1 < K ≤ 2` (the range the paper derives the bound for).
pub fn chernoff_false_alarm_bound(k: f64, m: u32, p: f64) -> f64 {
    assert!(k > 1.0 && k <= 2.0, "Chernoff bound requires 1 < K <= 2, got {k}");
    (-(k - 1.0).powi(2) * m as f64 * p / 3.0).exp()
}

/// Probability of *no* false diagnosis for a single valid item,
/// `P_nf = 1 − p_f` — the factor by which SIG's hit ratio lags the
/// others (Eq. 26).
pub fn prob_no_false_diagnosis(k: f64, m: u32, p: f64) -> f64 {
    1.0 - chernoff_false_alarm_bound(k, m, p)
}

/// Number of combined signatures needed so that the probability of any
/// of the (at most `n`) valid cached items being falsely diagnosed is
/// below `delta` (Eq. 24, derived with `K = 2`):
/// `m ≥ 6(f+1)(ln(1/δ) + ln n)`.
pub fn required_signatures(f: u32, n: u64, delta: f64) -> u32 {
    assert!(delta > 0.0 && delta < 1.0, "confidence δ must be in (0,1)");
    assert!(n > 0, "database cannot be empty");
    let m = 6.0 * (f as f64 + 1.0) * ((1.0 / delta).ln() + (n as f64).ln());
    m.ceil() as u32
}

/// A complete SIG configuration: everything both sides must agree on,
/// with the derived analytical quantities attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigPlan {
    /// Diagnosable difference count `f`.
    pub f: u32,
    /// Signature width `g` in bits.
    pub g: u32,
    /// Number of combined signatures `m`.
    pub m: u32,
    /// Decision threshold factor `K` (`count > K·m·p` ⇒ invalid).
    pub k: f64,
    /// The per-subset false-positive probability `p` (Eq. 21).
    pub p: f64,
    /// Chernoff bound on per-item false diagnosis (Eq. 22).
    pub false_alarm_bound: f64,
    /// `P_nf = 1 − p_f` (Eq. 26).
    pub p_no_false: f64,
}

impl SigPlan {
    /// Builds the plan the paper's scenarios use: `m` from Eq. 24 with
    /// confidence `delta`, exact `p` from Eq. 21, and operating
    /// threshold factor `k`.
    ///
    /// The detection threshold must sit strictly between the expected
    /// unmatch count of a valid item (`m·p`) and that of an invalid item
    /// (`≈ m/(f+1)`); `k` is validated against that ceiling,
    /// `1/(1 − 1/e) ≈ 1.582`.
    pub fn new(f: u32, g: u32, n: u64, delta: f64, k: f64) -> Self {
        let p = p_valid_in_unmatched(f, g);
        let separation_ceiling = 1.0 / (1.0 - (-1.0f64).exp());
        assert!(
            k > 1.0 && k < separation_ceiling,
            "threshold factor K must lie in (1, {separation_ceiling:.3}) to separate \
             valid from invalid items, got {k}"
        );
        let m = required_signatures(f, n, delta);
        // The Chernoff expression is monotone in K; evaluate at the
        // operating threshold (it only strengthens toward K = 2).
        let false_alarm_bound = chernoff_false_alarm_bound(k.min(2.0), m, p);
        SigPlan {
            f,
            g,
            m,
            k,
            p,
            false_alarm_bound,
            p_no_false: 1.0 - false_alarm_bound,
        }
    }

    /// The default operating threshold factor: midway between the two
    /// expected counts.
    pub const DEFAULT_K: f64 = 1.25;

    /// The syndrome count threshold `m·δ_f = K·m·p` of the paper's
    /// literal rule (kept for the analytical comparisons).
    pub fn count_threshold(&self) -> f64 {
        self.k * self.m as f64 * self.p
    }

    /// The degree-normalized threshold fraction `θ = K·p·(f+1)` used by
    /// the operational decoder: item `i` is invalidated iff its unmatch
    /// count exceeds `θ·deg(i)`. Identical to the paper's rule in
    /// expectation (`E[deg] = m/(f+1)`), robust to degree variance; see
    /// `sw_signature::syndrome` for the rationale.
    pub fn degree_threshold_fraction(&self) -> f64 {
        self.k * self.p * (self.f as f64 + 1.0)
    }

    /// Report size in bits: `m · g` signatures, which the throughput
    /// formula (Eq. 25) upper-bounds as `6g(f+1)(ln(1/δ) + ln n)`.
    pub fn report_bits(&self) -> u64 {
        self.m as u64 * self.g as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_p_close_to_paper_approximation() {
        for f in [5u32, 10, 20, 200] {
            let exact = p_valid_in_unmatched(f, 16);
            let approx = p_valid_in_unmatched_approx(f);
            assert!(
                (exact - approx).abs() / approx < 0.1,
                "f={f}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn p_decreases_with_f() {
        let p10 = p_valid_in_unmatched(10, 16);
        let p200 = p_valid_in_unmatched(200, 16);
        assert!(p200 < p10);
    }

    #[test]
    fn chernoff_bound_shrinks_with_m() {
        let p = p_valid_in_unmatched(10, 16);
        let loose = chernoff_false_alarm_bound(2.0, 100, p);
        let tight = chernoff_false_alarm_bound(2.0, 1000, p);
        assert!(tight < loose);
        assert!(tight > 0.0 && loose < 1.0);
    }

    #[test]
    fn required_m_matches_eq24_scenario1() {
        // Scenario 1: f = 10, n = 1000, δ = 0.05:
        // m ≥ 6·11·(ln 20 + ln 1000) ≈ 6·11·(3.0 + 6.91) ≈ 653.6.
        let m = required_signatures(10, 1000, 0.05);
        assert_eq!(m, 654);
    }

    #[test]
    fn required_m_grows_logarithmically_with_n() {
        let m_small = required_signatures(10, 1_000, 0.05);
        let m_large = required_signatures(10, 1_000_000, 0.05);
        // ln grows by ln(1000) ≈ 6.9 → Δm ≈ 6·11·6.9 ≈ 456.
        let delta = m_large - m_small;
        assert!((400..520).contains(&delta), "Δm = {delta}");
    }

    #[test]
    fn plan_threshold_separates_valid_from_invalid() {
        let plan = SigPlan::new(10, 16, 1000, 0.05, SigPlan::DEFAULT_K);
        let valid_expected = plan.m as f64 * plan.p;
        let invalid_expected = plan.m as f64 / (plan.f as f64 + 1.0);
        let threshold = plan.count_threshold();
        assert!(
            valid_expected < threshold && threshold < invalid_expected,
            "threshold {threshold} must sit between {valid_expected} and {invalid_expected}"
        );
    }

    #[test]
    fn plan_report_bits() {
        let plan = SigPlan::new(10, 16, 1000, 0.05, SigPlan::DEFAULT_K);
        assert_eq!(plan.report_bits(), plan.m as u64 * 16);
    }

    #[test]
    fn p_no_false_is_high_for_paper_parameters() {
        let plan = SigPlan::new(10, 16, 1000, 0.05, SigPlan::DEFAULT_K);
        assert!(
            plan.p_no_false > 0.5,
            "P_nf {} unexpectedly low",
            plan.p_no_false
        );
    }

    #[test]
    #[should_panic(expected = "threshold factor")]
    fn k_beyond_separation_rejected() {
        let _ = SigPlan::new(10, 16, 1000, 0.05, 1.8);
    }

    #[test]
    #[should_panic(expected = "Chernoff bound requires")]
    fn chernoff_k_range_enforced() {
        let _ = chernoff_false_alarm_bound(0.5, 100, 0.05);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn delta_range_enforced() {
        let _ = required_signatures(10, 1000, 1.5);
    }
}
