//! # sw-signature — combined-signature machinery for the SIG strategy
//!
//! Implements the file-comparison-style signature scheme the paper adapts
//! from Barbará & Lipton (1991) and Rangarajan & Fussell (1991) (§3.3):
//!
//! * every item has a `g`-bit checksum of its value ([`sig::ItemSignature`]);
//! * `m` subsets `S_1 … S_m` of the database are chosen a priori, each
//!   item belonging to `S_j` independently with probability `1/(f+1)`
//!   ([`subsets::SubsetFamily`] — membership is *derived from a shared
//!   seed*, so server and clients agree without ever exchanging the
//!   sets, exactly matching "universally known and agreed upon before
//!   any exchange of information takes place");
//! * the server broadcasts the XOR-combined signature of every subset;
//! * a client compares the broadcast signatures of subsets it caches
//!   against its stored copies and diagnoses items appearing in "too
//!   many" unmatching subsets — more than `m·δ_f` with `δ_f = K·p` —
//!   as invalid ([`syndrome::SyndromeDecoder`]);
//! * [`bounds`] provides the analytical side: the per-subset false-alarm
//!   probability `p` (Eq. 21), the Chernoff bound on false diagnosis
//!   (Eq. 22), the required number of signatures `m` (Eq. 24), and the
//!   probability `P_nf` of no false diagnosis used by the hit-ratio
//!   model (Eq. 26/43).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod sig;
pub mod subsets;
pub mod syndrome;

pub use bounds::{chernoff_false_alarm_bound, p_valid_in_unmatched, prob_no_false_diagnosis, required_signatures, SigPlan};
pub use sig::{combine, item_signature, CombinedSignature, ItemSignature};
pub use subsets::SubsetFamily;
pub use syndrome::{Diagnosis, SyndromeDecoder};
