//! Item signatures and their XOR combination.
//!
//! "For each item i in the database, we can compute a signature sig(i),
//! based on the value of the item. If the signature has s bits, the
//! probability of two different items having the same signature is 2^−s.
//! The signatures for a set of items can be combined into one by
//! performing Exclusive OR of the individual signatures." (§3.3)
//!
//! The checksum itself is a strong 64-bit mix (two rounds of the
//! SplitMix64 finalizer over item id and value) truncated to the low `g`
//! bits, which empirically meets the 2^−g collision model the analysis
//! assumes; a unit test estimates the collision rate.

/// A `g`-bit item signature, stored in the low bits of a `u64`.
pub type ItemSignature = u64;

/// A `g`-bit combined (XOR-ed) signature of a subset of items.
pub type CombinedSignature = u64;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Computes the `g`-bit signature of item `item` holding `value`.
///
/// Signatures depend on the item id as well as the value, so two items
/// holding equal values still contribute distinct terms to a combined
/// signature — without this, swapping the values of two items in the
/// same subset would go undetected.
///
/// # Panics
/// Panics if `g` is zero or greater than 64.
#[inline]
pub fn item_signature(item: u64, value: u64, g: u32) -> ItemSignature {
    assert!((1..=64).contains(&g), "signature width must be in 1..=64, got {g}");
    let h = mix64(mix64(item.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ value).wrapping_add(item));
    if g == 64 {
        h
    } else {
        h & ((1u64 << g) - 1)
    }
}

/// XOR-combines a set of signatures (associative and commutative; the
/// empty combination is 0).
#[inline]
pub fn combine<I: IntoIterator<Item = ItemSignature>>(sigs: I) -> CombinedSignature {
    sigs.into_iter().fold(0, |acc, s| acc ^ s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_is_deterministic() {
        assert_eq!(item_signature(5, 99, 16), item_signature(5, 99, 16));
    }

    #[test]
    fn signature_depends_on_value() {
        assert_ne!(item_signature(5, 99, 32), item_signature(5, 100, 32));
    }

    #[test]
    fn signature_depends_on_item_id() {
        assert_ne!(item_signature(5, 99, 32), item_signature(6, 99, 32));
    }

    #[test]
    fn signature_fits_in_g_bits() {
        for g in [1, 8, 16, 63] {
            for v in 0..100 {
                let s = item_signature(v, v * 31 + 7, g);
                assert!(s < (1u64 << g), "sig {s} exceeds {g} bits");
            }
        }
    }

    #[test]
    fn full_width_signature_allowed() {
        let _ = item_signature(1, 2, 64);
    }

    #[test]
    #[should_panic(expected = "signature width")]
    fn zero_width_rejected() {
        let _ = item_signature(1, 2, 0);
    }

    #[test]
    fn combine_is_commutative_and_associative() {
        let a = item_signature(1, 10, 16);
        let b = item_signature(2, 20, 16);
        let c = item_signature(3, 30, 16);
        assert_eq!(combine([a, b, c]), combine([c, a, b]));
        assert_eq!(combine([combine([a, b]), c]), combine([a, combine([b, c])]));
    }

    #[test]
    fn combine_empty_is_zero() {
        assert_eq!(combine(std::iter::empty()), 0);
    }

    #[test]
    fn xor_update_replaces_member() {
        // Incremental maintenance: combined ^ old ^ new swaps one member.
        let old = item_signature(7, 1, 16);
        let new = item_signature(7, 2, 16);
        let others = combine([item_signature(1, 5, 16), item_signature(2, 6, 16)]);
        let before = others ^ old;
        let after = before ^ old ^ new;
        assert_eq!(after, others ^ new);
    }

    #[test]
    fn equal_sets_equal_combined() {
        let items: Vec<u64> = (0..50).collect();
        let sig1 = combine(items.iter().map(|&i| item_signature(i, i * 3, 16)));
        let sig2 = combine(items.iter().rev().map(|&i| item_signature(i, i * 3, 16)));
        assert_eq!(sig1, sig2);
    }

    #[test]
    fn collision_rate_tracks_two_to_minus_g() {
        // With g = 8 the collision probability of two random values is
        // 1/256 ≈ 0.39%. Estimate over 100k pairs; allow generous slack.
        let g = 8;
        let trials = 100_000u64;
        let mut collisions = 0u64;
        for t in 0..trials {
            let a = item_signature(1, t * 2 + 1, g);
            let b = item_signature(1, t * 2 + 2, g);
            if a == b {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expected = 1.0 / 256.0;
        assert!(
            (rate - expected).abs() < expected,
            "collision rate {rate} far from {expected}"
        );
    }

    #[test]
    fn value_swap_between_items_is_detected() {
        // The motivating property: swapping values of two items in the
        // same subset must change the combined signature.
        let before = combine([item_signature(1, 100, 32), item_signature(2, 200, 32)]);
        let after = combine([item_signature(1, 200, 32), item_signature(2, 100, 32)]);
        assert_ne!(before, after);
    }
}
