//! Criterion benches live under benches/; see Cargo.toml bench targets.
