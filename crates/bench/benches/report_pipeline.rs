//! Microbenches of the report pipeline: server-side report building
//! (TS/AT/SIG), client-side report processing, and the signature
//! primitives — the per-interval hot path of every strategy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sleepers::client::{AtHandler, Cache, ReportHandler, SigHandler, TsHandler};
use sleepers::server::{AtBuilder, Database, ReportBuilder, SigBuilder, TsBuilder, UpdateEngine};
use sleepers::signature::{item_signature, SigPlan, SubsetFamily};
use sleepers::sim::{MasterSeed, SimDuration, SimTime, StreamId};
use std::hint::black_box;

fn loaded_db(n: u64, mu: f64, horizon: f64) -> Database {
    let mut rng = MasterSeed(1).stream(StreamId::Updates);
    let mut db = Database::new(n, |i| i, SimDuration::from_secs(horizon * 2.0));
    let mut engine = UpdateEngine::new(n, mu, &mut rng);
    engine.advance(
        &mut db,
        SimTime::ZERO,
        SimTime::from_secs(horizon),
        &mut rng,
    );
    db
}

fn bench_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("report_build");
    for n in [1_000u64, 100_000] {
        let db = loaded_db(n, 1e-4, 1_000.0);
        let t_i = SimTime::from_secs(1_000.0);

        group.throughput(Throughput::Elements(n));
        group.bench_function(format!("ts/n={n}"), |b| {
            let mut builder = TsBuilder::new(SimDuration::from_secs(10.0), 100);
            b.iter(|| black_box(builder.build(100, t_i, &db)))
        });
        group.bench_function(format!("at/n={n}"), |b| {
            let mut builder = AtBuilder::new(SimDuration::from_secs(10.0));
            b.iter(|| black_box(builder.build(100, t_i, &db)))
        });
    }
    group.finish();

    // SIG: initialization is O(n·m) once; the per-interval cost is the
    // incremental XOR patch + a clone of the m signatures.
    let mut group = c.benchmark_group("sig_build");
    let n = 1_000u64;
    let db = loaded_db(n, 1e-4, 1_000.0);
    let plan = SigPlan::new(10, 16, n, 0.05, SigPlan::DEFAULT_K);
    let family = SubsetFamily::new(9, plan.m, plan.f);
    group.bench_function("init/n=1000", |b| {
        b.iter(|| black_box(SigBuilder::new(plan, family, &db)))
    });
    group.bench_function("per_report/n=1000", |b| {
        let mut builder = SigBuilder::new(plan, family, &db);
        b.iter(|| black_box(builder.build(1, SimTime::from_secs(10.0), &db)))
    });
    group.finish();
}

fn bench_handlers(c: &mut Criterion) {
    let mut group = c.benchmark_group("report_process");
    let n = 1_000u64;
    let db = loaded_db(n, 1e-3, 1_000.0);
    let t_i = SimTime::from_secs(1_000.0);
    let cache_seed = || {
        let mut cache = Cache::unbounded();
        for i in 0..50 {
            cache.insert(i, i, SimTime::from_secs(990.0));
        }
        cache
    };

    let ts_payload = TsBuilder::new(SimDuration::from_secs(10.0), 50).build(100, t_i, &db);
    group.bench_function("ts/cache=50", |b| {
        b.iter_batched(
            cache_seed,
            |mut cache| {
                let mut h = TsHandler::new(SimDuration::from_secs(10.0), 50);
                black_box(h.process(&mut cache, &ts_payload, Some(SimTime::from_secs(990.0))))
            },
            BatchSize::SmallInput,
        )
    });

    let at_payload = AtBuilder::new(SimDuration::from_secs(10.0)).build(100, t_i, &db);
    group.bench_function("at/cache=50", |b| {
        b.iter_batched(
            cache_seed,
            |mut cache| {
                let mut h = AtHandler::new(SimDuration::from_secs(10.0));
                black_box(h.process(&mut cache, &at_payload, Some(SimTime::from_secs(990.0))))
            },
            BatchSize::SmallInput,
        )
    });

    let plan = SigPlan::new(10, 16, n, 0.05, SigPlan::DEFAULT_K);
    let family = SubsetFamily::new(9, plan.m, plan.f);
    let mut sig_builder = SigBuilder::new(plan, family, &db);
    let sig_payload = sig_builder.build(100, t_i, &db);
    group.bench_function("sig/cache=50", |b| {
        b.iter_batched(
            || {
                let mut h = SigHandler::new(sig_builder.decoder());
                let mut cache = cache_seed();
                // Prime the tracked signatures with one report.
                let _ = h.process(&mut cache, &sig_payload, None);
                (h, cache)
            },
            |(mut h, mut cache)| {
                black_box(h.process(&mut cache, &sig_payload, Some(SimTime::from_secs(990.0))))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_signature_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("sig_primitives");
    group.throughput(Throughput::Elements(1));
    group.bench_function("item_signature", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(item_signature(black_box(i), black_box(i * 31), 16))
        })
    });
    let family = SubsetFamily::new(3, 654, 10);
    group.bench_function("subset_membership", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(family.contains((i % 654) as u32, i))
        })
    });
    group.bench_function("subsets_of_item", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(family.subsets_of(i).count())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_builders,
    bench_handlers,
    bench_signature_primitives
);
criterion_main!(benches);
