//! Microbenches for the hot-path overhaul: per-MU report application,
//! dense vs hashed per-item tables, and wake-heap vs full-scan sleeper
//! handling. These are the three mechanisms the per-interval loop is
//! built from; `BENCH_report.json` (see the `bench_report` binary)
//! measures their end-to-end effect.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sleepers::client::{MobileUnit, MuConfig, ReplacementPolicy, TsHandler};
use sleepers::server::{Database, ItemTable, ReportBuilder, TsBuilder, UpdateEngine};
use sleepers::sim::{MasterSeed, SimDuration, SimTime, StreamId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

const N_ITEMS: u64 = 10_000;

fn loaded_db(mu: f64, horizon: f64) -> Database {
    let mut rng = MasterSeed(1).stream(StreamId::Updates);
    let mut db = Database::new(N_ITEMS, |i| i, SimDuration::from_secs(horizon * 2.0));
    let mut engine = UpdateEngine::new(N_ITEMS, mu, &mut rng);
    engine.advance(
        &mut db,
        SimTime::ZERO,
        SimTime::from_secs(horizon),
        &mut rng,
    );
    db
}

/// One interval of a single MU: generate queries, hear the TS report,
/// answer from cache — with the cache dense (universe known) or hashed.
fn bench_report_apply_per_mu(c: &mut Criterion) {
    let db = loaded_db(1e-4, 1_000.0);
    let latency = SimDuration::from_secs(10.0);
    let payload = TsBuilder::new(latency, 100).build(100, SimTime::from_secs(1_000.0), &db);

    let mut group = c.benchmark_group("report_apply_per_mu");
    group.throughput(Throughput::Elements(1));
    for (label, universe) in [("dense_cache", Some(N_ITEMS)), ("hashed_cache", None)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut rng = MasterSeed(7).stream(StreamId::Queries { index: 1 });
                    let mut unit = MobileUnit::new(
                        MuConfig {
                            id: 1,
                            hotspot: (0..100).collect(),
                            query_rate_per_item: 0.02,
                            sleep_probability: 0.0,
                            cache_capacity: None,
                            replacement: ReplacementPolicy::Lru,
                            replacement_window: SimDuration::ZERO,
                            piggyback_hits: false,
                            item_universe: universe,
                        },
                        Box::new(TsHandler::new(latency, 100)),
                        &mut rng,
                    );
                    for item in 0..50 {
                        unit.install_answer(sleepers::server::QueryAnswer {
                            item,
                            value: item,
                            timestamp: SimTime::from_secs(995.0),
                        });
                    }
                    let mut qrng = MasterSeed(8).stream(StreamId::Queries { index: 2 });
                    unit.begin_awake_interval(
                        SimTime::from_secs(990.0),
                        SimTime::from_secs(1_000.0),
                        &mut qrng,
                    );
                    unit
                },
                |mut unit| black_box(unit.hear_report_and_answer(&payload)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// The raw table layouts under a per-interval access pattern: populate,
/// point-probe, ordered scan.
fn bench_item_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("item_table");
    group.throughput(Throughput::Elements(N_ITEMS));
    for (label, make) in [
        ("dense", ItemTable::dense as fn(u64) -> ItemTable<u64>),
        ("hashed", (|_| ItemTable::hashed()) as fn(u64) -> ItemTable<u64>),
    ] {
        group.bench_function(format!("{label}/fill_probe_scan"), |b| {
            b.iter(|| {
                let mut t = make(N_ITEMS);
                for item in 0..N_ITEMS {
                    t.insert(item, item * 3);
                }
                // Pseudo-random probes (fixed LCG, not wall-clock).
                let mut x = 0x9E37u64;
                let mut found = 0u64;
                for _ in 0..N_ITEMS {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if t.get(x % N_ITEMS).is_some() {
                        found += 1;
                    }
                }
                let sum: u64 = t.iter_sorted().map(|(_, &v)| v).sum();
                black_box((found, sum))
            })
        });
    }
    group.finish();
}

/// Sleeper handling: touch every client every interval (the old loop —
/// a Bernoulli sleep draw plus per-client bookkeeping whether or not
/// the unit is awake) vs pop only the due wake-ups from a heap, one
/// geometric run draw per wake (the cell driver now). Same sleep
/// process, same client count, same horizon.
fn bench_wake_scan(c: &mut Criterion) {
    use sleepers::sim::process::BernoulliIntervalProcess;

    // The paper's "sleeper" regime: long disconnection runs. This is
    // where skipping sleeping clients pays — at small s the Bernoulli
    // scan is already cheap and the heap is a wash.
    const CLIENTS: u64 = 1_000;
    const INTERVALS: u64 = 1_000;
    const S: f64 = 0.99;

    let mut group = c.benchmark_group("wake_scan");
    group.throughput(Throughput::Elements(CLIENTS * INTERVALS));
    let process = BernoulliIntervalProcess::new(S);

    group.bench_function("full_scan", |b| {
        b.iter(|| {
            let mut rng = MasterSeed(42).stream(StreamId::Sleep { index: 0 });
            // The old driver touched every client every interval: one
            // sleep draw plus an asleep/awake stats bump each.
            let mut awake_events = 0u64;
            let mut asleep_credits = 0u64;
            for _ in 0..INTERVALS {
                for _ in 0..CLIENTS {
                    if process.draw_asleep(&mut rng) {
                        asleep_credits += 1;
                    } else {
                        awake_events += 1;
                    }
                }
            }
            black_box((awake_events, asleep_credits))
        })
    });

    group.bench_function("wake_heap", |b| {
        b.iter(|| {
            let mut rng = MasterSeed(42).stream(StreamId::Sleep { index: 0 });
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut asleep_credits = 0u64;
            for idx in 0..CLIENTS {
                let k = process.draw_sleep_run(&mut rng);
                if k != u64::MAX {
                    heap.push(Reverse((1u64.saturating_add(k), idx)));
                }
            }
            let mut awake_events = 0u64;
            for i in 1..=INTERVALS {
                while let Some(&Reverse((wake, idx))) = heap.peek() {
                    if wake > i {
                        break;
                    }
                    heap.pop();
                    awake_events += 1;
                    asleep_credits += wake - 1;
                    let k = process.draw_sleep_run(&mut rng);
                    if k != u64::MAX {
                        heap.push(Reverse((i.saturating_add(1 + k), idx)));
                    }
                }
            }
            black_box((awake_events, asleep_credits))
        })
    });
    group.finish();
}

/// End-to-end check that the cell driver's cost tracks the *awake*
/// population: with the wake-heap, raising s at fixed client count
/// should cut per-interval time roughly in proportion to 1 − s.
fn bench_interval_cost_vs_sleep(c: &mut Criterion) {
    use sleepers::prelude::*;

    let mut group = c.benchmark_group("interval_cost_vs_sleep");
    for s in [0.0, 0.9, 0.99] {
        let mut params = ScenarioParams::scenario1();
        params.n_items = 2_000;
        let params = params.with_s(s);
        group.bench_function(format!("ts/s={s}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = CellSimulation::new(
                        CellConfig::new(params)
                            .with_clients(100)
                            .with_hotspot_size(30)
                            .with_seed(3),
                        Strategy::BroadcastTimestamps,
                    )
                    .expect("valid");
                    sim.run(10).expect("warm-up fits");
                    sim
                },
                |mut sim| {
                    for _ in 0..20 {
                        black_box(sim.step().expect("fits"));
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_report_apply_per_mu,
    bench_item_table,
    bench_wake_scan,
    bench_interval_cost_vs_sleep
);
criterion_main!(benches);
