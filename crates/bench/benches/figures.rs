//! One Criterion group per paper figure (Figures 3–8): each benchmark
//! regenerates the figure's analytic effectiveness sweep (the exact
//! computation behind the published curves) and, separately, one
//! simulated validation point, so `cargo bench` exercises the same code
//! paths the experiment binaries use to reproduce the evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sleepers::prelude::*;
use std::hint::black_box;

fn figure_params(figure: u8) -> (ScenarioParams, SweepAxis) {
    let base = match figure {
        3 => ScenarioParams::scenario1(),
        4 => ScenarioParams::scenario2(),
        5 => ScenarioParams::scenario3(),
        6 => ScenarioParams::scenario4(),
        7 => ScenarioParams::scenario5(),
        _ => ScenarioParams::scenario6(),
    };
    let axis = if figure <= 6 {
        SweepAxis::sleep_default()
    } else {
        SweepAxis::update_default()
    };
    (base, axis)
}

fn bench_figures(c: &mut Criterion) {
    for figure in 3u8..=8 {
        let (base, axis) = figure_params(figure);
        let mut group = c.benchmark_group(format!("fig{figure}"));
        group.bench_function("analytic_sweep", |b| {
            b.iter(|| {
                let sweep = Sweep::run("bench", black_box(base), black_box(axis));
                black_box(sweep.points.len())
            })
        });
        group.bench_function("simulated_point", |b| {
            // One AT cell at the middle of the sweep, small scale.
            let mut params = axis.apply(base, axis.points()[axis.points().len() / 2]);
            if params.n_items > 2_000 {
                params.n_items = 2_000;
            }
            b.iter_batched(
                || {
                    CellSimulation::new(
                        CellConfig::new(params)
                            .with_clients(4)
                            .with_hotspot_size(10)
                            .with_seed(1),
                        Strategy::AmnesicTerminals,
                    )
                    .expect("valid")
                },
                |mut sim| {
                    let r = sim.run(20).expect("fits");
                    black_box(r.hit_ratio())
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
