//! End-to-end simulation benches: cost of one broadcast interval per
//! strategy, and the E11 hit-ratio validation computation (simulated
//! `h` vs the closed forms) at a reduced scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sleepers::prelude::*;
use std::hint::black_box;

fn params() -> ScenarioParams {
    let mut p = ScenarioParams::scenario1();
    p.n_items = 1_000;
    p.k = 10;
    p.with_s(0.3)
}

fn bench_interval_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_step");
    group.throughput(Throughput::Elements(1));
    for strategy in [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
        Strategy::NoCache,
        Strategy::AdaptiveTs {
            method: FeedbackMethod::Method1,
            eval_period: 10,
            step: 2,
        },
        Strategy::QuasiDelay { alpha_intervals: 10 },
    ] {
        group.bench_function(strategy.name(), |b| {
            b.iter_batched(
                || {
                    let mut sim = CellSimulation::new(
                        CellConfig::new(params())
                            .with_clients(10)
                            .with_hotspot_size(30)
                            .with_seed(5),
                        strategy,
                    )
                    .expect("valid");
                    sim.run(20).expect("warm-up fits");
                    sim
                },
                |mut sim| {
                    for _ in 0..10 {
                        black_box(sim.step().expect("fits"));
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_hit_ratio_validation(c: &mut Criterion) {
    // E11 as a benchmark: simulate + compare to Eq. 41 in one shot.
    c.bench_function("hit_ratio_validation/at", |b| {
        b.iter_batched(
            || {
                CellSimulation::new(
                    CellConfig::new(params())
                        .with_clients(6)
                        .with_hotspot_size(15)
                        .with_seed(11),
                    Strategy::AmnesicTerminals,
                )
                .expect("valid")
            },
            |mut sim| {
                let report = sim.run(60).expect("fits");
                let model = h_at(&params());
                black_box((report.hit_ratio() - model).abs())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_safety_checker(c: &mut Criterion) {
    // The full-history invariant checker (used heavily by the test
    // suite) — worth tracking since it shadows every update.
    c.bench_function("safety_checked_interval", |b| {
        b.iter_batched(
            || {
                CellSimulation::new(
                    CellConfig::new(params())
                        .with_clients(6)
                        .with_hotspot_size(15)
                        .with_seed(13)
                        .with_safety_checking(),
                    Strategy::BroadcastTimestamps,
                )
                .expect("valid")
            },
            |mut sim| {
                for _ in 0..10 {
                    black_box(sim.step().expect("fits"));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_interval_step,
    bench_hit_ratio_validation,
    bench_safety_checker
);
criterion_main!(benches);
