//! Benches for the §7/§8 extension experiments: `quasi_report_reduction`
//! (E12), `adaptive_vs_static` (E13), and `sig_bounds` (E14) — reduced-
//! scale versions of the experiment binaries, so regressions in the
//! extension code paths show up in `cargo bench` output.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sleepers::prelude::*;
use sleepers::quasi::EpsilonFilter;
use sleepers::signature::{chernoff_false_alarm_bound, p_valid_in_unmatched, required_signatures};
use std::hint::black_box;

fn sleepy() -> ScenarioParams {
    let mut p = ScenarioParams::scenario1();
    p.n_items = 500;
    p.mu = 1e-3;
    p.k = 5;
    p.with_s(0.5)
}

fn run_cell(strategy: Strategy, intervals: u64) -> SimulationReport {
    let mut sim = CellSimulation::new(
        CellConfig::new(sleepy())
            .with_clients(8)
            .with_hotspot_size(20)
            .with_seed(21),
        strategy,
    )
    .expect("valid");
    sim.run(intervals).expect("fits")
}

fn bench_quasi(c: &mut Criterion) {
    let mut group = c.benchmark_group("quasi_report_reduction");
    group.sample_size(10);
    group.bench_function("plain_ts_60_intervals", |b| {
        b.iter(|| black_box(run_cell(Strategy::BroadcastTimestamps, 60).report_bits_total))
    });
    group.bench_function("quasi_delay_60_intervals", |b| {
        b.iter(|| {
            black_box(run_cell(Strategy::QuasiDelay { alpha_intervals: 5 }, 60).report_bits_total)
        })
    });
    group.bench_function("epsilon_filter_10k_updates", |b| {
        b.iter_batched(
            || {
                let mut f = EpsilonFilter::new(10);
                for i in 0..100u64 {
                    f.seed(i, 10_000);
                }
                f
            },
            |mut f| {
                let mut v = 10_000u64;
                for i in 0..10_000u64 {
                    v = v.wrapping_add(i % 7).wrapping_sub(i % 5);
                    black_box(f.should_report(i % 100, v));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_vs_static");
    group.sample_size(10);
    group.bench_function("static_ts_60_intervals", |b| {
        b.iter(|| black_box(run_cell(Strategy::BroadcastTimestamps, 60).hit_ratio()))
    });
    for (label, method) in [
        ("method1", FeedbackMethod::Method1),
        ("method2", FeedbackMethod::Method2),
    ] {
        group.bench_function(format!("adaptive_{label}_60_intervals"), |b| {
            b.iter(|| {
                black_box(
                    run_cell(
                        Strategy::AdaptiveTs {
                            method,
                            eval_period: 10,
                            step: 2,
                        },
                        60,
                    )
                    .hit_ratio(),
                )
            })
        });
    }
    group.finish();
}

fn bench_sig_bounds(c: &mut Criterion) {
    // E14's analytical side: p (Eq. 21), m (Eq. 24), Chernoff (Eq. 22)
    // across the paper's f values.
    c.bench_function("sig_bounds", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for f in [1u32, 10, 20, 200] {
                let p = p_valid_in_unmatched(black_box(f), 16);
                let m = required_signatures(f, 1_000_000, 0.05);
                acc += chernoff_false_alarm_bound(2.0, m, p);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_quasi, bench_adaptive, bench_sig_bounds);
criterion_main!(benches);
