//! Microbenches for the mesh layer: the per-interval cost of stepping
//! a sharded multi-cell simulation, and what the two mesh mechanisms —
//! the migration barrier and the shared-backbone replicas — add on top
//! of the single-cell driver the `hot_paths` bench covers.
//!
//! The interesting comparisons:
//! - `single_cell` vs `mesh/ring4/stationary` at one thread: the
//!   sharding envelope itself (barrier checks, per-shard error
//!   surfacing) should cost ~nothing per interval when nobody moves.
//! - `stationary` vs `markov` at the same size: the price of live
//!   migration — husk detach, arrival attach, digest-history
//!   comparison — paid only at barriers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sleepers::prelude::*;
use std::hint::black_box;
use sw_mesh::{CellGraph, MeshConfig, MeshSimulation, MobilityModel};
use sw_sim::{MasterSeed, ParallelRunner};

const STEPS: u64 = 20;

fn base_config() -> CellConfig {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 2_000;
    let params = params.with_s(0.4);
    CellConfig::new(params)
        .with_clients(8)
        .with_hotspot_size(30)
}

fn mesh_config(graph: CellGraph, mobility: MobilityModel) -> MeshConfig {
    MeshConfig::new(graph, base_config(), MasterSeed(0xBE_4C)).with_mobility(mobility)
}

/// A warmed-up mesh ready to step (construction and cache cold-start
/// excluded from the measurement).
fn warm_mesh(graph: CellGraph, mobility: MobilityModel, threads: usize) -> MeshSimulation {
    let mut mesh = MeshSimulation::with_runner(
        mesh_config(graph, mobility),
        Strategy::BroadcastTimestamps,
        ParallelRunner::new(threads),
    )
    .expect("valid mesh config");
    mesh.run(10).expect("warm-up fits");
    mesh
}

/// The headline number: wall time per simulated interval for a 4-cell
/// ring, stationary vs migrating, sharded over 1 and 4 threads.
fn bench_mesh_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_step");
    for (label, mobility) in [
        ("stationary", MobilityModel::Stationary),
        ("markov_0.1", MobilityModel::Markov { rate: 0.1 }),
    ] {
        for threads in [1usize, 4] {
            group.bench_function(format!("ring4/{label}/threads={threads}"), |b| {
                b.iter_batched(
                    || warm_mesh(CellGraph::ring(4), mobility, threads),
                    |mut mesh| {
                        for _ in 0..STEPS {
                            mesh.step().expect("fits");
                        }
                        black_box(mesh);
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

/// The baseline the envelope is judged against: the same cell config
/// run through the plain single-cell driver — no barrier, no backbone.
fn bench_single_cell_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_step");
    group.bench_function("single_cell_baseline", |b| {
        b.iter_batched(
            || {
                let mut sim = CellSimulation::new(
                    base_config().with_seed(0xBE_4C),
                    Strategy::BroadcastTimestamps,
                )
                .expect("valid config");
                sim.run(10).expect("warm-up fits");
                sim
            },
            |mut sim| {
                for _ in 0..STEPS {
                    black_box(sim.step().expect("fits"));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_mesh_step, bench_single_cell_baseline);
criterion_main!(benches);
