//! The §5 asymptotic tables as benchmarks: `table_s_limits` regenerates
//! the s → 0 / s → 1 table, `table_u0_limits` the u₀ → 1 table, and
//! `section5_conclusions` the programmatic claim checks — the same
//! computations the `asymptotics` experiment binary prints.

use criterion::{criterion_group, criterion_main, Criterion};
use sleepers::analysis::asymptotics::{
    section5_conclusions, sleep_limit_table, update_limit_table,
};
use sleepers::prelude::ScenarioParams;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let base = ScenarioParams::scenario1();

    c.bench_function("table_s_limits", |b| {
        b.iter(|| {
            let t = sleep_limit_table(black_box(&base));
            black_box(t.workaholic.len() + t.sleeper.len())
        })
    });

    c.bench_function("table_u0_limits", |b| {
        b.iter(|| {
            let mut rows = 0;
            for s in [0.0, 0.3, 0.7] {
                rows += update_limit_table(black_box(&base.with_s(s))).len();
            }
            black_box(rows)
        })
    });

    c.bench_function("section5_conclusions", |b| {
        b.iter(|| {
            let verdicts = section5_conclusions(black_box(&base));
            assert!(verdicts.iter().all(|(_, ok)| *ok));
            black_box(verdicts.len())
        })
    });
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
