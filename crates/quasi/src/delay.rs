//! The delay condition (Eq. 27) and obligation lists.
//!
//! `∀ t ≥ 0 ∃ k, 0 ≤ k ≤ α : x'(t) = x(t − k)` — a cached copy may lag
//! the server by at most `α` seconds, with `α = j·L` a multiple of the
//! latency.
//!
//! Server side ([`ObligationTracker`]): "For every item x in the
//! database, the server keeps a vector obligationlist(x) ... built as a
//! queue. If x is reported at interval i, the value i is pushed ... If
//! an MU queries the server for x at a time just before interval p, the
//! value p is pushed. When it comes time to build the report, the
//! server checks if the next interval is equal to l + j, where l is the
//! first element of the queue. If so, x can be considered for reporting
//! in case it also satisfies the normal conditions; otherwise it need
//! not be considered." An empty queue means no outstanding copies — the
//! item need not be reported at all.
//!
//! Client side ([`DelayQuasiHandler`]): the cache entry is kept until
//! it is invalidated by a report or it reaches age `α`; at that point
//! the unit waits for the next report — "if x is there, it drops the
//! cache, otherwise it keeps it and makes ts(x) equal to the time of
//! the current report." A client that *missed* the due report cannot
//! apply that rule safely, so entries older than `α` are dropped
//! whenever the unit slept through any report (gap > L).

use std::collections::VecDeque;

use sw_client::{Cache, ProcessOutcome, ReportHandler};
use sw_server::{ItemId, ItemTable};
use sw_sim::{SimDuration, SimTime};
use sw_wireless::FramePayload;

/// Server-side obligation lists for the delay condition.
#[derive(Debug, Clone)]
pub struct ObligationTracker {
    /// `α` in intervals (`α = j·L`).
    alpha_intervals: u64,
    lists: ItemTable<VecDeque<u64>>,
}

impl ObligationTracker {
    /// Creates the tracker with allowed lag `α = alpha_intervals · L`
    /// (hashed table — arbitrary item ids).
    pub fn new(alpha_intervals: u64) -> Self {
        assert!(alpha_intervals >= 1, "α must be at least one interval");
        ObligationTracker {
            alpha_intervals,
            lists: ItemTable::hashed(),
        }
    }

    /// Same, but with dense obligation lists over items `0..universe` —
    /// `due` is probed for every database item on every report build,
    /// so the dense layout keeps that scan hash-free.
    pub fn for_universe(alpha_intervals: u64, universe: u64) -> Self {
        assert!(alpha_intervals >= 1, "α must be at least one interval");
        ObligationTracker {
            alpha_intervals,
            lists: ItemTable::dense(universe),
        }
    }

    /// The lag bound in intervals (`j`).
    pub fn alpha_intervals(&self) -> u64 {
        self.alpha_intervals
    }

    /// Records that `item` was reported at interval `i` (every client
    /// copy is now at most as old as `T_i`).
    pub fn on_reported(&mut self, item: ItemId, interval: u64) {
        self.lists
            .get_or_insert_with(item, VecDeque::new)
            .push_back(interval);
    }

    /// Records an uplink fetch of `item` answered just before interval
    /// `p` (a fresh copy went out, stamped `p`).
    pub fn on_uplink(&mut self, item: ItemId, interval: u64) {
        self.lists
            .get_or_insert_with(item, VecDeque::new)
            .push_back(interval);
    }

    /// Whether `item` must be *considered* for the report closing
    /// interval `next_interval`: true iff the oldest outstanding copy
    /// would exceed its allowed lag, i.e. `next_interval ≥ l + j`.
    /// Consuming the head entry on a positive answer is the caller's
    /// job via [`Self::consume`] once the item is actually reported (or
    /// verified unchanged).
    pub fn due(&self, item: ItemId, next_interval: u64) -> bool {
        self.lists
            .get(item)
            .and_then(|q| q.front())
            .is_some_and(|&l| next_interval >= l + self.alpha_intervals)
    }

    /// Pops obligations satisfied by the report at `interval` (all
    /// heads `l` with `l + j ≤ interval`): the broadcast either
    /// invalidated those copies or re-validated them, so the lag clock
    /// restarts — a re-validated item is obligated again from now.
    pub fn consume(&mut self, item: ItemId, interval: u64, revalidated: bool) {
        let j = self.alpha_intervals;
        if let Some(q) = self.lists.get_mut(item) {
            while q.front().is_some_and(|&l| l + j <= interval) {
                q.pop_front();
            }
            if revalidated {
                q.push_back(interval);
            }
            if q.is_empty() {
                self.lists.remove(item);
            }
        }
    }

    /// Number of items with outstanding obligations.
    pub fn outstanding(&self) -> usize {
        self.lists.len()
    }
}

/// Client half of the delay condition, layered on TS-style reports.
#[derive(Debug, Clone)]
pub struct DelayQuasiHandler {
    latency: SimDuration,
    /// `α` in seconds.
    alpha: SimDuration,
}

impl DelayQuasiHandler {
    /// Creates the handler with `α = alpha_intervals · L`.
    pub fn new(latency: SimDuration, alpha_intervals: u64) -> Self {
        assert!(alpha_intervals >= 1, "α must be at least one interval");
        assert!(!latency.is_zero(), "latency must be positive");
        DelayQuasiHandler {
            latency,
            alpha: latency.scaled(alpha_intervals as f64),
        }
    }

    /// The allowed lag `α`.
    pub fn alpha(&self) -> SimDuration {
        self.alpha
    }
}

impl ReportHandler for DelayQuasiHandler {
    fn name(&self) -> &'static str {
        "QD"
    }

    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        t_l: Option<SimTime>,
    ) -> ProcessOutcome {
        let (report_ts_micros, entries) = match payload {
            FramePayload::TimestampReport {
                report_ts_micros,
                entries,
            } => (*report_ts_micros, entries),
            other => panic!("delay-quasi handler fed a wrong report: {other:?}"),
        };
        let t_i = SimTime::from_secs(report_ts_micros as f64 / 1e6);
        let gap = match t_l {
            Some(t_l) => t_i.saturating_duration_since(t_l),
            None => SimDuration::from_secs(f64::MAX / 2.0),
        };
        let missed_reports = gap.as_secs() > self.latency.as_secs() * (1.0 + 1e-9);
        // Dense-id reports arrive item-sorted, so membership checks are
        // binary searches over the entry slice — no per-call hash map.
        let sorted_entries;
        let reported: &[(ItemId, u64)] = if entries.windows(2).all(|w| w[0].0 < w[1].0) {
            entries
        } else {
            let mut copy = entries.clone();
            copy.sort_unstable_by_key(|&(item, _)| item);
            sorted_entries = copy;
            &sorted_entries
        };

        let mut invalidated = Vec::new();
        let alpha_secs = self.alpha.as_secs();
        cache.retain_entries(|item, entry| {
            let age = t_i.saturating_duration_since(entry.timestamp);
            // The copy reaches its allowed lag exactly at age = α —
            // the same interval the server-side obligation comes due
            // (l + j). Checking with ≥ keeps client and server in
            // lockstep; a strict > would look one interval late, after
            // the server already popped the obligation.
            let over_alpha = age.as_secs() >= alpha_secs * (1.0 - 1e-12);
            let in_report = reported
                .binary_search_by_key(&item, |&(it, _)| it)
                .is_ok();
            // Cache is dropped when: the due report names the item, or
            // the unit slept past a report while over-α (it cannot know
            // whether the due report named it).
            if over_alpha && (in_report || missed_reports) {
                invalidated.push(item);
                return false;
            }
            if over_alpha {
                // The due report did not name it: re-validated, restart
                // the lag clock.
                entry.timestamp = t_i;
            }
            // Under α: keep as-is; the delay condition allows the lag,
            // so the entry's timestamp is NOT advanced (the lag clock
            // keeps running from the copy's birth).
            true
        });
        invalidated.sort_unstable();
        let revalidated = cache.len();
        ProcessOutcome {
            report_time: t_i,
            dropped_all: false,
            invalidated,
            revalidated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(t_i: f64, items: Vec<(u64, f64)>) -> FramePayload {
        FramePayload::TimestampReport {
            report_ts_micros: (t_i * 1e6) as u64,
            entries: items
                .into_iter()
                .map(|(i, t)| (i, (t * 1e6) as u64))
                .collect(),
        }
    }

    mod tracker {
        use super::super::ObligationTracker;

        #[test]
        fn item_without_copies_is_never_due() {
            let t = ObligationTracker::new(3);
            assert!(!t.due(1, 100));
            assert_eq!(t.outstanding(), 0);
        }

        #[test]
        fn due_exactly_at_l_plus_j() {
            let mut t = ObligationTracker::new(3);
            t.on_reported(1, 10);
            assert!(!t.due(1, 12));
            assert!(t.due(1, 13));
            assert!(t.due(1, 20));
        }

        #[test]
        fn uplink_creates_obligation() {
            let mut t = ObligationTracker::new(2);
            t.on_uplink(5, 7);
            assert!(t.due(5, 9));
        }

        #[test]
        fn consume_revalidated_restarts_clock() {
            let mut t = ObligationTracker::new(2);
            t.on_reported(1, 10);
            t.consume(1, 12, true);
            assert!(!t.due(1, 13), "fresh obligation from interval 12");
            assert!(t.due(1, 14));
        }

        #[test]
        fn consume_invalidated_clears() {
            let mut t = ObligationTracker::new(2);
            t.on_reported(1, 10);
            t.consume(1, 12, false);
            assert_eq!(t.outstanding(), 0);
            assert!(!t.due(1, 1000));
        }

        #[test]
        fn multiple_copies_queue_fifo() {
            let mut t = ObligationTracker::new(5);
            t.on_reported(1, 10);
            t.on_uplink(1, 12);
            // Due from the oldest copy: 10 + 5 = 15.
            assert!(t.due(1, 15));
            t.consume(1, 15, false); // pops the 10-entry only
            assert!(!t.due(1, 16), "next copy (12) is due at 17");
            assert!(t.due(1, 17));
        }
    }

    #[test]
    fn young_entries_keep_their_lag_clock() {
        let mut h = DelayQuasiHandler::new(SimDuration::from_secs(10.0), 3); // α = 30
        let mut c = Cache::unbounded();
        c.insert(1, 5, SimTime::from_secs(10.0));
        let _ = h.process(&mut c, &report(20.0, vec![]), Some(SimTime::from_secs(10.0)));
        // Age 10 < α: timestamp untouched (lag clock running).
        assert_eq!(c.peek(1).unwrap().timestamp, SimTime::from_secs(10.0));
    }

    #[test]
    fn over_alpha_unreported_is_revalidated() {
        let mut h = DelayQuasiHandler::new(SimDuration::from_secs(10.0), 2); // α = 20
        let mut c = Cache::unbounded();
        c.insert(1, 5, SimTime::from_secs(10.0));
        // Heard every report; at T=30 the age reaches exactly α — the
        // due instant — with the item absent from the report → keep and
        // restamp to T=30 (the lag clock restarts).
        for t in [20.0, 30.0, 40.0] {
            let _ = h.process(
                &mut c,
                &report(t, vec![]),
                Some(SimTime::from_secs(t - 10.0)),
            );
        }
        assert!(c.contains(1));
        assert_eq!(c.peek(1).unwrap().timestamp, SimTime::from_secs(30.0));
    }

    #[test]
    fn over_alpha_reported_is_dropped() {
        let mut h = DelayQuasiHandler::new(SimDuration::from_secs(10.0), 2);
        let mut c = Cache::unbounded();
        c.insert(1, 5, SimTime::from_secs(10.0));
        let out = h.process(
            &mut c,
            &report(40.0, vec![(1, 35.0)]),
            Some(SimTime::from_secs(30.0)),
        );
        assert_eq!(out.invalidated, vec![1]);
    }

    #[test]
    fn sleeper_over_alpha_drops_conservatively() {
        let mut h = DelayQuasiHandler::new(SimDuration::from_secs(10.0), 2);
        let mut c = Cache::unbounded();
        c.insert(1, 5, SimTime::from_secs(10.0));
        // Slept from 20 to 50 (gap 30 > L): over-α entries must go even
        // though this report does not name them.
        let out = h.process(&mut c, &report(50.0, vec![]), Some(SimTime::from_secs(20.0)));
        assert_eq!(out.invalidated, vec![1]);
    }

    #[test]
    fn sleeper_under_alpha_keeps_entry() {
        let mut h = DelayQuasiHandler::new(SimDuration::from_secs(10.0), 10); // α = 100
        let mut c = Cache::unbounded();
        c.insert(1, 5, SimTime::from_secs(10.0));
        // Slept 20→50; age 40 < 100: the delay condition still holds.
        let out = h.process(&mut c, &report(50.0, vec![]), Some(SimTime::from_secs(20.0)));
        assert!(out.invalidated.is_empty());
        assert!(c.contains(1));
    }
}
