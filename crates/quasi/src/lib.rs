//! # sw-quasi — relaxed cache consistency via quasi-copies (§7)
//!
//! "If the applications supported by the system allow it, we could
//! relax the consistency of the caches, thereby opening the door for
//! shorter invalidation reports." A *quasi-copy* (Alonso, Barbará &
//! Garcia-Molina, 1990) is a cached value allowed to deviate from the
//! central copy in a controlled way. Two coherency conditions are
//! implemented:
//!
//! * [`delay`] — the **delay condition** (Eq. 27): the cached value may
//!   lag the server by at most `α` seconds. Rather than clients blindly
//!   re-fetching every `α`, the server keeps per-item *obligation
//!   lists* recording when copies went out, and considers an item for
//!   reporting only when an outstanding copy is about to exceed its
//!   allowed lag — "bound to reduce the number of times x is reported";
//! * [`arithmetic`] — the **arithmetic condition** (Eq. 28): for
//!   numeric items, report a change only when it moves the value more
//!   than `ε` away from the last reported value ("report an item, but
//!   only if it changes more than the prescribed limit").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arithmetic;
pub mod delay;

pub use arithmetic::EpsilonFilter;
pub use delay::{DelayQuasiHandler, ObligationTracker};
