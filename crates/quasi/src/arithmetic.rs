//! The arithmetic condition (Eq. 28).
//!
//! `∀ t ≥ 0 : |x'(t) − x(t)| ≤ ε` — for numeric items (stock prices,
//! temperatures) the cached copy may drift from the central value by at
//! most `ε`. The server-side filter: "modify the strategies of Section
//! 3 to report an item, but only if it changes more than the prescribed
//! limit. This will also reduce the number of times the item is
//! reported."
//!
//! [`EpsilonFilter`] tracks, per item, the last *reported* value; an
//! update is report-worthy iff the new value deviates from it by more
//! than `ε`. Every client copy equals some previously reported (or
//! fetched) value, so suppressed updates keep all copies within `ε` of
//! the server value at report boundaries.

use sw_server::{ItemId, ItemTable};

/// Server-side change filter for the arithmetic condition.
#[derive(Debug, Clone)]
pub struct EpsilonFilter {
    epsilon: u64,
    last_reported: ItemTable<u64>,
    suppressed: u64,
    passed: u64,
}

impl EpsilonFilter {
    /// Creates the filter with tolerance `ε` (absolute value units);
    /// hashed baseline table for arbitrary item ids.
    pub fn new(epsilon: u64) -> Self {
        EpsilonFilter {
            epsilon,
            last_reported: ItemTable::hashed(),
            suppressed: 0,
            passed: 0,
        }
    }

    /// Same, but dense over items `0..universe` — `should_report` sits
    /// on the per-update path, so known universes skip hashing.
    pub fn for_universe(epsilon: u64, universe: u64) -> Self {
        EpsilonFilter {
            epsilon,
            last_reported: ItemTable::dense(universe),
            suppressed: 0,
            passed: 0,
        }
    }

    /// The tolerance `ε`.
    pub fn epsilon(&self) -> u64 {
        self.epsilon
    }

    /// Seeds the baseline for `item` (its initial value, known to every
    /// client that fetched it).
    pub fn seed(&mut self, item: ItemId, value: u64) {
        self.last_reported.get_or_insert_with(item, || value);
    }

    /// Decides whether an update of `item` to `new_value` must be
    /// reported. On `true` the baseline advances to `new_value`
    /// (clients will drop their copies and refetch); on `false` the
    /// update is suppressed (copies stay within ε).
    ///
    /// An item never seeded is always reported (no baseline to deviate
    /// from).
    pub fn should_report(&mut self, item: ItemId, new_value: u64) -> bool {
        match self.last_reported.get_mut(item) {
            Some(baseline) => {
                if new_value.abs_diff(*baseline) > self.epsilon {
                    *baseline = new_value;
                    self.passed += 1;
                    true
                } else {
                    self.suppressed += 1;
                    false
                }
            }
            None => {
                self.last_reported.insert(item, new_value);
                self.passed += 1;
                true
            }
        }
    }

    /// The maximum deviation any client copy can currently have for
    /// `item` given the server value `current`: distance from the
    /// baseline (every copy equals some reported value ≥ baseline
    /// recency). `None` if the item was never seen.
    pub fn copy_deviation_bound(&self, item: ItemId, current: u64) -> Option<u64> {
        self.last_reported
            .get(item)
            .map(|&b| current.abs_diff(b))
    }

    /// Updates suppressed so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Updates passed through so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Fraction of updates suppressed (the report-size saving).
    pub fn suppression_ratio(&self) -> f64 {
        let total = self.suppressed + self.passed;
        if total == 0 {
            0.0
        } else {
            self.suppressed as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_drift_is_suppressed() {
        let mut f = EpsilonFilter::new(5);
        f.seed(1, 100);
        assert!(!f.should_report(1, 103));
        assert!(!f.should_report(1, 97));
        assert_eq!(f.suppressed(), 2);
    }

    #[test]
    fn exceeding_epsilon_reports_and_rebases() {
        let mut f = EpsilonFilter::new(5);
        f.seed(1, 100);
        assert!(f.should_report(1, 106)); // |106−100| = 6 > 5
        // Baseline is now 106: 104 is within ε again.
        assert!(!f.should_report(1, 104));
    }

    #[test]
    fn cumulative_small_steps_eventually_report() {
        // 100 → 103 → 106: each step ≤ ε relative to the *last value*
        // would never report, but the filter measures against the last
        // REPORTED value, so the drift is caught at 106.
        let mut f = EpsilonFilter::new(5);
        f.seed(1, 100);
        assert!(!f.should_report(1, 103));
        assert!(f.should_report(1, 106));
    }

    #[test]
    fn deviation_bound_never_exceeds_epsilon_under_suppression() {
        let mut f = EpsilonFilter::new(10);
        f.seed(1, 1000);
        let mut value = 1000i64;
        for step in [3i64, -4, 2, 5, -1, 4, -2, 6, -3, 2] {
            value += step;
            let reported = f.should_report(1, value as u64);
            let bound = f.copy_deviation_bound(1, value as u64).unwrap();
            if !reported {
                assert!(bound <= 10, "suppressed update left deviation {bound} > ε");
            } else {
                assert_eq!(bound, 0, "reporting rebases the baseline");
            }
        }
    }

    #[test]
    fn unseeded_item_always_reports_first() {
        let mut f = EpsilonFilter::new(100);
        assert!(f.should_report(9, 42));
        assert!(!f.should_report(9, 50));
    }

    #[test]
    fn epsilon_zero_reports_every_change() {
        let mut f = EpsilonFilter::new(0);
        f.seed(1, 10);
        assert!(f.should_report(1, 11));
        assert!(f.should_report(1, 12));
        assert_eq!(f.suppression_ratio(), 0.0);
    }

    #[test]
    fn suppression_ratio_counts() {
        let mut f = EpsilonFilter::new(5);
        f.seed(1, 0);
        let _ = f.should_report(1, 2); // suppressed
        let _ = f.should_report(1, 3); // suppressed
        let _ = f.should_report(1, 100); // passed
        assert!((f.suppression_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
