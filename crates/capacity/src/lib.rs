//! # sw-capacity — bounded caches, replacement policies, cooperative misses
//!
//! The paper's ranking of TS/AT/SIG (§3–§6) assumes every mobile unit
//! caches its whole hotspot. Production units run under memory
//! pressure, where the *replacement policy* interacts with the
//! invalidation rules: a TS window restamp is worthless if LRU already
//! evicted the entry, and an AT whole-cache drop resets any frequency
//! estimate LFU accumulated. This crate is the shared vocabulary both
//! cache backends (`sw-client`'s boxed [`MobileUnit`] path and the
//! columnar fleet in `sleepers`) enforce **identically**, so bounded
//! runs stay byte-pinnable across backends:
//!
//! * [`ReplacementPolicy`] — LRU, LFU, and the strategy-aware
//!   [`ReplacementPolicy::WindowAge`] that treats an entry older than
//!   TS's window `w = kL` as dead weight and evicts it first;
//! * [`victim_key`] — the total eviction order. Both backends evict
//!   the entry with the minimal key, and the key ends in the item id,
//!   so dense and hashed table iteration orders can never disagree;
//! * [`GhostFate`] — the bookkeeping behind the eviction statistics
//!   family (`evictions`, `capacity_misses`, `evicted_then_requeried`);
//! * [`CoopConfig`] / [`CoopStats`] / [`CoopDirectory`] — the
//!   cooperative miss path over `sw-mesh`: a bounded client's miss may
//!   be served by a neighbor cell's *verifiably fresh* copy before
//!   paying the uplink, charged at a distinct `b_coop` bit rate.
//!
//! [`MobileUnit`]: https://docs.rs/sw-client

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use sw_sim::{SimDuration, SimTime};

/// Which entry a bounded cache sacrifices when it is full.
///
/// The default is [`ReplacementPolicy::Lru`], which is what
/// `with_cache_capacity` armed before policies became pluggable — the
/// pre-existing bounded behavior is the LRU point of this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used entry (recency clock).
    #[default]
    Lru,
    /// Evict the least-frequently-used entry; recency breaks ties.
    Lfu,
    /// Strategy-aware: an entry whose stamp is older than the TS window
    /// `w = kL` is dead weight — the next report cannot restamp it, so
    /// it will be dropped on the next gap check anyway. Evict dead
    /// entries first (oldest stamp first), then fall back to LRU over
    /// the live ones.
    WindowAge,
}

impl ReplacementPolicy {
    /// Short lowercase name for figure rows and log lines.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Lfu => "lfu",
            ReplacementPolicy::WindowAge => "window-age",
        }
    }
}

/// Per-entry metadata the replacement policies rank on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryMeta {
    /// Recency clock value at the entry's last hit or install.
    pub last_used: u64,
    /// Hits since install (1 at install).
    pub use_count: u64,
    /// The entry's cache stamp (install or last restamp time).
    pub stamp: SimTime,
}

/// The total eviction order: the cache evicts the entry with the
/// **minimal** key. The final component is the item id, so the order is
/// total even when two entries tie on every policy axis — this is what
/// makes eviction independent of table iteration order, and therefore
/// byte-identical between the boxed and columnar backends.
///
/// `now` is the timestamp of the answer being installed (eviction only
/// happens at install time); `window` is the TS window `w = kL` used by
/// [`ReplacementPolicy::WindowAge`] (ignored by the other policies).
#[inline]
pub fn victim_key(
    policy: ReplacementPolicy,
    meta: EntryMeta,
    now: SimTime,
    window: SimDuration,
    item: u64,
) -> [u64; 4] {
    match policy {
        ReplacementPolicy::Lru => [1, meta.last_used, 0, item],
        ReplacementPolicy::Lfu => [1, meta.use_count, meta.last_used, item],
        ReplacementPolicy::WindowAge => {
            let dead = now.saturating_duration_since(meta.stamp) > window;
            if dead {
                // Non-negative finite f64 bit patterns order like the
                // values, so the oldest stamp has the smallest key.
                [0, meta.stamp.as_secs().to_bits(), meta.last_used, item]
            } else {
                [1, meta.last_used, 0, item]
            }
        }
    }
}

/// What a requery learned about a previously evicted item.
///
/// A bounded cache remembers evicted items as *ghosts* (item id +
/// eviction-time stamp). Reports mark a ghost [`GhostFate::Stale`] when
/// they prove the item changed after the eviction; a requery consumes
/// the ghost and classifies the miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GhostFate {
    /// The evicted copy was still fresh — this miss is a pure capacity
    /// miss: it would have been a hit with one more cache slot.
    Fresh,
    /// The evicted copy had been invalidated anyway — the eviction cost
    /// nothing; the uplink fetch was unavoidable.
    Stale,
}

/// The eviction statistics family, as folded into `SimulationReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CapacityStats {
    /// Entries evicted to make room (not invalidations or drops).
    pub evictions: u64,
    /// Misses on items whose evicted copy was still fresh — the misses
    /// the capacity bound itself caused. For the signature family and
    /// group strategies, ghosts are only retired by whole-cache drops,
    /// so this counter is an upper bound there.
    pub capacity_misses: u64,
    /// Misses on any previously evicted item, fresh or stale — how
    /// often the workload re-touched what replacement threw away.
    pub evicted_then_requeried: u64,
}

impl CapacityStats {
    /// Element-wise accumulation across clients or cells.
    pub fn absorb(&mut self, other: CapacityStats) {
        self.evictions += other.evictions;
        self.capacity_misses += other.capacity_misses;
        self.evicted_then_requeried += other.evicted_then_requeried;
    }
}

/// Cooperative miss path configuration (per mesh).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoopConfig {
    /// Bits charged per cooperatively served item — the sidelink is a
    /// short-range exchange, so this is normally far below the uplink's
    /// `b_q + b_a`.
    pub b_coop: u64,
}

impl CoopConfig {
    /// A coop path charging `b_coop` bits per served item.
    pub fn new(b_coop: u64) -> Self {
        CoopConfig { b_coop }
    }
}

impl Default for CoopConfig {
    /// 128 bits — an item id plus a value word, no uplink framing.
    fn default() -> Self {
        CoopConfig { b_coop: 128 }
    }
}

/// Cooperative miss path counters, as folded into `SimulationReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoopStats {
    /// Misses served by a neighbor's verifiably fresh copy.
    pub coop_served: u64,
    /// Sidelink bits paid for those serves (`coop_served · b_coop`).
    pub coop_bits: u64,
    /// Misses that consulted the feed but fell back to the uplink —
    /// no neighbor copy, or the strategy could not vouch freshness.
    pub coop_declined: u64,
}

impl CoopStats {
    /// Element-wise accumulation across clients or cells.
    pub fn absorb(&mut self, other: CoopStats) {
        self.coop_served += other.coop_served;
        self.coop_bits += other.coop_bits;
        self.coop_declined += other.coop_declined;
    }
}

/// One cell's barrier snapshot of cooperatively servable entries: every
/// item some resident client holds stamped exactly at the last report
/// time, with its cached value. Built sequentially at the mesh barrier,
/// so it is deterministic at any thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoopDirectory {
    /// The report time the snapshot was taken at.
    pub stamp: Option<SimTime>,
    entries: HashMap<u64, u64>,
}

impl CoopDirectory {
    /// An empty directory stamped at `stamp`.
    pub fn new(stamp: SimTime) -> Self {
        CoopDirectory {
            stamp: Some(stamp),
            entries: HashMap::new(),
        }
    }

    /// Records that some resident holds `item = value` at the snapshot
    /// stamp. Later inserts of the same item are no-ops (all residents
    /// stamped at the same report hold the same value).
    pub fn insert(&mut self, item: u64, value: u64) {
        self.entries.entry(item).or_insert(value);
    }

    /// The snapshot value for `item`, if any resident holds it.
    pub fn get(&self, item: u64) -> Option<u64> {
        self.entries.get(&item).copied()
    }

    /// Number of distinct items in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no resident had a servable entry.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The merged view a cell consults on a miss: its neighbors'
/// directories in ascending neighbor order, first holder wins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoopFeed {
    /// The report time every merged directory was snapped at.
    pub stamp: Option<SimTime>,
    entries: HashMap<u64, u64>,
}

impl CoopFeed {
    /// Merges `directories` (already in ascending neighbor order).
    ///
    /// # Panics
    /// Panics if the directories carry different snapshot stamps — the
    /// mesh barrier snaps every cell at the same report index.
    pub fn merge(directories: &[&CoopDirectory]) -> Self {
        let mut feed = CoopFeed::default();
        for dir in directories {
            match (feed.stamp, dir.stamp) {
                (None, s) => feed.stamp = s,
                (Some(a), Some(b)) => {
                    assert_eq!(a, b, "coop directories snapped at different reports")
                }
                (Some(_), None) => {}
            }
            for (&item, &value) in &dir.entries {
                feed.entries.entry(item).or_insert(value);
            }
        }
        feed
    }

    /// The first-holder value for `item`, if any neighbor holds it.
    pub fn get(&self, item: u64) -> Option<u64> {
        self.entries.get(&item).copied()
    }

    /// Number of distinct items across the merged neighborhood.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no neighbor had anything servable.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(last_used: u64, use_count: u64, stamp: f64) -> EntryMeta {
        EntryMeta {
            last_used,
            use_count,
            stamp: SimTime::from_secs(stamp),
        }
    }

    #[test]
    fn lru_orders_by_recency_then_item() {
        let now = SimTime::from_secs(100.0);
        let w = SimDuration::from_secs(50.0);
        let old = victim_key(ReplacementPolicy::Lru, meta(3, 9, 90.0), now, w, 7);
        let newer = victim_key(ReplacementPolicy::Lru, meta(5, 1, 10.0), now, w, 2);
        assert!(old < newer, "lower recency clock must evict first");
        let tie_a = victim_key(ReplacementPolicy::Lru, meta(4, 1, 0.0), now, w, 2);
        let tie_b = victim_key(ReplacementPolicy::Lru, meta(4, 1, 0.0), now, w, 9);
        assert!(tie_a < tie_b, "item id breaks exact ties");
    }

    #[test]
    fn lfu_orders_by_frequency_then_recency() {
        let now = SimTime::from_secs(100.0);
        let w = SimDuration::from_secs(50.0);
        let rare = victim_key(ReplacementPolicy::Lfu, meta(9, 1, 0.0), now, w, 1);
        let hot = victim_key(ReplacementPolicy::Lfu, meta(1, 8, 0.0), now, w, 2);
        assert!(rare < hot, "lower use count must evict first");
        let a = victim_key(ReplacementPolicy::Lfu, meta(2, 4, 0.0), now, w, 1);
        let b = victim_key(ReplacementPolicy::Lfu, meta(6, 4, 0.0), now, w, 2);
        assert!(a < b, "equal counts fall back to recency");
    }

    #[test]
    fn window_age_evicts_dead_entries_before_any_live_one() {
        let now = SimTime::from_secs(1000.0);
        let w = SimDuration::from_secs(100.0);
        // Stamped 850 s ago — far outside the window, dead weight.
        let dead = victim_key(ReplacementPolicy::WindowAge, meta(99, 9, 150.0), now, w, 5);
        // Live entry, never touched since install.
        let live = victim_key(ReplacementPolicy::WindowAge, meta(1, 1, 950.0), now, w, 3);
        assert!(dead < live, "dead entries evict before live ones");
        // Two dead entries: the older stamp goes first.
        let older = victim_key(ReplacementPolicy::WindowAge, meta(7, 1, 100.0), now, w, 8);
        assert!(older < dead, "older dead stamp evicts first");
        // Entries inside the window rank exactly like LRU.
        let lru = victim_key(ReplacementPolicy::Lru, meta(1, 1, 950.0), now, w, 3);
        assert_eq!(live, lru);
    }

    #[test]
    fn window_age_boundary_is_exclusive() {
        // age == window is still live (the gap check drops on >, not >=).
        let now = SimTime::from_secs(200.0);
        let w = SimDuration::from_secs(100.0);
        let at_edge = victim_key(ReplacementPolicy::WindowAge, meta(4, 1, 100.0), now, w, 1);
        assert_eq!(at_edge[0], 1, "age == w is not dead");
        let past_edge = victim_key(
            ReplacementPolicy::WindowAge,
            meta(4, 1, 99.999),
            now,
            w,
            1,
        );
        assert_eq!(past_edge[0], 0, "age > w is dead");
    }

    #[test]
    fn capacity_and_coop_stats_absorb_elementwise() {
        let mut c = CapacityStats {
            evictions: 1,
            capacity_misses: 2,
            evicted_then_requeried: 3,
        };
        c.absorb(CapacityStats {
            evictions: 10,
            capacity_misses: 20,
            evicted_then_requeried: 30,
        });
        assert_eq!(c.evictions, 11);
        assert_eq!(c.capacity_misses, 22);
        assert_eq!(c.evicted_then_requeried, 33);

        let mut s = CoopStats::default();
        s.absorb(CoopStats {
            coop_served: 4,
            coop_bits: 512,
            coop_declined: 1,
        });
        assert_eq!(s.coop_served, 4);
        assert_eq!(s.coop_bits, 512);
        assert_eq!(s.coop_declined, 1);
    }

    #[test]
    fn feed_merge_prefers_earlier_neighbors() {
        let t = SimTime::from_secs(10.0);
        let mut a = CoopDirectory::new(t);
        a.insert(1, 100);
        a.insert(2, 200);
        let mut b = CoopDirectory::new(t);
        b.insert(2, 999);
        b.insert(3, 300);
        let feed = CoopFeed::merge(&[&a, &b]);
        assert_eq!(feed.stamp, Some(t));
        assert_eq!(feed.len(), 3);
        assert_eq!(feed.get(2), Some(200), "first neighbor wins");
        assert_eq!(feed.get(3), Some(300));
        assert_eq!(feed.get(4), None);
    }

    #[test]
    #[should_panic(expected = "different reports")]
    fn feed_merge_rejects_mismatched_stamps() {
        let a = CoopDirectory::new(SimTime::from_secs(10.0));
        let b = CoopDirectory::new(SimTime::from_secs(20.0));
        let _ = CoopFeed::merge(&[&a, &b]);
    }

    #[test]
    fn directory_keeps_first_value_per_item() {
        let mut d = CoopDirectory::new(SimTime::ZERO);
        d.insert(5, 50);
        d.insert(5, 51);
        assert_eq!(d.get(5), Some(50));
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
        assert_eq!(ReplacementPolicy::Lru.name(), "lru");
        assert_eq!(ReplacementPolicy::Lfu.name(), "lfu");
        assert_eq!(ReplacementPolicy::WindowAge.name(), "window-age");
    }
}
