//! Deterministic fault injection for the broadcast cell.
//!
//! The paper's safety argument (§2, §5) is about what a client must do
//! when it has *missed* reports: AT drops its whole cache after one
//! missed report, TS recovers iff the gap is shorter than the window
//! `w = kL`, and SIG tolerates arbitrary gaps modulo collision
//! probability. This crate supplies the adversary: a seed-streamed
//! [`FaultPlan`] that loses reports (independently or in
//! Gilbert–Elliott bursts), corrupts frames (detected by checksum and
//! treated as missed — never half-applied), fails uplink exchanges
//! (bounded retry with exponential backoff charged as dead air), and
//! drifts a timer-synchronized client's clock until it wakes too late.
//!
//! Every draw comes from `StreamId::Faults { index }` so a fault
//! schedule is a pure function of `(MasterSeed, FaultPlan, client)` —
//! byte-identical at any thread count, and independent of the query,
//! sleep, and update streams.
//!
//! Like `sw-observe`, the runtime layer follows the zero-cost
//! discipline: without the `faults` cargo feature, [`FaultLayer`] is a
//! zero-sized type, [`FaultLayer::is_active`] is compile-time `false`,
//! and every injection call compiles away. The *plan* types are always
//! compiled so configs mentioning faults still type-check.

use sw_sim::rng::MasterSeed;
#[cfg(feature = "faults")]
use sw_sim::rng::{RngStream, StreamId};

pub mod server;

/// Per-client report-loss process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Each awake listening attempt independently loses the report with
    /// probability `p`.
    Bernoulli {
        /// Loss probability per report, in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst channel. Each listening attempt
    /// first moves the per-client state (good ↔ burst), then loses the
    /// report with the state's loss probability. Models fading: losses
    /// cluster, which is exactly the regime that separates TS's window
    /// recovery from AT's drop-everything rule.
    GilbertElliott {
        /// P(good → burst) per listening attempt.
        p_enter_burst: f64,
        /// P(burst → good) per listening attempt.
        p_exit_burst: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the burst state.
        loss_burst: f64,
    },
}

impl LossModel {
    /// Independent per-report loss with probability `p`.
    pub fn bernoulli(p: f64) -> Self {
        LossModel::Bernoulli { p }
    }

    /// A bursty channel that is near-perfect in the good state and
    /// lossy in the burst state.
    pub fn burst(p_enter_burst: f64, p_exit_burst: f64, loss_burst: f64) -> Self {
        LossModel::GilbertElliott {
            p_enter_burst,
            p_exit_burst,
            loss_good: 0.0,
            loss_burst,
        }
    }

    fn validate(&self) -> Result<(), String> {
        let check = |name: &str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("loss model: {name} = {p} outside [0, 1]"))
            }
        };
        match *self {
            LossModel::Bernoulli { p } => check("p", p),
            LossModel::GilbertElliott {
                p_enter_burst,
                p_exit_burst,
                loss_good,
                loss_burst,
            } => {
                check("p_enter_burst", p_enter_burst)?;
                check("p_exit_burst", p_exit_burst)?;
                check("loss_good", loss_good)?;
                check("loss_burst", loss_burst)
            }
        }
    }
}

/// Frame corruption: a report reaches the client but with flipped bits.
///
/// The wire layer detects this via the frame checksum and the client
/// treats the report as missed — a corrupted invalidation list must
/// never be half-applied, or the safety invariant dies silently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corruption {
    /// Probability that a received report is corrupted, in `[0, 1]`.
    pub p: f64,
}

/// Uplink exchange failures with bounded retry.
///
/// Each transmitted attempt can fail with `p_fail`; the client retries
/// up to `max_attempts` total attempts, waiting an exponentially
/// growing backoff (`backoff_base_bits << (attempt - 1)` bits of dead
/// air) that is charged against the interval's bit budget but not
/// counted as traffic — the channel is occupied, nothing useful moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UplinkFaults {
    /// Probability a transmitted query/answer exchange fails, in `[0, 1)`.
    pub p_fail: f64,
    /// Total attempts before the exchange is deferred to a later
    /// interval (≥ 1).
    pub max_attempts: u32,
    /// Dead-air charge before retry `n` is `backoff_base_bits << (n-1)`.
    pub backoff_base_bits: u64,
}

impl UplinkFaults {
    fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.p_fail) {
            return Err(format!("uplink p_fail = {} outside [0, 1)", self.p_fail));
        }
        if self.max_attempts == 0 {
            return Err("uplink max_attempts must be at least 1".into());
        }
        Ok(())
    }
}

/// Clock drift for timer-synchronized clients.
///
/// A client's local clock drifts by `rate_secs_per_interval` each
/// interval (awake or asleep — sleepers drift the most) plus a uniform
/// jitter draw in `[0, jitter_secs)` per listening attempt. When the
/// accumulated drift exceeds the delivery mode's clock-skew guard band,
/// a `TimerSynchronized` client wakes after the report has already
/// aired and misses it entirely; hearing a report (whose timestamp
/// resynchronizes the clock) resets the drift to zero. Multicast
/// delivery is immune — the network wakes the client, not its timer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDrift {
    /// Seconds of drift accumulated per interval since the last resync.
    pub rate_secs_per_interval: f64,
    /// Additional uniform jitter in `[0, jitter_secs)` per listening
    /// attempt.
    pub jitter_secs: f64,
}

impl ClockDrift {
    fn validate(&self) -> Result<(), String> {
        if !(self.rate_secs_per_interval.is_finite() && self.rate_secs_per_interval >= 0.0) {
            return Err(format!(
                "drift rate_secs_per_interval = {} must be finite and non-negative",
                self.rate_secs_per_interval
            ));
        }
        if !(self.jitter_secs.is_finite() && self.jitter_secs >= 0.0) {
            return Err(format!(
                "drift jitter_secs = {} must be finite and non-negative",
                self.jitter_secs
            ));
        }
        Ok(())
    }
}

/// A deterministic broadcast blackout: every awake client misses every
/// report in the closed interval window `[from, until]`, with no
/// randomness drawn. This is the client-side twin of a server failover
/// gap (`sw-ha`): a crash that suppresses broadcasting for some
/// intervals looks to each client exactly like this schedule, which is
/// what lets a Lockstep conformance run pin a post-failover decision
/// log against a `CellSimulation` fed the equivalent plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blackout {
    /// First blacked-out interval (inclusive).
    pub from: u64,
    /// Last blacked-out interval (inclusive).
    pub until: u64,
}

/// A complete, deterministic fault schedule specification.
///
/// All fault families are optional; an empty plan draws no
/// randomness at all, so a simulation configured with
/// `FaultPlan::none()` is bit-identical to one with no plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Per-client report loss on the broadcast downlink.
    pub loss: Option<LossModel>,
    /// Frame corruption (checksum-detected, treated as missed).
    pub corruption: Option<Corruption>,
    /// Uplink exchange failures with retry + backoff.
    pub uplink: Option<UplinkFaults>,
    /// Clock drift for timer-synchronized delivery.
    pub drift: Option<ClockDrift>,
    /// Scheduled all-clients blackout window (server failover twin).
    pub blackout: Option<Blackout>,
}

impl FaultPlan {
    /// An empty plan: nothing is injected, no randomness is drawn.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Sets the report-loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Sets the frame-corruption probability.
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.corruption = Some(Corruption { p });
        self
    }

    /// Sets the uplink failure/retry model.
    pub fn with_uplink(mut self, uplink: UplinkFaults) -> Self {
        self.uplink = Some(uplink);
        self
    }

    /// Sets the clock-drift model.
    pub fn with_drift(mut self, drift: ClockDrift) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Sets a blackout window: every report in `[from, until]` is
    /// missed by every awake client, deterministically.
    pub fn with_blackout(mut self, from: u64, until: u64) -> Self {
        self.blackout = Some(Blackout { from, until });
        self
    }

    /// True when no fault family is configured.
    pub fn is_empty(&self) -> bool {
        self.loss.is_none()
            && self.corruption.is_none()
            && self.uplink.is_none()
            && self.drift.is_none()
            && self.blackout.is_none()
    }

    /// Checks every configured model's parameters.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(loss) = &self.loss {
            loss.validate()?;
        }
        if let Some(c) = &self.corruption {
            if !(0.0..=1.0).contains(&c.p) {
                return Err(format!("corruption p = {} outside [0, 1]", c.p));
            }
        }
        if let Some(u) = &self.uplink {
            u.validate()?;
        }
        if let Some(d) = &self.drift {
            d.validate()?;
        }
        if let Some(b) = &self.blackout {
            if b.from > b.until {
                return Err(format!(
                    "blackout window [{}, {}] is inverted",
                    b.from, b.until
                ));
            }
        }
        Ok(())
    }
}

/// What happened to one report delivery attempt at one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFate {
    /// The report arrived intact and on time.
    Heard,
    /// The channel dropped the frame.
    Lost,
    /// The frame arrived but failed its checksum; treated as missed.
    Corrupted,
    /// Clock drift made the client wake after the report had aired.
    DriftMissed,
}

impl ReportFate {
    /// True for every fate except [`ReportFate::Heard`].
    pub fn is_missed(self) -> bool {
        !matches!(self, ReportFate::Heard)
    }
}

/// Aggregate fault counters for one run.
///
/// Always compiled (it appears in `SimulationReport`); all zeros when
/// fault injection is compiled out or no plan is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTotals {
    /// Reports dropped by the loss model.
    pub reports_lost: u64,
    /// Reports corrupted in flight (and detected by checksum).
    pub frames_corrupted: u64,
    /// Reports missed because drift pushed the wake-up past airtime.
    pub drift_missed_reports: u64,
    /// Failed uplink exchange attempts that were retried or abandoned.
    pub uplink_retries: u64,
    /// Backoff waits charged against the interval budget.
    pub backoff_intervals: u64,
    /// Corrupted frames the checksum failed to detect (must stay 0 for
    /// single-bit-flip corruption; a 64-bit FNV-1a catches all of them).
    pub undetected_corruptions: u64,
}

impl FaultTotals {
    /// Reports missed for any reason (loss + corruption + drift).
    pub fn reports_missed_total(&self) -> u64 {
        self.reports_lost + self.frames_corrupted + self.drift_missed_reports
    }
}

/// Whether fault injection is compiled into this build.
pub const fn compiled_in() -> bool {
    cfg!(feature = "faults")
}

#[cfg(feature = "faults")]
#[derive(Debug)]
struct FaultInner {
    plan: FaultPlan,
    /// One independent stream per client (`StreamId::Faults { index }`).
    streams: Vec<RngStream>,
    /// Gilbert–Elliott state per client: true = burst.
    in_burst: Vec<bool>,
    /// Accumulated clock drift per client, seconds since last resync.
    drift_secs: Vec<f64>,
    /// Interval index at which each client last accounted drift.
    last_interval: Vec<u64>,
    totals: FaultTotals,
}

/// The runtime fault injector owned by the simulation.
///
/// Zero-sized and inert without the `faults` cargo feature; with it,
/// holds per-client streams and channel state behind one pointer so a
/// run with `plan: None` costs a single null check per interval.
#[derive(Debug, Default)]
pub struct FaultLayer {
    #[cfg(feature = "faults")]
    inner: Option<Box<FaultInner>>,
}

impl FaultLayer {
    /// Builds the injector for `n_clients` clients. With the feature
    /// off, or `plan` absent/empty, the layer is inert.
    #[allow(unused_variables)]
    pub fn new(plan: Option<&FaultPlan>, seed: MasterSeed, n_clients: usize) -> Self {
        #[cfg(feature = "faults")]
        {
            let inner = plan.filter(|p| !p.is_empty()).map(|plan| {
                Box::new(FaultInner {
                    plan: *plan,
                    streams: (0..n_clients)
                        .map(|i| seed.stream(StreamId::Faults { index: i as u64 }))
                        .collect(),
                    in_burst: vec![false; n_clients],
                    drift_secs: vec![0.0; n_clients],
                    last_interval: vec![0; n_clients],
                    totals: FaultTotals::default(),
                })
            });
            FaultLayer { inner }
        }
        #[cfg(not(feature = "faults"))]
        {
            FaultLayer {}
        }
    }

    /// Appends fault state for one newly attached client slot — the
    /// mesh grows a cell's population on arrival, and slots are never
    /// reused. Draws come from `StreamId::Faults { index: slot }`, so
    /// the arrival's fault schedule is a pure function of the cell
    /// seed and the slot index, like everything else. `interval` seeds
    /// the drift accounting: the unit resynchronized in transit, so
    /// drift accrues from its arrival interval, not from zero.
    #[allow(unused_variables)]
    pub fn push_client(&mut self, seed: MasterSeed, slot: usize, interval: u64) {
        #[cfg(feature = "faults")]
        if let Some(inner) = self.inner.as_deref_mut() {
            inner
                .streams
                .push(seed.stream(StreamId::Faults { index: slot as u64 }));
            inner.in_burst.push(false);
            inner.drift_secs.push(0.0);
            inner.last_interval.push(interval);
        }
    }

    /// True when faults are compiled in *and* a non-empty plan is set.
    /// Compile-time `false` without the feature, so guarded call sites
    /// vanish entirely.
    #[inline(always)]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "faults")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "faults"))]
        {
            false
        }
    }

    /// The configured uplink failure model, if any.
    #[inline]
    pub fn uplink_model(&self) -> Option<UplinkFaults> {
        #[cfg(feature = "faults")]
        {
            self.inner.as_ref().and_then(|i| i.plan.uplink)
        }
        #[cfg(not(feature = "faults"))]
        {
            None
        }
    }

    /// Decides the fate of the report aired at `interval` for awake
    /// client `client`. `misses_with_drift` is the delivery mode's
    /// verdict on whether the given accumulated drift (seconds) makes
    /// the client wake too late (timer-synchronized: drift exceeds the
    /// clock-skew guard band; multicast: never).
    ///
    /// Draw order per call is fixed — blackout (no draw), drift
    /// jitter, then loss, then corruption — so schedules are
    /// reproducible. Hearing a report resets the client's drift (the
    /// report timestamp resyncs the clock); so does a drift-miss (the
    /// client re-synchronizes out of band rather than drifting
    /// forever); plain loss/corruption do not, because the client has
    /// nothing to resync against. A blackout miss consumes no
    /// randomness at all, so a blackout-only plan leaves every stream
    /// untouched — the property that makes it the exact client-side
    /// twin of a server that simply was not broadcasting.
    #[allow(unused_variables)]
    pub fn report_fate(
        &mut self,
        client: usize,
        interval: u64,
        misses_with_drift: impl Fn(f64) -> bool,
    ) -> ReportFate {
        #[cfg(feature = "faults")]
        {
            let Some(inner) = self.inner.as_deref_mut() else {
                return ReportFate::Heard;
            };
            if let Some(b) = inner.plan.blackout {
                if (b.from..=b.until).contains(&interval) {
                    inner.totals.reports_lost += 1;
                    return ReportFate::Lost;
                }
            }
            let rng = &mut inner.streams[client];
            if let Some(drift) = inner.plan.drift {
                let elapsed = interval.saturating_sub(inner.last_interval[client]);
                inner.last_interval[client] = interval;
                let mut d = inner.drift_secs[client]
                    + elapsed as f64 * drift.rate_secs_per_interval;
                if drift.jitter_secs > 0.0 {
                    d += drift.jitter_secs * rng.uniform();
                }
                inner.drift_secs[client] = d;
                if misses_with_drift(d) {
                    inner.totals.drift_missed_reports += 1;
                    inner.drift_secs[client] = 0.0;
                    return ReportFate::DriftMissed;
                }
            }
            if let Some(loss) = inner.plan.loss {
                let lost = match loss {
                    LossModel::Bernoulli { p } => rng.bernoulli(p),
                    LossModel::GilbertElliott {
                        p_enter_burst,
                        p_exit_burst,
                        loss_good,
                        loss_burst,
                    } => {
                        let burst = &mut inner.in_burst[client];
                        *burst = if *burst {
                            !rng.bernoulli(p_exit_burst)
                        } else {
                            rng.bernoulli(p_enter_burst)
                        };
                        rng.bernoulli(if *burst { loss_burst } else { loss_good })
                    }
                };
                if lost {
                    inner.totals.reports_lost += 1;
                    return ReportFate::Lost;
                }
            }
            if let Some(c) = inner.plan.corruption {
                if rng.bernoulli(c.p) {
                    inner.totals.frames_corrupted += 1;
                    return ReportFate::Corrupted;
                }
            }
            if inner.plan.drift.is_some() {
                inner.drift_secs[client] = 0.0;
            }
            ReportFate::Heard
        }
        #[cfg(not(feature = "faults"))]
        {
            ReportFate::Heard
        }
    }

    /// Whether the next transmitted uplink attempt by `client` fails.
    /// Draws only when an uplink model with positive `p_fail` is set.
    #[allow(unused_variables)]
    #[inline]
    pub fn uplink_attempt_fails(&mut self, client: usize) -> bool {
        #[cfg(feature = "faults")]
        {
            match self.inner.as_deref_mut() {
                Some(inner) => match inner.plan.uplink {
                    Some(u) if u.p_fail > 0.0 => inner.streams[client].bernoulli(u.p_fail),
                    _ => false,
                },
                None => false,
            }
        }
        #[cfg(not(feature = "faults"))]
        {
            false
        }
    }

    /// Picks which bit of a `bit_len`-bit serialized frame to flip for
    /// a corrupted delivery (used to demonstrate checksum detection).
    #[allow(unused_variables)]
    pub fn corrupt_bit_index(&mut self, client: usize, bit_len: u64) -> u64 {
        #[cfg(feature = "faults")]
        {
            match self.inner.as_deref_mut() {
                Some(inner) if bit_len > 0 => inner.streams[client].uniform_index(bit_len),
                _ => 0,
            }
        }
        #[cfg(not(feature = "faults"))]
        {
            0
        }
    }

    /// Records a failed uplink attempt that will be retried or abandoned.
    #[allow(unused_variables)]
    #[inline]
    pub fn note_uplink_retry(&mut self) {
        #[cfg(feature = "faults")]
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.totals.uplink_retries += 1;
        }
    }

    /// Records one backoff wait charged against the interval budget.
    #[allow(unused_variables)]
    #[inline]
    pub fn note_backoff_interval(&mut self) {
        #[cfg(feature = "faults")]
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.totals.backoff_intervals += 1;
        }
    }

    /// Records a corrupted frame the checksum failed to catch.
    #[allow(unused_variables)]
    #[inline]
    pub fn note_undetected_corruption(&mut self) {
        #[cfg(feature = "faults")]
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.totals.undetected_corruptions += 1;
        }
    }

    /// Aggregate counters so far (all zeros when inert).
    pub fn totals(&self) -> FaultTotals {
        #[cfg(feature = "faults")]
        {
            self.inner
                .as_ref()
                .map(|i| i.totals)
                .unwrap_or_default()
        }
        #[cfg(not(feature = "faults"))]
        {
            FaultTotals::default()
        }
    }

    /// Zeroes the counters without touching channel/drift state (used
    /// when a warm-up window ends; the fault processes keep evolving).
    pub fn reset_totals(&mut self) {
        #[cfg(feature = "faults")]
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.totals = FaultTotals::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        plan.validate().unwrap();
        let mut layer = FaultLayer::new(Some(&plan), MasterSeed::TEST, 4);
        assert!(!layer.is_active());
        for i in 0..100 {
            assert_eq!(layer.report_fate(i % 4, i as u64, |_| false), ReportFate::Heard);
            assert!(!layer.uplink_attempt_fails(i % 4));
        }
        assert_eq!(layer.totals(), FaultTotals::default());
    }

    #[test]
    fn plan_validation_rejects_bad_parameters() {
        assert!(FaultPlan::none()
            .with_loss(LossModel::bernoulli(1.5))
            .validate()
            .is_err());
        assert!(FaultPlan::none().with_corruption(-0.1).validate().is_err());
        assert!(FaultPlan::none()
            .with_uplink(UplinkFaults {
                p_fail: 0.5,
                max_attempts: 0,
                backoff_base_bits: 64,
            })
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_drift(ClockDrift {
                rate_secs_per_interval: -1.0,
                jitter_secs: 0.0,
            })
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_loss(LossModel::burst(0.05, 0.3, 0.9))
            .with_corruption(0.01)
            .validate()
            .is_ok());
        assert!(FaultPlan::none().with_blackout(9, 3).validate().is_err());
        assert!(FaultPlan::none().with_blackout(3, 9).validate().is_ok());
        assert!(!FaultPlan::none().with_blackout(3, 9).is_empty());
    }

    #[cfg(not(feature = "faults"))]
    #[test]
    fn layer_is_zero_sized_when_compiled_out() {
        assert_eq!(std::mem::size_of::<FaultLayer>(), 0);
        assert!(!compiled_in());
        let mut layer = FaultLayer::new(
            Some(&FaultPlan::none().with_loss(LossModel::bernoulli(1.0))),
            MasterSeed::TEST,
            8,
        );
        // Even a certain-loss plan injects nothing when compiled out.
        assert!(!layer.is_active());
        assert_eq!(layer.report_fate(0, 1, |_| true), ReportFate::Heard);
    }

    #[cfg(feature = "faults")]
    mod active {
        use super::*;

        #[test]
        fn schedules_are_deterministic() {
            let plan = FaultPlan::none()
                .with_loss(LossModel::burst(0.1, 0.4, 0.8))
                .with_corruption(0.05)
                .with_drift(ClockDrift {
                    rate_secs_per_interval: 0.01,
                    jitter_secs: 0.002,
                });
            let run = |seed: MasterSeed| {
                let mut layer = FaultLayer::new(Some(&plan), seed, 3);
                (0..600)
                    .map(|i| layer.report_fate(i % 3, (i / 3) as u64, |d| d > 0.2))
                    .collect::<Vec<_>>()
            };
            assert_eq!(run(MasterSeed(99)), run(MasterSeed(99)));
            assert_ne!(run(MasterSeed(99)), run(MasterSeed(100)));
        }

        #[test]
        fn bernoulli_loss_rate_matches_p() {
            let plan = FaultPlan::none().with_loss(LossModel::bernoulli(0.2));
            let mut layer = FaultLayer::new(Some(&plan), MasterSeed::TEST, 1);
            let n = 50_000;
            let lost = (0..n)
                .filter(|&i| layer.report_fate(0, i, |_| false).is_missed())
                .count();
            let rate = lost as f64 / n as f64;
            assert!((rate - 0.2).abs() < 0.01, "loss rate {rate} far from 0.2");
            assert_eq!(layer.totals().reports_lost, lost as u64);
        }

        #[test]
        fn burst_losses_cluster() {
            // With rare burst entry, quick exit, and lossless good state,
            // losses must come in runs: P(loss | previous loss) should be
            // far above the marginal loss rate.
            let plan = FaultPlan::none().with_loss(LossModel::burst(0.02, 0.3, 0.95));
            let mut layer = FaultLayer::new(Some(&plan), MasterSeed::TEST, 1);
            let fates: Vec<bool> = (0..100_000)
                .map(|i| layer.report_fate(0, i, |_| false).is_missed())
                .collect();
            let marginal = fates.iter().filter(|&&l| l).count() as f64 / fates.len() as f64;
            let pairs = fates.windows(2).filter(|w| w[0]).count();
            let after_loss = fates.windows(2).filter(|w| w[0] && w[1]).count();
            let conditional = after_loss as f64 / pairs as f64;
            assert!(
                conditional > 2.0 * marginal,
                "losses did not cluster: P(loss|loss) = {conditional}, marginal = {marginal}"
            );
        }

        #[test]
        fn drift_accumulates_and_resets_on_hear_and_miss() {
            let plan = FaultPlan::none().with_drift(ClockDrift {
                rate_secs_per_interval: 0.1,
                jitter_secs: 0.0,
            });
            let mut layer = FaultLayer::new(Some(&plan), MasterSeed::TEST, 1);
            // Threshold 0.35: intervals 1..3 accumulate 0.1 each (heard
            // resets), so every fate is Heard when polled each interval.
            for i in 1..=10 {
                assert_eq!(layer.report_fate(0, i, |d| d > 0.35), ReportFate::Heard);
            }
            // A long sleep (10 intervals) accumulates 1.0 > 0.35: missed.
            assert_eq!(
                layer.report_fate(0, 20, |d| d > 0.35),
                ReportFate::DriftMissed
            );
            assert_eq!(layer.totals().drift_missed_reports, 1);
            // The miss resynchronized the clock: next interval is fine.
            assert_eq!(layer.report_fate(0, 21, |d| d > 0.35), ReportFate::Heard);
        }

        #[test]
        fn clients_draw_from_independent_streams() {
            let plan = FaultPlan::none().with_loss(LossModel::bernoulli(0.5));
            let mut layer = FaultLayer::new(Some(&plan), MasterSeed::TEST, 2);
            let a: Vec<_> = (0..64).map(|i| layer.report_fate(0, i, |_| false)).collect();
            let mut layer2 = FaultLayer::new(Some(&plan), MasterSeed::TEST, 2);
            let b: Vec<_> = (0..64).map(|i| layer2.report_fate(1, i, |_| false)).collect();
            assert_ne!(a, b, "clients 0 and 1 drew identical fault schedules");
        }

        #[test]
        fn blackout_window_loses_every_report_without_drawing() {
            let plan = FaultPlan::none().with_blackout(10, 19);
            let mut layer = FaultLayer::new(Some(&plan), MasterSeed::TEST, 2);
            assert!(layer.is_active());
            for i in 0..30 {
                let fate = layer.report_fate((i % 2) as usize, i, |_| false);
                if (10..=19).contains(&i) {
                    assert_eq!(fate, ReportFate::Lost, "interval {i}");
                } else {
                    assert_eq!(fate, ReportFate::Heard, "interval {i}");
                }
            }
            assert_eq!(layer.totals().reports_lost, 10);
        }

        #[test]
        fn blackout_misses_consume_no_randomness() {
            // A loss plan with a blackout window must reach the same
            // stream state after the window as the same loss plan that
            // simply never listened during those intervals.
            let with_window = FaultPlan::none()
                .with_loss(LossModel::bernoulli(0.5))
                .with_blackout(10, 19);
            let plain = FaultPlan::none().with_loss(LossModel::bernoulli(0.5));
            let mut a = FaultLayer::new(Some(&with_window), MasterSeed::TEST, 1);
            let mut b = FaultLayer::new(Some(&plain), MasterSeed::TEST, 1);
            for i in 0..60u64 {
                let fa = a.report_fate(0, i, |_| false);
                if (10..=19).contains(&i) {
                    assert_eq!(fa, ReportFate::Lost);
                } else {
                    assert_eq!(fa, b.report_fate(0, i, |_| false), "interval {i}");
                }
            }
        }

        #[test]
        fn uplink_failures_respect_p_fail() {
            let plan = FaultPlan::none().with_uplink(UplinkFaults {
                p_fail: 0.3,
                max_attempts: 3,
                backoff_base_bits: 128,
            });
            let mut layer = FaultLayer::new(Some(&plan), MasterSeed::TEST, 1);
            assert_eq!(layer.uplink_model().unwrap().max_attempts, 3);
            let n = 50_000;
            let fails = (0..n).filter(|_| layer.uplink_attempt_fails(0)).count();
            let rate = fails as f64 / n as f64;
            assert!((rate - 0.3).abs() < 0.01, "fail rate {rate} far from 0.3");
        }
    }
}
