//! Deterministic server-side fault schedules for the `sw-ha`
//! replication layer.
//!
//! The client-side families in the crate root perturb what a *client*
//! hears; this module perturbs the *servers*: a primary that crashes at
//! a chosen interval, crashes and comes back, or is partitioned away
//! from its replicas while it keeps broadcasting. Schedules are seeded
//! the same way as everything else — a dedicated
//! `StreamId::Custom { tag }` stream per node resolves the optional
//! jitter — so a failover run is a pure function of
//! `(MasterSeed, ServerFaultPlan, node)` and can be replayed
//! byte-identically.
//!
//! Unlike [`crate::FaultLayer`], this module is *not* feature-gated:
//! it steers the replication control plane (which intervals a node
//! participates in), never the per-interval hot path, so there is
//! nothing to compile away.

use sw_sim::rng::{MasterSeed, StreamId};

/// Stream tag for server-fault jitter draws; XORed with the node id so
/// each node resolves its schedule independently.
pub const SERVER_FAULT_TAG: u64 = 0x5EF0_CA5C;

/// Where in the interval's replication round a crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPoint {
    /// Before the interval's log entry is replicated: no peer has the
    /// entry, so the successor promotes *at* the crash interval and
    /// broadcasts it itself — clients see no gap at all.
    BeforeAppend,
    /// After the entry is replicated and acknowledged but before the
    /// report is broadcast: the entry is committed yet never aired, so
    /// every client deterministically misses exactly the crash interval
    /// (the successor resumes at the next one — broadcast is
    /// at-most-once, never replayed).
    #[default]
    AfterAppend,
}

/// A scheduled crash of one server process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerCrash {
    /// Interval at which the node dies (before any jitter shift).
    pub at_interval: u64,
    /// Where in the replication round the crash fires.
    pub point: CrashPoint,
}

/// One server-side fault to inject at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFault {
    /// The node crashes and stays down for the rest of the session.
    Crash(ServerCrash),
    /// The node crashes, stays down for `down_intervals` intervals,
    /// then rejoins as a replica and catches up from the log.
    CrashRestart {
        /// The crash itself.
        crash: ServerCrash,
        /// Intervals the node stays down before redialing its peers.
        down_intervals: u64,
    },
    /// The node (assumed primary) loses its replication links for
    /// `heal_after` intervals while continuing to run: it stops
    /// sending appends and collecting acks, the replicas promote a new
    /// epoch behind its back, and on heal it is demoted by the higher
    /// epoch it then hears.
    PrimaryPartition {
        /// First partitioned interval (before any jitter shift).
        at_interval: u64,
        /// Number of intervals the partition lasts.
        heal_after: u64,
    },
}

/// A server-side fault schedule for one node.
///
/// `jitter_intervals` optionally shifts the fault's trigger interval by
/// a seeded uniform draw in `[0, jitter_intervals]`, so a fleet of
/// nodes with the same plan does not fail in lockstep — while staying
/// fully deterministic for a given seed and node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerFaultPlan {
    /// The fault to inject, if any.
    pub fault: Option<ServerFault>,
    /// Uniform trigger-interval shift bound (0 = no jitter, no draw).
    pub jitter_intervals: u64,
}

impl ServerFaultPlan {
    /// An empty plan: the node runs the whole session undisturbed.
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedules a permanent crash.
    pub fn with_crash(mut self, at_interval: u64, point: CrashPoint) -> Self {
        self.fault = Some(ServerFault::Crash(ServerCrash { at_interval, point }));
        self
    }

    /// Schedules a crash followed by a rejoin after `down_intervals`.
    pub fn with_crash_restart(
        mut self,
        at_interval: u64,
        point: CrashPoint,
        down_intervals: u64,
    ) -> Self {
        self.fault = Some(ServerFault::CrashRestart {
            crash: ServerCrash { at_interval, point },
            down_intervals,
        });
        self
    }

    /// Schedules a primary partition window.
    pub fn with_partition(mut self, at_interval: u64, heal_after: u64) -> Self {
        self.fault = Some(ServerFault::PrimaryPartition {
            at_interval,
            heal_after,
        });
        self
    }

    /// Sets the seeded trigger-interval jitter bound.
    pub fn with_jitter(mut self, jitter_intervals: u64) -> Self {
        self.jitter_intervals = jitter_intervals;
        self
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.fault.is_none()
    }

    /// Checks the plan's parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self.fault {
            Some(ServerFault::Crash(c)) | Some(ServerFault::CrashRestart { crash: c, .. })
                if c.at_interval == 0 =>
            {
                Err("server crash at_interval must be ≥ 1 (interval 0 never airs)".into())
            }
            Some(ServerFault::PrimaryPartition { heal_after: 0, .. }) => {
                Err("partition heal_after must be ≥ 1".into())
            }
            _ => Ok(()),
        }
    }
}

/// The resolved, per-node schedule: plan + seeded jitter, queried by
/// the replication coordinator each interval.
#[derive(Debug, Clone, Copy)]
pub struct ServerFaultClock {
    fault: Option<ServerFault>,
    /// Jitter shift resolved at construction (0 when no jitter).
    shift: u64,
}

impl ServerFaultClock {
    /// Resolves `plan` for `node`: draws the jitter shift (if any) from
    /// `StreamId::Custom { tag: SERVER_FAULT_TAG ^ node }`. A plan with
    /// `jitter_intervals == 0` draws nothing.
    pub fn new(plan: &ServerFaultPlan, seed: MasterSeed, node: u32) -> Self {
        let shift = if plan.fault.is_some() && plan.jitter_intervals > 0 {
            let mut rng = seed.stream(StreamId::Custom {
                tag: SERVER_FAULT_TAG ^ node as u64,
            });
            rng.uniform_index(plan.jitter_intervals + 1)
        } else {
            0
        };
        Self {
            fault: plan.fault,
            shift,
        }
    }

    /// An inert clock (no plan).
    pub fn inert() -> Self {
        Self {
            fault: None,
            shift: 0,
        }
    }

    /// The jitter-resolved trigger interval, if a fault is scheduled.
    pub fn trigger_interval(&self) -> Option<u64> {
        Some(match self.fault? {
            ServerFault::Crash(c) | ServerFault::CrashRestart { crash: c, .. } => {
                c.at_interval + self.shift
            }
            ServerFault::PrimaryPartition { at_interval, .. } => at_interval + self.shift,
        })
    }

    /// If this node crashes at `interval`, where in the round it dies.
    pub fn crash_at(&self, interval: u64) -> Option<CrashPoint> {
        match self.fault? {
            ServerFault::Crash(c) | ServerFault::CrashRestart { crash: c, .. }
                if c.at_interval + self.shift == interval =>
            {
                Some(c.point)
            }
            _ => None,
        }
    }

    /// How long the node stays down after a crash before rejoining
    /// (`None` = the crash is permanent).
    pub fn restart_downtime(&self) -> Option<u64> {
        match self.fault? {
            ServerFault::CrashRestart { down_intervals, .. } => Some(down_intervals),
            _ => None,
        }
    }

    /// Whether this node's replication links are partitioned away at
    /// `interval`.
    pub fn partitioned_at(&self, interval: u64) -> bool {
        match self.fault {
            Some(ServerFault::PrimaryPartition {
                at_interval,
                heal_after,
            }) => {
                let from = at_interval + self.shift;
                (from..from + heal_after).contains(&interval)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_yields_an_inert_clock() {
        let plan = ServerFaultPlan::none();
        assert!(plan.is_empty());
        plan.validate().unwrap();
        let clock = ServerFaultClock::new(&plan, MasterSeed::TEST, 0);
        assert_eq!(clock.trigger_interval(), None);
        for i in 0..100 {
            assert_eq!(clock.crash_at(i), None);
            assert!(!clock.partitioned_at(i));
        }
    }

    #[test]
    fn plan_validation_rejects_degenerate_triggers() {
        assert!(ServerFaultPlan::none()
            .with_crash(0, CrashPoint::AfterAppend)
            .validate()
            .is_err());
        assert!(ServerFaultPlan::none()
            .with_partition(5, 0)
            .validate()
            .is_err());
        assert!(ServerFaultPlan::none()
            .with_crash_restart(3, CrashPoint::BeforeAppend, 4)
            .validate()
            .is_ok());
    }

    #[test]
    fn crash_fires_exactly_once_at_the_scheduled_interval() {
        let plan = ServerFaultPlan::none().with_crash(12, CrashPoint::AfterAppend);
        let clock = ServerFaultClock::new(&plan, MasterSeed::TEST, 0);
        assert_eq!(clock.trigger_interval(), Some(12));
        assert_eq!(clock.restart_downtime(), None);
        let fired: Vec<u64> = (0..50).filter(|&i| clock.crash_at(i).is_some()).collect();
        assert_eq!(fired, vec![12]);
        assert_eq!(clock.crash_at(12), Some(CrashPoint::AfterAppend));
    }

    #[test]
    fn partition_window_is_half_open_on_heal() {
        let plan = ServerFaultPlan::none().with_partition(10, 3);
        let clock = ServerFaultClock::new(&plan, MasterSeed::TEST, 1);
        let windows: Vec<u64> = (0..20).filter(|&i| clock.partitioned_at(i)).collect();
        assert_eq!(windows, vec![10, 11, 12]);
        assert_eq!(clock.crash_at(10), None);
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_node() {
        let plan = ServerFaultPlan::none()
            .with_crash(20, CrashPoint::BeforeAppend)
            .with_jitter(8);
        let t = |seed: MasterSeed, node: u32| {
            ServerFaultClock::new(&plan, seed, node)
                .trigger_interval()
                .unwrap()
        };
        // Replayable: same (seed, node) resolves the same trigger.
        assert_eq!(t(MasterSeed(7), 0), t(MasterSeed(7), 0));
        // Within the jitter bound.
        for node in 0..16 {
            let at = t(MasterSeed(7), node);
            assert!((20..=28).contains(&at), "trigger {at} outside bound");
        }
        // Some pair of nodes must differ (that is the point of jitter).
        assert!(
            (1..16).any(|n| t(MasterSeed(7), n) != t(MasterSeed(7), 0)),
            "jitter never separated any nodes"
        );
    }

    #[test]
    fn restart_plan_reports_downtime() {
        let plan = ServerFaultPlan::none().with_crash_restart(6, CrashPoint::AfterAppend, 4);
        let clock = ServerFaultClock::new(&plan, MasterSeed::TEST, 2);
        assert_eq!(clock.crash_at(6), Some(CrashPoint::AfterAppend));
        assert_eq!(clock.restart_downtime(), Some(4));
    }
}
