//! Round-trip and damage-resistance suite for the wire codec.
//!
//! Two properties, pinned exhaustively:
//!
//! 1. `deserialize ∘ serialize ≡ id` for every [`FramePayload`] variant
//!    (and hence every [`FrameKind`]), across encoder geometries from
//!    the degenerate 2-item cell to the Scenario 2 million-item cell,
//!    including max-width ids, max-width timestamps, and empty reports.
//! 2. The decoder is total on damaged input: any single-bit flip
//!    ([`flip_bit`]) or truncation of a serialized frame either fails
//!    [`checksum64`] at the datagram layer or decodes to an error —
//!    never a panic, never a silently different payload.

use std::sync::Arc;

use sw_sim::{MasterSeed, StreamId};
use sw_wireless::frame::{
    checksum64, flip_bit, open_frame, seal_frame, FrameKind, FramePayload, WireEncode,
};

/// Encoder geometries spanning the paper's scenarios plus edge widths.
fn encoders() -> Vec<WireEncode> {
    vec![
        WireEncode::new(2, 32, 64, 64),
        WireEncode::new(1_000, 512, 512, 512),
        WireEncode::new(1_000_000, 512, 512, 512),
        WireEncode::new(1_024, 64, 128, 256),
        WireEncode::new(7, 33, 17, 130),
    ]
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// A pseudorandom payload of each variant, parameterized so draws stay
/// within the encoder's representable widths (the wire canonically
/// carries the low bits; values wider than the field cannot round-trip
/// by construction).
fn arbitrary_payloads(e: &WireEncode, rng: &mut sw_sim::RngStream) -> Vec<FramePayload> {
    let id = |rng: &mut sw_sim::RngStream| rng.next_u64() % e.n_items;
    let ts = |rng: &mut sw_sim::RngStream| rng.next_u64() & mask(e.timestamp_bits);
    let sig_bits = [8u32, 16, 64, 128][(rng.next_u64() % 4) as usize];
    let n_entries = (rng.next_u64() % 5) as usize;
    let n_sigs = (rng.next_u64() % 6) as usize;
    let entries: Vec<(u64, u64)> = (0..n_entries).map(|_| (id(rng), ts(rng))).collect();
    let ids: Vec<u64> = (0..n_entries).map(|_| id(rng)).collect();
    let sigs: Vec<u64> = (0..n_sigs)
        .map(|_| rng.next_u64() & mask(sig_bits))
        .collect();
    vec![
        FramePayload::TimestampReport {
            report_ts_micros: ts(rng),
            entries: entries.clone(),
        },
        FramePayload::AmnesicReport {
            report_ts_micros: ts(rng),
            ids: ids.clone(),
        },
        FramePayload::AdaptiveTimestampReport {
            report_ts_micros: ts(rng),
            entries,
            window_exceptions: (0..(rng.next_u64() % 4))
                .map(|_| (id(rng), (rng.next_u64() & 0xFFFF) as u32))
                .collect(),
        },
        FramePayload::SignatureReport {
            report_ts_micros: ts(rng),
            sig_bits,
            signatures: Arc::new(sigs.clone()),
        },
        FramePayload::HybridReport {
            report_ts_micros: ts(rng),
            hot_ids: ids,
            sig_bits,
            signatures: Arc::new(sigs),
        },
        FramePayload::UplinkQuery {
            client: rng.next_u64() & mask(32),
            item: id(rng),
        },
        FramePayload::QueryAnswer {
            item: id(rng),
            value: rng.next_u64(),
            ts_micros: rng.next_u64(),
        },
        FramePayload::Invalidation { item: id(rng) },
    ]
}

#[test]
fn round_trip_identity_over_random_payloads() {
    let mut rng = MasterSeed::TEST.stream(StreamId::Custom { tag: 0x11F3 });
    for e in encoders() {
        for _ in 0..200 {
            for p in arbitrary_payloads(&e, &mut rng) {
                let bytes = e.serialize_payload(&p);
                let back = e
                    .deserialize(&bytes)
                    .unwrap_or_else(|err| panic!("{p:?} failed to decode: {err}"));
                assert_eq!(back.payload, p, "payload mutated in flight");
                assert_eq!(back.bits, e.payload_bits(&p), "analytical size mutated");
            }
        }
    }
}

#[test]
fn round_trip_identity_at_extremes() {
    for e in encoders() {
        let max_id = e.n_items - 1;
        let max_ts = mask(e.timestamp_bits);
        let extremes = vec![
            // Empty reports of every report shape.
            FramePayload::TimestampReport {
                report_ts_micros: 0,
                entries: vec![],
            },
            FramePayload::AmnesicReport {
                report_ts_micros: 0,
                ids: vec![],
            },
            FramePayload::AdaptiveTimestampReport {
                report_ts_micros: 0,
                entries: vec![],
                window_exceptions: vec![],
            },
            FramePayload::SignatureReport {
                report_ts_micros: 0,
                sig_bits: 16,
                signatures: Arc::new(vec![]),
            },
            FramePayload::HybridReport {
                report_ts_micros: 0,
                hot_ids: vec![],
                sig_bits: 16,
                signatures: Arc::new(vec![]),
            },
            // Max-width ids and timestamps in every field that carries them.
            FramePayload::TimestampReport {
                report_ts_micros: max_ts,
                entries: vec![(max_id, max_ts), (0, 0)],
            },
            FramePayload::AmnesicReport {
                report_ts_micros: max_ts,
                ids: vec![max_id, 0],
            },
            FramePayload::AdaptiveTimestampReport {
                report_ts_micros: max_ts,
                entries: vec![(max_id, max_ts)],
                window_exceptions: vec![(max_id, u16::MAX as u32)],
            },
            // Signature words saturating the word width, including g > 64
            // (the wire carries the low 64 bits of each word).
            FramePayload::SignatureReport {
                report_ts_micros: max_ts,
                sig_bits: 128,
                signatures: Arc::new(vec![u64::MAX, 0, 1]),
            },
            FramePayload::HybridReport {
                report_ts_micros: max_ts,
                hot_ids: vec![max_id],
                sig_bits: 64,
                signatures: Arc::new(vec![u64::MAX]),
            },
            FramePayload::UplinkQuery {
                client: u32::MAX as u64,
                item: max_id,
            },
            FramePayload::QueryAnswer {
                item: max_id,
                value: u64::MAX,
                ts_micros: u64::MAX,
            },
            FramePayload::Invalidation { item: max_id },
        ];
        for p in extremes {
            let bytes = e.serialize_payload(&p);
            let back = e
                .deserialize(&bytes)
                .unwrap_or_else(|err| panic!("{p:?} failed to decode: {err}"));
            assert_eq!(back.payload, p);
            assert_eq!(back.bits, e.payload_bits(&p));
        }
    }
}

#[test]
fn every_frame_kind_is_covered_by_the_round_trip() {
    // The suite above exercises all four traffic classes; pin that
    // claim so a future FrameKind gains coverage or fails here.
    let e = WireEncode::new(1_000, 512, 512, 512);
    let mut rng = MasterSeed::TEST.stream(StreamId::Custom { tag: 0x11F4 });
    let mut seen = std::collections::HashSet::new();
    for p in arbitrary_payloads(&e, &mut rng) {
        seen.insert(format!("{:?}", WireEncode::kind(&p)));
        let back = e.deserialize(&e.serialize_payload(&p)).expect("round trip");
        assert_eq!(WireEncode::kind(&back.payload), WireEncode::kind(&p));
    }
    for kind in [
        FrameKind::Report,
        FrameKind::Query,
        FrameKind::Answer,
        FrameKind::Invalidation,
    ] {
        assert!(seen.contains(&format!("{kind:?}")), "{kind:?} uncovered");
    }
}

/// Single-bit flips: the checksum trailer must catch every one at the
/// datagram layer, and the naked decoder must still fail cleanly (an
/// `Err`, or an `Ok` that at worst differs — never a panic) when a
/// damaged frame is decoded without the trailer.
#[test]
fn bit_flips_never_panic_and_never_pass_the_checksum() {
    let mut rng = MasterSeed::TEST.stream(StreamId::Custom { tag: 0x11F5 });
    for e in encoders() {
        for p in arbitrary_payloads(&e, &mut rng) {
            let frame = e.serialize_payload(&p);
            let epoch = rng.next_u64();
            let datagram = seal_frame(epoch, frame.clone());
            assert_eq!(
                open_frame(&datagram).expect("clean datagram opens"),
                (epoch, &frame[..]),
                "epoch header did not round-trip"
            );
            for bit in 0..(datagram.len() as u64 * 8) {
                let mut damaged = datagram.clone();
                flip_bit(&mut damaged, bit);
                // The outer guard: a flipped datagram never opens.
                assert!(
                    open_frame(&damaged).is_err(),
                    "bit {bit} slipped past checksum64"
                );
            }
            for bit in 0..(frame.len() as u64 * 8) {
                let mut damaged = frame.clone();
                flip_bit(&mut damaged, bit);
                assert_ne!(checksum64(&damaged), checksum64(&frame));
                // The inner guard: decoding the damaged frame directly
                // must fail cleanly or produce a payload — no panic, no
                // partial state (deserialize is pure).
                let _ = e.deserialize(&damaged);
            }
        }
    }
}

/// Truncations at every byte boundary: never a panic, and any prefix
/// short of the full frame is rejected.
#[test]
fn truncations_fail_cleanly_at_every_length() {
    let mut rng = MasterSeed::TEST.stream(StreamId::Custom { tag: 0x11F6 });
    for e in encoders() {
        for p in arbitrary_payloads(&e, &mut rng) {
            let frame = e.serialize_payload(&p);
            for cut in 0..frame.len() {
                assert!(
                    e.deserialize(&frame[..cut]).is_err(),
                    "{cut}-byte prefix of a {}-byte frame decoded",
                    frame.len()
                );
            }
            let datagram = seal_frame(7, frame);
            for cut in 0..datagram.len() {
                assert!(open_frame(&datagram[..cut]).is_err());
            }
        }
    }
}

/// Arbitrary garbage bytes: the decoder is total.
#[test]
fn random_garbage_never_panics() {
    let mut rng = MasterSeed::TEST.stream(StreamId::Custom { tag: 0x11F7 });
    let e = WireEncode::new(1_000, 512, 512, 512);
    for _ in 0..2_000 {
        let len = (rng.next_u64() % 64) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = e.deserialize(&buf);
        let _ = open_frame(&buf);
    }
}
