//! Bandwidth accounting for the shared wireless channel.
//!
//! §4's throughput derivation splits every broadcast interval in two: the
//! time to transmit the report (`B_c` bits) and the remainder, used to
//! carry uplink queries and their answers. With bandwidth `W` and
//! latency `L`, the interval carries `L·W` bits total, so
//! `L·W − B_c` bits remain for query traffic, and each cache miss costs
//! `b_q + b_a` bits (Eq. 9). [`BroadcastChannel`] enforces exactly that
//! budget and keeps cumulative [`TrafficTotals`].

use crate::frame::{Frame, FrameKind, FramePayload, WireEncode};

/// Error returned when an interval's bit budget cannot fit a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The invalidation report alone exceeds `L·W`; the strategy is
    /// unusable at these parameters (the paper drops TS from Scenarios 3
    /// and 4 for exactly this reason).
    ReportExceedsInterval {
        /// Bits the report needed.
        needed: u64,
        /// Bits the interval offers (`L·W`).
        capacity: u64,
    },
    /// No room left in this interval for another query/answer exchange;
    /// the query must wait for the next interval (it stays queued).
    IntervalSaturated {
        /// Bits the frame needed.
        needed: u64,
        /// Bits still available.
        remaining: u64,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::ReportExceedsInterval { needed, capacity } => write!(
                f,
                "invalidation report of {needed} bits exceeds interval capacity {capacity} bits"
            ),
            ChannelError::IntervalSaturated { needed, remaining } => write!(
                f,
                "interval saturated: frame needs {needed} bits, {remaining} remain"
            ),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Frame counts by [`FrameKind`], stored as a dense array (the kind
/// set is tiny and fixed, so there is nothing to hash).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCounts([u64; 4]);

impl FrameCounts {
    #[inline]
    fn slot(kind: FrameKind) -> usize {
        match kind {
            FrameKind::Report => 0,
            FrameKind::Query => 1,
            FrameKind::Answer => 2,
            FrameKind::Invalidation => 3,
        }
    }

    /// Frames of the given kind sent so far.
    pub fn get(&self, kind: FrameKind) -> u64 {
        self.0[Self::slot(kind)]
    }

    /// All frames, every kind.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    #[inline]
    fn bump(&mut self, kind: FrameKind) {
        self.0[Self::slot(kind)] += 1;
    }
}

/// Cumulative bit counts per direction and frame kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficTotals {
    /// Downlink report bits (`ΣB_c`).
    pub report_bits: u64,
    /// Uplink query bits.
    pub query_bits: u64,
    /// Downlink answer bits.
    pub answer_bits: u64,
    /// Downlink asynchronous invalidation bits.
    pub invalidation_bits: u64,
    /// Frame counts by kind.
    pub frames: FrameCounts,
}

impl TrafficTotals {
    /// All bits that crossed the channel, both directions.
    pub fn total_bits(&self) -> u64 {
        self.report_bits + self.query_bits + self.answer_bits + self.invalidation_bits
    }

    /// Downlink bits only.
    pub fn downlink_bits(&self) -> u64 {
        self.report_bits + self.answer_bits + self.invalidation_bits
    }

    /// Uplink bits only.
    pub fn uplink_bits(&self) -> u64 {
        self.query_bits
    }

    fn charge(&mut self, kind: FrameKind, bits: u64) {
        match kind {
            FrameKind::Report => self.report_bits += bits,
            FrameKind::Query => self.query_bits += bits,
            FrameKind::Answer => self.answer_bits += bits,
            FrameKind::Invalidation => self.invalidation_bits += bits,
        }
        self.frames.bump(kind);
    }
}

/// The remaining budget of the current broadcast interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalBudget {
    /// Interval capacity `L·W` in bits.
    pub capacity: u64,
    /// Bits already consumed this interval.
    pub used: u64,
}

impl IntervalBudget {
    /// Bits still available this interval.
    pub fn remaining(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// Fraction of the interval already used, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }
}

/// The cell's shared channel: fixed bandwidth `W` bits/s, operated in
/// broadcast intervals of `L` seconds.
///
/// Usage per interval: call [`begin_interval`](Self::begin_interval),
/// send the report with [`send_report`](Self::send_report), then any
/// number of [`send_query_exchange`](Self::send_query_exchange) until the
/// budget runs out.
#[derive(Debug, Clone)]
pub struct BroadcastChannel {
    bandwidth_bps: u64,
    interval_secs: f64,
    encode: WireEncode,
    budget: IntervalBudget,
    totals: TrafficTotals,
    intervals: u64,
}

impl BroadcastChannel {
    /// Creates the channel with bandwidth `W` (bits/second) and interval
    /// length `L` (seconds), using `encode` to size frames.
    pub fn new(bandwidth_bps: u64, interval_secs: f64, encode: WireEncode) -> Self {
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        assert!(
            interval_secs.is_finite() && interval_secs > 0.0,
            "interval length must be positive"
        );
        let capacity = (bandwidth_bps as f64 * interval_secs) as u64;
        BroadcastChannel {
            bandwidth_bps,
            interval_secs,
            encode,
            budget: IntervalBudget { capacity, used: 0 },
            totals: TrafficTotals::default(),
            intervals: 0,
        }
    }

    /// The frame encoder in force on this channel.
    pub fn encoder(&self) -> &WireEncode {
        &self.encode
    }

    /// Bandwidth `W` in bits per second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// Interval capacity `L·W` in bits.
    pub fn interval_capacity_bits(&self) -> u64 {
        self.budget.capacity
    }

    /// Number of completed `begin_interval` calls.
    pub fn intervals_elapsed(&self) -> u64 {
        self.intervals
    }

    /// Starts a new broadcast interval, resetting the per-interval
    /// budget.
    pub fn begin_interval(&mut self) {
        self.budget.used = 0;
        self.intervals += 1;
    }

    /// Remaining budget of the current interval.
    pub fn budget(&self) -> IntervalBudget {
        self.budget
    }

    /// Cumulative traffic since construction.
    pub fn totals(&self) -> &TrafficTotals {
        &self.totals
    }

    /// Interval length `L` in seconds.
    pub fn interval_secs(&self) -> f64 {
        self.interval_secs
    }

    /// Zeroes the cumulative traffic and interval counters (warm-up
    /// discard). The current interval budget is untouched.
    pub fn reset_totals(&mut self) {
        self.totals = TrafficTotals::default();
        self.intervals = 0;
    }

    /// Seconds needed to transmit `bits` at bandwidth `W`.
    pub fn transmission_secs(&self, bits: u64) -> f64 {
        bits as f64 / self.bandwidth_bps as f64
    }

    /// Broadcasts the invalidation report, charging `B_c` bits against
    /// the interval.
    ///
    /// Fails with [`ChannelError::ReportExceedsInterval`] when the report
    /// alone does not fit in `L·W` — the condition under which the paper
    /// declares TS "unusable" in Scenarios 3 and 4.
    pub fn send_report(&mut self, report: &Frame) -> Result<(), ChannelError> {
        debug_assert!(matches!(
            WireEncode::kind(&report.payload),
            FrameKind::Report
        ));
        if report.bits > self.budget.capacity {
            return Err(ChannelError::ReportExceedsInterval {
                needed: report.bits,
                capacity: self.budget.capacity,
            });
        }
        self.consume(FrameKind::Report, report.bits)
    }

    /// Broadcasts the invalidation report directly from a borrowed
    /// payload — the zero-copy path: the payload is sized in place and
    /// never wrapped in a [`Frame`], so nothing is cloned. Returns the
    /// charged bit count on success.
    pub fn send_report_payload(&mut self, payload: &FramePayload) -> Result<u64, ChannelError> {
        debug_assert!(matches!(WireEncode::kind(payload), FrameKind::Report));
        let bits = self.encode.payload_bits(payload);
        if bits > self.budget.capacity {
            return Err(ChannelError::ReportExceedsInterval {
                needed: bits,
                capacity: self.budget.capacity,
            });
        }
        self.consume(FrameKind::Report, bits)?;
        Ok(bits)
    }

    /// Sends one uplink query and its downlink answer, charging
    /// `b_q + b_a` bits. Fails if the interval has no room, in which case
    /// the caller re-queues the query for the next interval.
    pub fn send_query_exchange(&mut self, client: u64, item: u64) -> Result<(), ChannelError> {
        let q = self
            .encode
            .frame(FramePayload::UplinkQuery { client, item });
        let a = self.encode.frame(FramePayload::QueryAnswer {
            item,
            value: 0,
            ts_micros: 0,
        });
        let needed = q.bits + a.bits;
        if needed > self.budget.remaining() {
            return Err(ChannelError::IntervalSaturated {
                needed,
                remaining: self.budget.remaining(),
            });
        }
        self.consume(FrameKind::Query, q.bits)?;
        self.consume(FrameKind::Answer, a.bits)
    }

    /// Charges `bits` of dead air against the interval budget without
    /// recording any traffic: the channel is occupied during a retry
    /// backoff, but nothing useful moves, so [`TrafficTotals`] must not
    /// count it (the totals feed the paper's throughput figures, which
    /// measure *delivered* bits). Fails when the interval cannot absorb
    /// the wait, in which case the retrying exchange defers to the next
    /// interval.
    pub fn charge_backoff(&mut self, bits: u64) -> Result<(), ChannelError> {
        if bits > self.budget.remaining() {
            return Err(ChannelError::IntervalSaturated {
                needed: bits,
                remaining: self.budget.remaining(),
            });
        }
        self.budget.used += bits;
        Ok(())
    }

    /// Sends an asynchronous per-item invalidation message (baselines).
    pub fn send_invalidation(&mut self, item: u64) -> Result<(), ChannelError> {
        let f = self.encode.frame(FramePayload::Invalidation { item });
        self.consume(FrameKind::Invalidation, f.bits)
    }

    /// How many `b_q + b_a` query exchanges still fit in this interval.
    pub fn query_exchanges_remaining(&self) -> u64 {
        let per = (self.encode.query_bits + self.encode.answer_bits) as u64;
        self.budget.remaining() / per
    }

    /// The analytical throughput bound of Eq. 9 for the current interval:
    /// `(L·W − B_c) / (b_q + b_a)` query exchanges, given `report_bits`.
    pub fn eq9_throughput_bound(&self, report_bits: u64, hit_ratio: f64) -> f64 {
        let lw = self.budget.capacity as f64;
        let bc = report_bits as f64;
        let per = (self.encode.query_bits + self.encode.answer_bits) as f64;
        if bc >= lw {
            return 0.0;
        }
        let miss = (1.0 - hit_ratio).max(f64::EPSILON);
        (lw - bc) / (per * miss)
    }

    fn consume(&mut self, kind: FrameKind, bits: u64) -> Result<(), ChannelError> {
        if bits > self.budget.remaining() {
            return Err(ChannelError::IntervalSaturated {
                needed: bits,
                remaining: self.budget.remaining(),
            });
        }
        self.budget.used += bits;
        self.totals.charge(kind, bits);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> BroadcastChannel {
        // Scenario 1: W = 10_000 b/s, L = 10 s, n = 1000, b_T = 512.
        BroadcastChannel::new(10_000, 10.0, WireEncode::new(1000, 512, 512, 512))
    }

    #[test]
    fn capacity_is_lw() {
        let c = channel();
        assert_eq!(c.interval_capacity_bits(), 100_000);
    }

    #[test]
    fn report_charges_budget() {
        let mut c = channel();
        c.begin_interval();
        let enc = *c.encoder();
        let report = enc.frame(FramePayload::AmnesicReport {
            report_ts_micros: 0,
            ids: vec![1, 2, 3, 4],
        });
        c.send_report(&report).unwrap();
        assert_eq!(c.budget().used, 40);
        assert_eq!(c.totals().report_bits, 40);
    }

    #[test]
    fn oversized_report_is_rejected_like_scenario3_ts() {
        let mut c = channel();
        c.begin_interval();
        // TS in Scenario 3: ~632 changed items × 522 bits ≈ 330k bits > 100k.
        let enc = *c.encoder();
        let entries: Vec<(u64, u64)> = (0..700).map(|i| (i, i)).collect();
        let report = enc.frame(FramePayload::TimestampReport {
            report_ts_micros: 0,
            entries,
        });
        match c.send_report(&report) {
            Err(ChannelError::ReportExceedsInterval { needed, capacity }) => {
                assert!(needed > capacity);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Nothing was charged.
        assert_eq!(c.totals().report_bits, 0);
    }

    #[test]
    fn query_exchange_costs_bq_plus_ba() {
        let mut c = channel();
        c.begin_interval();
        c.send_query_exchange(1, 7).unwrap();
        assert_eq!(c.budget().used, 1024);
        assert_eq!(c.totals().query_bits, 512);
        assert_eq!(c.totals().answer_bits, 512);
    }

    #[test]
    fn interval_saturates_at_capacity() {
        let mut c = channel();
        c.begin_interval();
        // 100_000 / 1024 = 97 full exchanges fit.
        let mut sent = 0;
        loop {
            match c.send_query_exchange(0, 0) {
                Ok(()) => sent += 1,
                Err(ChannelError::IntervalSaturated { .. }) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(sent, 97);
        assert_eq!(c.query_exchanges_remaining(), 0);
    }

    #[test]
    fn backoff_consumes_budget_but_not_traffic() {
        let mut c = channel();
        c.begin_interval();
        c.charge_backoff(2048).unwrap();
        assert_eq!(c.budget().used, 2048);
        assert_eq!(c.totals().total_bits(), 0);
        assert_eq!(c.totals().frames.total(), 0);
        // The dead air crowds out real exchanges: 97 fit in an idle
        // interval, two exchanges' worth of backoff leaves room for 95.
        assert_eq!(c.query_exchanges_remaining(), 95);
        // An over-budget backoff is rejected and charges nothing.
        let used = c.budget().used;
        assert!(matches!(
            c.charge_backoff(1_000_000),
            Err(ChannelError::IntervalSaturated { .. })
        ));
        assert_eq!(c.budget().used, used);
    }

    #[test]
    fn begin_interval_resets_budget_not_totals() {
        let mut c = channel();
        c.begin_interval();
        c.send_query_exchange(0, 0).unwrap();
        c.begin_interval();
        assert_eq!(c.budget().used, 0);
        assert_eq!(c.totals().query_bits, 512);
        assert_eq!(c.intervals_elapsed(), 2);
    }

    #[test]
    fn eq9_bound_matches_no_cache_throughput() {
        // Eq. 14: T_nc = LW / (b_q + b_a) with h = 0, B_c = 0.
        let c = channel();
        let t = c.eq9_throughput_bound(0, 0.0);
        assert!((t - 100_000.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn eq9_bound_scales_with_hit_ratio() {
        let c = channel();
        let t_half = c.eq9_throughput_bound(0, 0.5);
        let t_zero = c.eq9_throughput_bound(0, 0.0);
        assert!((t_half / t_zero - 2.0).abs() < 1e-9);
    }

    #[test]
    fn eq9_bound_zero_when_report_fills_interval() {
        let c = channel();
        assert_eq!(c.eq9_throughput_bound(200_000, 0.5), 0.0);
    }

    #[test]
    fn transmission_time_is_bits_over_w() {
        let c = channel();
        assert!((c.transmission_secs(10_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalidations_accounted_separately() {
        let mut c = channel();
        c.begin_interval();
        c.send_invalidation(3).unwrap();
        c.send_invalidation(4).unwrap();
        assert_eq!(c.totals().invalidation_bits, 20);
        assert_eq!(c.totals().downlink_bits(), 20);
        assert_eq!(c.totals().uplink_bits(), 0);
    }

    #[test]
    fn utilization_tracks_budget() {
        let mut c = channel();
        c.begin_interval();
        assert_eq!(c.budget().utilization(), 0.0);
        c.send_query_exchange(0, 0).unwrap();
        assert!((c.budget().utilization() - 1024.0 / 100_000.0).abs() < 1e-12);
    }
}
