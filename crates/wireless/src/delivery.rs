//! Report delivery across different network environments (§9).
//!
//! The invalidation-report idea is orthogonal to the underlying network;
//! what changes is how a dozing client *finds* the report:
//!
//! * [`DeliveryMode::TimerSynchronized`] — networks with reservation
//!   MACs (PRMA, MACAW) can guarantee the report goes out exactly at
//!   `T_i`, so the client wakes on a timer just before the broadcast and
//!   listens only for the report duration. A clock-skew bound `ε` forces
//!   the client to wake `ε` early.
//! * [`DeliveryMode::Multicast`] — CSMA/CD-style networks (Ethernet,
//!   CDPD) cannot guarantee timing, so the report is addressed to an
//!   agreed multicast group; the CPU dozes and the NIC wakes it when a
//!   frame for that address arrives. The client pays no busy-listening,
//!   but delivery is late by a contention-dependent jitter.
//!
//! Both modes deliver the same bits; they differ in client listening
//! time and report arrival time, which [`ReportDelivery`] quantifies.

use sw_sim::{RngStream, SimDuration, SimTime};

/// How the MSS gets reports to dozing clients (§9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeliveryMode {
    /// Reservation-MAC network with precise downlink timing. The client
    /// wakes `clock_skew_bound` before `T_i` and listens until the
    /// report finishes.
    TimerSynchronized {
        /// Maximum deviation of the MU clock from the server clock, in
        /// seconds; the MU must wake this early to be safe.
        clock_skew_bound: f64,
    },
    /// Contention network; the report is sent to a multicast address and
    /// the NIC wakes the CPU on arrival. Delivery is delayed by a
    /// uniform jitter in `[0, max_jitter]` seconds (the voice-priority /
    /// contention delay of CDPD or Ethernet).
    Multicast {
        /// Worst-case queueing/contention delay before the report airs.
        max_jitter: f64,
    },
}

/// The outcome of delivering one report to one client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryOutcome {
    /// When the report transmission actually started.
    pub airtime_start: SimTime,
    /// When the client had the full report (start + transmission time).
    pub received_at: SimTime,
    /// How long the client's receiver was actively listening for this
    /// report (energy-relevant; see [`crate::energy`]).
    pub listening: SimDuration,
}

/// Computes delivery timing for a given mode.
#[derive(Debug, Clone, Copy)]
pub struct ReportDelivery {
    mode: DeliveryMode,
}

impl ReportDelivery {
    /// Creates a delivery model for `mode`.
    pub fn new(mode: DeliveryMode) -> Self {
        match mode {
            DeliveryMode::TimerSynchronized { clock_skew_bound } => {
                assert!(
                    clock_skew_bound >= 0.0 && clock_skew_bound.is_finite(),
                    "clock skew bound must be non-negative"
                );
            }
            DeliveryMode::Multicast { max_jitter } => {
                assert!(
                    max_jitter >= 0.0 && max_jitter.is_finite(),
                    "jitter bound must be non-negative"
                );
            }
        }
        ReportDelivery { mode }
    }

    /// The configured mode.
    pub fn mode(&self) -> DeliveryMode {
        self.mode
    }

    /// Delivers a report scheduled at `scheduled` (i.e. `T_i`) whose
    /// transmission takes `tx_time`, drawing any jitter from `rng`.
    pub fn deliver(
        &self,
        scheduled: SimTime,
        tx_time: SimDuration,
        rng: &mut RngStream,
    ) -> DeliveryOutcome {
        match self.mode {
            DeliveryMode::TimerSynchronized { clock_skew_bound } => {
                // Client wakes `ε` early and listens through the report.
                let listening = SimDuration::from_secs(clock_skew_bound) + tx_time;
                DeliveryOutcome {
                    airtime_start: scheduled,
                    received_at: scheduled + tx_time,
                    listening,
                }
            }
            DeliveryMode::Multicast { max_jitter } => {
                let jitter = SimDuration::from_secs(rng.uniform() * max_jitter);
                let start = scheduled + jitter;
                DeliveryOutcome {
                    airtime_start: start,
                    received_at: start + tx_time,
                    // NIC filtering: the CPU is woken only for the report
                    // itself, so listening equals transmission time.
                    listening: tx_time,
                }
            }
        }
    }

    /// Whether a client whose local clock has drifted `drift_secs` past
    /// the server clock misses the report entirely.
    ///
    /// Timer-synchronized delivery wakes the client `ε` (the clock-skew
    /// bound) before `T_i`; the guarantee holds only while the true
    /// skew stays within `ε`. Once accumulated drift exceeds the bound,
    /// the client wakes after the report has started airing and cannot
    /// decode it. Multicast delivery is immune: the NIC — not the
    /// client's clock — wakes the CPU when the report frame arrives.
    pub fn misses_with_drift(&self, drift_secs: f64) -> bool {
        match self.mode {
            DeliveryMode::TimerSynchronized { clock_skew_bound } => {
                drift_secs > clock_skew_bound
            }
            DeliveryMode::Multicast { .. } => false,
        }
    }

    /// Worst-case lateness of the report relative to its schedule.
    pub fn worst_case_delay(&self, tx_time: SimDuration) -> SimDuration {
        match self.mode {
            DeliveryMode::TimerSynchronized { .. } => tx_time,
            DeliveryMode::Multicast { max_jitter } => {
                SimDuration::from_secs(max_jitter) + tx_time
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{MasterSeed, StreamId};

    fn rng() -> RngStream {
        MasterSeed::TEST.stream(StreamId::Custom { tag: 17 })
    }

    #[test]
    fn timer_mode_is_punctual() {
        let d = ReportDelivery::new(DeliveryMode::TimerSynchronized {
            clock_skew_bound: 0.01,
        });
        let mut r = rng();
        let out = d.deliver(SimTime::from_secs(10.0), SimDuration::from_secs(0.5), &mut r);
        assert_eq!(out.airtime_start, SimTime::from_secs(10.0));
        assert_eq!(out.received_at, SimTime::from_secs(10.5));
        assert!((out.listening.as_secs() - 0.51).abs() < 1e-12);
    }

    #[test]
    fn multicast_jitter_is_bounded() {
        let d = ReportDelivery::new(DeliveryMode::Multicast { max_jitter: 2.0 });
        let mut r = rng();
        for _ in 0..1000 {
            let out = d.deliver(SimTime::from_secs(10.0), SimDuration::from_secs(0.1), &mut r);
            let start = out.airtime_start.as_secs();
            assert!((10.0..12.0).contains(&start), "start {start} out of range");
            assert!((out.received_at.as_secs() - start - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn multicast_listens_only_for_report() {
        let d = ReportDelivery::new(DeliveryMode::Multicast { max_jitter: 5.0 });
        let mut r = rng();
        let out = d.deliver(SimTime::from_secs(0.0), SimDuration::from_secs(0.3), &mut r);
        assert!((out.listening.as_secs() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn timer_mode_pays_for_clock_skew() {
        let skewed = ReportDelivery::new(DeliveryMode::TimerSynchronized {
            clock_skew_bound: 1.0,
        });
        let exact = ReportDelivery::new(DeliveryMode::TimerSynchronized {
            clock_skew_bound: 0.0,
        });
        let mut r = rng();
        let tx = SimDuration::from_secs(0.2);
        let a = skewed.deliver(SimTime::ZERO, tx, &mut r);
        let b = exact.deliver(SimTime::ZERO, tx, &mut r);
        assert!(a.listening > b.listening);
    }

    #[test]
    fn drift_beyond_skew_bound_misses_only_in_timer_mode() {
        let timer = ReportDelivery::new(DeliveryMode::TimerSynchronized {
            clock_skew_bound: 0.5,
        });
        assert!(!timer.misses_with_drift(0.0));
        assert!(!timer.misses_with_drift(0.5)); // at the bound: still safe
        assert!(timer.misses_with_drift(0.500001));
        let multicast = ReportDelivery::new(DeliveryMode::Multicast { max_jitter: 3.0 });
        assert!(!multicast.misses_with_drift(1e9)); // NIC wakes the CPU
    }

    #[test]
    fn worst_case_delay_ordering() {
        let timer = ReportDelivery::new(DeliveryMode::TimerSynchronized {
            clock_skew_bound: 0.0,
        });
        let multicast = ReportDelivery::new(DeliveryMode::Multicast { max_jitter: 3.0 });
        let tx = SimDuration::from_secs(0.5);
        assert!(timer.worst_case_delay(tx) < multicast.worst_case_delay(tx));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_jitter_rejected() {
        let _ = ReportDelivery::new(DeliveryMode::Multicast { max_jitter: -1.0 });
    }
}
