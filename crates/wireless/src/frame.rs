//! Wire encoding of everything that crosses the channel.
//!
//! The analytical model charges the channel in bits:
//!
//! * a TS report entry costs `⌈log2 n⌉ + b_T` bits (item id + timestamp,
//!   §4.3);
//! * an AT report entry costs `⌈log2 n⌉` bits (§4.4);
//! * a SIG report costs `m · g` bits (`m` combined signatures of `g`
//!   bits, §4.5);
//! * an uplink query costs `b_q` bits and its answer `b_a` bits (§4).
//!
//! To keep the simulator honest we also *serialize* frames into real byte
//! buffers. The wire format packs fields at bit granularity so the
//! measured size equals the analytical size rounded up to whole bytes;
//! unit tests pin that relationship down.
//!
//! Signature vectors are [`Arc`]-shared: one report payload built per
//! interval is handed by reference to every listening client, so the
//! `m`-word vector is never copied on the broadcast path.

use std::sync::Arc;

/// Number of bits needed to name one of `n` items: `⌈log2 n⌉`.
///
/// The paper writes `log(n)` for the id cost; we resolve it as the
/// standard fixed-width binary code (see DESIGN.md §4).
#[inline]
pub fn id_bits(n: u64) -> u32 {
    debug_assert!(n > 0, "database cannot be empty");
    if n <= 1 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// What a frame carries.
#[derive(Debug, Clone, PartialEq)]
pub enum FramePayload {
    /// A TS invalidation report: `(item id, update timestamp)` pairs for
    /// items changed within the window `w`.
    TimestampReport {
        /// Report timestamp `T_i` in integer microseconds.
        report_ts_micros: u64,
        /// `(id, update timestamp in micros)` entries.
        entries: Vec<(u64, u64)>,
    },
    /// An AT invalidation report: ids of items changed since the last
    /// report.
    AmnesicReport {
        /// Report timestamp `T_i` in integer microseconds.
        report_ts_micros: u64,
        /// Changed item ids.
        ids: Vec<u64>,
    },
    /// An adaptive TS report (§8): per-item-window entries plus the
    /// current window exception table (items whose window differs from
    /// the shared default), so clients always apply the server's
    /// windows.
    AdaptiveTimestampReport {
        /// Report timestamp `T_i` in integer microseconds.
        report_ts_micros: u64,
        /// `(id, update timestamp in micros)` entries.
        entries: Vec<(u64, u64)>,
        /// `(id, window in intervals)` exceptions from the default.
        window_exceptions: Vec<(u64, u32)>,
    },
    /// A §10 hybrid report: hot items are broadcast individually
    /// (AT-style id list), the rest of the database participates in the
    /// combined signatures — "the 'hot spot' items can be individually
    /// broadcasted, while the rest of the database items would
    /// participate in the signatures."
    HybridReport {
        /// Report timestamp `T_i` in integer microseconds.
        report_ts_micros: u64,
        /// Hot items updated in the last interval.
        hot_ids: Vec<u64>,
        /// Signature width `g` in bits.
        sig_bits: u32,
        /// Combined signatures over the cold items (shared, not copied,
        /// between the builder and every client).
        signatures: Arc<Vec<u64>>,
    },
    /// A SIG report: `m` combined signatures of `g` bits each.
    SignatureReport {
        /// Report timestamp `T_i` in integer microseconds.
        report_ts_micros: u64,
        /// Signature width `g` in bits.
        sig_bits: u32,
        /// The combined signatures (low `sig_bits` of each word; shared,
        /// not copied, between the builder and every client).
        signatures: Arc<Vec<u64>>,
    },
    /// An uplink query for one item.
    UplinkQuery {
        /// Querying client.
        client: u64,
        /// Queried item id.
        item: u64,
    },
    /// The downlink answer to an uplink query.
    QueryAnswer {
        /// Item id.
        item: u64,
        /// Current value at the server.
        value: u64,
        /// Server-side timestamp of the answer, in micros.
        ts_micros: u64,
    },
    /// A per-item asynchronous invalidation message (§2's stateful /
    /// asynchronous baselines).
    Invalidation {
        /// Item id.
        item: u64,
    },
}

/// Frame classification used by the traffic accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Periodic invalidation report (downlink).
    Report,
    /// Uplink query.
    Query,
    /// Downlink answer.
    Answer,
    /// Asynchronous invalidation (downlink).
    Invalidation,
}

/// A frame plus its *analytical* size in bits, as charged by the paper's
/// formulas. The serialized byte length is always `⌈bits/8⌉` plus a
/// fixed 2-byte kind/len header (excluded from analytical accounting to
/// match the paper, which charges payloads only).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The payload.
    pub payload: FramePayload,
    /// Analytical size in bits.
    pub bits: u64,
}

/// Encoding parameters shared by the cell: how many bits an id, a
/// timestamp, a query, and an answer take.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireEncode {
    /// Database size `n` (determines id width).
    pub n_items: u64,
    /// Timestamp width `b_T` in bits (512 in the paper's scenarios).
    pub timestamp_bits: u32,
    /// Uplink query cost `b_q` in bits.
    pub query_bits: u32,
    /// Answer cost `b_a` in bits.
    pub answer_bits: u32,
}

impl WireEncode {
    /// Creates the encoder, validating widths.
    pub fn new(n_items: u64, timestamp_bits: u32, query_bits: u32, answer_bits: u32) -> Self {
        assert!(n_items > 0, "database cannot be empty");
        assert!(timestamp_bits > 0 && timestamp_bits <= 4096);
        assert!(query_bits > 0 && answer_bits > 0);
        WireEncode {
            n_items,
            timestamp_bits,
            query_bits,
            answer_bits,
        }
    }

    /// Bits to name one item: `⌈log2 n⌉`.
    pub fn id_bits(&self) -> u32 {
        id_bits(self.n_items)
    }

    /// Analytical size in bits of a TS report with `entries` entries:
    /// `n_c · (⌈log2 n⌉ + b_T)` (§4.3).
    pub fn ts_report_bits(&self, entries: usize) -> u64 {
        entries as u64 * (self.id_bits() as u64 + self.timestamp_bits as u64)
    }

    /// Analytical size in bits of an AT report with `ids` ids:
    /// `n_L · ⌈log2 n⌉` (§4.4).
    pub fn at_report_bits(&self, ids: usize) -> u64 {
        ids as u64 * self.id_bits() as u64
    }

    /// Analytical size in bits of a SIG report of `m` signatures of `g`
    /// bits: `m · g` (§4.5).
    pub fn sig_report_bits(&self, m: usize, g: u32) -> u64 {
        m as u64 * g as u64
    }

    /// Analytical size in bits of any payload, without constructing a
    /// [`Frame`] (the zero-copy broadcast path charges the channel from
    /// a borrowed payload).
    pub fn payload_bits(&self, payload: &FramePayload) -> u64 {
        match payload {
            FramePayload::TimestampReport { entries, .. } => self.ts_report_bits(entries.len()),
            FramePayload::AdaptiveTimestampReport {
                entries,
                window_exceptions,
                ..
            } => {
                self.ts_report_bits(entries.len())
                    + window_exceptions.len() as u64 * (self.id_bits() as u64 + 16)
            }
            FramePayload::AmnesicReport { ids, .. } => self.at_report_bits(ids.len()),
            FramePayload::SignatureReport {
                signatures,
                sig_bits,
                ..
            } => self.sig_report_bits(signatures.len(), *sig_bits),
            FramePayload::HybridReport {
                hot_ids,
                signatures,
                sig_bits,
                ..
            } => {
                self.at_report_bits(hot_ids.len())
                    + self.sig_report_bits(signatures.len(), *sig_bits)
            }
            FramePayload::UplinkQuery { .. } => self.query_bits as u64,
            FramePayload::QueryAnswer { .. } => self.answer_bits as u64,
            FramePayload::Invalidation { .. } => self.id_bits() as u64,
        }
    }

    /// Classifies and sizes a payload, producing a [`Frame`].
    pub fn frame(&self, payload: FramePayload) -> Frame {
        let bits = self.payload_bits(&payload);
        Frame { payload, bits }
    }

    /// Serializes a frame into bytes: a fixed 10-byte header (kind,
    /// wire version, body length in *bits*), a per-kind extension
    /// header where the body alone is ambiguous (entry counts that a
    /// byte length cannot recover — see [`WireEncode::deserialize`]),
    /// and the bit-packed body padded to a whole byte. The total length
    /// is `10 + ext + ⌈bits/8⌉`; the header is excluded from analytical
    /// accounting to match the paper, which charges payloads only.
    pub fn serialize(&self, frame: &Frame) -> Vec<u8> {
        self.serialize_payload(&frame.payload)
    }

    /// Extension-header length in bytes for a frame kind: counts the
    /// decoder cannot recover from the bit length alone. Adaptive
    /// reports carry the window-exception count, SIG reports the
    /// signature width `g`, hybrid reports both the hot-id count and
    /// `g`.
    fn ext_header_len(kind: u8) -> usize {
        match kind {
            2 | 6 => 4,
            7 => 8,
            _ => 0,
        }
    }

    /// Serializes a payload directly (the zero-copy broadcast path and
    /// the fault injector's corruption check hold borrowed payloads,
    /// never whole [`Frame`]s).
    pub fn serialize_payload(&self, payload: &FramePayload) -> Vec<u8> {
        let mut w = BitWriter::new();
        match payload {
            FramePayload::TimestampReport {
                report_ts_micros,
                entries,
            } => {
                w.put_bits(*report_ts_micros, self.timestamp_bits);
                for (id, ts) in entries {
                    w.put_bits(*id, self.id_bits());
                    w.put_bits(*ts, self.timestamp_bits);
                }
            }
            FramePayload::AmnesicReport {
                report_ts_micros,
                ids,
            } => {
                w.put_bits(*report_ts_micros, self.timestamp_bits);
                for id in ids {
                    w.put_bits(*id, self.id_bits());
                }
            }
            FramePayload::AdaptiveTimestampReport {
                report_ts_micros,
                entries,
                window_exceptions,
            } => {
                w.put_bits(*report_ts_micros, self.timestamp_bits);
                for (id, ts) in entries {
                    w.put_bits(*id, self.id_bits());
                    w.put_bits(*ts, self.timestamp_bits);
                }
                for (id, win) in window_exceptions {
                    w.put_bits(*id, self.id_bits());
                    w.put_bits(*win as u64, 16);
                }
            }
            FramePayload::SignatureReport {
                report_ts_micros,
                sig_bits,
                signatures,
            } => {
                w.put_bits(*report_ts_micros, self.timestamp_bits);
                for s in signatures.iter() {
                    w.put_bits(*s, (*sig_bits).min(64));
                }
            }
            FramePayload::HybridReport {
                report_ts_micros,
                hot_ids,
                sig_bits,
                signatures,
            } => {
                w.put_bits(*report_ts_micros, self.timestamp_bits);
                for id in hot_ids {
                    w.put_bits(*id, self.id_bits());
                }
                for s in signatures.iter() {
                    w.put_bits(*s, (*sig_bits).min(64));
                }
            }
            FramePayload::UplinkQuery { client, item } => {
                w.put_bits(*client, 32);
                w.put_bits(*item, self.id_bits());
            }
            FramePayload::QueryAnswer {
                item,
                value,
                ts_micros,
            } => {
                w.put_bits(*item, self.id_bits());
                w.put_bits(*value, 64);
                w.put_bits(*ts_micros, 64);
            }
            FramePayload::Invalidation { item } => {
                w.put_bits(*item, self.id_bits());
            }
        }
        let kind = match payload {
            FramePayload::TimestampReport { .. } => 0u8,
            FramePayload::AdaptiveTimestampReport { .. } => 6,
            FramePayload::HybridReport { .. } => 7,
            FramePayload::AmnesicReport { .. } => 1,
            FramePayload::SignatureReport { .. } => 2,
            FramePayload::UplinkQuery { .. } => 3,
            FramePayload::QueryAnswer { .. } => 4,
            FramePayload::Invalidation { .. } => 5,
        };
        let bits = w.bits_written();
        let body = w.finish();
        let mut out = Vec::with_capacity(body.len() + 10 + Self::ext_header_len(kind));
        out.push(kind);
        out.push(WIRE_VERSION);
        out.extend_from_slice(&bits.to_be_bytes());
        match payload {
            FramePayload::SignatureReport { sig_bits, .. } => {
                out.extend_from_slice(&sig_bits.to_be_bytes());
            }
            FramePayload::AdaptiveTimestampReport {
                window_exceptions, ..
            } => {
                out.extend_from_slice(&(window_exceptions.len() as u32).to_be_bytes());
            }
            FramePayload::HybridReport {
                hot_ids, sig_bits, ..
            } => {
                out.extend_from_slice(&(hot_ids.len() as u32).to_be_bytes());
                out.extend_from_slice(&sig_bits.to_be_bytes());
            }
            _ => {}
        }
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a serialized frame back into the payload it was built
    /// from — the missing half of the wire layer, used by the live
    /// runtime's real receivers (`sw-live`).
    ///
    /// The decoder is total: any input either yields a payload or a
    /// [`WireDecodeError`]; it never panics and never half-applies.
    /// Every structural claim the header makes is checked against the
    /// actual buffer — exact overall length, entry widths dividing the
    /// body bit length, zero padding in the final partial byte, zero
    /// pad bits in over-wide (> 64 bit) timestamp fields — so a
    /// truncated or bit-flipped frame that slips past the outer
    /// [`checksum64`] trailer still fails cleanly here in almost all
    /// cases. `serialize ∘ deserialize ≡ id` for every [`FramePayload`]
    /// variant (pinned by the round-trip suite in
    /// `crates/wireless/tests/wire_roundtrip.rs`).
    pub fn deserialize(&self, bytes: &[u8]) -> Result<Frame, WireDecodeError> {
        if bytes.len() < 10 {
            return Err(WireDecodeError::Truncated {
                needed: 10,
                got: bytes.len(),
            });
        }
        let kind = bytes[0];
        let version = bytes[1];
        if version != WIRE_VERSION {
            return Err(WireDecodeError::UnsupportedVersion(version));
        }
        if !matches!(kind, 0..=7) {
            return Err(WireDecodeError::UnknownKind(kind));
        }
        let bits = u64::from_be_bytes(bytes[2..10].try_into().expect("8 bytes"));
        let ext_len = Self::ext_header_len(kind);
        let body_bytes = (bits / 8 + u64::from(bits % 8 != 0))
            .try_into()
            .map_err(|_| WireDecodeError::Malformed("bit length exceeds addressable size"))?;
        let expected: usize = 10usize
            .checked_add(ext_len)
            .and_then(|n| n.checked_add(body_bytes))
            .ok_or(WireDecodeError::Malformed("bit length exceeds addressable size"))?;
        if bytes.len() < expected {
            return Err(WireDecodeError::Truncated {
                needed: expected,
                got: bytes.len(),
            });
        }
        if bytes.len() > expected {
            return Err(WireDecodeError::TrailingBytes {
                expected,
                got: bytes.len(),
            });
        }
        let ext = &bytes[10..10 + ext_len];
        let mut r = BitReader::new(&bytes[10 + ext_len..], bits);
        let id_w = self.id_bits();
        let ts_w = self.timestamp_bits;
        let entry_w = id_w as u64 + ts_w as u64;
        // Reports lead with the report timestamp; short bodies are
        // structurally impossible.
        let report_header = |bits: u64| -> Result<u64, WireDecodeError> {
            bits.checked_sub(ts_w as u64)
                .ok_or(WireDecodeError::Malformed("body shorter than report timestamp"))
        };
        let payload = match kind {
            0 => {
                let rem = report_header(bits)?;
                if rem % entry_w != 0 {
                    return Err(WireDecodeError::Malformed("TS body not a whole entry count"));
                }
                let report_ts_micros = r.get_bits(ts_w)?;
                let mut entries = Vec::with_capacity((rem / entry_w) as usize);
                for _ in 0..rem / entry_w {
                    entries.push((r.get_bits(id_w)?, r.get_bits(ts_w)?));
                }
                FramePayload::TimestampReport {
                    report_ts_micros,
                    entries,
                }
            }
            1 => {
                let rem = report_header(bits)?;
                if rem % id_w as u64 != 0 {
                    return Err(WireDecodeError::Malformed("AT body not a whole id count"));
                }
                let report_ts_micros = r.get_bits(ts_w)?;
                let mut ids = Vec::with_capacity((rem / id_w as u64) as usize);
                for _ in 0..rem / id_w as u64 {
                    ids.push(r.get_bits(id_w)?);
                }
                FramePayload::AmnesicReport {
                    report_ts_micros,
                    ids,
                }
            }
            2 => {
                let sig_bits = u32::from_be_bytes(ext.try_into().expect("4 bytes"));
                if sig_bits == 0 {
                    return Err(WireDecodeError::Malformed("zero signature width"));
                }
                let word_w = sig_bits.min(64);
                let rem = report_header(bits)?;
                if rem % word_w as u64 != 0 {
                    return Err(WireDecodeError::Malformed("SIG body not a whole word count"));
                }
                let report_ts_micros = r.get_bits(ts_w)?;
                let mut signatures = Vec::with_capacity((rem / word_w as u64) as usize);
                for _ in 0..rem / word_w as u64 {
                    signatures.push(r.get_bits(word_w)?);
                }
                FramePayload::SignatureReport {
                    report_ts_micros,
                    sig_bits,
                    signatures: Arc::new(signatures),
                }
            }
            6 => {
                let n_exc = u32::from_be_bytes(ext.try_into().expect("4 bytes")) as u64;
                let exc_w = id_w as u64 + 16;
                let exc_bits = n_exc
                    .checked_mul(exc_w)
                    .ok_or(WireDecodeError::Malformed("exception count overflows"))?;
                let rem = report_header(bits)?
                    .checked_sub(exc_bits)
                    .ok_or(WireDecodeError::Malformed("exception table exceeds body"))?;
                if rem % entry_w != 0 {
                    return Err(WireDecodeError::Malformed("TS body not a whole entry count"));
                }
                let report_ts_micros = r.get_bits(ts_w)?;
                let mut entries = Vec::with_capacity((rem / entry_w) as usize);
                for _ in 0..rem / entry_w {
                    entries.push((r.get_bits(id_w)?, r.get_bits(ts_w)?));
                }
                let mut window_exceptions = Vec::with_capacity(n_exc as usize);
                for _ in 0..n_exc {
                    window_exceptions.push((r.get_bits(id_w)?, r.get_bits(16)? as u32));
                }
                FramePayload::AdaptiveTimestampReport {
                    report_ts_micros,
                    entries,
                    window_exceptions,
                }
            }
            7 => {
                let n_hot = u32::from_be_bytes(ext[..4].try_into().expect("4 bytes")) as u64;
                let sig_bits = u32::from_be_bytes(ext[4..].try_into().expect("4 bytes"));
                if sig_bits == 0 {
                    return Err(WireDecodeError::Malformed("zero signature width"));
                }
                let word_w = sig_bits.min(64);
                let hot_bits = n_hot
                    .checked_mul(id_w as u64)
                    .ok_or(WireDecodeError::Malformed("hot-id count overflows"))?;
                let rem = report_header(bits)?
                    .checked_sub(hot_bits)
                    .ok_or(WireDecodeError::Malformed("hot-id list exceeds body"))?;
                if rem % word_w as u64 != 0 {
                    return Err(WireDecodeError::Malformed("SIG body not a whole word count"));
                }
                let report_ts_micros = r.get_bits(ts_w)?;
                let mut hot_ids = Vec::with_capacity(n_hot as usize);
                for _ in 0..n_hot {
                    hot_ids.push(r.get_bits(id_w)?);
                }
                let mut signatures = Vec::with_capacity((rem / word_w as u64) as usize);
                for _ in 0..rem / word_w as u64 {
                    signatures.push(r.get_bits(word_w)?);
                }
                FramePayload::HybridReport {
                    report_ts_micros,
                    hot_ids,
                    sig_bits,
                    signatures: Arc::new(signatures),
                }
            }
            3 => {
                if bits != 32 + id_w as u64 {
                    return Err(WireDecodeError::Malformed("bad uplink-query length"));
                }
                FramePayload::UplinkQuery {
                    client: r.get_bits(32)?,
                    item: r.get_bits(id_w)?,
                }
            }
            4 => {
                if bits != id_w as u64 + 128 {
                    return Err(WireDecodeError::Malformed("bad query-answer length"));
                }
                FramePayload::QueryAnswer {
                    item: r.get_bits(id_w)?,
                    value: r.get_bits(64)?,
                    ts_micros: r.get_bits(64)?,
                }
            }
            5 => {
                if bits != id_w as u64 {
                    return Err(WireDecodeError::Malformed("bad invalidation length"));
                }
                FramePayload::Invalidation {
                    item: r.get_bits(id_w)?,
                }
            }
            _ => unreachable!("kind range checked above"),
        };
        r.finish()?;
        Ok(self.frame(payload))
    }

    /// The [`FrameKind`] of a payload.
    pub fn kind(payload: &FramePayload) -> FrameKind {
        match payload {
            FramePayload::TimestampReport { .. }
            | FramePayload::AdaptiveTimestampReport { .. }
            | FramePayload::AmnesicReport { .. }
            | FramePayload::HybridReport { .. }
            | FramePayload::SignatureReport { .. } => FrameKind::Report,
            FramePayload::UplinkQuery { .. } => FrameKind::Query,
            FramePayload::QueryAnswer { .. } => FrameKind::Answer,
            FramePayload::Invalidation { .. } => FrameKind::Invalidation,
        }
    }
}

/// 64-bit FNV-1a checksum over a serialized frame.
///
/// Every frame is notionally transmitted with this trailer; a receiver
/// whose recomputed checksum mismatches discards the frame and treats
/// the report as *missed* — a corrupted invalidation list must never be
/// half-applied (see DESIGN.md §10). FNV-1a detects every single-bit
/// flip (each input bit feeds the multiply-xor chain), which the fault
/// injector's corruption tests rely on; it is an error-detection code
/// here, not a cryptographic one.
#[inline]
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Flips bit `bit` (MSB-first within each byte) of a serialized frame,
/// modelling a single-bit channel error. `bit` is taken modulo the
/// buffer's bit length so any draw is in range.
pub fn flip_bit(bytes: &mut [u8], bit: u64) {
    if bytes.is_empty() {
        return;
    }
    let bit = bit % (bytes.len() as u64 * 8);
    bytes[(bit / 8) as usize] ^= 0x80 >> (bit % 8);
}

/// Wire format version stamped into byte 1 of every frame header.
/// Version 1 stores the body length in *bits* (version 0 stored bytes,
/// which cannot recover entry counts on decode) plus the per-kind
/// extension headers.
pub const WIRE_VERSION: u8 = 1;

/// Why a serialized frame failed to decode.
///
/// A decoder error means the frame is *discarded whole* — the receiving
/// strategy treats the report as missed and runs its own gap-recovery
/// rule at the next intact report; nothing is ever half-applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireDecodeError {
    /// Fewer bytes than the header demands.
    Truncated {
        /// Bytes the header (or the fixed prefix) requires.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// More bytes than the header accounts for.
    TrailingBytes {
        /// Bytes the header accounts for.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Unrecognized kind byte.
    UnknownKind(u8),
    /// Wire version this decoder does not speak.
    UnsupportedVersion(u8),
    /// The [`checksum64`] trailer does not match the frame bytes.
    ChecksumMismatch,
    /// A structural invariant of the claimed kind does not hold.
    Malformed(&'static str),
}

impl std::fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireDecodeError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            WireDecodeError::TrailingBytes { expected, got } => {
                write!(f, "trailing bytes: frame accounts for {expected}, got {got}")
            }
            WireDecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireDecodeError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireDecodeError::ChecksumMismatch => write!(f, "checksum mismatch"),
            WireDecodeError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for WireDecodeError {}

/// Prepends the big-endian epoch header and appends the [`checksum64`]
/// trailer (computed over header + frame), producing the datagram
/// actually put on the wire: `[epoch: 8][frame][checksum64: 8]`.
///
/// The epoch numbers the *broadcaster*, not the report: replicated
/// servers (`sw-ha`) bump it on every takeover so a receiver can fence
/// datagrams from a deposed primary. Unreplicated senders use epoch 0.
/// The checksum covers the epoch bytes too, so a bit flip in the header
/// is detected exactly like a flip in the payload.
pub fn seal_frame(epoch: u64, frame: Vec<u8>) -> Vec<u8> {
    let mut datagram = Vec::with_capacity(frame.len() + 16);
    datagram.extend_from_slice(&epoch.to_be_bytes());
    datagram.extend_from_slice(&frame);
    let sum = checksum64(&datagram);
    datagram.extend_from_slice(&sum.to_be_bytes());
    datagram
}

/// Verifies and strips the [`checksum64`] trailer and epoch header of a
/// received datagram, returning `(epoch, frame bytes)`. A mismatch
/// means the datagram was damaged in flight; the caller must treat the
/// report as missed.
pub fn open_frame(datagram: &[u8]) -> Result<(u64, &[u8]), WireDecodeError> {
    if datagram.len() < 16 {
        return Err(WireDecodeError::Truncated {
            needed: 16,
            got: datagram.len(),
        });
    }
    let (body, trailer) = datagram.split_at(datagram.len() - 8);
    let declared = u64::from_be_bytes(trailer.try_into().expect("8 bytes"));
    if checksum64(body) != declared {
        return Err(WireDecodeError::ChecksumMismatch);
    }
    let (header, frame) = body.split_at(8);
    let epoch = u64::from_be_bytes(header.try_into().expect("8 bytes"));
    Ok((epoch, frame))
}

/// Minimal MSB-first bit packer backing [`WireEncode::serialize`].
struct BitWriter {
    buf: Vec<u8>,
    cur: u8,
    filled: u32,
    bits: u64,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            buf: Vec::new(),
            cur: 0,
            filled: 0,
            bits: 0,
        }
    }

    /// Exact number of bits written so far (the serialized header's
    /// length field; the final byte's padding is not counted).
    fn bits_written(&self) -> u64 {
        self.bits
    }

    /// Writes the low `width` bits of `value`, MSB first. `width` beyond
    /// 64 pads with zero bits (timestamps wider than a machine word).
    fn put_bits(&mut self, value: u64, width: u32) {
        let pad = width.saturating_sub(64);
        for _ in 0..pad {
            self.push_bit(false);
        }
        let width = width.min(64);
        for i in (0..width).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    #[inline]
    fn push_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | bit as u8;
        self.filled += 1;
        self.bits += 1;
        if self.filled == 8 {
            self.buf.push(self.cur);
            self.cur = 0;
            self.filled = 0;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.cur <<= 8 - self.filled;
            self.buf.push(self.cur);
        }
        self.buf
    }
}

/// MSB-first bit unpacker backing [`WireEncode::deserialize`]; the
/// mirror of [`BitWriter`]. Bounded by the header's declared bit
/// length, never by the byte buffer alone, so padding bits cannot be
/// misread as data.
struct BitReader<'a> {
    body: &'a [u8],
    pos: u64,
    bits: u64,
}

impl<'a> BitReader<'a> {
    fn new(body: &'a [u8], bits: u64) -> Self {
        BitReader { body, pos: 0, bits }
    }

    /// Reads the next `width`-bit field MSB first, returning its low 64
    /// bits. For fields wider than 64 bits the leading pad must be zero
    /// (the writer only ever emits zeros there) — anything else is a
    /// damaged frame.
    fn get_bits(&mut self, width: u32) -> Result<u64, WireDecodeError> {
        if self.bits - self.pos < width as u64 {
            return Err(WireDecodeError::Malformed("field extends past declared length"));
        }
        let pad = width.saturating_sub(64);
        for _ in 0..pad {
            if self.take_bit() {
                return Err(WireDecodeError::Malformed("nonzero pad in over-wide field"));
            }
        }
        let mut v = 0u64;
        for _ in 0..width.min(64) {
            v = (v << 1) | self.take_bit() as u64;
        }
        Ok(v)
    }

    #[inline]
    fn take_bit(&mut self) -> bool {
        let byte = self.body[(self.pos / 8) as usize];
        let bit = byte & (0x80 >> (self.pos % 8)) != 0;
        self.pos += 1;
        bit
    }

    /// Asserts the declared bit length was consumed exactly and the
    /// final byte's padding bits are all zero.
    fn finish(self) -> Result<(), WireDecodeError> {
        debug_assert_eq!(self.pos, self.bits, "decoder arithmetic consumes bits exactly");
        let tail = self.bits % 8;
        if tail != 0 {
            let last = self.body[(self.bits / 8) as usize];
            if last & (0xFF >> tail) != 0 {
                return Err(WireDecodeError::Malformed("nonzero final-byte padding"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc() -> WireEncode {
        // Scenario 1 parameters: n = 1000, b_T = 512.
        WireEncode::new(1000, 512, 512, 512)
    }

    #[test]
    fn id_bits_is_ceil_log2() {
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(1000), 10);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
        assert_eq!(id_bits(1_000_000), 20);
    }

    #[test]
    fn ts_report_bits_match_formula() {
        let e = enc();
        // n_c entries of (10-bit id + 512-bit timestamp).
        assert_eq!(e.ts_report_bits(7), 7 * (10 + 512));
    }

    #[test]
    fn at_report_bits_match_formula() {
        let e = enc();
        assert_eq!(e.at_report_bits(13), 13 * 10);
    }

    #[test]
    fn sig_report_bits_match_formula() {
        let e = enc();
        assert_eq!(e.sig_report_bits(100, 16), 1600);
    }

    #[test]
    fn frame_sizes_flow_from_payload() {
        let e = enc();
        let f = e.frame(FramePayload::AmnesicReport {
            report_ts_micros: 0,
            ids: vec![1, 2, 3],
        });
        assert_eq!(f.bits, 30);
        let q = e.frame(FramePayload::UplinkQuery { client: 0, item: 5 });
        assert_eq!(q.bits, 512);
        let a = e.frame(FramePayload::QueryAnswer {
            item: 5,
            value: 99,
            ts_micros: 1,
        });
        assert_eq!(a.bits, 512);
    }

    #[test]
    fn serialized_length_tracks_analytical_bits() {
        let e = enc();
        // AT report: 3 ids = 30 bits + 512-bit report timestamp header.
        let f = e.frame(FramePayload::AmnesicReport {
            report_ts_micros: 42,
            ids: vec![1, 2, 3],
        });
        let bytes = e.serialize(&f);
        // header (10) + ceil((512 + 30)/8) = 10 + 68
        assert_eq!(bytes.len(), 10 + 68);
    }

    #[test]
    fn serialization_is_deterministic() {
        let e = enc();
        let f = e.frame(FramePayload::TimestampReport {
            report_ts_micros: 10,
            entries: vec![(1, 5), (2, 9)],
        });
        assert_eq!(e.serialize(&f), e.serialize(&f));
    }

    #[test]
    fn distinct_payloads_distinct_bytes() {
        let e = enc();
        let a = e.serialize(&e.frame(FramePayload::AmnesicReport {
            report_ts_micros: 0,
            ids: vec![1],
        }));
        let b = e.serialize(&e.frame(FramePayload::AmnesicReport {
            report_ts_micros: 0,
            ids: vec![2],
        }));
        assert_ne!(a, b);
    }

    #[test]
    fn kind_classification() {
        assert_eq!(
            WireEncode::kind(&FramePayload::UplinkQuery { client: 0, item: 0 }),
            FrameKind::Query
        );
        assert_eq!(
            WireEncode::kind(&FramePayload::SignatureReport {
                report_ts_micros: 0,
                sig_bits: 16,
                signatures: Arc::new(vec![])
            }),
            FrameKind::Report
        );
        assert_eq!(
            WireEncode::kind(&FramePayload::Invalidation { item: 3 }),
            FrameKind::Invalidation
        );
    }

    #[test]
    fn hybrid_report_bits_are_ids_plus_signatures() {
        let e = enc();
        let f = e.frame(FramePayload::HybridReport {
            report_ts_micros: 0,
            hot_ids: vec![1, 2, 3],
            sig_bits: 16,
            signatures: Arc::new(vec![0; 100]),
        });
        assert_eq!(f.bits, 3 * 10 + 100 * 16);
    }

    #[test]
    fn adaptive_report_bits_include_window_exceptions() {
        let e = enc();
        let f = e.frame(FramePayload::AdaptiveTimestampReport {
            report_ts_micros: 0,
            entries: vec![(1, 5), (2, 9)],
            window_exceptions: vec![(7, 50)],
        });
        // 2 entries × (10 + 512) + 1 exception × (10 + 16).
        assert_eq!(f.bits, 2 * 522 + 26);
    }

    #[test]
    fn hybrid_and_adaptive_serialize_deterministically() {
        let e = enc();
        for payload in [
            FramePayload::HybridReport {
                report_ts_micros: 5,
                hot_ids: vec![9],
                sig_bits: 16,
                signatures: Arc::new(vec![1, 2, 3]),
            },
            FramePayload::AdaptiveTimestampReport {
                report_ts_micros: 5,
                entries: vec![(1, 2)],
                window_exceptions: vec![(3, 4)],
            },
        ] {
            let f = e.frame(payload);
            assert_eq!(e.serialize(&f), e.serialize(&f));
            assert_eq!(WireEncode::kind(&f.payload), FrameKind::Report);
        }
    }

    #[test]
    fn serialize_payload_matches_serialize() {
        let e = enc();
        let f = e.frame(FramePayload::TimestampReport {
            report_ts_micros: 10,
            entries: vec![(1, 5), (2, 9)],
        });
        assert_eq!(e.serialize(&f), e.serialize_payload(&f.payload));
    }

    #[test]
    fn checksum_detects_every_single_bit_flip() {
        let e = enc();
        let bytes = e.serialize_payload(&FramePayload::TimestampReport {
            report_ts_micros: 42,
            entries: vec![(1, 5), (2, 9), (999, 77)],
        });
        let clean = checksum64(&bytes);
        for bit in 0..(bytes.len() as u64 * 8) {
            let mut corrupted = bytes.clone();
            flip_bit(&mut corrupted, bit);
            assert_ne!(
                checksum64(&corrupted),
                clean,
                "flip of bit {bit} went undetected"
            );
            // Flipping back restores the frame and the checksum.
            flip_bit(&mut corrupted, bit);
            assert_eq!(corrupted, bytes);
        }
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum64(&[1, 2]), checksum64(&[2, 1]));
        assert_ne!(checksum64(&[0]), checksum64(&[0, 0]));
    }

    #[test]
    fn flip_bit_wraps_out_of_range_draws() {
        let mut a = vec![0u8; 4];
        flip_bit(&mut a, 32); // == bit 0
        assert_eq!(a, vec![0x80, 0, 0, 0]);
        let mut empty: Vec<u8> = vec![];
        flip_bit(&mut empty, 5); // no-op, no panic
        assert!(empty.is_empty());
    }

    #[test]
    fn bitwriter_packs_msb_first() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0b11111, 5);
        let v = w.finish();
        assert_eq!(v, vec![0b1011_1111]);
    }

    #[test]
    fn bitwriter_pads_final_byte() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        assert_eq!(w.finish(), vec![0b1000_0000]);
    }

    #[test]
    fn deserialize_inverts_serialize_on_each_kind() {
        let e = enc();
        let payloads = vec![
            FramePayload::TimestampReport {
                report_ts_micros: 42_000_000,
                entries: vec![(1, 5), (2, 9), (999, 77)],
            },
            FramePayload::AmnesicReport {
                report_ts_micros: 7,
                ids: vec![0, 999],
            },
            FramePayload::AdaptiveTimestampReport {
                report_ts_micros: 3,
                entries: vec![(4, 8)],
                window_exceptions: vec![(7, 50), (9, 1)],
            },
            FramePayload::SignatureReport {
                report_ts_micros: 11,
                sig_bits: 16,
                signatures: Arc::new(vec![0xFFFF, 0, 0xABCD]),
            },
            FramePayload::HybridReport {
                report_ts_micros: 13,
                hot_ids: vec![5, 6],
                sig_bits: 16,
                signatures: Arc::new(vec![1, 2, 3]),
            },
            FramePayload::UplinkQuery { client: 3, item: 9 },
            FramePayload::QueryAnswer {
                item: 5,
                value: u64::MAX,
                ts_micros: 123,
            },
            FramePayload::Invalidation { item: 1000 - 1 },
        ];
        for p in payloads {
            let bytes = e.serialize_payload(&p);
            let back = e.deserialize(&bytes).expect("round trip");
            assert_eq!(back.payload, p);
            assert_eq!(back.bits, e.payload_bits(&p));
        }
    }

    #[test]
    fn deserialize_rejects_structural_damage() {
        let e = enc();
        let bytes = e.serialize_payload(&FramePayload::AmnesicReport {
            report_ts_micros: 42,
            ids: vec![1, 2, 3],
        });
        // Truncated at every length below the full frame.
        for cut in 0..bytes.len() {
            assert!(e.deserialize(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            e.deserialize(&long),
            Err(WireDecodeError::TrailingBytes {
                expected: bytes.len(),
                got: bytes.len() + 1
            })
        );
        // Unknown kind and future version.
        let mut k = bytes.clone();
        k[0] = 9;
        assert_eq!(e.deserialize(&k), Err(WireDecodeError::UnknownKind(9)));
        let mut v = bytes.clone();
        v[1] = 0;
        assert_eq!(e.deserialize(&v), Err(WireDecodeError::UnsupportedVersion(0)));
    }

    #[test]
    fn seal_and_open_round_trip_and_catch_damage() {
        let e = enc();
        let frame = e.serialize_payload(&FramePayload::Invalidation { item: 17 });
        for epoch in [0u64, 1, 7, u64::MAX] {
            let datagram = seal_frame(epoch, frame.clone());
            assert_eq!(open_frame(&datagram).expect("clean"), (epoch, &frame[..]));
            // The checksum covers the epoch header and the payload alike:
            // every single-bit flip anywhere in the datagram is caught.
            for bit in 0..(datagram.len() as u64 * 8) {
                let mut damaged = datagram.clone();
                flip_bit(&mut damaged, bit);
                assert_eq!(open_frame(&damaged), Err(WireDecodeError::ChecksumMismatch));
            }
            assert!(matches!(
                open_frame(&datagram[..4]),
                Err(WireDecodeError::Truncated { .. })
            ));
            assert!(matches!(
                open_frame(&datagram[..15]),
                Err(WireDecodeError::Truncated { needed: 16, .. })
            ));
        }
    }

    #[test]
    fn wide_timestamps_zero_pad() {
        // 512-bit field with a 64-bit value: 448 zero bits then the value.
        let mut w = BitWriter::new();
        w.put_bits(u64::MAX, 512);
        let v = w.finish();
        assert_eq!(v.len(), 64);
        assert!(v[..56].iter().all(|&b| b == 0));
        assert!(v[56..].iter().all(|&b| b == 0xFF));
    }
}
