//! Client energy accounting.
//!
//! The paper's motivation for everything is battery life: "broadcast
//! solutions require MUs to listen for reports that include items the MU
//! may not be caching. This presents a problem if the user is paying for
//! the listening time" (§10). We track the three client radio states the
//! paper distinguishes (§1, footnote 1):
//!
//! * **receiving** — actively listening to the channel (reports,
//!   answers);
//! * **transmitting** — sending uplink queries;
//! * **dozing** — CPU at low rate, wakeable by an addressed message;
//! * **sleeping** — truly off, unreachable.
//!
//! Costs are per-second weights, normalized so dozing costs 1; the
//! defaults follow the usual order-of-magnitude spread for early-90s
//! packet radios (tx ≫ rx ≫ doze ≫ sleep).

use sw_sim::SimDuration;

/// Per-second energy weights of each radio state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Cost per second of active reception.
    pub rx_per_sec: f64,
    /// Cost per second of transmission.
    pub tx_per_sec: f64,
    /// Cost per second of dozing (CPU slow, NIC address-matching).
    pub doze_per_sec: f64,
    /// Cost per second fully asleep.
    pub sleep_per_sec: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            rx_per_sec: 10.0,
            tx_per_sec: 100.0,
            doze_per_sec: 1.0,
            sleep_per_sec: 0.0,
        }
    }
}

impl EnergyModel {
    /// Validates a custom model (all weights non-negative, ordering
    /// tx ≥ rx ≥ doze ≥ sleep is *not* enforced but is conventional).
    pub fn new(rx: f64, tx: f64, doze: f64, sleep: f64) -> Self {
        for (name, v) in [("rx", rx), ("tx", tx), ("doze", doze), ("sleep", sleep)] {
            assert!(
                v.is_finite() && v >= 0.0,
                "energy weight {name} must be non-negative, got {v}"
            );
        }
        EnergyModel {
            rx_per_sec: rx,
            tx_per_sec: tx,
            doze_per_sec: doze,
            sleep_per_sec: sleep,
        }
    }
}

/// Accumulated energy by state for one client.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyTotals {
    /// Energy spent receiving.
    pub rx: f64,
    /// Energy spent transmitting.
    pub tx: f64,
    /// Energy spent dozing.
    pub doze: f64,
    /// Energy spent asleep.
    pub sleep: f64,
}

impl EnergyTotals {
    /// Adds reception time.
    pub fn add_rx(&mut self, model: &EnergyModel, d: SimDuration) {
        self.rx += model.rx_per_sec * d.as_secs();
    }

    /// Adds transmission time.
    pub fn add_tx(&mut self, model: &EnergyModel, d: SimDuration) {
        self.tx += model.tx_per_sec * d.as_secs();
    }

    /// Adds dozing time.
    pub fn add_doze(&mut self, model: &EnergyModel, d: SimDuration) {
        self.doze += model.doze_per_sec * d.as_secs();
    }

    /// Adds sleeping time.
    pub fn add_sleep(&mut self, model: &EnergyModel, d: SimDuration) {
        self.sleep += model.sleep_per_sec * d.as_secs();
    }

    /// Total energy across states.
    pub fn total(&self) -> f64 {
        self.rx + self.tx + self.doze + self.sleep
    }

    /// Merges another client's totals (fleet aggregation).
    pub fn merge(&mut self, other: &EnergyTotals) {
        self.rx += other.rx;
        self.tx += other.tx;
        self.doze += other.doze;
        self.sleep += other.sleep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ordering_is_sane() {
        let m = EnergyModel::default();
        assert!(m.tx_per_sec > m.rx_per_sec);
        assert!(m.rx_per_sec > m.doze_per_sec);
        assert!(m.doze_per_sec > m.sleep_per_sec);
    }

    #[test]
    fn accumulation_is_linear_in_time() {
        let m = EnergyModel::default();
        let mut e = EnergyTotals::default();
        e.add_rx(&m, SimDuration::from_secs(2.0));
        e.add_tx(&m, SimDuration::from_secs(0.5));
        e.add_doze(&m, SimDuration::from_secs(10.0));
        e.add_sleep(&m, SimDuration::from_secs(100.0));
        assert!((e.rx - 20.0).abs() < 1e-12);
        assert!((e.tx - 50.0).abs() < 1e-12);
        assert!((e.doze - 10.0).abs() < 1e-12);
        assert_eq!(e.sleep, 0.0);
        assert!((e.total() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_componentwise() {
        let m = EnergyModel::default();
        let mut a = EnergyTotals::default();
        a.add_rx(&m, SimDuration::from_secs(1.0));
        let mut b = EnergyTotals::default();
        b.add_tx(&m, SimDuration::from_secs(1.0));
        a.merge(&b);
        assert!((a.total() - 110.0).abs() < 1e-12);
    }

    #[test]
    fn multicast_beats_busy_listening() {
        // A client dozing for an interval and waking only for the report
        // must spend less than one busy-listening the whole interval.
        let m = EnergyModel::default();
        let interval = SimDuration::from_secs(10.0);
        let report_tx = SimDuration::from_secs(0.1);

        let mut multicast = EnergyTotals::default();
        multicast.add_doze(&m, interval - report_tx);
        multicast.add_rx(&m, report_tx);

        let mut busy = EnergyTotals::default();
        busy.add_rx(&m, interval);

        assert!(multicast.total() < busy.total());
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn negative_weight_rejected() {
        let _ = EnergyModel::new(1.0, -1.0, 0.1, 0.0);
    }
}
