//! # sw-wireless — the narrow-band wireless cell substrate
//!
//! Models the communication fabric of the paper's Figure 1: one Mobile
//! Support Station (MSS) per cell, broadcasting downlink to every mobile
//! unit (MU) in the cell, with a shared uplink for queries.
//!
//! The quantity the whole evaluation turns on is **bits** (§2: "The goal
//! is to minimize the number of bits that are transmitted in the channel
//! both ways"). [`channel::BroadcastChannel`] therefore accounts downlink
//! and uplink traffic in bits against a bandwidth of `W` bits/second, and
//! exposes the per-interval budget `L·W − B_c` of Eq. 9 — the bits left
//! for answering cache misses after the invalidation report is sent.
//!
//! [`frame`] gives reports and queries a concrete wire encoding (with
//! [`bytes`]) so that sizes are *measured from real serialization*, not
//! just computed from the analytical formulas — the tests assert the two
//! agree. [`delivery`] models §9's two addressing schemes (precise timer
//! synchronization à la PRMA/MACAW vs multicast-address wakeup à la
//! Ethernet/CDPD) and their client listening-cost consequences.
//!
//! **One channel per cell.** A [`BroadcastChannel`] is strictly
//! cell-local: it never carries a bit for a unit in another cell. The
//! mesh layer (`sw-mesh`) instantiates one per shard, which is what
//! makes the cells independently steppable between migration barriers;
//! a unit in transit between cells is on *no* channel for that
//! interval, and the resulting report gap — not any cross-cell
//! signalling — is what the caching strategies react to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod delivery;
pub mod energy;
pub mod frame;

pub use channel::{BroadcastChannel, ChannelError, FrameCounts, IntervalBudget, TrafficTotals};
pub use delivery::{DeliveryMode, DeliveryOutcome, ReportDelivery};
pub use energy::{EnergyModel, EnergyTotals};
pub use frame::{Frame, FrameKind, FramePayload, WireEncode};
