//! Hotspot construction.
//!
//! §2: "The MUs exhibit a large degree of data locality, repeatedly
//! querying a particular subset of the database. This subset is a
//! hotspot for the MU." Each client gets its own hotspot of a fixed
//! size; across clients the *popularity* of items can be uniform or
//! Zipf-skewed (the skewed case models the shared "hot items" §10's
//! weighted-signature extension targets).

use sw_sim::RngStream;

/// Cross-client popularity distribution of database items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Every item equally likely to be in a hotspot.
    Uniform,
    /// Zipf(θ): item rank r chosen with probability ∝ 1/r^θ. Clients'
    /// hotspots overlap heavily on low-rank items.
    Zipf {
        /// Skew exponent θ > 0 (θ → 0 degenerates to uniform).
        theta: f64,
    },
}

/// Specification of per-client hotspots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotSpec {
    /// Database size n.
    pub n_items: u64,
    /// Hotspot size per client.
    pub size: usize,
    /// Popularity model across clients.
    pub popularity: Popularity,
}

impl HotspotSpec {
    /// Creates a spec, validating that the hotspot fits the database.
    pub fn new(n_items: u64, size: usize, popularity: Popularity) -> Self {
        assert!(n_items > 0, "database cannot be empty");
        assert!(
            size > 0 && (size as u64) <= n_items,
            "hotspot size {size} must be in 1..=n ({n_items})"
        );
        if let Popularity::Zipf { theta } = popularity {
            assert!(
                theta.is_finite() && theta > 0.0,
                "Zipf exponent must be positive, got {theta}"
            );
        }
        HotspotSpec {
            n_items,
            size,
            popularity,
        }
    }

    /// Draws one client's hotspot: `size` distinct items.
    pub fn draw(&self, rng: &mut RngStream) -> Vec<u64> {
        match self.popularity {
            Popularity::Uniform => rng.sample_distinct(self.n_items, self.size),
            Popularity::Zipf { theta } => self.draw_zipf(theta, rng),
        }
    }

    /// Zipf sampling by inversion over the harmonic CDF, with rejection
    /// of duplicates. Ranks map identically to item ids (item 0 is the
    /// most popular), which makes popularity assertions in tests easy.
    fn draw_zipf(&self, theta: f64, rng: &mut RngStream) -> Vec<u64> {
        // Precompute the normalization over a truncated support: for
        // large n the tail contributes negligibly, and hotspots are
        // small, so we cap the CDF table at min(n, 100_000) ranks and
        // fall back to uniform tail beyond it.
        let support = self.n_items.min(100_000) as usize;
        let mut cdf = Vec::with_capacity(support);
        let mut acc = 0.0f64;
        for r in 1..=support {
            acc += 1.0 / (r as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        let mut out: Vec<u64> = Vec::with_capacity(self.size);
        let mut guard = 0u32;
        while out.len() < self.size {
            guard += 1;
            assert!(
                guard < 1_000_000,
                "Zipf rejection sampling failed to fill the hotspot"
            );
            let u = rng.uniform() * total;
            let rank = match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN")) {
                Ok(i) => i,
                Err(i) => i,
            } as u64;
            let item = rank.min(self.n_items - 1);
            if !out.contains(&item) {
                out.push(item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{MasterSeed, StreamId};

    fn rng(i: u64) -> RngStream {
        MasterSeed::TEST.stream(StreamId::Hotspot { index: i })
    }

    #[test]
    fn uniform_hotspot_is_distinct_and_in_range() {
        let spec = HotspotSpec::new(1000, 50, Popularity::Uniform);
        let h = spec.draw(&mut rng(0));
        assert_eq!(h.len(), 50);
        let mut sorted = h.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        assert!(h.iter().all(|&i| i < 1000));
    }

    #[test]
    fn different_clients_different_hotspots() {
        let spec = HotspotSpec::new(10_000, 20, Popularity::Uniform);
        let a = spec.draw(&mut rng(1));
        let b = spec.draw(&mut rng(2));
        assert_ne!(a, b);
    }

    #[test]
    fn zipf_hotspots_overlap_more_than_uniform() {
        let n = 10_000u64;
        let size = 30;
        let clients = 40;
        let overlap = |pop: Popularity, tag: u64| -> f64 {
            let spec = HotspotSpec::new(n, size, pop);
            let sets: Vec<std::collections::HashSet<u64>> = (0..clients)
                .map(|c| spec.draw(&mut rng(tag * 1000 + c)).into_iter().collect())
                .collect();
            let mut shared = 0usize;
            let mut pairs = 0usize;
            for i in 0..sets.len() {
                for j in (i + 1)..sets.len() {
                    shared += sets[i].intersection(&sets[j]).count();
                    pairs += 1;
                }
            }
            shared as f64 / pairs as f64
        };
        let uni = overlap(Popularity::Uniform, 1);
        let zipf = overlap(Popularity::Zipf { theta: 1.0 }, 2);
        assert!(
            zipf > uni * 3.0,
            "Zipf overlap {zipf} should dwarf uniform overlap {uni}"
        );
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let spec = HotspotSpec::new(100_000, 50, Popularity::Zipf { theta: 1.2 });
        let h = spec.draw(&mut rng(7));
        let below_1000 = h.iter().filter(|&&i| i < 1000).count();
        assert!(
            below_1000 > h.len() / 2,
            "Zipf(1.2) hotspot should concentrate on popular items, got {below_1000}/50 below rank 1000"
        );
    }

    #[test]
    fn zipf_hotspot_is_distinct() {
        let spec = HotspotSpec::new(500, 100, Popularity::Zipf { theta: 1.0 });
        let h = spec.draw(&mut rng(9));
        let mut sorted = h.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn full_database_hotspot_allowed() {
        let spec = HotspotSpec::new(10, 10, Popularity::Uniform);
        let mut h = spec.draw(&mut rng(3));
        h.sort_unstable();
        assert_eq!(h, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "hotspot size")]
    fn oversized_hotspot_rejected() {
        let _ = HotspotSpec::new(10, 11, Popularity::Uniform);
    }

    #[test]
    #[should_panic(expected = "Zipf exponent")]
    fn bad_zipf_exponent_rejected() {
        let _ = HotspotSpec::new(10, 5, Popularity::Zipf { theta: -1.0 });
    }
}
