//! Workload generators for the paper's two motivating applications (§1).
//!
//! * **Example 1 — business news / stock data**: "a large number of
//!   mobile users who are interested in news updates involving business
//!   information (e.g., recent sales/profit figures, or stock market
//!   data). Assume that each of the users has defined a 'filter' that
//!   selects the data items of interest." [`StockFilterWorkload`] models
//!   a universe of tickers with sector-structured filters; a user's
//!   hotspot is the set of tickers matching their filter.
//!
//! * **Example 2 — navigational traffic maps**: "a map with icons that
//!   summarize traffic volumes ... divided in sections by a grid. Each
//!   section is given a data identification number. At any particular
//!   moment, each user is interested in ... a set of nine neighboring
//!   sections with the center section being the current location."
//!   [`TrafficMapWorkload`] models the grid, a slow random walk of each
//!   user, and the 3×3 neighborhood query set, which gives the "large
//!   degree of locality" the paper highlights.

use sw_sim::RngStream;

/// Example 1: tickers grouped into sectors; each user filters a few
/// sectors plus a handful of individually watched tickers.
#[derive(Debug, Clone)]
pub struct StockFilterWorkload {
    sectors: u64,
    tickers_per_sector: u64,
}

impl StockFilterWorkload {
    /// Creates a universe of `sectors × tickers_per_sector` items.
    /// Item id = `sector * tickers_per_sector + index`.
    pub fn new(sectors: u64, tickers_per_sector: u64) -> Self {
        assert!(sectors > 0 && tickers_per_sector > 0);
        StockFilterWorkload {
            sectors,
            tickers_per_sector,
        }
    }

    /// Total database size.
    pub fn n_items(&self) -> u64 {
        self.sectors * self.tickers_per_sector
    }

    /// All ticker ids of one sector.
    pub fn sector_items(&self, sector: u64) -> Vec<u64> {
        assert!(sector < self.sectors, "sector {sector} out of range");
        let base = sector * self.tickers_per_sector;
        (base..base + self.tickers_per_sector).collect()
    }

    /// Draws a user filter: `sectors_watched` whole sectors plus
    /// `extra_tickers` individual tickers from elsewhere — the union is
    /// the user's hotspot.
    pub fn draw_filter(
        &self,
        sectors_watched: usize,
        extra_tickers: usize,
        rng: &mut RngStream,
    ) -> Vec<u64> {
        assert!(
            sectors_watched as u64 <= self.sectors,
            "cannot watch more sectors than exist"
        );
        let watched = rng.sample_distinct(self.sectors, sectors_watched);
        let mut items: Vec<u64> = watched
            .iter()
            .flat_map(|&s| self.sector_items(s))
            .collect();
        let mut guard = 0;
        while items.len() < sectors_watched * self.tickers_per_sector as usize + extra_tickers {
            guard += 1;
            assert!(guard < 1_000_000, "filter sampling stuck");
            let t = rng.uniform_index(self.n_items());
            if !items.contains(&t) {
                items.push(t);
            }
        }
        items.sort_unstable();
        items
    }
}

/// The grid geometry of Example 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficGrid {
    /// Grid width in sections.
    pub width: u64,
    /// Grid height in sections.
    pub height: u64,
}

impl TrafficGrid {
    /// Creates a `width × height` grid. Section id = `y·width + x`.
    pub fn new(width: u64, height: u64) -> Self {
        assert!(width >= 3 && height >= 3, "grid must be at least 3×3");
        TrafficGrid { width, height }
    }

    /// Total sections (= database items).
    pub fn n_items(&self) -> u64 {
        self.width * self.height
    }

    /// Section id at `(x, y)`.
    pub fn section(&self, x: u64, y: u64) -> u64 {
        assert!(x < self.width && y < self.height, "({x},{y}) out of grid");
        y * self.width + x
    }

    /// Coordinates of section `id`.
    pub fn coords(&self, id: u64) -> (u64, u64) {
        assert!(id < self.n_items(), "section {id} out of range");
        (id % self.width, id / self.width)
    }

    /// The 3×3 neighborhood centered at `(x, y)`, clipped to the grid —
    /// "a set of nine neighboring sections with the center section being
    /// the current location of the user".
    pub fn neighborhood(&self, x: u64, y: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(9);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx >= 0 && ny >= 0 && (nx as u64) < self.width && (ny as u64) < self.height {
                    out.push(self.section(nx as u64, ny as u64));
                }
            }
        }
        out
    }
}

/// A user moving slowly over the traffic grid, querying their current
/// 3×3 neighborhood.
#[derive(Debug, Clone)]
pub struct TrafficMapWorkload {
    grid: TrafficGrid,
    x: u64,
    y: u64,
    /// Probability of moving one section per interval ("the users move
    /// relatively slowly ... the area covered by each section is fairly
    /// large with respect to the relative displacement of the user").
    move_probability: f64,
    moves: u64,
}

impl TrafficMapWorkload {
    /// Places a user at a uniform random section.
    pub fn new(grid: TrafficGrid, move_probability: f64, rng: &mut RngStream) -> Self {
        assert!(
            (0.0..=1.0).contains(&move_probability),
            "move probability must be in [0,1]"
        );
        let x = rng.uniform_index(grid.width);
        let y = rng.uniform_index(grid.height);
        TrafficMapWorkload {
            grid,
            x,
            y,
            move_probability,
            moves: 0,
        }
    }

    /// Current position.
    pub fn position(&self) -> (u64, u64) {
        (self.x, self.y)
    }

    /// Total moves taken.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// The user's current hotspot: the 3×3 neighborhood.
    pub fn hotspot(&self) -> Vec<u64> {
        self.grid.neighborhood(self.x, self.y)
    }

    /// Advances one interval: with `move_probability`, steps to one of
    /// the 4-connected neighbor sections (clipped at borders). Returns
    /// true if the position changed.
    pub fn step(&mut self, rng: &mut RngStream) -> bool {
        if !rng.bernoulli(self.move_probability) {
            return false;
        }
        let dir = rng.uniform_index(4);
        let (nx, ny) = match dir {
            0 => (self.x.saturating_sub(1), self.y),
            1 => ((self.x + 1).min(self.grid.width - 1), self.y),
            2 => (self.x, self.y.saturating_sub(1)),
            _ => (self.x, (self.y + 1).min(self.grid.height - 1)),
        };
        let changed = (nx, ny) != (self.x, self.y);
        self.x = nx;
        self.y = ny;
        if changed {
            self.moves += 1;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{MasterSeed, StreamId};

    fn rng(tag: u64) -> RngStream {
        MasterSeed::TEST.stream(StreamId::Custom { tag })
    }

    #[test]
    fn stock_universe_dimensions() {
        let w = StockFilterWorkload::new(20, 50);
        assert_eq!(w.n_items(), 1000);
        assert_eq!(w.sector_items(0), (0..50).collect::<Vec<_>>());
        assert_eq!(w.sector_items(19)[0], 950);
    }

    #[test]
    fn filter_contains_whole_sectors() {
        let w = StockFilterWorkload::new(20, 50);
        let filter = w.draw_filter(2, 5, &mut rng(1));
        assert_eq!(filter.len(), 105);
        // Every watched sector is fully contained: group by sector and
        // check that at least two sectors appear 50 times.
        let mut counts = std::collections::HashMap::new();
        for &t in &filter {
            *counts.entry(t / 50).or_insert(0usize) += 1;
        }
        let full = counts.values().filter(|&&c| c == 50).count();
        assert!(full >= 2, "expected 2 fully watched sectors, got {full}");
    }

    #[test]
    fn filter_is_distinct_and_sorted() {
        let w = StockFilterWorkload::new(10, 10);
        let filter = w.draw_filter(1, 10, &mut rng(2));
        let mut dedup = filter.clone();
        dedup.dedup();
        assert_eq!(dedup, filter, "filter must be sorted and distinct");
    }

    #[test]
    fn grid_section_coords_roundtrip() {
        let g = TrafficGrid::new(8, 5);
        for id in 0..g.n_items() {
            let (x, y) = g.coords(id);
            assert_eq!(g.section(x, y), id);
        }
    }

    #[test]
    fn interior_neighborhood_has_nine_sections() {
        let g = TrafficGrid::new(10, 10);
        let n = g.neighborhood(5, 5);
        assert_eq!(n.len(), 9);
        assert!(n.contains(&g.section(5, 5)));
        assert!(n.contains(&g.section(4, 4)));
        assert!(n.contains(&g.section(6, 6)));
    }

    #[test]
    fn corner_neighborhood_is_clipped() {
        let g = TrafficGrid::new(10, 10);
        assert_eq!(g.neighborhood(0, 0).len(), 4);
        assert_eq!(g.neighborhood(9, 9).len(), 4);
        assert_eq!(g.neighborhood(0, 5).len(), 6);
    }

    #[test]
    fn walker_moves_one_step_at_a_time() {
        let g = TrafficGrid::new(20, 20);
        let mut w = TrafficMapWorkload::new(g, 1.0, &mut rng(3));
        for _ in 0..200 {
            let (x0, y0) = w.position();
            w.step(&mut rng(4));
            let (x1, y1) = w.position();
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert!(dist <= 1, "walker jumped {dist} sections");
        }
    }

    #[test]
    fn stationary_walker_never_moves() {
        let g = TrafficGrid::new(10, 10);
        let mut w = TrafficMapWorkload::new(g, 0.0, &mut rng(5));
        let p = w.position();
        for _ in 0..50 {
            assert!(!w.step(&mut rng(6)));
        }
        assert_eq!(w.position(), p);
        assert_eq!(w.moves(), 0);
    }

    #[test]
    fn hotspot_overlap_between_steps_is_high() {
        // The locality argument: consecutive hotspots share most items.
        let g = TrafficGrid::new(30, 30);
        let mut w = TrafficMapWorkload::new(g, 1.0, &mut rng(7));
        let mut r = rng(8);
        for _ in 0..100 {
            let before: std::collections::HashSet<u64> = w.hotspot().into_iter().collect();
            if w.step(&mut r) {
                let after: std::collections::HashSet<u64> = w.hotspot().into_iter().collect();
                let shared = before.intersection(&after).count();
                assert!(
                    shared >= 6,
                    "one step must preserve ≥ 6 of 9 sections, kept {shared}"
                );
            }
        }
    }

    #[test]
    fn walker_stays_in_grid() {
        let g = TrafficGrid::new(5, 5);
        let mut w = TrafficMapWorkload::new(g, 1.0, &mut rng(9));
        let mut r = rng(10);
        for _ in 0..500 {
            w.step(&mut r);
            let (x, y) = w.position();
            assert!(x < 5 && y < 5);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3×3")]
    fn tiny_grid_rejected() {
        let _ = TrafficGrid::new(2, 5);
    }
}
