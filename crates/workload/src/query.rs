//! Zipf-skewed query workloads over a client's hotspot domain.
//!
//! The paper's clients pose single-item queries; the query-result cache
//! (`sw-query`) needs *predicate* queries whose answers span several
//! items — e.g. Example 1's stock filter restricted to one watched
//! sector. This module generates a deterministic family of query
//! *templates* per client (each a small distinct footprint of hotspot
//! items) and draws which template fires with Zipf(θ) popularity, so a
//! few hot queries dominate exactly as in edge traffic. Everything is
//! seed-streamed: a template set and its draw sequence are a pure
//! function of `(MasterSeed, StreamId::QueryPlan { index })`.

use sw_sim::RngStream;

/// Specification of one client's query-template family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryWorkloadSpec {
    /// Number of distinct query templates to generate.
    pub n_templates: usize,
    /// Items per template footprint (clipped to the domain size).
    pub footprint: usize,
    /// Zipf exponent for template popularity (θ → 0 is uniform).
    pub theta: f64,
}

impl QueryWorkloadSpec {
    /// Creates a spec, validating the shape parameters.
    pub fn new(n_templates: usize, footprint: usize, theta: f64) -> Self {
        assert!(n_templates > 0, "need at least one query template");
        assert!(footprint > 0, "footprints cannot be empty");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf exponent must be finite and non-negative, got {theta}"
        );
        QueryWorkloadSpec {
            n_templates,
            footprint,
            theta,
        }
    }
}

/// A client's generated template family plus its popularity CDF.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    templates: Vec<Vec<u64>>,
    /// Cumulative Zipf weights over template ranks (rank 0 hottest).
    cdf: Vec<f64>,
}

impl QueryWorkload {
    /// Builds the template family over `domain` (a client's hotspot
    /// item ids). Footprints are distinct item subsets drawn from the
    /// domain; templates are ranked by generation order, rank 0 being
    /// the most popular under Zipf(θ).
    pub fn generate(domain: &[u64], spec: QueryWorkloadSpec, rng: &mut RngStream) -> Self {
        assert!(!domain.is_empty(), "query domain cannot be empty");
        let footprint = spec.footprint.min(domain.len());
        let templates: Vec<Vec<u64>> = (0..spec.n_templates)
            .map(|_| {
                let picks = rng.sample_distinct(domain.len() as u64, footprint);
                let mut items: Vec<u64> = picks.into_iter().map(|i| domain[i as usize]).collect();
                items.sort_unstable();
                items
            })
            .collect();
        let mut cdf = Vec::with_capacity(spec.n_templates);
        let mut acc = 0.0f64;
        for rank in 1..=spec.n_templates {
            acc += 1.0 / (rank as f64).powf(spec.theta);
            cdf.push(acc);
        }
        QueryWorkload { templates, cdf }
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when the family is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The footprint of template `rank` (sorted, distinct item ids).
    pub fn footprint(&self, rank: usize) -> &[u64] {
        &self.templates[rank]
    }

    /// Draws which template fires: inversion over the Zipf CDF.
    pub fn draw(&self, rng: &mut RngStream) -> usize {
        let total = *self.cdf.last().expect("non-empty family");
        let u = rng.uniform() * total;
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.templates.len() - 1),
        }
    }
}

/// Zipf(θ) popularity over the *ranks* of a client's hotspot for
/// single-item query picks (the bounded-cache workload knob).
///
/// Rank 0 is the hottest item — the first item drawn into the hotspot,
/// so the popularity order is itself seed-streamed. `theta = 0`
/// degenerates to the uniform pick the paper models; draws come from a
/// dedicated [`sw_sim::StreamId::ZipfQuery`] stream so arming the knob
/// never perturbs the classic arrival/pick sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfPicker {
    cdf: Vec<f64>,
}

impl ZipfPicker {
    /// Builds the cumulative Zipf weights over `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf picker needs a non-empty domain");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf exponent must be finite and non-negative, got {theta}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        ZipfPicker { cdf }
    }

    /// Number of ranks in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`: inversion over the Zipf CDF.
    pub fn draw(&self, rng: &mut RngStream) -> usize {
        let total = *self.cdf.last().expect("non-empty domain");
        let u = rng.uniform() * total;
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{MasterSeed, StreamId};

    fn rng(i: u64) -> RngStream {
        MasterSeed::TEST.stream(StreamId::QueryPlan { index: i })
    }

    fn domain(n: u64) -> Vec<u64> {
        (0..n).map(|i| i * 3 + 100).collect()
    }

    #[test]
    fn footprints_are_distinct_sorted_subsets_of_the_domain() {
        let d = domain(40);
        let w = QueryWorkload::generate(&d, QueryWorkloadSpec::new(8, 5, 0.9), &mut rng(0));
        assert_eq!(w.len(), 8);
        for rank in 0..w.len() {
            let f = w.footprint(rank);
            assert_eq!(f.len(), 5);
            let mut dedup = f.to_vec();
            dedup.dedup();
            assert_eq!(dedup, f, "footprint must be sorted and distinct");
            assert!(f.iter().all(|i| d.contains(i)));
        }
    }

    #[test]
    fn footprint_clips_to_small_domains() {
        let d = domain(3);
        let w = QueryWorkload::generate(&d, QueryWorkloadSpec::new(2, 10, 1.0), &mut rng(1));
        assert_eq!(w.footprint(0).len(), 3);
    }

    #[test]
    fn generation_is_deterministic_per_stream() {
        let d = domain(30);
        let spec = QueryWorkloadSpec::new(6, 4, 1.1);
        let a = QueryWorkload::generate(&d, spec, &mut rng(2));
        let b = QueryWorkload::generate(&d, spec, &mut rng(2));
        for rank in 0..a.len() {
            assert_eq!(a.footprint(rank), b.footprint(rank));
        }
        let mut ra = rng(3);
        let mut rb = rng(3);
        let draws_a: Vec<usize> = (0..100).map(|_| a.draw(&mut ra)).collect();
        let draws_b: Vec<usize> = (0..100).map(|_| b.draw(&mut rb)).collect();
        assert_eq!(draws_a, draws_b);
    }

    #[test]
    fn zipf_draws_prefer_low_ranks() {
        let d = domain(50);
        let w = QueryWorkload::generate(&d, QueryWorkloadSpec::new(20, 3, 1.2), &mut rng(4));
        let mut r = rng(5);
        let n = 20_000;
        let hot = (0..n).filter(|_| w.draw(&mut r) < 2).count();
        // Zipf(1.2) over 20 ranks puts well over a third of the mass on
        // the top two templates; uniform would give 10%.
        assert!(
            hot as f64 / n as f64 > 0.3,
            "top-2 templates drew only {hot}/{n}"
        );
    }

    #[test]
    fn theta_zero_degenerates_to_uniform() {
        let d = domain(50);
        let w = QueryWorkload::generate(&d, QueryWorkloadSpec::new(10, 3, 0.0), &mut rng(6));
        let mut r = rng(7);
        let n = 50_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[w.draw(&mut r)] += 1;
        }
        let expected = n as f64 / 10.0;
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.1,
                "rank {rank} drew {c}, far from uniform {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one query template")]
    fn empty_family_rejected() {
        let _ = QueryWorkloadSpec::new(0, 3, 1.0);
    }

    #[test]
    fn zipf_picker_prefers_low_ranks_and_is_deterministic() {
        let picker = ZipfPicker::new(20, 1.2);
        let mut a = MasterSeed::TEST.stream(StreamId::ZipfQuery { index: 0 });
        let mut b = MasterSeed::TEST.stream(StreamId::ZipfQuery { index: 0 });
        let draws: Vec<usize> = (0..5_000).map(|_| picker.draw(&mut a)).collect();
        let again: Vec<usize> = (0..5_000).map(|_| picker.draw(&mut b)).collect();
        assert_eq!(draws, again, "same stream must replay identically");
        assert!(draws.iter().all(|&r| r < 20));
        let hot = draws.iter().filter(|&&r| r < 2).count();
        assert!(
            hot as f64 / draws.len() as f64 > 0.3,
            "top-2 ranks drew only {hot}/5000 under Zipf(1.2)"
        );
    }

    #[test]
    fn zipf_picker_theta_zero_is_uniform() {
        let picker = ZipfPicker::new(10, 0.0);
        let mut r = MasterSeed::TEST.stream(StreamId::ZipfQuery { index: 1 });
        let n = 50_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[picker.draw(&mut r)] += 1;
        }
        let expected = n as f64 / 10.0;
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.1,
                "rank {rank} drew {c}, far from uniform {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn zipf_picker_rejects_empty_domain() {
        let _ = ZipfPicker::new(0, 1.0);
    }
}
