//! # sw-workload — workloads, scenario presets, and example generators
//!
//! * [`scenario`] — the full parameter vector of the paper's model (§4)
//!   and the six scenario presets of §6 (Figures 3–8), plus the derived
//!   probabilities `q_0`, `p_0`, `u_0` of Eqs. 3–8;
//! * [`hotspot`] — hotspot construction: each MU repeatedly queries a
//!   small subset of the database (uniform or Zipf-skewed popularity
//!   across clients);
//! * [`examples`] — generators for the two motivating applications of
//!   §1: the business-news / stock-filter workload (Example 1) and the
//!   navigational traffic-map grid workload (Example 2);
//! * [`query`] — seed-streamed Zipf query-template families for the
//!   query-result cache (`sw-query`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod examples;
pub mod hotspot;
pub mod query;
pub mod scenario;

pub use examples::{StockFilterWorkload, TrafficGrid, TrafficMapWorkload};
pub use hotspot::{HotspotSpec, Popularity};
pub use query::{QueryWorkload, QueryWorkloadSpec, ZipfPicker};
pub use scenario::{DerivedProbabilities, ScenarioParams, SweepAxis};
