//! Scenario parameters — the model's full parameter vector (§4, §6).
//!
//! One [`ScenarioParams`] value captures everything the analysis and the
//! simulator need: λ, μ, L, n, b_T, W, k, f, g, s, plus the query/answer
//! costs `b_q`/`b_a` (see DESIGN.md §4 for how their values are
//! resolved). The six presets reproduce the §6 scenario tables verbatim.

use serde::{Deserialize, Serialize};

/// The derived per-interval probabilities of Eqs. 3–8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerivedProbabilities {
    /// `e^{−λL}` — no queries given awake (Eq. 3).
    pub no_queries_given_awake: f64,
    /// `q_0 = (1−s)·e^{−λL}` — awake and no queries (Eq. 4).
    pub q0: f64,
    /// `p_0 = s + q_0` — no queries (Eq. 5).
    pub p0: f64,
    /// `u_0 = e^{−μL}` — no updates to a given item in an interval
    /// (Eq. 7).
    pub u0: f64,
}

/// Full parameter vector for one evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Per-item query rate λ (queries/s) at each MU.
    pub lambda: f64,
    /// Per-item update rate μ (updates/s) at the server.
    pub mu: f64,
    /// Broadcast latency L (s).
    pub latency_secs: f64,
    /// Database size n.
    pub n_items: u64,
    /// Timestamp size b_T (bits).
    pub timestamp_bits: u32,
    /// Channel bandwidth W (bits/s).
    pub bandwidth_bps: u64,
    /// TS window multiple k (w = kL).
    pub k: u32,
    /// SIG diagnosable-difference parameter f.
    pub f: u32,
    /// SIG signature width g (bits).
    pub g: u32,
    /// Per-interval sleep probability s.
    pub s: f64,
    /// Uplink query size b_q (bits).
    pub query_bits: u32,
    /// Answer size b_a (bits).
    pub answer_bits: u32,
    /// SIG diagnosis confidence δ (Eq. 23/24); the paper leaves it
    /// unspecified, we default to 0.05 (DESIGN.md §4).
    pub sig_delta: f64,
}

impl ScenarioParams {
    /// The window `w = k·L` in seconds.
    pub fn window_secs(&self) -> f64 {
        self.k as f64 * self.latency_secs
    }

    /// Derived probabilities of Eqs. 3–8 at this parameter point.
    pub fn derived(&self) -> DerivedProbabilities {
        let no_queries_given_awake = (-self.lambda * self.latency_secs).exp();
        let q0 = (1.0 - self.s) * no_queries_given_awake;
        let p0 = self.s + q0;
        let u0 = (-self.mu * self.latency_secs).exp();
        DerivedProbabilities {
            no_queries_given_awake,
            q0,
            p0,
            u0,
        }
    }

    /// Returns a copy with a different sleep probability (the Figures
    /// 3–6 x-axis).
    pub fn with_s(mut self, s: f64) -> Self {
        assert!((0.0..=1.0).contains(&s), "s must be in [0,1]");
        self.s = s;
        self
    }

    /// Returns a copy with a different update rate (the Figures 7–8
    /// x-axis).
    pub fn with_mu(mut self, mu: f64) -> Self {
        assert!(mu.is_finite() && mu >= 0.0, "μ must be non-negative");
        self.mu = mu;
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.lambda.is_finite() && self.lambda >= 0.0) {
            return Err(format!("λ must be non-negative, got {}", self.lambda));
        }
        if !(self.mu.is_finite() && self.mu >= 0.0) {
            return Err(format!("μ must be non-negative, got {}", self.mu));
        }
        if !(self.latency_secs.is_finite() && self.latency_secs > 0.0) {
            return Err(format!("L must be positive, got {}", self.latency_secs));
        }
        if self.n_items == 0 {
            return Err("n must be positive".into());
        }
        if self.k == 0 {
            return Err("k must be at least 1 (w >= L)".into());
        }
        if !(0.0..=1.0).contains(&self.s) {
            return Err(format!("s must be in [0,1], got {}", self.s));
        }
        if self.bandwidth_bps == 0 {
            return Err("W must be positive".into());
        }
        if !(self.sig_delta > 0.0 && self.sig_delta < 1.0) {
            return Err(format!("δ must be in (0,1), got {}", self.sig_delta));
        }
        Ok(())
    }

    fn base(lambda: f64, mu: f64, n: u64, w: u64, k: u32, f: u32) -> Self {
        ScenarioParams {
            lambda,
            mu,
            latency_secs: 10.0,
            n_items: n,
            timestamp_bits: 512,
            bandwidth_bps: w,
            k,
            f,
            g: 16,
            s: 0.0,
            query_bits: 512,
            answer_bits: 512,
            sig_delta: 0.05,
        }
    }

    /// Scenario 1 (Figure 3): infrequent updates, small DB, narrow band.
    /// λ=0.1, μ=1e−4, L=10, n=10³, b_T=512, W=10⁴, k=100, f=10, g=16.
    pub fn scenario1() -> Self {
        Self::base(1e-1, 1e-4, 1_000, 10_000, 100, 10)
    }

    /// Scenario 2 (Figure 4): as Scenario 1 with n=10⁶, W=10⁶, k=10.
    pub fn scenario2() -> Self {
        Self::base(1e-1, 1e-4, 1_000_000, 1_000_000, 10, 10)
    }

    /// Scenario 3 (Figure 5): update-intensive (μ=λ=0.1), small DB.
    /// k=10, f=20. TS is unusable here (report exceeds L·W).
    pub fn scenario3() -> Self {
        Self::base(1e-1, 1e-1, 1_000, 10_000, 10, 20)
    }

    /// Scenario 4 (Figure 6): update-intensive, n=10⁶, W=10⁶, f=200.
    pub fn scenario4() -> Self {
        Self::base(1e-1, 1e-1, 1_000_000, 1_000_000, 10, 200)
    }

    /// Scenario 5 (Figure 7): workaholics (s=0), μ swept in
    /// [10⁻⁴, 2·10⁻⁴], small DB, k=100, f=1.
    pub fn scenario5() -> Self {
        Self::base(1e-1, 1e-4, 1_000, 10_000, 100, 1)
    }

    /// Scenario 6 (Figure 8): as Scenario 5 with n=10⁶, W=10⁶, k=10,
    /// f=10.
    pub fn scenario6() -> Self {
        Self::base(1e-1, 1e-4, 1_000_000, 1_000_000, 10, 10)
    }

    /// All six presets with their figure numbers.
    pub fn all_scenarios() -> Vec<(u8, &'static str, Self)> {
        vec![
            (3, "Scenario 1", Self::scenario1()),
            (4, "Scenario 2", Self::scenario2()),
            (5, "Scenario 3", Self::scenario3()),
            (6, "Scenario 4", Self::scenario4()),
            (7, "Scenario 5", Self::scenario5()),
            (8, "Scenario 6", Self::scenario6()),
        ]
    }
}

/// Which parameter a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Sleep probability `s` from 0 to 1 (Figures 3–6).
    SleepProbability {
        /// Number of points, inclusive of both ends.
        points: usize,
    },
    /// Update rate μ over `[lo, hi]` (Figures 7–8).
    UpdateRate {
        /// Lower bound of μ.
        lo: f64,
        /// Upper bound of μ.
        hi: f64,
        /// Number of points, inclusive of both ends.
        points: usize,
    },
}

impl SweepAxis {
    /// The default x-axis for Figures 3–6.
    pub fn sleep_default() -> Self {
        SweepAxis::SleepProbability { points: 21 }
    }

    /// The default x-axis for Figures 7–8: μ ∈ [10⁻⁴, 2·10⁻⁴].
    pub fn update_default() -> Self {
        SweepAxis::UpdateRate {
            lo: 1e-4,
            hi: 2e-4,
            points: 21,
        }
    }

    /// Materializes the sweep points.
    pub fn points(&self) -> Vec<f64> {
        match *self {
            SweepAxis::SleepProbability { points } => linspace(0.0, 1.0, points),
            SweepAxis::UpdateRate { lo, hi, points } => linspace(lo, hi, points),
        }
    }

    /// Applies a sweep value to a base parameter set.
    pub fn apply(&self, base: ScenarioParams, x: f64) -> ScenarioParams {
        match self {
            SweepAxis::SleepProbability { .. } => base.with_s(x),
            SweepAxis::UpdateRate { .. } => base.with_mu(x),
        }
    }
}

fn linspace(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "a sweep needs at least two points");
    let step = (hi - lo) / (points - 1) as f64;
    (0..points).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for (fig, name, p) in ScenarioParams::all_scenarios() {
            p.validate().unwrap_or_else(|e| panic!("{name} (fig {fig}): {e}"));
        }
    }

    #[test]
    fn scenario1_matches_paper_table() {
        let p = ScenarioParams::scenario1();
        assert_eq!(p.lambda, 1e-1);
        assert_eq!(p.mu, 1e-4);
        assert_eq!(p.latency_secs, 10.0);
        assert_eq!(p.n_items, 1_000);
        assert_eq!(p.timestamp_bits, 512);
        assert_eq!(p.bandwidth_bps, 10_000);
        assert_eq!(p.k, 100);
        assert_eq!(p.f, 10);
        assert_eq!(p.g, 16);
    }

    #[test]
    fn scenario1_u0_is_0999() {
        // §6: "This set of parameters corresponds to a scenario of
        // infrequent updates (u_0 = 0.999)."
        let d = ScenarioParams::scenario1().derived();
        assert!((d.u0 - 0.999).abs() < 1e-4, "u0 = {}", d.u0);
    }

    #[test]
    fn derived_probabilities_match_eqs_3_to_8() {
        let p = ScenarioParams::scenario1().with_s(0.3);
        let d = p.derived();
        let e_ll = (-0.1f64 * 10.0).exp();
        assert!((d.no_queries_given_awake - e_ll).abs() < 1e-12);
        assert!((d.q0 - 0.7 * e_ll).abs() < 1e-12);
        assert!((d.p0 - (0.3 + 0.7 * e_ll)).abs() < 1e-12);
        assert!((d.u0 - (-1e-4f64 * 10.0).exp()).abs() < 1e-12);
    }

    #[test]
    fn p0_limits_match_section5_table() {
        // s → 0: q0 → e^{−λL}, p0 → e^{−λL}; s → 1: q0 → 0, p0 → 1.
        let base = ScenarioParams::scenario1();
        let d0 = base.with_s(0.0).derived();
        assert!((d0.p0 - d0.no_queries_given_awake).abs() < 1e-12);
        let d1 = base.with_s(1.0).derived();
        assert_eq!(d1.q0, 0.0);
        assert_eq!(d1.p0, 1.0);
    }

    #[test]
    fn window_is_k_times_l() {
        assert_eq!(ScenarioParams::scenario1().window_secs(), 1000.0);
        assert_eq!(ScenarioParams::scenario2().window_secs(), 100.0);
    }

    #[test]
    fn sweep_axes_produce_requested_points() {
        let s = SweepAxis::sleep_default().points();
        assert_eq!(s.len(), 21);
        assert_eq!(s[0], 0.0);
        assert_eq!(*s.last().unwrap(), 1.0);
        let u = SweepAxis::update_default().points();
        assert_eq!(u[0], 1e-4);
        assert!((u.last().unwrap() - 2e-4).abs() < 1e-12);
    }

    #[test]
    fn sweep_apply_sets_the_right_knob() {
        let base = ScenarioParams::scenario1();
        let swept = SweepAxis::sleep_default().apply(base, 0.4);
        assert_eq!(swept.s, 0.4);
        let swept = SweepAxis::update_default().apply(base, 1.5e-4);
        assert_eq!(swept.mu, 1.5e-4);
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = ScenarioParams::scenario1();
        p.k = 0;
        assert!(p.validate().is_err());
        let mut p = ScenarioParams::scenario1();
        p.s = 1.5;
        assert!(p.validate().is_err());
        let mut p = ScenarioParams::scenario1();
        p.latency_secs = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let p = ScenarioParams::scenario3();
        let json = serde_json::to_string(&p).unwrap();
        let back: ScenarioParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
