//! The evaluation-period controller.
//!
//! "The whole time scale will be divided into evaluation periods, which
//! are multiples of the invalidation report latencies L. Hence, the
//! reevaluation of the server's strategy, which results in the changes
//! of individual window's sizes, will happen only once per evaluation
//! period." (§8.1)
//!
//! At each period end the controller computes the gain of the previous
//! adjustment (Method 1 or Method 2) and applies Eq. 31:
//! `w(new) = w(old) ± e`. On the very first period, where no "old"
//! exists, it follows the paper's bootstrap rule: grow iff
//! `MHR(i) > AHR(i)`.

use std::collections::HashMap;

use sw_server::ItemId;

use crate::method1::gain_method1;
use crate::method2::gain_method2;
use crate::window::WindowTable;

/// Which feedback signal drives window adjustment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackMethod {
    /// §8.1: piggybacked hit histories → AHR/MHR gains.
    Method1,
    /// §8.2: uplink-count deltas.
    Method2,
}

/// Per-item statistics for one evaluation period, supplied by the cell
/// driver (uplink processor + report builder + histories).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodItemStats {
    /// The item.
    pub item: ItemId,
    /// Uplink (miss) queries this period, `Q[i]`.
    pub uplink_queries: u64,
    /// Piggybacked local hits this period (Method 1 only).
    pub piggybacked_hits: u64,
    /// Report mentions this period, `Report(i, new)`.
    pub mentions: u32,
    /// `MHR(i)` estimated from the merged query/update history
    /// (Method 1 only; `None` under Method 2).
    pub mhr: Option<f64>,
}

impl PeriodItemStats {
    /// Total queries `q[i]` = uplink + local hits.
    pub fn total_queries(&self) -> u64 {
        self.uplink_queries + self.piggybacked_hits
    }

    /// Actual hit ratio this period.
    pub fn ahr(&self) -> f64 {
        let total = self.total_queries();
        if total == 0 {
            0.0
        } else {
            self.piggybacked_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PrevState {
    ahr: f64,
    uplink: u64,
    mentions: u32,
    seen: bool,
}

/// One window adjustment decided at a period boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adjustment {
    /// The item adjusted.
    pub item: ItemId,
    /// The gain that motivated the decision (NaN on bootstrap).
    pub gain: f64,
    /// Whether the window grew.
    pub grew: bool,
    /// The new window, in intervals.
    pub new_window: u32,
}

/// Summary of one evaluation period.
#[derive(Debug, Clone, Default)]
pub struct PeriodSummary {
    /// All adjustments applied this period.
    pub adjustments: Vec<Adjustment>,
}

/// Drives Eq. 31 across evaluation periods.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    method: FeedbackMethod,
    /// The step `e` of Eq. 31, in intervals.
    step: u32,
    /// The gain threshold ε: grow only when `Gain > ε`.
    gain_threshold: f64,
    query_bits: u32,
    timestamp_bits: u32,
    n_items: u64,
    /// Hashed is fine here: `prev` is touched only at evaluation-period
    /// boundaries (every `eval_period` intervals), never on the
    /// per-interval hot path.
    prev: HashMap<ItemId, PrevState>,
}

impl AdaptiveController {
    /// Creates the controller. `step` is the paper's "small integer e".
    pub fn new(
        method: FeedbackMethod,
        step: u32,
        gain_threshold: f64,
        query_bits: u32,
        timestamp_bits: u32,
        n_items: u64,
    ) -> Self {
        assert!(step >= 1, "adjustment step must be at least 1 interval");
        AdaptiveController {
            method,
            step,
            gain_threshold,
            query_bits,
            timestamp_bits,
            n_items,
            prev: HashMap::new(),
        }
    }

    /// The feedback method in force.
    pub fn method(&self) -> FeedbackMethod {
        self.method
    }

    /// Processes one period's per-item statistics, adjusting `windows`
    /// in place.
    pub fn end_period(
        &mut self,
        windows: &mut WindowTable,
        items: impl IntoIterator<Item = PeriodItemStats>,
    ) -> PeriodSummary {
        let mut summary = PeriodSummary::default();
        for stat in items {
            let prev = self.prev.entry(stat.item).or_default();
            let headroom = |stat: &PeriodItemStats| match self.method {
                // "If MHR(i) > AHR(i) then there is room to improve" —
                // weighed as a *prospective* gain in the same bit units
                // as Eq. 30: closing the MHR−AHR gap would save
                // `(MHR−AHR)·q[i]·b_q` uplink bits per period against
                // the item's current report cost. A churn item (tiny
                // MHR, many mentions) prices out; a hot-stable item
                // held back by sleep prices in.
                FeedbackMethod::Method1 => {
                    let id_bits = if self.n_items <= 1 {
                        1.0
                    } else {
                        (64 - (self.n_items - 1).leading_zeros()) as f64
                    };
                    let prospective = (stat.mhr.unwrap_or(0.0) - stat.ahr())
                        * stat.total_queries() as f64
                        * self.query_bits as f64
                        - stat.mentions as f64 * (id_bits + self.timestamp_bits as f64);
                    prospective > self.gain_threshold
                }
                // Method 2 has no MHR; uplink traffic is the only sign
                // there is something to save.
                FeedbackMethod::Method2 => stat.uplink_queries > 0,
            };
            let (decision, gain) = if !prev.seen {
                // Bootstrap: "we increase the size of the window for a
                // given data item if the MHR(i) is larger than AHR(i)".
                (headroom(&stat), f64::NAN)
            } else {
                let gain = match self.method {
                    FeedbackMethod::Method1 => gain_method1(
                        stat.ahr(),
                        prev.ahr,
                        stat.total_queries(),
                        self.query_bits,
                        stat.mentions,
                        prev.mentions,
                        self.n_items,
                        self.timestamp_bits,
                    ),
                    FeedbackMethod::Method2 => gain_method2(
                        prev.uplink,
                        stat.uplink_queries,
                        self.query_bits,
                        stat.mentions,
                        prev.mentions,
                        self.n_items,
                        self.timestamp_bits,
                    ),
                };
                // The threshold is applied symmetrically: a clearly
                // positive gain grows, a clearly negative one shrinks,
                // and an inconclusive one (|gain| ≤ ε — e.g. a
                // zero-window item whose AHR is pinned at 0, producing
                // gain ≡ 0 forever) defers to the headroom rule. Without
                // the dead-band fallback, w = 0 is an absorbing state:
                // never reported ⇒ never cached ⇒ AHR stuck at 0 ⇒ the
                // raw Eq. 31 "otherwise decrease" never lets it recover.
                if gain > self.gain_threshold {
                    (true, gain)
                } else if gain < -self.gain_threshold {
                    (false, gain)
                } else {
                    (headroom(&stat), gain)
                }
            };
            let new_window = windows.adjust(stat.item, decision, self.step);
            summary.adjustments.push(Adjustment {
                item: stat.item,
                gain,
                grew: decision,
                new_window,
            });
            *prev = PrevState {
                ahr: stat.ahr(),
                uplink: stat.uplink_queries,
                mentions: stat.mentions,
                seen: true,
            };
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(method: FeedbackMethod) -> AdaptiveController {
        AdaptiveController::new(method, 1, 0.0, 512, 512, 1000)
    }

    fn stats(item: ItemId, uplink: u64, hits: u64, mentions: u32, mhr: Option<f64>) -> PeriodItemStats {
        PeriodItemStats {
            item,
            uplink_queries: uplink,
            piggybacked_hits: hits,
            mentions,
            mhr,
        }
    }

    #[test]
    fn bootstrap_grows_when_mhr_exceeds_ahr() {
        let mut c = controller(FeedbackMethod::Method1);
        let mut w = WindowTable::new(5);
        // MHR 0.95 ≫ AHR 0.2: sleepers are losing a cacheable item.
        let s = c.end_period(&mut w, [stats(1, 8, 2, 3, Some(0.95))]);
        assert!(s.adjustments[0].grew);
        assert_eq!(w.get(1), 6);
    }

    #[test]
    fn bootstrap_shrinks_when_ahr_at_ceiling() {
        let mut c = controller(FeedbackMethod::Method1);
        let mut w = WindowTable::new(5);
        // MHR == AHR: nothing to gain from a bigger window.
        let s = c.end_period(&mut w, [stats(1, 1, 9, 3, Some(0.9))]);
        assert!(!s.adjustments[0].grew);
        assert_eq!(w.get(1), 4);
    }

    #[test]
    fn never_changing_hot_item_grows_steadily() {
        // §8: "in the case of the never or rarely changing data item,
        // its window will increase steadily if the query rate is high,
        // and the units sleep a lot."
        let mut c = controller(FeedbackMethod::Method1);
        let mut w = WindowTable::new(2);
        // Period 1 bootstrap: MHR 1.0 > AHR 0.3 → grow.
        c.end_period(&mut w, [stats(9, 7, 3, 0, Some(1.0))]);
        // Subsequent periods: AHR keeps improving, item never reported
        // (never changes → 0 mentions): pure gain → keep growing.
        let mut ahr: f64 = 0.3;
        for _ in 0..10 {
            ahr = (ahr + 0.05).min(0.99);
            let hits = (ahr * 100.0) as u64;
            c.end_period(&mut w, [stats(9, 100 - hits, hits, 0, Some(1.0))]);
        }
        assert!(w.get(9) >= 10, "window should have grown, got {}", w.get(9));
    }

    #[test]
    fn hot_changing_item_shrinks_to_zero() {
        // §8: "if there [are] many queries and the maximal hit ratio is
        // small, the window will eventually shrink to zero."
        let mut c = controller(FeedbackMethod::Method1);
        let mut w = WindowTable::new(3);
        // Bootstrap: MHR 0.05 < AHR? AHR = 0 → 0.05 > 0 grows once…
        // then every period: hit ratio pinned at 0, mentions high →
        // negative gain → shrink.
        c.end_period(&mut w, [stats(4, 100, 0, 10, Some(0.05))]);
        for _ in 0..8 {
            c.end_period(&mut w, [stats(4, 100, 0, 10, Some(0.05))]);
        }
        assert_eq!(w.get(4), 0, "window should shrink to zero");
    }

    #[test]
    fn method2_reacts_to_uplink_deltas() {
        let mut c = controller(FeedbackMethod::Method2);
        let mut w = WindowTable::new(5);
        // Bootstrap with misses → grow.
        c.end_period(&mut w, [stats(1, 50, 0, 2, None)]);
        assert_eq!(w.get(1), 6);
        // Uplink dropped 50 → 10 with same mentions: positive gain.
        c.end_period(&mut w, [stats(1, 10, 0, 2, None)]);
        assert_eq!(w.get(1), 7);
        // Burst: uplink jumps to 80 → negative gain → shrink (the
        // documented Method-2 misdiagnosis).
        c.end_period(&mut w, [stats(1, 80, 0, 2, None)]);
        assert_eq!(w.get(1), 6);
    }

    #[test]
    fn threshold_blocks_marginal_growth() {
        let mut c = AdaptiveController::new(FeedbackMethod::Method1, 1, 10_000.0, 512, 512, 1000);
        let mut w = WindowTable::new(5);
        c.end_period(&mut w, [stats(1, 5, 5, 1, Some(0.9))]); // bootstrap grows
        let before = w.get(1);
        // Tiny improvement: gain ≈ 0.1·10·512 = 512 < 10k threshold.
        c.end_period(&mut w, [stats(1, 4, 6, 1, Some(0.9))]);
        assert_eq!(w.get(1), before - 1, "marginal gain must shrink under ε");
    }
}
