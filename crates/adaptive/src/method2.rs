//! Method 2: gain from uplink-count deltas (§8.2).
//!
//! "In this method, the clients do not send extra information with the
//! queries. The server uses a much coarser measure": the change in the
//! number of uplink queries between consecutive evaluation periods.
//!
//! Reconstructed Eq. 32 (the scan inserts a spurious `q[i]` factor that
//! §8.2's own prose rules out — without piggybacking the server cannot
//! know `q[i]`):
//!
//! `Gain(i) = (Q[i,old] − Q[i,new])·b_q
//!            − (Report(i,new) − Report(i,old))·(⌈log₂n⌉ + b_T)`
//!
//! Fewer uplink queries than last period ⇒ the larger window saved
//! uplink bits. The paper notes the failure mode we keep: "if a sudden,
//! bursty activity over an item occurs, this method will wrongfully
//! diagnose the need to change the window size."

/// Eq. 32 (reconstructed).
pub fn gain_method2(
    uplink_old: u64,
    uplink_new: u64,
    query_bits: u32,
    reports_new: u32,
    reports_old: u32,
    n_items: u64,
    timestamp_bits: u32,
) -> f64 {
    let id_bits = if n_items <= 1 {
        1.0
    } else {
        (64 - (n_items - 1).leading_zeros()) as f64
    };
    let uplink_saved = (uplink_old as f64 - uplink_new as f64) * query_bits as f64;
    let report_cost = (reports_new as f64 - reports_old as f64) * (id_bits + timestamp_bits as f64);
    uplink_saved - report_cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_uplinks_is_gain() {
        let g = gain_method2(20, 5, 512, 8, 8, 1000, 512);
        assert!((g - 15.0 * 512.0).abs() < 1e-9);
    }

    #[test]
    fn more_report_mentions_is_cost() {
        let g = gain_method2(10, 10, 512, 12, 2, 1000, 512);
        assert!((g + 10.0 * 522.0).abs() < 1e-9);
    }

    #[test]
    fn bursty_queries_mislead_method2() {
        // The documented failure mode: a burst doubles uplink count with
        // no window change; Method 2 sees negative gain and will shrink
        // the window even though the window was fine.
        let g = gain_method2(10, 40, 512, 5, 5, 1000, 512);
        assert!(g < 0.0);
    }
}
