//! The per-item window table.
//!
//! Windows are integer multiples of `L` ("For simplicity assume that
//! α = jL" — §7 uses the same convention; §8's evaluation periods are
//! "multiples of the invalidation report latencies L"). The table
//! stores only *exceptions* from the default `w_0 = k_0·L`; the
//! exception list is what the adaptive report broadcasts so that every
//! awake client always has the current windows (see
//! [`crate::server::AdaptiveReport`]).

use sw_server::ItemId;

/// Wire width of one window value in the exception list (intervals,
/// saturating at 2^16−1 ≈ "infinite"). Implementation choice documented
/// in DESIGN.md: the paper does not specify how clients learn the
/// current windows.
pub const WINDOW_FIELD_BITS: u32 = 16;

/// Sentinel for an effectively infinite window.
pub const INFINITE_WINDOW: u32 = u16::MAX as u32;

/// Per-item windows in units of intervals, defaulting to `k0`.
///
/// Exceptions live in an item-sorted vector: `get` is on the client's
/// per-cached-item hot path, where a binary search over the (typically
/// short) exception list beats hashing; mutation only happens at
/// evaluation-period boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowTable {
    default_k: u32,
    /// Sorted by item id; never contains `default_k` values.
    exceptions: Vec<(ItemId, u32)>,
}

impl WindowTable {
    /// Creates a table where every item starts at `k0` intervals
    /// ("We always start with the same window size w_0(i) for all
    /// items").
    pub fn new(default_k: u32) -> Self {
        assert!(default_k >= 1, "default window must be at least one interval");
        WindowTable {
            default_k,
            exceptions: Vec::new(),
        }
    }

    /// The default window multiple `k0`.
    pub fn default_k(&self) -> u32 {
        self.default_k
    }

    /// Current window of `item`, in intervals.
    #[inline]
    pub fn get(&self, item: ItemId) -> u32 {
        match self.exceptions.binary_search_by_key(&item, |&(it, _)| it) {
            Ok(ix) => self.exceptions[ix].1,
            Err(_) => self.default_k,
        }
    }

    /// Sets `item`'s window explicitly (clamped to the wire range).
    pub fn set(&mut self, item: ItemId, k: u32) {
        let k = k.min(INFINITE_WINDOW);
        match self.exceptions.binary_search_by_key(&item, |&(it, _)| it) {
            Ok(ix) => {
                if k == self.default_k {
                    self.exceptions.remove(ix);
                } else {
                    self.exceptions[ix].1 = k;
                }
            }
            Err(ix) => {
                if k != self.default_k {
                    self.exceptions.insert(ix, (item, k));
                }
            }
        }
    }

    /// Adjusts `item`'s window by `±step` intervals (Eq. 31), flooring
    /// at zero. Returns the new value.
    pub fn adjust(&mut self, item: ItemId, grow: bool, step: u32) -> u32 {
        let cur = self.get(item);
        let next = if grow {
            cur.saturating_add(step).min(INFINITE_WINDOW)
        } else {
            cur.saturating_sub(step)
        };
        self.set(item, next);
        next
    }

    /// The exception list broadcast in every adaptive report, sorted by
    /// item id for determinism.
    pub fn exceptions(&self) -> Vec<(ItemId, u32)> {
        self.exceptions.clone()
    }

    /// Number of exception entries.
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }

    /// Replaces the exception list wholesale (client side, from the
    /// broadcast). The broadcast list is already item-sorted; unsorted
    /// input is sorted here so lookups stay correct.
    pub fn load_exceptions(&mut self, exceptions: &[(ItemId, u32)]) {
        self.exceptions.clear();
        self.exceptions.extend_from_slice(exceptions);
        if !self.exceptions.windows(2).all(|w| w[0].0 < w[1].0) {
            self.exceptions.sort_unstable_by_key(|&(item, _)| item);
            self.exceptions.dedup_by_key(|&mut (item, _)| item);
        }
    }

    /// Extra report bits the exception list costs:
    /// `|exceptions|·(⌈log₂ n⌉ + 16)`.
    pub fn exception_bits(&self, n_items: u64) -> u64 {
        let id_bits = if n_items <= 1 {
            1
        } else {
            (64 - (n_items - 1).leading_zeros()) as u64
        };
        self.exceptions.len() as u64 * (id_bits + WINDOW_FIELD_BITS as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_applies_everywhere() {
        let t = WindowTable::new(10);
        assert_eq!(t.get(0), 10);
        assert_eq!(t.get(999), 10);
        assert_eq!(t.exception_count(), 0);
    }

    #[test]
    fn adjust_grows_and_shrinks() {
        let mut t = WindowTable::new(10);
        assert_eq!(t.adjust(5, true, 2), 12);
        assert_eq!(t.adjust(5, true, 2), 14);
        assert_eq!(t.adjust(5, false, 4), 10);
        // Back at the default: exception evaporates.
        assert_eq!(t.exception_count(), 0);
    }

    #[test]
    fn window_floors_at_zero() {
        let mut t = WindowTable::new(2);
        t.adjust(1, false, 5);
        assert_eq!(t.get(1), 0);
        t.adjust(1, false, 5);
        assert_eq!(t.get(1), 0);
    }

    #[test]
    fn window_saturates_at_infinite() {
        let mut t = WindowTable::new(2);
        t.set(1, u32::MAX);
        assert_eq!(t.get(1), INFINITE_WINDOW);
    }

    #[test]
    fn exceptions_roundtrip_through_broadcast() {
        let mut server = WindowTable::new(10);
        server.set(3, 50);
        server.set(7, 0);
        let mut client = WindowTable::new(10);
        client.load_exceptions(&server.exceptions());
        assert_eq!(client.get(3), 50);
        assert_eq!(client.get(7), 0);
        assert_eq!(client.get(4), 10);
    }

    #[test]
    fn exception_bits_scale_with_count() {
        let mut t = WindowTable::new(10);
        assert_eq!(t.exception_bits(1000), 0);
        t.set(1, 20);
        t.set(2, 30);
        // 2 entries × (10-bit id + 16-bit window).
        assert_eq!(t.exception_bits(1000), 2 * 26);
    }

    #[test]
    fn exceptions_are_sorted() {
        let mut t = WindowTable::new(1);
        t.set(9, 5);
        t.set(2, 5);
        t.set(5, 5);
        let items: Vec<u64> = t.exceptions().iter().map(|&(i, _)| i).collect();
        assert_eq!(items, vec![2, 5, 9]);
    }
}
