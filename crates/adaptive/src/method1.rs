//! Method 1: gain from piggybacked hit histories (§8.1).
//!
//! The clients piggyback, on every uplink query for item `i`, "all the
//! timestamps of requests about `i` that were satisfied locally from
//! the time of the previous uplink request about i. In this way, the
//! server, knowing the update history and the full history of queries,
//! can compute both MHR(i) and AHR(i)."
//!
//! * `AHR(i)` — actual hit ratio: local hits / total queries in the
//!   period;
//! * `MHR(i)` — the hit ratio a never-sleeping client would have
//!   achieved: replay the merged query/update sequence; a query hits
//!   iff no update landed since the previous query (Eq. 12's discrete
//!   counterpart).
//!
//! The gain of the last window change (Eq. 29/30, reconstructed — the
//! scanned equation's sign is garbled; the reconstruction below is the
//! only one where "gain positive ⇒ the bigger window paid off"):
//!
//! `Gain(i) = (AHR(i,new) − AHR(i,old))·q[i]·b_q
//!            − (Report(i,new) − Report(i,old))·(⌈log₂n⌉ + b_T)`
//!
//! i.e. uplink bits saved by the improved hit ratio minus downlink bits
//! spent keeping the item in more reports.

use sw_sim::SimTime;

/// Actual hit ratio over one evaluation period: `local_hits` of
/// `total_queries` were served from cache.
pub fn estimate_ahr(local_hits: u64, total_queries: u64) -> f64 {
    if total_queries == 0 {
        0.0
    } else {
        local_hits as f64 / total_queries as f64
    }
}

/// Maximal hit ratio for an item given its full (merged) query and
/// update history in the period: a query is a *potential* hit iff no
/// update occurred since the previous query. The first query of the
/// period is charged as a miss (matching the paper's MHR derivation,
/// which conditions on a previous query existing).
pub fn estimate_mhr(query_times: &[SimTime], update_times: &[SimTime]) -> f64 {
    if query_times.is_empty() {
        return 0.0;
    }
    let mut queries = query_times.to_vec();
    queries.sort_unstable();
    let mut updates = update_times.to_vec();
    updates.sort_unstable();

    let mut hits = 0u64;
    let mut u_idx = 0usize;
    let mut prev_query: Option<SimTime> = None;
    for &q in &queries {
        // Advance the update cursor to the last update ≤ q.
        while u_idx < updates.len() && updates[u_idx] <= q {
            u_idx += 1;
        }
        let last_update_before_q = if u_idx == 0 { None } else { Some(updates[u_idx - 1]) };
        if let Some(pq) = prev_query {
            let updated_since = match last_update_before_q {
                Some(u) => u > pq,
                None => false,
            };
            if !updated_since {
                hits += 1;
            }
        }
        prev_query = Some(q);
    }
    hits as f64 / queries.len() as f64
}

/// Eq. 30 (reconstructed): positive gain ⇒ the window change paid for
/// itself in channel bits.
#[allow(clippy::too_many_arguments)]
pub fn gain_method1(
    ahr_new: f64,
    ahr_old: f64,
    total_queries: u64,
    query_bits: u32,
    reports_new: u32,
    reports_old: u32,
    n_items: u64,
    timestamp_bits: u32,
) -> f64 {
    let id_bits = if n_items <= 1 {
        1.0
    } else {
        (64 - (n_items - 1).leading_zeros()) as f64
    };
    let uplink_saved = (ahr_new - ahr_old) * total_queries as f64 * query_bits as f64;
    let report_cost = (reports_new as f64 - reports_old as f64) * (id_bits + timestamp_bits as f64);
    uplink_saved - report_cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn ahr_basics() {
        assert_eq!(estimate_ahr(0, 0), 0.0);
        assert_eq!(estimate_ahr(3, 4), 0.75);
        assert_eq!(estimate_ahr(4, 4), 1.0);
    }

    #[test]
    fn mhr_never_changing_item_is_near_one() {
        // 10 queries, no updates: 9 of 10 hit (first is charged a miss).
        let queries: Vec<SimTime> = (1..=10).map(|i| t(i as f64)).collect();
        let mhr = estimate_mhr(&queries, &[]);
        assert!((mhr - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mhr_update_between_every_query_is_zero() {
        let queries: Vec<SimTime> = (1..=5).map(|i| t(i as f64 * 10.0)).collect();
        let updates: Vec<SimTime> = (1..=5).map(|i| t(i as f64 * 10.0 - 5.0)).collect();
        assert_eq!(estimate_mhr(&queries, &updates), 0.0);
    }

    #[test]
    fn mhr_counts_only_intervening_updates() {
        // Queries at 10, 20, 30; one update at 15: exactly one miss
        // among the two follow-up queries.
        let mhr = estimate_mhr(&[t(10.0), t(20.0), t(30.0)], &[t(15.0)]);
        assert!((mhr - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mhr_update_exactly_at_query_counts_as_seen() {
        // An update at the same instant as the query is reflected in the
        // answer (Figure 2 semantics) — the *next* query still hits.
        let mhr = estimate_mhr(&[t(10.0), t(20.0)], &[t(10.0)]);
        assert!((mhr - 0.5).abs() < 1e-12, "got {mhr}");
    }

    #[test]
    fn mhr_empty_queries_is_zero() {
        assert_eq!(estimate_mhr(&[], &[t(1.0)]), 0.0);
    }

    #[test]
    fn gain_positive_when_hit_ratio_improves_cheaply() {
        // AHR improved 0.2 → 0.8 over 100 queries at 512 bits/query:
        // saves 30,720 bits; 5 extra report mentions at 522 bits cost
        // 2,610 bits.
        let g = gain_method1(0.8, 0.2, 100, 512, 10, 5, 1000, 512);
        assert!(g > 0.0);
        assert!((g - (0.6 * 100.0 * 512.0 - 5.0 * 522.0)).abs() < 1e-9);
    }

    #[test]
    fn gain_negative_when_reports_buy_nothing() {
        // Hit ratio unchanged, 20 extra mentions: pure cost.
        let g = gain_method1(0.5, 0.5, 50, 512, 25, 5, 1000, 512);
        assert!(g < 0.0);
    }

    #[test]
    fn gain_zero_query_item_only_counts_report_cost() {
        let g = gain_method1(0.0, 0.0, 0, 512, 3, 0, 1000, 512);
        assert!((g + 3.0 * 522.0).abs() < 1e-9);
    }
}
