//! The adaptive TS report builder.
//!
//! Differs from the static [`sw_server::TsBuilder`] in two ways:
//!
//! 1. an item is included iff its last update falls within *its own*
//!    window: `T_i − w_i < t_j ≤ T_i` (inclusion is computed from the
//!    item's exact `updated_at`, so window growth is safe even past the
//!    update log's pruning horizon);
//! 2. the report additionally carries the current window exception
//!    list, so clients always apply the same windows the server used
//!    (the paper leaves this mechanism unspecified; see DESIGN.md).
//!
//! An item whose window is zero is never reported — "if the hit ratio
//! for a given data item is low even for units that do not sleep at
//! all, then the item should not be included in the report."

use sw_server::{Database, ItemId, ItemTable, ReportBuilder, UpdateRecord};
use sw_sim::{SimDuration, SimTime};
use sw_wireless::FramePayload;

use crate::window::WindowTable;

/// An adaptive report: the TS payload plus the window exception list
/// and its extra bit cost.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReport {
    /// The timestamp entries, as a regular TS report payload.
    pub payload: FramePayload,
    /// Current window exceptions `(item, window-in-intervals)`.
    pub window_exceptions: Vec<(ItemId, u32)>,
    /// Bits the exception list adds to `B_c`.
    pub extra_bits: u64,
    /// Per-item report-mention counts are tracked by the builder; this
    /// is the number of entries in this report.
    pub entries: usize,
}

/// Builds adaptive TS reports and tracks `Report(i, ·)` counts for the
/// gain computations.
#[derive(Debug, Clone)]
pub struct AdaptiveTsBuilder {
    latency: SimDuration,
    windows: WindowTable,
    /// Mentions per item within the current evaluation period — dense
    /// over the item universe (ids are dense; no hashing per report).
    mentions_this_period: ItemTable<u32>,
}

impl AdaptiveTsBuilder {
    /// Creates the builder with every window at `k0` intervals.
    pub fn new(latency: SimDuration, default_k: u32) -> Self {
        assert!(!latency.is_zero(), "latency must be positive");
        AdaptiveTsBuilder {
            latency,
            windows: WindowTable::new(default_k),
            mentions_this_period: ItemTable::dense(0),
        }
    }

    /// The broadcast latency `L`.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Read access to the window table.
    pub fn windows(&self) -> &WindowTable {
        &self.windows
    }

    /// Mutable access for the controller's period-end adjustments.
    pub fn windows_mut(&mut self) -> &mut WindowTable {
        &mut self.windows
    }

    /// Report mentions of `item` in the current evaluation period.
    pub fn mentions(&self, item: ItemId) -> u32 {
        self.mentions_this_period.get(item).copied().unwrap_or(0)
    }

    /// Ends the evaluation period, returning and resetting the mention
    /// counts (the controller's `Report(i, new)`).
    pub fn end_period(&mut self) -> ItemTable<u32> {
        self.mentions_this_period.take()
    }

    /// Builds the adaptive report at `t_i`. This is the richer variant
    /// of [`ReportBuilder::build`] that also returns the window table;
    /// the trait impl delegates here and discards the extras.
    pub fn build_adaptive(&mut self, _i: u64, t_i: SimTime, db: &Database) -> AdaptiveReport {
        // Candidate items: anything in the update log within the largest
        // window could qualify; per-item inclusion then checks w_i.
        // Scanning the log bounds the work by recent update volume, not
        // database size; `updated_at` confirms inclusion exactly.
        let max_k = self
            .windows
            .exceptions()
            .iter()
            .map(|&(_, k)| k)
            .chain(std::iter::once(self.windows.default_k()))
            .max()
            .unwrap_or(1);
        let horizon = SimTime::from_secs(
            (t_i.as_secs() - max_k as f64 * self.latency.as_secs()).max(0.0),
        );
        self.mentions_this_period.reserve_universe(db.len());
        let mut entries: Vec<(u64, u64)> = Vec::new();
        for (item, last_update) in db.updated_in_window(horizon, t_i) {
            let w_i = self.windows.get(item);
            if w_i == 0 {
                continue; // never reported
            }
            let window_start = t_i.as_secs() - w_i as f64 * self.latency.as_secs();
            if last_update.as_secs() > window_start {
                entries.push((item, (last_update.as_secs() * 1e6).round() as u64));
                *self.mentions_this_period.get_or_insert_with(item, || 0) += 1;
            }
        }
        entries.sort_unstable_by_key(|&(item, _)| item);
        let window_exceptions = self.windows.exceptions();
        let extra_bits = self.windows.exception_bits(db.len());
        AdaptiveReport {
            entries: entries.len(),
            payload: FramePayload::AdaptiveTimestampReport {
                report_ts_micros: (t_i.as_secs() * 1e6).round() as u64,
                entries,
                window_exceptions: window_exceptions.clone(),
            },
            window_exceptions,
            extra_bits,
        }
    }
}

impl ReportBuilder for AdaptiveTsBuilder {
    fn name(&self) -> &'static str {
        "ATS"
    }

    fn on_update(&mut self, _rec: &UpdateRecord) {}

    fn build(&mut self, i: u64, t_i: SimTime, db: &Database) -> FramePayload {
        self.build_adaptive(i, t_i, db).payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::new(100, |i| i, SimDuration::from_secs(1e6))
    }

    fn entry_items(r: &AdaptiveReport) -> Vec<u64> {
        match &r.payload {
            FramePayload::AdaptiveTimestampReport { entries, .. } => {
                entries.iter().map(|&(i, _)| i).collect()
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn default_window_behaves_like_static_ts() {
        let mut d = db();
        d.apply_update(1, 1, SimTime::from_secs(5.0));
        d.apply_update(2, 2, SimTime::from_secs(25.0));
        let mut b = AdaptiveTsBuilder::new(SimDuration::from_secs(10.0), 2); // w = 20
        let r = b.build_adaptive(3, SimTime::from_secs(30.0), &d);
        // Window (10, 30]: item 2 in, item 1 (t=5) out.
        assert_eq!(entry_items(&r), vec![2]);
    }

    #[test]
    fn grown_window_recovers_old_updates() {
        let mut d = db();
        d.apply_update(1, 1, SimTime::from_secs(5.0));
        let mut b = AdaptiveTsBuilder::new(SimDuration::from_secs(10.0), 2);
        b.windows_mut().set(1, 100); // w_1 = 1000 s
        let r = b.build_adaptive(3, SimTime::from_secs(30.0), &d);
        assert_eq!(entry_items(&r), vec![1]);
        assert_eq!(r.window_exceptions, vec![(1, 100)]);
        assert!(r.extra_bits > 0);
    }

    #[test]
    fn zero_window_suppresses_item() {
        let mut d = db();
        d.apply_update(1, 1, SimTime::from_secs(25.0));
        d.apply_update(2, 2, SimTime::from_secs(26.0));
        let mut b = AdaptiveTsBuilder::new(SimDuration::from_secs(10.0), 2);
        b.windows_mut().set(1, 0);
        let r = b.build_adaptive(3, SimTime::from_secs(30.0), &d);
        assert_eq!(entry_items(&r), vec![2], "item 1 must be suppressed");
    }

    #[test]
    fn mentions_accumulate_per_period() {
        let mut d = db();
        d.apply_update(1, 1, SimTime::from_secs(5.0));
        let mut b = AdaptiveTsBuilder::new(SimDuration::from_secs(10.0), 10);
        for i in 1..=5u64 {
            let _ = b.build_adaptive(i, SimTime::from_secs(i as f64 * 10.0), &d);
        }
        // Item 1 (updated at t=5, window 100 s) is mentioned in all 5.
        assert_eq!(b.mentions(1), 5);
        let period = b.end_period();
        assert_eq!(period.get(1).copied(), Some(5));
        assert_eq!(b.mentions(1), 0);
    }

    #[test]
    fn exception_list_rides_every_report() {
        let d = db();
        let mut b = AdaptiveTsBuilder::new(SimDuration::from_secs(10.0), 2);
        b.windows_mut().set(9, 7);
        let r = b.build_adaptive(1, SimTime::from_secs(10.0), &d);
        assert_eq!(r.window_exceptions, vec![(9, 7)]);
    }
}
