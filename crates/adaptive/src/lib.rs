//! # sw-adaptive — adaptive invalidation reports (§8)
//!
//! Static TS uses one window `w = kL` for every item. §8 shows why that
//! is wrong at both extremes — a never-changing item queried by sleepers
//! generates needless uplink traffic once it ages out of the window,
//! while a constantly-changing item bloats every report for nothing —
//! and proposes making the window *per item*, adjusted from feedback:
//!
//! * **Method 1** ([`method1`]): clients piggyback, on each uplink
//!   query, the timestamps of the local cache hits since their previous
//!   uplink for that item; the server reconstructs the actual hit ratio
//!   `AHR(i)` and the no-sleep ceiling `MHR(i)` and evaluates the gain
//!   of the last window change (Eq. 29/30);
//! * **Method 2** ([`method2`]): no piggybacking; the server uses the
//!   coarser uplink-count delta (Eq. 32).
//!
//! Both adjust windows by `±e` intervals per evaluation period
//! (Eq. 31), floored at zero ("the item should not be included in the
//! report") and unbounded above ("it makes sense to keep an 'infinite'
//! window").
//!
//! [`window`] holds the per-item window table shared (by value, via the
//! report) between server and clients; [`server`] implements the
//! adaptive report builder; [`client`] the matching handler whose
//! whole-cache drop check of §3.1 becomes a *per-item* check
//! `T_i − T_l > w_i`; [`controller`] runs the evaluation periods.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod controller;
pub mod method1;
pub mod method2;
pub mod server;
pub mod window;

pub use client::AdaptiveTsHandler;
pub use controller::{Adjustment, AdaptiveController, FeedbackMethod, PeriodItemStats, PeriodSummary};
pub use method1::{estimate_ahr, estimate_mhr, gain_method1};
pub use method2::gain_method2;
pub use server::{AdaptiveReport, AdaptiveTsBuilder};
pub use window::{WindowTable, WINDOW_FIELD_BITS};
