//! The adaptive TS client handler.
//!
//! §3.1's whole-cache drop (`T_i − T_l > w`) becomes per item: after
//! loading the report's window exception list, a cached item `j`
//! survives a disconnection gap `g = T_i − T_l` iff `g ≤ w_j` — the
//! report is guaranteed to still mention any update to `j` that the
//! client could have missed. Items with larger gaps are dropped
//! individually; items within their window follow the ordinary TS
//! timestamp comparison.

use sw_server::ItemId;
use sw_sim::{SimDuration, SimTime};
use sw_wireless::FramePayload;

use sw_client::{Cache, ProcessOutcome, ReportHandler};

use crate::window::WindowTable;

/// Client half of adaptive TS.
#[derive(Debug, Clone)]
pub struct AdaptiveTsHandler {
    latency: SimDuration,
    windows: WindowTable,
    pending_exceptions: Vec<(ItemId, u32)>,
}

impl AdaptiveTsHandler {
    /// Creates the handler; `default_k` must match the server's.
    pub fn new(latency: SimDuration, default_k: u32) -> Self {
        AdaptiveTsHandler {
            latency,
            windows: WindowTable::new(default_k),
            pending_exceptions: Vec::new(),
        }
    }

    /// Loads the window exception list from the adaptive report. Call
    /// before [`ReportHandler::process`] for the same report (the cell
    /// driver does this; splitting the call keeps the trait signature
    /// shared with the static strategies).
    pub fn load_windows(&mut self, exceptions: &[(ItemId, u32)]) {
        self.pending_exceptions = exceptions.to_vec();
    }

    /// The client's current view of item windows.
    pub fn windows(&self) -> &WindowTable {
        &self.windows
    }
}

impl ReportHandler for AdaptiveTsHandler {
    fn name(&self) -> &'static str {
        "ATS"
    }

    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        t_l: Option<SimTime>,
    ) -> ProcessOutcome {
        let (report_ts_micros, entries) = match payload {
            // The adaptive report carries its window table in-band.
            FramePayload::AdaptiveTimestampReport {
                report_ts_micros,
                entries,
                window_exceptions,
            } => {
                self.pending_exceptions = window_exceptions.clone();
                (*report_ts_micros, entries)
            }
            // Plain TS reports are accepted for drop-in comparisons
            // (windows then stay at whatever was last loaded).
            FramePayload::TimestampReport {
                report_ts_micros,
                entries,
            } => (*report_ts_micros, entries),
            other => panic!("adaptive TS handler fed a wrong report: {other:?}"),
        };
        let t_i = SimTime::from_secs(report_ts_micros as f64 / 1e6);
        // Adopt the windows that rode in with this report.
        self.windows.load_exceptions(&self.pending_exceptions);
        self.pending_exceptions.clear();

        let gap_secs = match t_l {
            Some(t_l) => t_i.saturating_duration_since(t_l).as_secs(),
            None => f64::INFINITY,
        };
        // Dense-id reports arrive item-sorted, so per-item lookups are
        // binary searches over the entry slice — no per-call hash map.
        let sorted_entries;
        let reported: &[(ItemId, u64)] = if entries.windows(2).all(|w| w[0].0 < w[1].0) {
            entries
        } else {
            let mut copy = entries.clone();
            copy.sort_unstable_by_key(|&(item, _)| item);
            sorted_entries = copy;
            &sorted_entries
        };
        let mut invalidated = Vec::new();
        let windows = &self.windows;
        let latency_secs = self.latency.as_secs();
        cache.retain_entries(|item, entry| {
            let k_i = windows.get(item);
            let w_secs = if k_i >= crate::window::INFINITE_WINDOW {
                // §8: "it makes sense to keep an 'infinite' window for
                // an item like this, including the pair <i, 0> in each
                // invalidation report" — no gap can age it out.
                f64::INFINITY
            } else {
                k_i as f64 * latency_secs
            };
            // Per-item gap check replaces §3.1's whole-cache drop. The
            // tiny epsilon mirrors the float-tolerant boundary of the
            // static handlers (gap exactly w is survivable).
            if gap_secs > w_secs * (1.0 + 1e-12) {
                invalidated.push(item);
                return false;
            }
            let cached_micros = (entry.timestamp.as_secs() * 1e6).round() as u64;
            match reported
                .binary_search_by_key(&item, |&(it, _)| it)
                .ok()
                .map(|ix| reported[ix].1)
            {
                Some(t_j) if cached_micros < t_j => {
                    invalidated.push(item);
                    false
                }
                _ => {
                    entry.timestamp = t_i;
                    true
                }
            }
        });
        invalidated.sort_unstable();
        let revalidated = cache.len();
        ProcessOutcome {
            report_time: t_i,
            // Adaptive TS never drops the whole cache wholesale; the
            // per-item gap check subsumes it.
            dropped_all: false,
            invalidated,
            revalidated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(t_i: f64, entries: Vec<(u64, f64)>) -> FramePayload {
        FramePayload::TimestampReport {
            report_ts_micros: (t_i * 1e6) as u64,
            entries: entries
                .into_iter()
                .map(|(i, t)| (i, (t * 1e6) as u64))
                .collect(),
        }
    }

    #[test]
    fn per_item_gap_check() {
        let mut h = AdaptiveTsHandler::new(SimDuration::from_secs(10.0), 2); // default w = 20
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0)); // default window
        c.insert(2, 20, SimTime::from_secs(10.0)); // will have w = 100
        h.load_windows(&[(2, 10)]);
        // Gap = 40 − 10 = 30 > 20 for item 1, but ≤ 100 for item 2.
        let out = h.process(&mut c, &report(40.0, vec![]), Some(SimTime::from_secs(10.0)));
        assert_eq!(out.invalidated, vec![1]);
        assert!(c.contains(2));
    }

    #[test]
    fn infinite_ish_window_survives_any_nap() {
        let mut h = AdaptiveTsHandler::new(SimDuration::from_secs(10.0), 1);
        let mut c = Cache::unbounded();
        c.insert(7, 1, SimTime::from_secs(10.0));
        h.load_windows(&[(7, crate::window::INFINITE_WINDOW)]);
        let out = h.process(
            &mut c,
            &report(1_000_000.0, vec![]),
            Some(SimTime::from_secs(10.0)),
        );
        assert!(out.invalidated.is_empty());
        assert!(c.contains(7));
    }

    #[test]
    fn timestamp_comparison_still_applies() {
        let mut h = AdaptiveTsHandler::new(SimDuration::from_secs(10.0), 10);
        let mut c = Cache::unbounded();
        c.insert(3, 1, SimTime::from_secs(10.0));
        let out = h.process(
            &mut c,
            &report(20.0, vec![(3, 15.0)]),
            Some(SimTime::from_secs(10.0)),
        );
        assert_eq!(out.invalidated, vec![3]);
    }

    #[test]
    fn zero_window_item_dropped_on_any_gap() {
        // A zero-window item is never reported, so the client cannot
        // trust it across a report boundary at all.
        let mut h = AdaptiveTsHandler::new(SimDuration::from_secs(10.0), 5);
        let mut c = Cache::unbounded();
        c.insert(4, 1, SimTime::from_secs(10.0));
        h.load_windows(&[(4, 0)]);
        let out = h.process(&mut c, &report(20.0, vec![]), Some(SimTime::from_secs(10.0)));
        assert_eq!(out.invalidated, vec![4]);
    }

    #[test]
    fn windows_update_with_each_report() {
        let mut h = AdaptiveTsHandler::new(SimDuration::from_secs(10.0), 2);
        let mut c = Cache::unbounded();
        h.load_windows(&[(1, 50)]);
        let _ = h.process(&mut c, &report(10.0, vec![]), None);
        assert_eq!(h.windows().get(1), 50);
        // Next report shrinks it back.
        h.load_windows(&[]);
        let _ = h.process(&mut c, &report(20.0, vec![]), Some(SimTime::from_secs(10.0)));
        assert_eq!(h.windows().get(1), 2);
    }
}
