//! # sw-ha — replicated cell servers with zero-stale failover
//!
//! The paper's server is *stateless* toward its clients (§2): every
//! interval it broadcasts an invalidation report derived purely from
//! the update history, and clients recover from arbitrarily long
//! silences with their strategy's own rules — TS re-windows, AT drops
//! on gap, SIG re-diagnoses. That statelessness is exactly what makes
//! the server replaceable mid-session: *any* node that has seen the
//! same update stream can take over broadcasting and no client cache
//! ever goes stale.
//!
//! This crate supplies the missing piece — making N [`sw_live`]
//! servers see the same update stream:
//!
//! - the seeded update engine needs no replication at all (every node
//!   replays it from the shared [`sleepers::CellConfig`] seed);
//! - externally `Publish`ed updates are sequenced by an epoch-numbered
//!   primary into a replicated log (simple majority-ack over TCP
//!   between peers) that replicas fold into the same tick;
//! - every node *builds* every tick — database, report builder, and
//!   [`sleepers::safety::ValueHistory`] stay identical clusterwide —
//!   but only the primary puts reports on the air.
//!
//! When the primary dies (a seeded [`sw_faults::server`] fault, or a
//! real `kill -9`), the deterministic successor — the lowest-id
//! surviving node — bumps the epoch, announces itself, and resumes
//! broadcasting on the original cadence. Clients re-register via the
//! successor roster announced at registration and treat the blackout
//! as ordinary missed reports. Datagrams carry the epoch in the sealed
//! frame header, so a deposed primary's late broadcasts are fenced off
//! by every receiver.
//!
//! The fleet is deliberately *not* a consensus system: there is one
//! log writer per epoch, acks are counted over the currently-live
//! links, and a crashed node's unacked tail is at-most-once (a report
//! that was never aired is simply a missed interval, which is a state
//! the paper's clients already handle). The point is fidelity to the
//! paper's recovery model, not Paxos.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;

pub use node::{HaHandle, HaNode, HaOptions, HaReport, PeerSpec};
