//! The HA node: a replication coordinator wrapped around one
//! [`LiveServer`] session.
//!
//! Threading, per node:
//!
//! - the `sw-live` session threads (accept / per-client / ticker),
//!   exactly as unreplicated — the ticker simply asks the coordinator
//!   for a [`TickDirective`] each interval;
//! - one replication accept thread on the rep listener;
//! - one reader thread per peer link, applying `RepAppend` /
//!   `RepAck` / `RepPromote` to the shared replication core;
//! - one dialer thread per smaller-id peer (the smaller id accepts,
//!   the larger dials; the dialer redials on link death, which is how
//!   a restarted node is re-absorbed).
//!
//! All coordination state lives in one mutex-guarded [`RepCore`]; the
//! coordinator's waits are short condvar timeouts so a stop request is
//! never blocked on.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sleepers::{CellConfig, Strategy};
use sw_faults::server::{CrashPoint, ServerFaultClock, ServerFaultPlan};
use sw_live::proto::Msg;
use sw_live::server::{
    LiveOptions, LiveServer, LiveServerReport, Pace, ServerHandle, TickCoordinator, TickDirective,
};

/// One cluster member's addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerSpec {
    /// Cluster node id — also the takeover priority (lowest first).
    pub node: u32,
    /// Peer-to-peer replication (TCP) address.
    pub rep: SocketAddr,
    /// Client-facing (`sw-live` control) address.
    pub client: SocketAddr,
}

/// Options for one [`HaNode`].
#[derive(Debug, Clone)]
pub struct HaOptions {
    /// This node's cluster id.
    pub node: u32,
    /// Every cluster member, self included (the full membership list
    /// must be identical on every node — it defines the successor
    /// order clients are told about).
    pub peers: Vec<PeerSpec>,
    /// The wrapped live-session options (its `bind` is ignored — the
    /// node's pre-bound client listener is used instead).
    pub live: LiveOptions,
    /// This node's seeded fault schedule.
    pub faults: ServerFaultPlan,
    /// How long the primary waits for majority acks before proceeding
    /// degraded (the entry is still committed locally and replayed to
    /// late peers via their `RepHello`).
    pub ack_timeout: Duration,
    /// Replica-side silence bound: with the primary's link still up
    /// but no appends heard for this long, the primary is presumed
    /// partitioned and the successor takes over. (A *dead* primary is
    /// detected faster — by its link closing.)
    pub promote_after: Duration,
    /// This process is a restart of a crashed cluster member: join as
    /// a replica and wait for `RepHello` catch-up replay to begin
    /// before coordinating any tick, instead of assuming the cold-start
    /// primacy order (which may name *this* node and would have it
    /// sequence bogus entries for intervals the cluster settled long
    /// ago).
    pub rejoin: bool,
}

impl HaOptions {
    /// Options for `node` in the given membership, wrapping `live`.
    pub fn new(node: u32, peers: Vec<PeerSpec>, live: LiveOptions) -> Self {
        Self {
            node,
            peers,
            live,
            faults: ServerFaultPlan::none(),
            ack_timeout: Duration::from_millis(250),
            promote_after: Duration::from_secs(2),
            rejoin: false,
        }
    }

    /// Arms this node's seeded fault schedule.
    pub fn with_faults(mut self, faults: ServerFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the majority-ack wait bound.
    pub fn with_ack_timeout(mut self, t: Duration) -> Self {
        self.ack_timeout = t;
        self
    }

    /// Overrides the replica-side silence bound.
    pub fn with_promote_after(mut self, t: Duration) -> Self {
        self.promote_after = t;
        self
    }

    /// Marks this process as a restarted cluster member rejoining
    /// mid-session (see [`HaOptions::rejoin`]).
    pub fn with_rejoin(mut self) -> Self {
        self.rejoin = true;
        self
    }
}

/// What one HA node brings home.
pub struct HaReport {
    /// This node's cluster id.
    pub node: u32,
    /// The final epoch this node observed.
    pub epoch: u64,
    /// The interval at which this node took over broadcasting, if it
    /// ever promoted itself.
    pub took_over_at: Option<u64>,
    /// True when the node died to an injected fault (its session
    /// report is lost, like the process it models).
    pub crashed: bool,
    /// The wrapped live-session report (`None` when `crashed`).
    pub live: Option<LiveServerReport>,
}

type LinkWriter = Arc<Mutex<BufWriter<TcpStream>>>;

/// Mutex-guarded replication state shared between the coordinator and
/// the link reader threads.
struct RepCore {
    epoch: u64,
    /// Node id of the epoch's log writer.
    primary: u32,
    /// Full session log of sequenced publishes, kept for catch-up
    /// replay to late or restarted peers.
    log: BTreeMap<u64, Vec<(u64, u64)>>,
    /// Committed entries this node's ticker has not yet consumed.
    pending: BTreeMap<u64, Vec<(u64, u64)>>,
    /// Peer acks per interval (primary side).
    acks: HashMap<u64, Vec<u32>>,
    /// Live links by peer node id.
    links: HashMap<u32, LinkWriter>,
    last_applied: u64,
    /// Last time primary traffic arrived (replica side).
    last_heard: Instant,
    /// The primary's link died.
    primary_dead: bool,
    took_over_at: Option<u64>,
    /// Paced only: estimate of the session's `t0`, back-derived from
    /// append arrival times so a successor can adopt the original
    /// broadcast cadence.
    anchor: Option<Instant>,
}

struct RepShared {
    node: u32,
    interval_ms: Option<u64>,
    core: Mutex<RepCore>,
    cv: Condvar,
    /// Replication plane off: set on session halt and on injected
    /// crash (a crashed node must refuse new links, or it would keep
    /// replicating like nothing happened).
    down: AtomicBool,
}

impl RepShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, RepCore> {
        self.core.lock().expect("replication core lock")
    }

    /// Registers (or replaces) a peer link.
    fn register_link(&self, peer: u32, writer: LinkWriter) {
        let mut core = self.lock();
        core.links.insert(peer, writer);
        if peer == core.primary {
            core.primary_dead = false;
            core.last_heard = Instant::now();
        }
        drop(core);
        self.cv.notify_all();
    }

    /// Drops a dead peer link; a dead primary link flags the failover.
    fn drop_link(&self, peer: u32) {
        let mut core = self.lock();
        core.links.remove(&peer);
        if peer == core.primary {
            core.primary_dead = true;
        }
        drop(core);
        self.cv.notify_all();
    }
}

/// Reads and applies one peer's replication traffic until the link
/// dies. `hello_seen` is the already-consumed handshake on the accept
/// side (the dialer sends its `RepHello` before entering).
fn reader_loop(shared: &RepShared, peer: u32, reader: &mut BufReader<TcpStream>) {
    loop {
        if shared.down.load(Ordering::SeqCst) {
            break;
        }
        let msg = match Msg::read_from(reader) {
            Ok(m) => m,
            Err(_) => break,
        };
        if !apply_rep_msg(shared, peer, msg) {
            break;
        }
    }
    shared.drop_link(peer);
}

/// Applies one replication message; false = protocol violation, drop
/// the link.
fn apply_rep_msg(shared: &RepShared, peer: u32, msg: Msg) -> bool {
    let mut replies: Vec<Msg> = Vec::new();
    {
        let mut core = shared.lock();
        match msg {
            Msg::RepHello { last_applied, .. } => {
                // Catch-up replay: a late or restarted peer announces
                // how far it got; if we write the log, resend the rest.
                if core.primary == shared.node {
                    for (&j, pubs) in core.log.range(last_applied + 1..) {
                        replies.push(Msg::RepAppend {
                            epoch: core.epoch,
                            interval: j,
                            publishes: pubs.clone(),
                        });
                    }
                }
            }
            Msg::RepAppend {
                epoch,
                interval,
                publishes,
            } => {
                if epoch < core.epoch {
                    // A deposed primary still sequencing: demote it.
                    replies.push(Msg::RepPromote {
                        epoch: core.epoch,
                        resume_at: core.last_applied + 1,
                    });
                } else {
                    if epoch > core.epoch {
                        core.epoch = epoch;
                        core.primary_dead = false;
                    }
                    // The appender is the epoch's writer.
                    core.primary = peer;
                    core.last_heard = Instant::now();
                    if let Some(ms) = shared.interval_ms {
                        core.anchor = Instant::now()
                            .checked_sub(Duration::from_millis(ms) * interval as u32)
                            .or(core.anchor);
                    }
                    core.log.insert(interval, publishes.clone());
                    core.pending.insert(interval, publishes);
                    replies.push(Msg::RepAck {
                        epoch: core.epoch,
                        interval,
                    });
                }
            }
            Msg::RepAck { epoch, interval } => {
                if epoch == core.epoch {
                    let ackers = core.acks.entry(interval).or_default();
                    if !ackers.contains(&peer) {
                        ackers.push(peer);
                    }
                }
            }
            Msg::RepPromote { epoch, .. } => {
                if epoch > core.epoch {
                    core.epoch = epoch;
                    core.primary = peer;
                    core.primary_dead = false;
                    core.last_heard = Instant::now();
                }
            }
            _ => return false,
        }
    }
    shared.cv.notify_all();
    if !replies.is_empty() {
        let link = shared.lock().links.get(&peer).cloned();
        let Some(link) = link else { return false };
        let mut w = link.lock().expect("link writer lock");
        for m in &replies {
            if m.write_to(&mut *w).is_err() {
                return false;
            }
        }
    }
    true
}

/// The [`TickCoordinator`] implementation: primary sequencing,
/// replica application, and deterministic takeover.
struct HaCoordinator {
    shared: Arc<RepShared>,
    node: u32,
    /// Membership sorted by node id (= successor order).
    peers: Vec<PeerSpec>,
    clock: ServerFaultClock,
    ack_timeout: Duration,
    promote_after: Duration,
    links_awaited: bool,
    /// [`HaOptions::rejoin`]: wait for catch-up replay before the
    /// first tick.
    rejoin: bool,
}

enum ReplicaOutcome {
    /// The entry arrived: the directive to build it.
    Entry(TickDirective),
    /// This node is the deterministic successor: promote.
    Promote,
    /// Primacy changed under us: re-enter the decision loop.
    Reconsider,
}

impl HaCoordinator {
    fn inert(&self) -> TickDirective {
        let core = self.shared.lock();
        TickDirective {
            epoch: core.epoch,
            primary: core.primary == self.node,
            broadcast: false,
            publishes: Vec::new(),
            pace_anchor: None,
            promoted: false,
        }
    }

    /// Blocks (bounded) until every configured peer link is up, so a
    /// fleet started together replicates from interval 1 instead of
    /// racing its own dialers. Late peers are still absorbed any time
    /// via `RepHello` catch-up replay.
    fn wait_for_links(&self, stop: &AtomicBool) {
        let want = self.peers.len().saturating_sub(1);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut core = self.shared.lock();
        while core.links.len() < want
            && Instant::now() < deadline
            && !stop.load(Ordering::SeqCst)
        {
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, Duration::from_millis(20))
                .expect("replication core lock");
            core = guard;
        }
    }

    /// Rejoin gate: blocks (bounded) until the cluster's catch-up
    /// replay lands — the first replicated entry both demotes this
    /// node (the appender is the epoch's writer) and seeds `pending`
    /// with everything it missed, so the ticker replays the session
    /// from interval 1 off the canonical log instead of sequencing
    /// its own cold-start entries.
    fn wait_for_catch_up(&self, stop: &AtomicBool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut core = self.shared.lock();
        while core.pending.is_empty()
            && Instant::now() < deadline
            && !stop.load(Ordering::SeqCst)
        {
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, Duration::from_millis(20))
                .expect("replication core lock");
            core = guard;
        }
    }

    /// The injected-crash exit: sever every rep link abruptly (peers
    /// see the same EOF a `kill -9` produces), take the rep plane
    /// down, and hand the ticker the error that kills the session.
    fn die(&mut self) -> io::Error {
        self.shared.down.store(true, Ordering::SeqCst);
        let links: Vec<LinkWriter> = {
            let mut core = self.shared.lock();
            core.links.drain().map(|(_, w)| w).collect()
        };
        for link in links {
            if let Ok(w) = link.lock() {
                let _ = w.get_ref().shutdown(Shutdown::Both);
            }
        }
        self.shared.cv.notify_all();
        io::Error::new(io::ErrorKind::ConnectionAborted, "injected server crash")
    }

    /// Primary path: appends the entry, replicates it, waits (bounded)
    /// for a majority of the live cluster, and returns the broadcast
    /// directive. `None`: demoted mid-sequence (a healed partition) —
    /// the caller falls back to the replica path.
    fn sequence(
        &self,
        interval: u64,
        local: Vec<(u64, u64)>,
        stop: &AtomicBool,
    ) -> Option<TickDirective> {
        let partitioned = self.clock.partitioned_at(interval);
        let (epoch, links) = {
            let mut core = self.shared.lock();
            core.log.insert(interval, local.clone());
            core.last_applied = interval;
            let links: Vec<LinkWriter> = if partitioned {
                Vec::new()
            } else {
                core.links.values().cloned().collect()
            };
            (core.epoch, links)
        };
        if !links.is_empty() {
            let msg = Msg::RepAppend {
                epoch,
                interval,
                publishes: local.clone(),
            };
            for link in &links {
                let _ = msg.write_to(&mut *link.lock().expect("link writer lock"));
            }
            let deadline = Instant::now() + self.ack_timeout;
            let mut core = self.shared.lock();
            loop {
                if core.primary != self.node {
                    // Demoted mid-wait: the entry we just logged will
                    // be overwritten by the real primary's append.
                    core.acks.remove(&interval);
                    return None;
                }
                // Majority of the *live* cluster, self included: with
                // k live links we need ⌊(k+1)/2⌋ peer acks.
                let needed = core.links.len().div_ceil(2);
                let got = core.acks.get(&interval).map_or(0, |v| v.len());
                if got >= needed {
                    break;
                }
                if Instant::now() >= deadline || stop.load(Ordering::SeqCst) {
                    break; // degraded: commit locally, replay later
                }
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(core, Duration::from_millis(5))
                    .expect("replication core lock");
                core = guard;
            }
            core.acks.remove(&interval);
        }
        Some(TickDirective {
            epoch,
            primary: true,
            broadcast: true,
            publishes: local,
            pace_anchor: None,
            promoted: false,
        })
    }

    /// Replica path: waits for interval `interval`'s committed entry,
    /// watching for the primary's death or silence.
    fn replica_wait(&self, interval: u64, stop: &AtomicBool) -> ReplicaOutcome {
        let mut core = self.shared.lock();
        loop {
            if let Some(pubs) = core.pending.remove(&interval) {
                core.last_applied = core.last_applied.max(interval);
                return ReplicaOutcome::Entry(TickDirective {
                    epoch: core.epoch,
                    primary: false,
                    broadcast: false,
                    publishes: pubs,
                    pace_anchor: None,
                    promoted: false,
                });
            }
            if stop.load(Ordering::SeqCst) || core.primary == self.node {
                return ReplicaOutcome::Reconsider;
            }
            let linkless = !core.links.contains_key(&core.primary);
            let silent = core.last_heard.elapsed() >= self.promote_after;
            if core.primary_dead || linkless || silent {
                // Deterministic successor: the lowest-id survivor.
                let successor = core
                    .links
                    .keys()
                    .copied()
                    .chain([self.node])
                    .filter(|n| *n != core.primary)
                    .min()
                    .unwrap_or(self.node);
                if successor == self.node {
                    return ReplicaOutcome::Promote;
                }
                // Someone else takes over; wait for their entry.
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, Duration::from_millis(10))
                .expect("replication core lock");
            core = guard;
        }
    }

    /// Takeover: bump the epoch, announce it, sequence the resumption
    /// interval, and return the promoted broadcast directive (with the
    /// back-derived pace anchor, so the original cadence is kept).
    fn promote(&self, interval: u64, local: Vec<(u64, u64)>) -> TickDirective {
        let (epoch, links, anchor) = {
            let mut core = self.shared.lock();
            core.epoch += 1;
            core.primary = self.node;
            core.primary_dead = false;
            if core.took_over_at.is_none() {
                core.took_over_at = Some(interval);
            }
            core.log.insert(interval, local.clone());
            core.last_applied = interval;
            let links: Vec<LinkWriter> = core.links.values().cloned().collect();
            (core.epoch, links, core.anchor)
        };
        let announce = Msg::RepPromote {
            epoch,
            resume_at: interval,
        };
        let append = Msg::RepAppend {
            epoch,
            interval,
            publishes: local.clone(),
        };
        for link in &links {
            let mut w = link.lock().expect("link writer lock");
            let _ = announce.write_to(&mut *w);
            let _ = append.write_to(&mut *w);
        }
        TickDirective {
            epoch,
            primary: true,
            broadcast: true,
            publishes: local,
            pace_anchor: anchor,
            promoted: true,
        }
    }
}

impl TickCoordinator for HaCoordinator {
    fn coordinate(
        &mut self,
        interval: u64,
        local_publishes: Vec<(u64, u64)>,
        stop: &std::sync::atomic::AtomicBool,
    ) -> io::Result<TickDirective> {
        if !self.links_awaited {
            self.wait_for_links(stop);
            if self.rejoin {
                self.wait_for_catch_up(stop);
            }
            self.links_awaited = true;
        }
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(self.inert());
            }
            let am_primary = self.shared.lock().primary == self.node;
            if am_primary {
                match self.clock.crash_at(interval) {
                    Some(CrashPoint::BeforeAppend) => return Err(self.die()),
                    Some(CrashPoint::AfterAppend) => {
                        // Commit the entry first — it is replicated
                        // and acked but will never be aired: every
                        // client misses exactly this interval.
                        let _ = self.sequence(interval, local_publishes.clone(), stop);
                        return Err(self.die());
                    }
                    None => {}
                }
                match self.sequence(interval, local_publishes.clone(), stop) {
                    Some(directive) => return Ok(directive),
                    None => continue, // demoted: replica path below
                }
            }
            if self.clock.crash_at(interval).is_some() {
                return Err(self.die());
            }
            match self.replica_wait(interval, stop) {
                ReplicaOutcome::Entry(directive) => return Ok(directive),
                ReplicaOutcome::Promote => {
                    return Ok(self.promote(interval, local_publishes));
                }
                ReplicaOutcome::Reconsider => continue,
            }
        }
    }

    fn status(&self) -> (u64, bool) {
        let core = self.shared.lock();
        (core.epoch, core.primary == self.node)
    }

    fn successors(&self) -> Vec<SocketAddr> {
        self.peers.iter().map(|p| p.client).collect()
    }

    fn halted(&mut self) {
        self.shared.down.store(true, Ordering::SeqCst);
        let links: Vec<LinkWriter> = {
            let mut core = self.shared.lock();
            core.links.drain().map(|(_, w)| w).collect()
        };
        for link in links {
            if let Ok(w) = link.lock() {
                let _ = w.get_ref().shutdown(Shutdown::Both);
            }
        }
        self.shared.cv.notify_all();
    }
}

/// A pre-bound HA node, ready to start. Two-phase construction lets a
/// test bind every node on ephemeral ports first, collect the real
/// addresses into the shared [`PeerSpec`] membership, then start them.
pub struct HaNode {
    rep_listener: TcpListener,
    client_listener: TcpListener,
}

impl HaNode {
    /// Binds the node's two listeners (port 0: ephemeral).
    pub fn bind(rep: SocketAddr, client: SocketAddr) -> io::Result<Self> {
        Ok(Self {
            rep_listener: TcpListener::bind(rep)?,
            client_listener: TcpListener::bind(client)?,
        })
    }

    /// The bound replication address.
    pub fn rep_addr(&self) -> io::Result<SocketAddr> {
        self.rep_listener.local_addr()
    }

    /// The bound client-facing address.
    pub fn client_addr(&self) -> io::Result<SocketAddr> {
        self.client_listener.local_addr()
    }

    /// Starts the node: the replication plane (accept + dialers) and
    /// the wrapped live session.
    pub fn start(
        self,
        cfg: CellConfig,
        strategy: Strategy,
        opts: HaOptions,
    ) -> io::Result<HaHandle> {
        let mut peers = opts.peers.clone();
        peers.sort_by_key(|p| p.node);
        if !peers.iter().any(|p| p.node == opts.node) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "HaOptions::peers must include this node",
            ));
        }
        // Cold start: the lowest id leads. Rejoin: the true primary is
        // unknown but is definitely *not us* — guessing any other
        // member keeps the wrapped session in replica mode (no client
        // registration wait, no sequencing) until the first replayed
        // append names the real writer.
        let initial_primary = if opts.rejoin {
            peers
                .iter()
                .map(|p| p.node)
                .find(|&n| n != opts.node)
                .unwrap_or(opts.node)
        } else {
            peers.first().map(|p| p.node).unwrap_or(opts.node)
        };
        let interval_ms = match opts.live.pace {
            Pace::Paced { interval_ms } => Some(interval_ms),
            Pace::Lockstep => None,
        };
        let shared = Arc::new(RepShared {
            node: opts.node,
            interval_ms,
            core: Mutex::new(RepCore {
                epoch: 1,
                primary: initial_primary,
                log: BTreeMap::new(),
                pending: BTreeMap::new(),
                acks: HashMap::new(),
                links: HashMap::new(),
                last_applied: 0,
                last_heard: Instant::now(),
                primary_dead: false,
                took_over_at: None,
                anchor: None,
            }),
            cv: Condvar::new(),
            down: AtomicBool::new(false),
        });

        let rep_addr = self.rep_listener.local_addr()?;
        let accept = {
            let shared = Arc::clone(&shared);
            let listener = self.rep_listener;
            thread::Builder::new()
                .name(format!("sw-ha-rep-accept-{}", opts.node))
                .spawn(move || rep_accept_loop(&shared, &listener))?
        };
        // The smaller id accepts, the larger dials: every pair gets
        // exactly one link, and the dialer side owns the redial.
        let mut dialers = Vec::new();
        for peer in peers.iter().filter(|p| p.node < opts.node) {
            let shared = Arc::clone(&shared);
            let peer = *peer;
            let node = opts.node;
            dialers.push(
                thread::Builder::new()
                    .name(format!("sw-ha-rep-dial-{}-{}", node, peer.node))
                    .spawn(move || dial_loop(&shared, node, peer))?,
            );
        }

        let coordinator = HaCoordinator {
            shared: Arc::clone(&shared),
            node: opts.node,
            peers,
            clock: ServerFaultClock::new(&opts.faults, cfg.seed, opts.node),
            ack_timeout: opts.ack_timeout,
            promote_after: opts.promote_after,
            links_awaited: false,
            rejoin: opts.rejoin,
        };
        let server = LiveServer::spawn_coordinated(
            cfg,
            strategy,
            opts.live,
            self.client_listener,
            Box::new(coordinator),
        )?;
        Ok(HaHandle {
            node: opts.node,
            server,
            shared,
            rep_addr,
            accept,
            dialers,
        })
    }
}

/// Accepts incoming replication links: the first message must be the
/// peer's `RepHello`; it registers the link, triggers catch-up replay
/// (via the normal message path), gets our `RepHello` back, and the
/// connection becomes a plain reader loop.
fn rep_accept_loop(shared: &Arc<RepShared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = thread::Builder::new()
            .name(format!("sw-ha-rep-link-{}", shared.node))
            .spawn(move || {
                let _ = serve_rep_link(&shared, stream);
            });
    }
}

fn serve_rep_link(shared: &Arc<RepShared>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let hello = Msg::read_from(&mut reader)?;
    let Msg::RepHello { node: peer, .. } = hello else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "rep link did not open with RepHello",
        ));
    };
    let writer: LinkWriter = Arc::new(Mutex::new(BufWriter::new(stream)));
    shared.register_link(peer, Arc::clone(&writer));
    // Answer with our own hello (epoch + progress), then let the
    // normal handler run the replay-side effects of theirs.
    {
        let (epoch, last_applied) = {
            let core = shared.lock();
            (core.epoch, core.last_applied)
        };
        let mut w = writer.lock().expect("link writer lock");
        Msg::RepHello {
            node: shared.node,
            epoch,
            last_applied,
        }
        .write_to(&mut *w)?;
    }
    apply_rep_msg(shared, peer, hello);
    reader_loop(shared, peer, &mut reader);
    Ok(())
}

/// Dials a smaller-id peer, runs its link, and redials on death until
/// the rep plane goes down — which is also how a restarted peer
/// process (same address) is re-absorbed into the cluster.
fn dial_loop(shared: &Arc<RepShared>, node: u32, peer: PeerSpec) {
    while !shared.down.load(Ordering::SeqCst) {
        let Ok(stream) = TcpStream::connect_timeout(&peer.rep, Duration::from_millis(500))
        else {
            thread::sleep(Duration::from_millis(100));
            continue;
        };
        let Ok(()) = stream.set_nodelay(true) else { continue };
        let Ok(clone) = stream.try_clone() else { continue };
        let mut reader = BufReader::new(clone);
        let writer: LinkWriter = Arc::new(Mutex::new(BufWriter::new(stream)));
        shared.register_link(peer.node, Arc::clone(&writer));
        let hello = {
            let core = shared.lock();
            Msg::RepHello {
                node,
                epoch: core.epoch,
                last_applied: core.last_applied,
            }
        };
        if hello
            .write_to(&mut *writer.lock().expect("link writer lock"))
            .is_err()
        {
            shared.drop_link(peer.node);
            continue;
        }
        reader_loop(shared, peer.node, &mut reader);
        thread::sleep(Duration::from_millis(100));
    }
}

/// A running HA node: the wrapped live session plus its replication
/// plane.
pub struct HaHandle {
    node: u32,
    server: ServerHandle,
    shared: Arc<RepShared>,
    rep_addr: SocketAddr,
    accept: JoinHandle<()>,
    dialers: Vec<JoinHandle<()>>,
}

impl HaHandle {
    /// The client-facing TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The replication address.
    pub fn rep_addr(&self) -> SocketAddr {
        self.rep_addr
    }

    /// The metrics endpoint, when the wrapped session asked for one.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.server.metrics_addr()
    }

    /// A detached stop trigger for the wrapped session.
    pub fn stopper(&self) -> sw_live::Stopper {
        self.server.stopper()
    }

    /// This node's current `(epoch, is_primary)` view.
    pub fn ha_status(&self) -> (u64, bool) {
        let core = self.shared.lock();
        (core.epoch, core.primary == self.shared.node)
    }

    /// Waits for the session and the replication plane to finish. An
    /// injected crash is a *normal* outcome here (`crashed: true`);
    /// any other session error propagates.
    pub fn wait(self) -> io::Result<HaReport> {
        let result = self.server.wait();
        self.shared.down.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        // Poke the rep accept loop off `accept()` so it can be joined.
        let _ = TcpStream::connect(self.rep_addr);
        let _ = self.accept.join();
        for d in self.dialers {
            let _ = d.join();
        }
        let (epoch, took_over_at) = {
            let core = self.shared.lock();
            (core.epoch, core.took_over_at)
        };
        match result {
            Ok(live) => Ok(HaReport {
                node: self.node,
                epoch,
                took_over_at,
                crashed: false,
                live: Some(live),
            }),
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => Ok(HaReport {
                node: self.node,
                epoch,
                took_over_at,
                crashed: true,
                live: None,
            }),
            Err(e) => Err(e),
        }
    }
}
