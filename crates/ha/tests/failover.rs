//! Failover acceptance: a two-node HA fleet with a seeded primary
//! crash mid-session.
//!
//! Paced: the primary dies `AfterAppend` at interval 30 — the entry is
//! committed but never aired, so every awake client misses exactly
//! that interval; the replica takes over at 31 (epoch 2) on the
//! original cadence, the fleet re-registers through its announced
//! successor roster, and the end-of-run audit of every client cache
//! against the *survivor's* value history finds zero stale entries for
//! the never-stale strategies (TS, AT) and at most the diagnosis bound
//! for SIG.
//!
//! Lockstep (`faults` feature): the same crash schedule produces
//! decision logs byte-identical to `CellSimulation` fed the equivalent
//! report-gap schedule — an `AfterAppend` crash at `k` is exactly a
//! one-interval blackout at `k`, and a `BeforeAppend` crash is no gap
//! at all (the successor broadcasts the crash interval itself).

use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use sleepers::{CellConfig, Strategy};
use sw_faults::server::{CrashPoint, ServerFaultPlan};
use sw_ha::{HaNode, HaOptions, HaReport, PeerSpec};
use sw_live::{audit_against_history, run_mu, LiveMuReport, LiveOptions, MuOptions};
use sw_workload::ScenarioParams;

const CLIENTS: usize = 4;
const INTERVALS: u64 = 80;
const INTERVAL_MS: u64 = 25;
const CRASH_AT: u64 = 30;

fn loopback() -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], 0))
}

fn cell(seed: u64, s: f64) -> CellConfig {
    let mut params = ScenarioParams::scenario1().with_s(s);
    params.n_items = 200;
    params.mu = 4e-3;
    params.k = 8;
    CellConfig::new(params)
        .with_clients(CLIENTS)
        .with_hotspot_size(15)
        .with_seed(seed)
        .with_safety_checking()
}

/// Binds a two-node fleet on ephemeral ports and returns the bound
/// nodes plus the shared membership list.
fn bind_pair() -> (Vec<HaNode>, Vec<PeerSpec>) {
    let nodes: Vec<HaNode> = (0..2)
        .map(|_| HaNode::bind(loopback(), loopback()).expect("bind node"))
        .collect();
    let peers: Vec<PeerSpec> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| PeerSpec {
            node: i as u32,
            rep: n.rep_addr().expect("rep addr"),
            client: n.client_addr().expect("client addr"),
        })
        .collect();
    (nodes, peers)
}

struct Outcome {
    mus: Vec<LiveMuReport>,
    crashed: HaReport,
    survivor: HaReport,
}

/// One paced HA session: node 0 is the primary and dies `AfterAppend`
/// at [`CRASH_AT`]; node 1 must take over mid-run (asserted *during*
/// the session via its epoch view, not just post-mortem).
fn run_paced_failover(strategy: Strategy, seed: u64) -> Outcome {
    let cfg = cell(seed, 0.3);
    let (mut nodes, peers) = bind_pair();
    let node1 = nodes.pop().expect("node 1");
    let node0 = nodes.pop().expect("node 0");
    let h0 = node0
        .start(
            cfg.clone(),
            strategy,
            HaOptions::new(0, peers.clone(), LiveOptions::paced(INTERVALS, INTERVAL_MS))
                .with_faults(ServerFaultPlan::none().with_crash(CRASH_AT, CrashPoint::AfterAppend)),
        )
        .expect("start node 0");
    let h1 = node1
        .start(
            cfg.clone(),
            strategy,
            HaOptions::new(1, peers.clone(), LiveOptions::paced(INTERVALS, INTERVAL_MS)),
        )
        .expect("start node 1");

    let addr0 = peers[0].client;
    let successors: Vec<SocketAddr> = peers.iter().map(|p| p.client).collect();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|idx| {
            let cfg = cfg.clone();
            let opts = MuOptions {
                audit_cache: true,
                successors: successors.clone(),
                reconnect_after: 2,
                ..MuOptions::default()
            };
            thread::spawn(move || run_mu(addr0, &cfg, strategy, idx, opts))
        })
        .collect();

    // The takeover must be observable while the session still runs,
    // within a bounded number of intervals of the crash.
    let deadline = Instant::now() + Duration::from_millis((CRASH_AT + 20) * INTERVAL_MS);
    loop {
        let (epoch, primary) = h1.ha_status();
        if epoch == 2 && primary {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{}: node 1 never took over (epoch {epoch}, primary {primary})",
            strategy.name()
        );
        thread::sleep(Duration::from_millis(10));
    }

    let mus: Vec<LiveMuReport> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread").expect("client session"))
        .collect();
    let crashed = h0.wait().expect("node 0 teardown");
    let survivor = h1.wait().expect("node 1 teardown");
    Outcome {
        mus,
        crashed,
        survivor,
    }
}

fn assert_failover_contract(strategy: Strategy, o: &Outcome) {
    let name = strategy.name();
    assert!(o.crashed.crashed, "{name}: node 0 survived its fault");
    assert!(o.crashed.live.is_none());
    assert!(!o.survivor.crashed, "{name}: the survivor crashed too");
    assert_eq!(o.survivor.epoch, 2, "{name}: takeover must bump the epoch");
    // AfterAppend at k: entry k is committed cluster-wide but never
    // aired; the successor resumes *broadcasting* at k+1.
    assert_eq!(
        o.survivor.took_over_at,
        Some(CRASH_AT + 1),
        "{name}: wrong takeover interval"
    );
    let live = o.survivor.live.as_ref().expect("survivor session report");
    assert_eq!(live.intervals, INTERVALS, "{name}: truncated session");
    assert!(live.datagrams_sent > 0, "{name}: successor never broadcast");

    let history = live
        .history
        .as_ref()
        .expect("safety checking was on; the survivor kept a value history");
    let mut checked = 0u64;
    let mut violations = 0u64;
    let mut reconnects = 0u64;
    let mut heard = 0u64;
    for mu in &o.mus {
        assert_eq!(mu.rows.len() as u64, INTERVALS, "{name}: truncated client");
        let (c, v) = audit_against_history(history, &mu.audit);
        checked += c;
        violations += v;
        reconnects += mu.reconnects;
        heard += mu.reports_heard;
    }
    assert!(checked > 0, "{name}: nothing was ever cached");
    assert!(heard > 0, "{name}: no report ever heard");
    assert!(
        reconnects >= CLIENTS as u64,
        "{name}: the fleet rode through the crash without re-registering \
         ({reconnects} reconnects)"
    );
    match strategy {
        Strategy::BroadcastTimestamps | Strategy::AmnesicTerminals => {
            assert_eq!(
                violations, 0,
                "{name}: stale cache entries after failover in a never-stale strategy"
            );
        }
        _ => {
            let rate = violations as f64 / checked as f64;
            assert!(
                rate <= Strategy::SIG_VIOLATION_BOUND,
                "{name}: stale rate {rate:.4} above the diagnosis bound after failover"
            );
        }
    }
}

#[test]
fn paced_primary_crash_hands_over_with_zero_stale_caches() {
    let stacks = [
        (Strategy::BroadcastTimestamps, 0xFA11_0001u64),
        (Strategy::AmnesicTerminals, 0xFA11_0002),
        (Strategy::Signatures, 0xFA11_0003),
    ];
    let outcomes: Vec<(Strategy, Outcome)> = stacks
        .map(|(strategy, seed)| {
            thread::spawn(move || (strategy, run_paced_failover(strategy, seed)))
        })
        .into_iter()
        .map(|t| t.join().expect("failover stack"))
        .collect();
    for (strategy, outcome) in &outcomes {
        eprintln!(
            "{}: epoch {}, takeover at {:?}, {} reconnects, {} audited entries",
            strategy.name(),
            outcome.survivor.epoch,
            outcome.survivor.took_over_at,
            outcome.mus.iter().map(|m| m.reconnects).sum::<u64>(),
            outcome.mus.iter().map(|m| m.audit.len()).sum::<usize>(),
        );
        assert_failover_contract(*strategy, outcome);
    }
}

/// Lockstep conformance through a crash: the live fleet's decision
/// logs must be byte-identical to the simulator fed the equivalent
/// report-gap schedule.
#[cfg(feature = "faults")]
mod lockstep_conformance {
    use super::*;
    use sw_faults::FaultPlan;
    use sw_live::conformance::sim_decision_log;
    use sw_live::{encode_rows, DecisionRow};

    const CONF_INTERVALS: u64 = 24;
    const CONF_CRASH_AT: u64 = 12;

    /// Runs a two-node lockstep HA session with the given crash point
    /// on the primary and returns each client's locally-kept rows.
    fn ha_lockstep_rows(
        cfg: &CellConfig,
        strategy: Strategy,
        point: CrashPoint,
    ) -> (Vec<Vec<DecisionRow>>, HaReport) {
        let (mut nodes, peers) = bind_pair();
        let node1 = nodes.pop().expect("node 1");
        let node0 = nodes.pop().expect("node 0");
        let h0 = node0
            .start(
                cfg.clone(),
                strategy,
                HaOptions::new(0, peers.clone(), LiveOptions::lockstep(CONF_INTERVALS))
                    .with_faults(ServerFaultPlan::none().with_crash(CONF_CRASH_AT, point)),
            )
            .expect("start node 0");
        let h1 = node1
            .start(
                cfg.clone(),
                strategy,
                HaOptions::new(1, peers.clone(), LiveOptions::lockstep(CONF_INTERVALS)),
            )
            .expect("start node 1");
        let addr0 = peers[0].client;
        let successors: Vec<SocketAddr> = peers.iter().map(|p| p.client).collect();
        let workers: Vec<_> = (0..cfg.n_clients)
            .map(|idx| {
                let cfg = cfg.clone();
                let successors = successors.clone();
                thread::spawn(move || {
                    run_mu(
                        addr0,
                        &cfg,
                        strategy,
                        idx,
                        MuOptions {
                            successors,
                            ..MuOptions::default()
                        },
                    )
                })
            })
            .collect();
        // Collect the node outcomes on their own threads so a server
        // error surfaces (on stderr, at least) even if it would
        // otherwise leave a client blocked.
        let t0 = thread::spawn(move || {
            let r = h0.wait();
            if let Err(e) = &r {
                eprintln!("node 0 teardown error: {e}");
            }
            r
        });
        let t1 = thread::spawn(move || {
            let r = h1.wait();
            if let Err(e) = &r {
                eprintln!("node 1 teardown error: {e}");
            }
            r
        });
        let rows: Vec<Vec<DecisionRow>> = workers
            .into_iter()
            .map(|w| w.join().expect("client thread").expect("client session").rows)
            .collect();
        let crashed = t0.join().expect("node 0 thread").expect("node 0 teardown");
        assert!(crashed.crashed, "node 0 survived its fault");
        let survivor = t1.join().expect("node 1 thread").expect("node 1 teardown");
        assert!(!survivor.crashed);
        assert_eq!(survivor.epoch, 2);
        (rows, survivor)
    }

    fn assert_logs_identical(live: &[Vec<DecisionRow>], sim: &[Vec<DecisionRow>], what: &str) {
        assert_eq!(live.len(), sim.len());
        let decided: u64 = sim.iter().flatten().map(|r| r.queries + r.hits + r.misses).sum();
        assert!(decided > 0, "{what}: a trivial log conforms vacuously");
        for (idx, (l, s)) in live.iter().zip(sim).enumerate() {
            assert_eq!(
                encode_rows(l),
                encode_rows(s),
                "{what}: client {idx}'s decision log diverges"
            );
        }
    }

    /// AfterAppend at k: the entry is committed but never aired — the
    /// fleet sees exactly a one-interval blackout at k, and the paper's
    /// recovery rules make that indistinguishable from simulated loss.
    #[test]
    fn after_append_crash_is_byte_identical_to_blackout_sim() {
        let cfg = cell(0x10C5_0001, 0.4);
        let (live, survivor) =
            ha_lockstep_rows(&cfg, Strategy::BroadcastTimestamps, CrashPoint::AfterAppend);
        assert_eq!(survivor.took_over_at, Some(CONF_CRASH_AT + 1));
        let sim_cfg = cfg
            .clone()
            .with_faults(FaultPlan::none().with_blackout(CONF_CRASH_AT, CONF_CRASH_AT));
        let sim = sim_decision_log(&sim_cfg, Strategy::BroadcastTimestamps, CONF_INTERVALS)
            .expect("reference simulation");
        assert_logs_identical(&live, &sim, "TS after-append crash");
    }

    /// BeforeAppend at k: the entry was never sequenced, so the
    /// successor promotes *at* k and broadcasts it itself — the fleet
    /// sees no gap at all and the log matches the fault-free simulator.
    #[test]
    fn before_append_crash_is_byte_identical_to_plain_sim() {
        let cfg = cell(0x10C5_0002, 0.4);
        let (live, survivor) =
            ha_lockstep_rows(&cfg, Strategy::AmnesicTerminals, CrashPoint::BeforeAppend);
        assert_eq!(survivor.took_over_at, Some(CONF_CRASH_AT));
        let sim = sim_decision_log(&cfg, Strategy::AmnesicTerminals, CONF_INTERVALS)
            .expect("reference simulation");
        assert_logs_identical(&live, &sim, "AT before-append crash");
    }

    /// SIG's re-diagnosis path through the same takeover blackout.
    #[test]
    fn sig_after_append_crash_is_byte_identical_to_blackout_sim() {
        let cfg = cell(0x10C5_0003, 0.4);
        let (live, _) = ha_lockstep_rows(&cfg, Strategy::Signatures, CrashPoint::AfterAppend);
        let sim_cfg = cfg
            .clone()
            .with_faults(FaultPlan::none().with_blackout(CONF_CRASH_AT, CONF_CRASH_AT));
        let sim = sim_decision_log(&sim_cfg, Strategy::Signatures, CONF_INTERVALS)
            .expect("reference simulation");
        assert_logs_identical(&live, &sim, "SIG after-append crash");
    }
}
