//! CrashRestart rejoin soak: a crashed primary comes back mid-session
//! and catches up from the replicated log.
//!
//! Node 0 (primary) dies `AfterAppend` at interval 30 under a
//! `CrashRestart` schedule; node 1 takes over on the original cadence
//! and the query-cached fleet re-registers through the successor
//! roster. After the scheduled downtime the test — acting as the
//! process supervisor — rebinds node 0 on its original addresses and
//! starts it `with_rejoin()`: the fresh process announces
//! `RepHello { last_applied: 0 }`, the new primary replays the entire
//! session log, and the restarted node replays it through its own
//! ticker, rebuilding database and value history from interval 1
//! without ever broadcasting or sequencing a bogus entry.
//!
//! The acceptance is zero-stale *twice over*: every client's audited
//! cache rows — item entries and cached query-result rows alike, the
//! fleet runs the query plane — are consistent against the survivor's
//! value history AND against the restarted node's rebuilt history.
//! If catch-up missed or reordered a single update, the second audit
//! would flag every row that read the diverged value.

use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use sleepers::query::QueryPlaneConfig;
use sleepers::{CellConfig, Strategy};
use sw_faults::server::{CrashPoint, ServerFaultPlan};
use sw_ha::{HaNode, HaOptions, PeerSpec};
use sw_live::server::LiveOptions;
use sw_live::{audit_against_history, run_mu, LiveMuReport, MuOptions};
use sw_workload::ScenarioParams;

const CLIENTS: usize = 4;
const INTERVALS: u64 = 100;
const INTERVAL_MS: u64 = 25;
const CRASH_AT: u64 = 30;
const DOWN_INTERVALS: u64 = 10;

fn loopback() -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], 0))
}

fn cell(seed: u64) -> CellConfig {
    let mut params = ScenarioParams::scenario1().with_s(0.3);
    params.n_items = 200;
    params.mu = 4e-3;
    params.k = 8;
    CellConfig::new(params)
        .with_clients(CLIENTS)
        .with_hotspot_size(15)
        .with_seed(seed)
        .with_safety_checking()
        .with_query(QueryPlaneConfig::new())
}

fn bind_pair() -> (Vec<HaNode>, Vec<PeerSpec>) {
    let nodes: Vec<HaNode> = (0..2)
        .map(|_| HaNode::bind(loopback(), loopback()).expect("bind node"))
        .collect();
    let peers: Vec<PeerSpec> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| PeerSpec {
            node: i as u32,
            rep: n.rep_addr().expect("rep addr"),
            client: n.client_addr().expect("client addr"),
        })
        .collect();
    (nodes, peers)
}

#[test]
fn restarted_primary_rejoins_catches_up_and_serves_no_stale_query_rows() {
    let strategy = Strategy::BroadcastTimestamps;
    let cfg = cell(0x4E10_1A01);
    let (mut nodes, peers) = bind_pair();
    let node1 = nodes.pop().expect("node 1");
    let node0 = nodes.pop().expect("node 0");
    let live = || LiveOptions::paced(INTERVALS, INTERVAL_MS);
    let plan = ServerFaultPlan::none().with_crash_restart(
        CRASH_AT,
        CrashPoint::AfterAppend,
        DOWN_INTERVALS,
    );
    let h0 = node0
        .start(
            cfg.clone(),
            strategy,
            HaOptions::new(0, peers.clone(), live()).with_faults(plan),
        )
        .expect("start node 0");
    let h1 = node1
        .start(cfg.clone(), strategy, HaOptions::new(1, peers.clone(), live()))
        .expect("start node 1");

    let addr0 = peers[0].client;
    let successors: Vec<SocketAddr> = peers.iter().map(|p| p.client).collect();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|idx| {
            let cfg = cfg.clone();
            let opts = MuOptions {
                audit_cache: true,
                successors: successors.clone(),
                reconnect_after: 2,
                ..MuOptions::default()
            };
            thread::spawn(move || run_mu(addr0, &cfg, strategy, idx, opts))
        })
        .collect();

    // Supervisor role: reap the crashed incarnation, honor the
    // schedule's downtime, then restart node 0 on its original
    // addresses as a rejoining replica with a clean fault plan (a
    // fresh process does not re-crash on the old schedule).
    let crashed = h0.wait().expect("node 0 first incarnation");
    assert!(crashed.crashed, "node 0 survived its CrashRestart fault");
    assert!(crashed.live.is_none());
    thread::sleep(Duration::from_millis(DOWN_INTERVALS * INTERVAL_MS));
    let rebound = HaNode::bind(peers[0].rep, peers[0].client).expect("rebind node 0");
    let restart_started = Instant::now();
    let h0b = rebound
        .start(
            cfg.clone(),
            strategy,
            HaOptions::new(0, peers.clone(), live()).with_rejoin(),
        )
        .expect("restart node 0");

    let mus: Vec<LiveMuReport> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread").expect("client session"))
        .collect();
    let survivor = h1.wait().expect("node 1 teardown");
    let rejoined = h0b.wait().expect("node 0 second incarnation");

    // The survivor ran the takeover exactly as in the permanent-crash
    // case: AfterAppend at k means the fleet missed exactly k.
    assert!(!survivor.crashed);
    assert_eq!(survivor.epoch, 2, "takeover must bump the epoch");
    assert_eq!(survivor.took_over_at, Some(CRASH_AT + 1));
    let survivor_live = survivor.live.as_ref().expect("survivor session report");
    assert_eq!(survivor_live.intervals, INTERVALS);

    // The restarted node adopted the takeover epoch from the replayed
    // appends, never promoted itself, never broadcast, and still ran
    // the full session by replaying the canonical log.
    assert!(!rejoined.crashed, "the second incarnation must survive");
    assert_eq!(rejoined.epoch, 2, "catch-up must adopt the cluster epoch");
    assert_eq!(rejoined.took_over_at, None, "a rejoiner must not promote");
    let rejoined_live = rejoined.live.as_ref().expect("rejoined session report");
    assert_eq!(rejoined_live.intervals, INTERVALS, "truncated replay");
    assert_eq!(
        rejoined_live.datagrams_sent, 0,
        "a rejoined replica must not broadcast"
    );
    // Replaying ~40 settled intervals takes milliseconds, not the 1 s
    // of wall clock the originals spent pacing them: the catch-up ran
    // off the log, not the timer.
    let catch_up = restart_started.elapsed();
    assert!(
        catch_up < Duration::from_millis((INTERVALS + 20) * INTERVAL_MS),
        "rejoin took {catch_up:?} — it paced instead of replaying"
    );

    let survivor_history = survivor_live
        .history
        .as_ref()
        .expect("safety checking was on");
    let rejoined_history = rejoined_live
        .history
        .as_ref()
        .expect("safety checking was on");
    let mut checked = 0u64;
    let mut reconnects = 0u64;
    let mut qhits = 0u64;
    let mut qcommits = 0u64;
    for mu in &mus {
        assert_eq!(mu.rows.len() as u64, INTERVALS, "truncated client");
        // Zero stale against the node that served the session...
        let (c, v) = audit_against_history(survivor_history, &mu.audit);
        assert_eq!(v, 0, "mu{}: stale rows vs the survivor's history", mu.index);
        // ...and zero stale against the restarted node's *rebuilt*
        // history: the catch-up replay reproduced the same values.
        let (c2, v2) = audit_against_history(rejoined_history, &mu.audit);
        assert_eq!(v2, 0, "mu{}: stale rows vs the rejoined history", mu.index);
        assert_eq!(c, c2, "both audits cover the same rows");
        checked += c;
        reconnects += mu.reconnects;
        qhits += mu.query.hits;
        qcommits += mu.query.txn_commits;
    }
    assert!(checked > 0, "nothing was ever cached");
    assert!(
        reconnects >= CLIENTS as u64,
        "the fleet rode through the crash without re-registering"
    );
    assert!(qhits > 0, "the query plane never re-served a result");
    assert!(qcommits > 0, "no multi-item read ever committed");
}
