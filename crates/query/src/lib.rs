//! # sw-query — query-result caching and transactional reads over the
//! invalidation stream
//!
//! The paper's clients cache single items; this crate layers a
//! *query-result* cache on top of `sw-client`'s item cache, invalidated
//! by the very same §3–§6 reports:
//!
//! * [`QueryCache`] holds predicate entries — item-id footprints plus an
//!   optional value predicate over the hot-spot domain (Example 1's
//!   stock filter) — each entry carrying the materialized result rows
//!   and the report timestamp that last verified it;
//! * [`QueryPlane`] drives one client's query workload (Zipf template
//!   draws from `sw-workload`, seeded by
//!   `StreamId::QueryPlan { index }`): every heard report runs a
//!   single-pass footprint check that drops or re-verifies each entry
//!   against the *item* cache the owning strategy just processed, so
//!   TS/AT query results inherit the never-stale guarantee and SIG
//!   inherits its diagnosis bound — the plane never re-implements any
//!   gap/window/signature rule;
//! * [`ReadTxn`] adds multi-item transactional reads: a transaction pins
//!   one template footprint per heard report and commits at its last
//!   read iff every earlier pin is still current under that report's
//!   clock (the report timestamps double as the consistency witness,
//!   per Eyal et al.'s *Cache Serializability*), aborting otherwise —
//!   a detected non-serializable interleaving.
//!
//! The plane is deliberately split into an RNG-free *check* half
//! ([`QueryPlane::observe_report`], safe inside the parallel client
//! sweep) and a *settle* half ([`QueryPlane::settle`], run after the
//! driver served the requested uplink fetches), mirroring the cell
//! driver's sweep/merge phase split so runs stay byte-identical across
//! `SW_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sw_client::Cache;
use sw_server::ItemId;
use sw_sim::{RngStream, SimTime};
use sw_workload::{QueryWorkload, QueryWorkloadSpec};

/// A value predicate applied to an entry's footprint rows — the "stock
/// filter" shape of Example 1: the result is the subset of footprint
/// items whose current value satisfies the predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPredicate {
    /// Every footprint item is part of the result (pure id-set query).
    Any,
    /// Only items whose value is strictly below the threshold (item
    /// values are uniform `u64`s, so `Below(u64::MAX / 2)` selects
    /// about half the footprint).
    Below(u64),
}

impl QueryPredicate {
    /// Whether a row with `value` satisfies the predicate.
    #[inline]
    pub fn matches(&self, value: u64) -> bool {
        match self {
            QueryPredicate::Any => true,
            QueryPredicate::Below(t) => value < *t,
        }
    }
}

/// One materialized footprint row: the item, the value the result was
/// computed from, and the validity timestamp the item cache carried
/// when this row was last verified (the audit anchor, exactly like the
/// item-cache safety sweep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultRow {
    /// The footprint item.
    pub item: ItemId,
    /// The value the result was materialized from.
    pub value: u64,
    /// Item-cache validity timestamp at materialization/re-verification.
    pub timestamp: SimTime,
}

/// One cached query result.
#[derive(Debug, Clone)]
pub struct QueryEntry {
    /// Template rank within the client's workload family.
    pub rank: usize,
    /// The value predicate the result view applies.
    pub predicate: QueryPredicate,
    /// Materialized footprint rows (all footprint items, matching or
    /// not — a non-matching item changing value can *join* the result,
    /// so the whole footprint is the invalidation unit).
    pub rows: Vec<ResultRow>,
    /// Report timestamp that last verified this entry.
    pub verified_at: SimTime,
}

impl QueryEntry {
    /// The result view: footprint rows satisfying the predicate.
    pub fn result(&self) -> impl Iterator<Item = &ResultRow> {
        self.rows.iter().filter(|r| self.predicate.matches(r.value))
    }
}

/// The per-client query-result cache: template rank → entry.
#[derive(Debug, Clone, Default)]
pub struct QueryCache {
    entries: Vec<Option<QueryEntry>>,
}

impl QueryCache {
    fn sized(n: usize) -> Self {
        QueryCache {
            entries: (0..n).map(|_| None).collect(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry for template `rank`, if cached.
    pub fn get(&self, rank: usize) -> Option<&QueryEntry> {
        self.entries.get(rank).and_then(|e| e.as_ref())
    }

    /// Iterates over live entries (ascending rank — deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &QueryEntry> {
        self.entries.iter().filter_map(|e| e.as_ref())
    }
}

/// Configuration of one client's query plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPlaneConfig {
    /// Distinct query templates per client.
    pub templates: usize,
    /// Footprint items per template (clipped to the hotspot size).
    pub footprint: usize,
    /// Zipf exponent of template popularity (0 = uniform).
    pub theta: f64,
    /// Probability that one predicate query fires in an awake interval
    /// (drawn `max_queries_per_interval` times, so the per-interval
    /// event count is Binomial(n, p) — all from the plane's own
    /// stream).
    pub query_probability: f64,
    /// Bernoulli draws per awake interval (≥ 1).
    pub max_queries_per_interval: u32,
    /// Probability that an awake interval begins a multi-item read
    /// transaction when none is in flight (0 disables transactions).
    pub txn_probability: f64,
    /// Template reads per transaction, one per heard report (≥ 2 for a
    /// cross-report consistency witness).
    pub txn_reads: usize,
    /// Fraction of templates carrying a `Below` value predicate (the
    /// rest are pure id-set queries).
    pub predicate_fraction: f64,
    /// Record committed read sets for post-run audits (tests/soaks; off
    /// in sweeps to bound memory).
    pub record_commits: bool,
}

impl QueryPlaneConfig {
    /// A small default plane: 8 templates of 4 items, Zipf(0.9), about
    /// one query per awake interval, occasional 2-read transactions.
    pub fn new() -> Self {
        QueryPlaneConfig {
            templates: 8,
            footprint: 4,
            theta: 0.9,
            query_probability: 0.35,
            max_queries_per_interval: 3,
            txn_probability: 0.15,
            txn_reads: 2,
            predicate_fraction: 0.5,
            record_commits: false,
        }
    }

    /// Sets the per-interval query intensity.
    pub fn with_query_mix(mut self, probability: f64, max_per_interval: u32) -> Self {
        self.query_probability = probability;
        self.max_queries_per_interval = max_per_interval;
        self
    }

    /// Sets the transaction arrival probability.
    pub fn with_txn_probability(mut self, probability: f64) -> Self {
        self.txn_probability = probability;
        self
    }

    /// Enables commit-set recording for audits.
    pub fn with_commit_recording(mut self) -> Self {
        self.record_commits = true;
        self
    }

    /// Checks the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.templates == 0 {
            return Err("query plane needs at least one template".into());
        }
        if self.footprint == 0 {
            return Err("query footprints cannot be empty".into());
        }
        if self.max_queries_per_interval == 0 {
            return Err("max_queries_per_interval must be ≥ 1".into());
        }
        if !(0.0..=1.0).contains(&self.query_probability)
            || !(0.0..=1.0).contains(&self.txn_probability)
            || !(0.0..=1.0).contains(&self.predicate_fraction)
        {
            return Err("query plane probabilities must be in [0, 1]".into());
        }
        if self.txn_probability > 0.0 && self.txn_reads < 2 {
            return Err("transactions need ≥ 2 reads to witness consistency".into());
        }
        if !self.theta.is_finite() || self.theta < 0.0 {
            return Err("Zipf exponent must be finite and non-negative".into());
        }
        Ok(())
    }
}

impl Default for QueryPlaneConfig {
    fn default() -> Self {
        QueryPlaneConfig::new()
    }
}

/// A multi-item read transaction in flight: one template footprint
/// pinned per heard report; commits at the last read iff every pin is
/// still current under that report's clock.
#[derive(Debug, Clone)]
pub struct ReadTxn {
    /// Template ranks to read, one per heard report.
    pub ranks: Vec<usize>,
    /// Reads already pinned.
    pub reads_done: usize,
    /// Pinned rows from completed reads.
    pub pins: Vec<ResultRow>,
}

/// A committed multi-item read set (recorded when
/// [`QueryPlaneConfig::record_commits`] is on).
#[derive(Debug, Clone)]
pub struct CommittedRead {
    /// The report clock the commit was witnessed under.
    pub committed_at: SimTime,
    /// The pinned rows, coherent as of `committed_at`.
    pub pins: Vec<ResultRow>,
}

/// Counters the experiments and decision logs read out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Predicate queries drawn.
    pub queries_posed: u64,
    /// Query events answered from a verified entry.
    pub hits: u64,
    /// Query events that materialized (or re-materialized) an entry.
    pub misses: u64,
    /// Entries dropped by the footprint check.
    pub entries_invalidated: u64,
    /// Entries re-verified by the footprint check.
    pub entries_reverified: u64,
    /// Footprint items requested over the uplink.
    pub fetch_items: u64,
    /// Transactions begun.
    pub txns_begun: u64,
    /// Transactions committed (consistent snapshot witnessed).
    pub txn_commits: u64,
    /// Transactions aborted (non-serializable interleaving detected, or
    /// a pin could not be read).
    pub txn_aborts: u64,
}

impl QueryStats {
    /// Folds another counter set into this one (fleet-level totals).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.queries_posed += other.queries_posed;
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries_invalidated += other.entries_invalidated;
        self.entries_reverified += other.entries_reverified;
        self.fetch_items += other.fetch_items;
        self.txns_begun += other.txns_begun;
        self.txn_commits += other.txn_commits;
        self.txn_aborts += other.txn_aborts;
    }

    /// Measured query hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let events = self.hits + self.misses;
        if events == 0 {
            0.0
        } else {
            self.hits as f64 / events as f64
        }
    }
}

/// What the footprint check wants from the driver: footprint items to
/// fetch over the existing uplink before [`QueryPlane::settle`] runs.
#[derive(Debug, Clone, Default)]
pub struct QueryCheck {
    /// Items to fetch (sorted, deduplicated; already excludes items the
    /// item cache holds verified under the current report clock).
    pub fetch: Vec<ItemId>,
}

/// One client's query plane: workload, cache, transaction state, and
/// the seeded draw stream.
pub struct QueryPlane {
    config: QueryPlaneConfig,
    workload: QueryWorkload,
    predicates: Vec<QueryPredicate>,
    cache: QueryCache,
    rng: RngStream,
    /// Template ranks queried since the last heard report.
    pending: Vec<usize>,
    /// Ranks whose entries must be materialized at settle.
    to_materialize: Vec<usize>,
    /// Whether the in-flight txn pins its next read at settle.
    txn_read_armed: bool,
    txn: Option<ReadTxn>,
    stats: QueryStats,
    commits: Vec<CommittedRead>,
}

impl std::fmt::Debug for QueryPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryPlane")
            .field("templates", &self.workload.len())
            .field("entries", &self.cache.len())
            .field("txn_in_flight", &self.txn.is_some())
            .finish_non_exhaustive()
    }
}

impl QueryPlane {
    /// Builds the plane over a client's hotspot `domain`, drawing the
    /// template family and per-template predicates from `rng` (the
    /// client's `StreamId::QueryPlan` stream).
    ///
    /// # Panics
    /// Panics if the config is invalid or the domain is empty.
    pub fn new(domain: &[ItemId], config: QueryPlaneConfig, mut rng: RngStream) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid query plane config: {e}");
        }
        let spec = QueryWorkloadSpec::new(config.templates, config.footprint, config.theta);
        let workload = QueryWorkload::generate(domain, spec, &mut rng);
        let predicates: Vec<QueryPredicate> = (0..config.templates)
            .map(|_| {
                if rng.bernoulli(config.predicate_fraction) {
                    QueryPredicate::Below(u64::MAX / 2)
                } else {
                    QueryPredicate::Any
                }
            })
            .collect();
        QueryPlane {
            cache: QueryCache::sized(config.templates),
            config,
            workload,
            predicates,
            rng,
            pending: Vec::new(),
            to_materialize: Vec::new(),
            txn_read_armed: false,
            txn: None,
            stats: QueryStats::default(),
            commits: Vec::new(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// The query-result cache (audits and tests).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Committed read sets (only populated with
    /// [`QueryPlaneConfig::record_commits`]).
    pub fn committed_reads(&self) -> &[CommittedRead] {
        &self.commits
    }

    /// The footprint of template `rank` (tests).
    pub fn footprint(&self, rank: usize) -> &[ItemId] {
        self.workload.footprint(rank)
    }

    /// Whether a transaction is in flight (tests).
    pub fn txn_in_flight(&self) -> bool {
        self.txn.is_some()
    }

    /// Zeroes the counters and recorded commits without touching the
    /// cache, workload, or transaction state (warm-up resets).
    pub fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
        self.commits.clear();
    }

    /// Starts an awake interval: draws this interval's query events and
    /// possibly begins a transaction. All randomness comes from the
    /// plane's own stream, in a fixed order, so the draw sequence is
    /// identical in the simulator and the live client.
    pub fn begin_awake_interval(&mut self) {
        for _ in 0..self.config.max_queries_per_interval {
            if self.rng.bernoulli(self.config.query_probability) {
                let rank = self.workload.draw(&mut self.rng);
                self.pending.push(rank);
                self.stats.queries_posed += 1;
            }
        }
        if self.txn.is_none()
            && self.config.txn_probability > 0.0
            && self.rng.bernoulli(self.config.txn_probability)
        {
            let ranks: Vec<usize> = (0..self.config.txn_reads)
                .map(|_| self.workload.draw(&mut self.rng))
                .collect();
            self.txn = Some(ReadTxn {
                ranks,
                reads_done: 0,
                pins: Vec::new(),
            });
            self.stats.txns_begun += 1;
        }
    }

    /// Records that the interval-closing report was never received
    /// intact. Pending queries and the in-flight transaction simply
    /// wait for the next heard report; entries keep their last
    /// verification timestamp and the next footprint check inherits
    /// whatever the item strategy's gap recovery does to the cache.
    pub fn on_report_missed(&mut self) {
        // Deliberately stateless: the item cache is the single source
        // of truth, and the strategy handler already encodes the gap
        // rules.
    }

    /// The single-pass footprint check, run against the item cache
    /// *after* the strategy handler processed the report closing at
    /// `t_i`. RNG-free and confined to this client's state, so the cell
    /// driver may run it inside the parallel sweep.
    ///
    /// Every entry either re-verifies (all footprint items cached with
    /// the handler's post-report validity stamp and unchanged values)
    /// or drops. Pending query events resolve to hits (entry survived)
    /// or misses (entry absent — the returned fetch list names the
    /// footprint items the uplink must supply before [`Self::settle`]).
    pub fn observe_report(&mut self, items: &Cache, t_i: SimTime) -> QueryCheck {
        // 1. Footprint check over the whole query cache.
        for slot in self.cache.entries.iter_mut() {
            let Some(entry) = slot else { continue };
            let mut servable = true;
            for row in entry.rows.iter_mut() {
                match items.peek(row.item) {
                    Some(e) if e.value == row.value && e.timestamp >= t_i => {
                        row.timestamp = e.timestamp;
                    }
                    _ => {
                        servable = false;
                        break;
                    }
                }
            }
            if servable {
                entry.verified_at = t_i;
                self.stats.entries_reverified += 1;
            } else {
                *slot = None;
                self.stats.entries_invalidated += 1;
            }
        }

        // 2. Resolve pending query events and collect fetch needs.
        let mut fetch: Vec<ItemId> = Vec::new();
        self.to_materialize.clear();
        for &rank in &self.pending {
            if self.cache.entries[rank].is_some() {
                self.stats.hits += 1;
            } else {
                self.stats.misses += 1;
                if !self.to_materialize.contains(&rank) {
                    self.to_materialize.push(rank);
                }
                for &item in self.workload.footprint(rank) {
                    if items.peek(item).is_none_or(|e| e.timestamp < t_i) {
                        fetch.push(item);
                    }
                }
            }
        }
        self.pending.clear();

        // 3. Transaction progress: the next read's footprint must be
        // readable at settle.
        self.txn_read_armed = false;
        if let Some(txn) = &self.txn {
            if txn.reads_done < txn.ranks.len() {
                self.txn_read_armed = true;
                for &item in self.workload.footprint(txn.ranks[txn.reads_done]) {
                    if items.peek(item).is_none_or(|e| e.timestamp < t_i) {
                        fetch.push(item);
                    }
                }
            }
        }

        fetch.sort_unstable();
        fetch.dedup();
        self.stats.fetch_items += fetch.len() as u64;
        QueryCheck { fetch }
    }

    /// Settles the interval after the driver served the fetch list:
    /// materializes missed entries from the (now warm) item cache,
    /// pins the transaction's next read, and resolves commit/abort at
    /// the transaction's last read under the `t_i` clock. RNG-free.
    ///
    /// A footprint item the uplink failed to deliver (deferred under
    /// fault backoff) leaves that entry unmaterialized — the query
    /// stays a miss and a later event retries; a transaction read
    /// hitting the same condition aborts conservatively.
    pub fn settle(&mut self, items: &Cache, t_i: SimTime) {
        for &rank in &self.to_materialize {
            let footprint = self.workload.footprint(rank);
            let mut rows = Vec::with_capacity(footprint.len());
            let mut complete = true;
            for &item in footprint {
                match items.peek(item) {
                    Some(e) if e.timestamp >= t_i => rows.push(ResultRow {
                        item,
                        value: e.value,
                        timestamp: e.timestamp,
                    }),
                    _ => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                self.cache.entries[rank] = Some(QueryEntry {
                    rank,
                    predicate: self.predicates[rank],
                    rows,
                    verified_at: t_i,
                });
            }
        }
        self.to_materialize.clear();

        if self.txn_read_armed {
            self.txn_read_armed = false;
            let mut txn = self.txn.take().expect("armed read without a txn");
            let footprint = self.workload.footprint(txn.ranks[txn.reads_done]);
            let mut read_ok = true;
            for &item in footprint {
                match items.peek(item) {
                    Some(e) if e.timestamp >= t_i => txn.pins.push(ResultRow {
                        item,
                        value: e.value,
                        timestamp: e.timestamp,
                    }),
                    _ => {
                        read_ok = false;
                        break;
                    }
                }
            }
            if !read_ok {
                self.stats.txn_aborts += 1;
                return; // txn dropped
            }
            txn.reads_done += 1;
            if txn.reads_done < txn.ranks.len() {
                self.txn = Some(txn);
                return;
            }
            // Last read: commit iff every pin is still current under
            // this report's clock — the consistency witness. Pins from
            // this very read trivially pass (just copied from the
            // cache); earlier pins fail iff their item was invalidated
            // or changed value since they were read.
            let coherent = txn.pins.iter().all(|pin| {
                items
                    .peek(pin.item)
                    .is_some_and(|e| e.value == pin.value && e.timestamp >= t_i)
            });
            if coherent {
                self.stats.txn_commits += 1;
                if self.config.record_commits {
                    self.commits.push(CommittedRead {
                        committed_at: t_i,
                        pins: txn.pins,
                    });
                }
            } else {
                self.stats.txn_aborts += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{MasterSeed, StreamId};

    fn rng(i: u64) -> RngStream {
        MasterSeed::TEST.stream(StreamId::QueryPlan { index: i })
    }

    fn warm_cache(domain: &[ItemId], t: SimTime) -> Cache {
        let mut c = Cache::unbounded();
        for &item in domain {
            c.insert(item, item * 10 + 1, t);
        }
        c
    }

    fn config() -> QueryPlaneConfig {
        QueryPlaneConfig::new()
            .with_query_mix(1.0, 2)
            .with_txn_probability(0.0)
    }

    fn domain() -> Vec<ItemId> {
        (0..20).collect()
    }

    const T1: SimTime = SimTime::ZERO;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn miss_then_hit_through_materialization() {
        let d = domain();
        // One template: every draw repeats it, so interval 2 must hit.
        let cfg = QueryPlaneConfig {
            templates: 1,
            ..config()
        };
        let mut plane = QueryPlane::new(&d, cfg, rng(0));
        let cache = warm_cache(&d, t(10.0));
        plane.begin_awake_interval();
        let check = plane.observe_report(&cache, t(10.0));
        assert!(plane.stats().misses > 0);
        assert_eq!(plane.stats().hits, 0);
        // Footprint items are all cached-fresh: nothing to fetch.
        assert!(check.fetch.is_empty());
        plane.settle(&cache, t(10.0));
        assert!(!plane.cache().is_empty());

        // Same templates queried again next interval: hits now.
        let misses_before = plane.stats().misses;
        plane.begin_awake_interval();
        let mut cache2 = cache.clone();
        cache2.restamp_all(t(20.0));
        let check2 = plane.observe_report(&cache2, t(20.0));
        assert!(check2.fetch.is_empty());
        plane.settle(&cache2, t(20.0));
        assert!(plane.stats().hits > 0, "repeat queries should hit");
        assert_eq!(
            plane.stats().misses,
            misses_before,
            "no new misses on re-query"
        );
    }

    #[test]
    fn cold_item_cache_produces_fetch_list() {
        let d = domain();
        let mut plane = QueryPlane::new(&d, config(), rng(1));
        let cache = Cache::unbounded();
        plane.begin_awake_interval();
        let check = plane.observe_report(&cache, t(10.0));
        assert!(!check.fetch.is_empty());
        let mut sorted = check.fetch.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, check.fetch, "fetch list is sorted and distinct");
        // Nothing fetched: the entry must not materialize, and the
        // cache stays empty (no stale result can be served).
        plane.settle(&cache, t(10.0));
        assert!(plane.cache().is_empty());
    }

    #[test]
    fn footprint_update_invalidates_the_entry() {
        let d = domain();
        let mut plane = QueryPlane::new(&d, config(), rng(2));
        let mut cache = warm_cache(&d, t(10.0));
        plane.begin_awake_interval();
        plane.observe_report(&cache, t(10.0));
        plane.settle(&cache, t(10.0));
        let cached: Vec<usize> = plane.cache().iter().map(|e| e.rank).collect();
        assert!(!cached.is_empty());
        // The server updates one footprint item of the first cached
        // entry: the report handler removes it from the item cache.
        let victim = plane.cache().get(cached[0]).unwrap().rows[0].item;
        cache.remove(victim);
        cache.restamp_all(t(20.0));
        plane.observe_report(&cache, t(20.0));
        assert!(
            plane.cache().get(cached[0]).is_none(),
            "entry with an invalidated footprint item must drop"
        );
        assert!(plane.stats().entries_invalidated >= 1);
    }

    #[test]
    fn changed_value_invalidates_even_if_item_restamped() {
        // A refetched item can carry a new value with a fresh stamp; the
        // materialized result no longer matches and must drop.
        let d = domain();
        let mut plane = QueryPlane::new(&d, config(), rng(3));
        let mut cache = warm_cache(&d, t(10.0));
        plane.begin_awake_interval();
        plane.observe_report(&cache, t(10.0));
        plane.settle(&cache, t(10.0));
        let entry = plane.cache().iter().next().unwrap();
        let (rank, victim) = (entry.rank, entry.rows[0].item);
        cache.insert(victim, 0xDEAD_BEEF, t(20.0));
        cache.restamp_all(t(20.0));
        plane.observe_report(&cache, t(20.0));
        assert!(plane.cache().get(rank).is_none());
    }

    #[test]
    fn stale_stamp_blocks_serving_and_reverify_bumps_the_clock() {
        let d = domain();
        let mut plane = QueryPlane::new(&d, config(), rng(4));
        let cache = warm_cache(&d, t(10.0));
        plane.begin_awake_interval();
        plane.observe_report(&cache, t(10.0));
        plane.settle(&cache, t(10.0));
        let n = plane.cache().len();
        assert!(n > 0);
        // Next report at t=20 but the item cache was NOT restamped
        // (models a handler that dropped everything silently — stamps
        // stuck at 10): every entry must drop, none re-verify.
        plane.observe_report(&cache, t(20.0));
        assert_eq!(plane.cache().len(), 0);
        assert_eq!(plane.stats().entries_invalidated as usize, n);
    }

    #[test]
    fn reverified_entries_advance_verified_at() {
        let d = domain();
        let mut plane = QueryPlane::new(&d, config(), rng(5));
        let mut cache = warm_cache(&d, t(10.0));
        plane.begin_awake_interval();
        plane.observe_report(&cache, t(10.0));
        plane.settle(&cache, t(10.0));
        cache.restamp_all(t(20.0));
        plane.observe_report(&cache, t(20.0));
        for e in plane.cache().iter() {
            assert_eq!(e.verified_at, t(20.0));
            for row in &e.rows {
                assert_eq!(row.timestamp, t(20.0));
            }
        }
        assert!(plane.stats().entries_reverified > 0);
    }

    #[test]
    fn predicate_view_filters_rows() {
        let entry = QueryEntry {
            rank: 0,
            predicate: QueryPredicate::Below(100),
            rows: vec![
                ResultRow {
                    item: 1,
                    value: 50,
                    timestamp: T1,
                },
                ResultRow {
                    item: 2,
                    value: 150,
                    timestamp: T1,
                },
            ],
            verified_at: T1,
        };
        let view: Vec<ItemId> = entry.result().map(|r| r.item).collect();
        assert_eq!(view, vec![1]);
    }

    fn txn_config() -> QueryPlaneConfig {
        QueryPlaneConfig {
            query_probability: 0.0,
            txn_probability: 1.0,
            txn_reads: 2,
            record_commits: true,
            ..QueryPlaneConfig::new()
        }
    }

    #[test]
    fn quiet_footprints_commit_with_a_coherent_witness() {
        let d = domain();
        let mut plane = QueryPlane::new(&d, txn_config(), rng(6));
        let mut cache = warm_cache(&d, t(10.0));
        // Interval 1: txn begins, first read pins at the report.
        plane.begin_awake_interval();
        plane.observe_report(&cache, t(10.0));
        plane.settle(&cache, t(10.0));
        assert!(plane.txn_in_flight());
        assert_eq!(plane.stats().txns_begun, 1);
        // Interval 2: nothing changed; the second read commits.
        cache.restamp_all(t(20.0));
        plane.observe_report(&cache, t(20.0));
        plane.settle(&cache, t(20.0));
        assert!(!plane.txn_in_flight());
        assert_eq!(plane.stats().txn_commits, 1);
        assert_eq!(plane.stats().txn_aborts, 0);
        let commit = &plane.committed_reads()[0];
        assert_eq!(commit.committed_at, t(20.0));
        assert!(!commit.pins.is_empty());
    }

    #[test]
    fn interleaved_update_is_detected_and_aborted() {
        let d = domain();
        let mut plane = QueryPlane::new(&d, txn_config(), rng(6));
        let mut cache = warm_cache(&d, t(10.0));
        plane.begin_awake_interval();
        plane.observe_report(&cache, t(10.0));
        plane.settle(&cache, t(10.0));
        assert!(plane.txn_in_flight());
        // An update hits a pinned item between the two reads: the
        // report at t=20 invalidates it from the item cache.
        let pinned = plane.txn.as_ref().unwrap().pins[0].item;
        cache.remove(pinned);
        cache.restamp_all(t(20.0));
        let check = plane.observe_report(&cache, t(20.0));
        // The second read may need the invalidated item refetched; a
        // refetch delivers a NEW value, so simulate the uplink install.
        if check.fetch.contains(&pinned) {
            cache.insert(pinned, 0x0BAD_CAFE, t(20.5));
        }
        plane.settle(&cache, t(20.0));
        assert!(!plane.txn_in_flight());
        assert_eq!(
            plane.stats().txn_aborts,
            1,
            "the non-serializable interleaving must abort"
        );
        assert_eq!(plane.stats().txn_commits, 0);
    }

    #[test]
    fn draws_are_deterministic_per_stream() {
        let d = domain();
        let run = || {
            let mut plane = QueryPlane::new(&d, QueryPlaneConfig::new(), rng(9));
            let mut cache = warm_cache(&d, t(0.0));
            for i in 1..=50u64 {
                let t_i = t(i as f64 * 10.0);
                cache.restamp_all(t_i);
                plane.begin_awake_interval();
                plane.observe_report(&cache, t_i);
                plane.settle(&cache, t_i);
            }
            plane.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn missed_reports_defer_without_state_loss() {
        let d = domain();
        let mut plane = QueryPlane::new(&d, config(), rng(10));
        let mut cache = warm_cache(&d, t(10.0));
        plane.begin_awake_interval();
        plane.observe_report(&cache, t(10.0));
        plane.settle(&cache, t(10.0));
        let posed_before = plane.stats().queries_posed;
        // Interval 2: report lost. Queries stay pending.
        plane.begin_awake_interval();
        plane.on_report_missed();
        assert!(plane.stats().queries_posed > posed_before);
        let answered = plane.stats().hits + plane.stats().misses;
        // Interval 3: the next intact report answers the backlog. The
        // item handler dropped nothing (values unchanged), stamps
        // advance to the heard report.
        cache.restamp_all(t(30.0));
        plane.begin_awake_interval();
        plane.observe_report(&cache, t(30.0));
        plane.settle(&cache, t(30.0));
        assert!(
            plane.stats().hits + plane.stats().misses > answered,
            "deferred queries answered at the next heard report"
        );
    }

    #[test]
    fn validate_rejects_bad_configs() {
        assert!(QueryPlaneConfig {
            templates: 0,
            ..QueryPlaneConfig::new()
        }
        .validate()
        .is_err());
        assert!(QueryPlaneConfig {
            txn_reads: 1,
            txn_probability: 0.5,
            ..QueryPlaneConfig::new()
        }
        .validate()
        .is_err());
        assert!(QueryPlaneConfig {
            query_probability: 1.5,
            ..QueryPlaneConfig::new()
        }
        .validate()
        .is_err());
        assert!(QueryPlaneConfig::new().validate().is_ok());
    }
}
