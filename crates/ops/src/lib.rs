//! # sw-ops — the live operations plane
//!
//! The paper's server is stateless toward its clients (§2); this crate
//! is how an operator still *sees* it. Std-only and dependency-free
//! (it sits right above `sw-observe`), it provides:
//!
//! - [`hub::MetricsHub`]: the rendezvous between a running session and
//!   its observers — the publisher (the server ticker, a client loop)
//!   swaps in a fresh [`hub::Published`] snapshot per interval under a
//!   pointer-sized critical section; readers clone the `Arc` out and
//!   render at leisure, never stalling the hot path;
//! - [`http::MetricsExporter`]: a tiny blocking HTTP listener serving
//!   Prometheus text exposition at `/metrics`, liveness at `/healthz`,
//!   and the full published state as JSON at `/snapshot.json`;
//! - [`prom`]: the Prometheus text renderer (counters, gauges,
//!   power-of-two histograms with cumulative `le` buckets) and the
//!   hand-rolled JSON snapshot writer;
//! - [`flight::FlightRecorder`]: a bounded ring of the most recent
//!   per-interval decisions/events, dumped to NDJSON when something
//!   goes wrong (safety violation, fault storm, termination) — the
//!   black box that turns "zero stale reads" from a claim into a
//!   forensically checkable artifact;
//! - [`signal::arm_termination_flag`]: a SIGTERM hook (one `AtomicBool`
//!   set from an async-signal-safe handler) so daemons can drain,
//!   dump their flight ring, and exit cleanly under `kill`.
//!
//! Everything here works with or without the `observe` cargo feature:
//! without it the published snapshots are simply absent and `/metrics`
//! degrades to the gauge set, so the exporter can stay compiled into
//! production binaries whose hot paths must remain uninstrumented.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod http;
pub mod hub;
pub mod prom;
pub mod signal;

pub use flight::{FlightEntry, FlightRecorder};
pub use http::MetricsExporter;
pub use hub::{MetricsHub, Published};
pub use signal::arm_termination_flag;
