//! The flight recorder: a bounded ring of recent per-interval facts.
//!
//! A soak run that ends in a safety violation is only as useful as the
//! evidence it leaves behind. The recorder keeps the last `capacity`
//! entries — decision rows, observe events, whatever the owner pushes
//! — at O(1) per interval and renders them as NDJSON on demand, so a
//! dying run can dump *what led up to the failure* without having
//! logged anything during the healthy hours before it. The dump's
//! first line is a `flight_meta` record stating how many earlier
//! entries the ring had already forgotten.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use sw_observe::event::{push_json_str, push_json_value, Value};

/// One recorded entry: an interval stamp, a kind tag, and named fields.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Broadcast interval the entry belongs to.
    pub t: u64,
    /// Entry kind (`decision`, `report_missed`, `safety_violation`, …).
    pub kind: &'static str,
    /// Named payload fields, rendered in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

impl FlightEntry {
    fn render(&self, out: &mut String) {
        let _ = write!(out, "{{\"t\":{},\"kind\":", self.t);
        push_json_str(out, self.kind);
        for (name, value) in &self.fields {
            out.push(',');
            push_json_str(out, name);
            out.push(':');
            push_json_value(out, value);
        }
        out.push_str("}\n");
    }
}

/// A bounded ring buffer of [`FlightEntry`] values.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    entries: VecDeque<FlightEntry>,
    forgotten: u64,
}

impl FlightRecorder {
    /// A ring keeping the most recent `capacity` entries (0 records
    /// nothing, which is how a disabled recorder is spelled).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(4096)),
            forgotten: 0,
        }
    }

    /// True when this recorder keeps nothing (capacity 0).
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Appends one entry, evicting the oldest when full.
    pub fn push(&mut self, t: u64, kind: &'static str, fields: &[(&'static str, Value)]) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.forgotten += 1;
        }
        self.entries.push_back(FlightEntry {
            t,
            kind,
            fields: fields.to_vec(),
        });
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the held entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        self.entries.iter()
    }

    /// Renders the ring as NDJSON: one `flight_meta` line (`reason`,
    /// held/forgotten counts) followed by every held entry, oldest
    /// first.
    pub fn to_ndjson(&self, reason: &str) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"kind\":\"flight_meta\",\"reason\":");
        push_json_str(&mut out, reason);
        let _ = writeln!(
            out,
            ",\"entries\":{},\"forgotten\":{}}}",
            self.entries.len(),
            self.forgotten
        );
        for e in &self.entries {
            e.render(&mut out);
        }
        out
    }

    /// Dumps the ring to `path` as NDJSON; returns the byte count
    /// written.
    pub fn dump(&self, path: impl AsRef<Path>, reason: &str) -> io::Result<u64> {
        let body = self.to_ndjson(reason);
        std::fs::write(path, &body)?;
        Ok(body.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_most_recent() {
        let mut fr = FlightRecorder::new(3);
        for t in 1..=5u64 {
            fr.push(t, "decision", &[("queries", Value::U64(t))]);
        }
        assert_eq!(fr.len(), 3);
        let ts: Vec<u64> = fr.entries().map(|e| e.t).collect();
        assert_eq!(ts, vec![3, 4, 5]);
        let dump = fr.to_ndjson("test");
        let mut lines = dump.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"kind\":\"flight_meta\",\"reason\":\"test\",\"entries\":3,\"forgotten\":2}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"t\":3,\"kind\":\"decision\",\"queries\":3}"
        );
        assert_eq!(dump.lines().count(), 4);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let mut fr = FlightRecorder::new(0);
        fr.push(1, "decision", &[]);
        assert!(fr.is_disabled());
        assert!(fr.is_empty());
        assert_eq!(fr.to_ndjson("r").lines().count(), 1, "meta line only");
    }

    #[test]
    fn dump_writes_ndjson_to_disk() {
        let mut fr = FlightRecorder::new(2);
        fr.push(7, "safety_violation", &[("item", Value::U64(42))]);
        let dir = std::env::temp_dir().join(format!("sw-ops-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.ndjson");
        let n = fr.dump(&path, "unit test").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(n as usize, body.len());
        assert!(body.contains("\"item\":42"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
