//! The metrics listener: a deliberately tiny blocking HTTP/1.0 server.
//!
//! One accept thread serving one request per connection is exactly the
//! right size for a scrape endpoint — Prometheus polls at seconds
//! cadence, `sw-top` at hundreds of milliseconds, and every response
//! is rendered from an immutable [`Published`] view cloned out of the
//! hub in O(1), so a slow or malicious scraper can never hold the
//! publisher. Shutdown uses the same pattern as the live server:
//! an `AtomicBool` plus one self-connect to unblock `accept`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::hub::MetricsHub;
use crate::prom;

/// A running metrics endpoint bound to a local TCP port.
///
/// Serves, until dropped or [`MetricsExporter::shutdown`]:
///
/// - `GET /metrics` — Prometheus text exposition format 0.0.4;
/// - `GET /healthz` — `200 ok` while the exporter lives;
/// - `GET /snapshot.json` — the whole published view as JSON.
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Binds `bind` (port 0 for ephemeral; read it back via
    /// [`MetricsExporter::addr`]) and starts serving views read from
    /// `hub`.
    pub fn bind(bind: SocketAddr, hub: Arc<MetricsHub>) -> io::Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve_loop(listener, hub, stop))
        };
        Ok(MetricsExporter {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address scrapers should GET.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept(); the loop re-checks the flag first thing.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: TcpListener, hub: Arc<MetricsHub>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Serve inline: requests are one GET line and responses are one
        // rendered page; there is nothing to win by spawning.
        let _ = serve_one(stream, &hub);
    }
}

/// Reads one request head, routes it, writes one response, closes.
fn serve_one(stream: TcpStream, hub: &MetricsHub) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let mut out = stream;
    if method != "GET" {
        return respond(&mut out, "405 Method Not Allowed", "text/plain", "GET only\n");
    }
    match path {
        "/metrics" => {
            let body = prom::render_metrics(&hub.read());
            respond(
                &mut out,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => respond(&mut out, "200 OK", "text/plain", "ok\n"),
        "/snapshot.json" => {
            let body = prom::render_json(&hub.read());
            respond(&mut out, "200 OK", "application/json", &body)
        }
        _ => respond(&mut out, "404 Not Found", "text/plain", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot GET against a metrics endpoint; returns the
/// response body. Shared by `sw-top` and the test/smoke harnesses —
/// the client half of the exporter's tiny protocol.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<String> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: sw-ops\r\n\r\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    if !status.starts_with("HTTP/1.0 200") && !status.starts_with("HTTP/1.1 200") {
        return Err(io::Error::other(format!(
            "GET {path}: {}",
            status.trim_end()
        )));
    }
    let mut line = String::new();
    while reader.read_line(&mut line)? > 2 {
        line.clear();
    }
    let mut body = String::new();
    io::Read::read_to_string(&mut reader, &mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Published;

    fn bind_local(hub: Arc<MetricsHub>) -> MetricsExporter {
        MetricsExporter::bind(SocketAddr::from(([127, 0, 0, 1], 0)), hub)
            .expect("ephemeral bind succeeds")
    }

    #[test]
    fn serves_metrics_health_and_json() {
        let hub = MetricsHub::new();
        hub.publish(Published::at(3).label("role", "server").gauge("mu_registered", 8.0));
        let mut exporter = bind_local(Arc::clone(&hub));
        let addr = exporter.addr();
        let t = Duration::from_secs(2);
        assert_eq!(get(addr, "/healthz", t).unwrap(), "ok\n");
        let page = get(addr, "/metrics", t).unwrap();
        assert!(page.contains("sw_interval{role=\"server\"} 3"), "{page}");
        assert!(page.contains("sw_mu_registered{role=\"server\"} 8"));
        let json = get(addr, "/snapshot.json", t).unwrap();
        assert!(json.contains("\"interval\":3"));
        // A publish between scrapes is visible on the next scrape.
        hub.publish(Published::at(4));
        assert!(get(addr, "/metrics", t).unwrap().contains("sw_interval 4"));
        exporter.shutdown();
    }

    #[test]
    fn unknown_paths_404_and_shutdown_is_idempotent() {
        let hub = MetricsHub::new();
        let mut exporter = bind_local(hub);
        let addr = exporter.addr();
        let err = get(addr, "/nope", Duration::from_secs(2)).unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
        exporter.shutdown();
        exporter.shutdown();
        assert!(get(addr, "/healthz", Duration::from_millis(300)).is_err());
    }
}
