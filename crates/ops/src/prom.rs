//! Renderers for a [`Published`] view: Prometheus text exposition
//! (`/metrics`) and the hand-rolled JSON snapshot (`/snapshot.json`).
//!
//! The Prometheus mapping is deliberately plain:
//!
//! - publisher gauges → `sw_<name>` gauges;
//! - recorder counters → `sw_<name>_total` counters;
//! - recorder value histograms → `sw_<name>` Prometheus histograms
//!   whose cumulative `le` buckets are the recorder's power-of-two
//!   bucket upper bounds (only occupied buckets are emitted, plus the
//!   mandatory `+Inf`);
//! - recorder span timings → the same shape under `sw_<name>_ns`
//!   (wall-clock nanoseconds; these are the only non-deterministic
//!   series on the page);
//! - every sample carries the view's identity labels verbatim.
//!
//! Metric names are sanitized to `[a-zA-Z0-9_]`; everything is written
//! with `fmt::Write` into one `String` — no allocator churn beyond the
//! page itself, no dependencies.

use std::fmt::Write as _;

use sw_observe::event::{push_json_str, push_json_value, Value};
use sw_observe::hist::bucket_upper;
use sw_observe::Histogram;

use crate::hub::Published;

/// Prometheus metric-name sanitation: every char outside
/// `[a-zA-Z0-9_]` becomes `_`.
fn metric_name(out: &mut String, prefix: &str, name: &str, suffix: &str) {
    out.push_str(prefix);
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out.push_str(suffix);
}

/// Renders the `{k="v",…}` label suffix (empty string for no labels).
fn label_suffix(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Prometheus-safe float: finite values via Rust's shortest roundtrip,
/// non-finite clamped to 0 (a poisoned gauge must not poison the page).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

fn hist_block(out: &mut String, name: &str, suffix: &str, labels: &str, h: &Histogram) {
    let mut full = String::new();
    metric_name(&mut full, "sw_", name, suffix);
    let _ = writeln!(out, "# TYPE {full} histogram");
    let base = if labels.is_empty() {
        String::new()
    } else {
        // Splice histogram labels inside the existing label set:
        // `{a="b"}` → `a="b",`.
        format!("{},", &labels[1..labels.len() - 1])
    };
    let mut seen = 0u64;
    for (bucket, &count) in h.counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        seen += count;
        let _ = writeln!(out, "{full}_bucket{{{base}le=\"{}\"}} {seen}", bucket_upper(bucket));
    }
    let _ = writeln!(out, "{full}_bucket{{{base}le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{full}_sum{labels} {}", h.sum);
    let _ = writeln!(out, "{full}_count{labels} {}", h.count);
}

/// Renders the full Prometheus text page for one published view.
pub fn render_metrics(view: &Published) -> String {
    let labels = label_suffix(&view.labels);
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE sw_interval gauge");
    let _ = writeln!(out, "sw_interval{labels} {}", view.interval);
    for (name, v) in &view.gauges {
        let mut full = String::new();
        metric_name(&mut full, "sw_", name, "");
        let _ = writeln!(out, "# TYPE {full} gauge");
        out.push_str(&full);
        out.push_str(&labels);
        out.push(' ');
        push_f64(&mut out, *v);
        out.push('\n');
    }
    if let Some(snap) = &view.snapshot {
        for (name, v) in &snap.counters {
            let mut full = String::new();
            metric_name(&mut full, "sw_", name, "_total");
            let _ = writeln!(out, "# TYPE {full} counter");
            let _ = writeln!(out, "{full}{labels} {v}");
        }
        for (name, h) in &snap.hists {
            hist_block(&mut out, name, "", &labels, h);
        }
        for (name, h) in &snap.timings {
            hist_block(&mut out, name, "_ns", &labels, h);
        }
    }
    out
}

/// Renders one published view as a single JSON object (the
/// `/snapshot.json` body): interval, labels, gauges, and — when a
/// recorder snapshot is attached — its counters, histogram summaries,
/// and trace/series sizes.
pub fn render_json(view: &Published) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"interval\":{}", view.interval);
    out.push_str(",\"labels\":{");
    for (i, (k, v)) in view.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, k);
        out.push(':');
        push_json_str(&mut out, v);
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in view.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, k);
        out.push(':');
        push_json_value(&mut out, &Value::F64(*v));
    }
    out.push('}');
    match &view.snapshot {
        None => out.push_str(",\"observe\":null"),
        Some(snap) => {
            out.push_str(",\"observe\":{\"cells\":[");
            for (i, cell) in snap.cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, cell);
            }
            out.push_str("],\"counters\":{");
            for (i, (k, v)) in snap.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                let _ = write!(out, ":{v}");
            }
            out.push_str("},\"hists\":{");
            for (i, (k, h)) in snap.hists.iter().chain(snap.timings.iter()).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                let _ = write!(
                    out,
                    ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                    h.count,
                    h.sum,
                    if h.is_empty() { 0 } else { h.min },
                    h.max
                );
            }
            let _ = write!(
                out,
                "}},\"series_rows\":{},\"events\":{}}}",
                snap.series.rows.len(),
                snap.events.len()
            );
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_observe::ObserveSnapshot;

    fn view() -> Published {
        let mut snap = ObserveSnapshot::empty();
        snap.cells.push("cell".into());
        snap.counters.push(("reports_built", 12));
        let mut h = Histogram::default();
        h.record(0);
        h.record(3);
        h.record(900);
        snap.hists.push(("report_bits", h));
        Published::at(9)
            .label("strategy", "TS")
            .gauge("uplink_queue_depth", 2.0)
            .snapshot(Some(snap))
    }

    #[test]
    fn metrics_page_has_all_families() {
        let page = render_metrics(&view());
        assert!(page.contains("sw_interval{strategy=\"TS\"} 9"));
        assert!(page.contains("# TYPE sw_uplink_queue_depth gauge"));
        assert!(page.contains("sw_uplink_queue_depth{strategy=\"TS\"} 2"));
        assert!(page.contains("# TYPE sw_reports_built_total counter"));
        assert!(page.contains("sw_reports_built_total{strategy=\"TS\"} 12"));
        // Cumulative power-of-two buckets: 0 → 1 sample, ≤3 → 2, ≤1023 → 3.
        assert!(page.contains("sw_report_bits_bucket{strategy=\"TS\",le=\"0\"} 1"));
        assert!(page.contains("sw_report_bits_bucket{strategy=\"TS\",le=\"3\"} 2"));
        assert!(page.contains("sw_report_bits_bucket{strategy=\"TS\",le=\"1023\"} 3"));
        assert!(page.contains("sw_report_bits_bucket{strategy=\"TS\",le=\"+Inf\"} 3"));
        assert!(page.contains("sw_report_bits_sum{strategy=\"TS\"} 903"));
        assert!(page.contains("sw_report_bits_count{strategy=\"TS\"} 3"));
    }

    #[test]
    fn unlabeled_and_snapshotless_views_render() {
        let page = render_metrics(&Published::at(1).gauge("x", f64::NAN));
        assert!(page.contains("sw_interval 1"));
        assert!(page.contains("sw_x 0"), "non-finite gauges clamp: {page}");
        assert!(!page.contains("_total"));
    }

    #[test]
    fn json_snapshot_is_wellformed() {
        let body = render_json(&view());
        assert!(body.starts_with("{\"interval\":9"));
        assert!(body.contains("\"strategy\":\"TS\""));
        assert!(body.contains("\"uplink_queue_depth\":2"));
        assert!(body.contains("\"reports_built\":12"));
        assert!(body.contains("\"report_bits\":{\"count\":3,\"sum\":903,\"min\":0,\"max\":900}"));
        assert!(body.ends_with("}"));
        let no_obs = render_json(&Published::at(2));
        assert!(no_obs.contains("\"observe\":null"));
    }
}
