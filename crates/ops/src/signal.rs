//! Graceful-termination hook: one atomic flag set from SIGTERM.
//!
//! A daemon that dies mid-`kill` loses its flight ring; one that
//! watches this flag can halt the session, dump forensics, and exit
//! with a clean report. The handler body is a single relaxed store —
//! the only thing an async-signal-safe handler may do — and the flag
//! is process-global, so arming is idempotent and every watcher sees
//! the same bit.
//!
//! The workspace vendors no `libc` crate, so on Unix the hook declares
//! the one symbol it needs (`signal`) against the C library `std`
//! already links. On other platforms arming is a no-op and the flag
//! simply never sets (the daemon still exits by session end).

use std::sync::atomic::AtomicBool;

/// The process-global termination flag; set once SIGTERM is received
/// after [`arm_termination_flag`] has run.
static TERMINATED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGTERM: i32 = 15;

    extern "C" {
        // ISO C `signal`, from the libc `std` already links. The
        // handler address crosses as `usize` — the only portable-enough
        // representation without a libc crate.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        // Async-signal-safe: one relaxed store, nothing else.
        super::TERMINATED.store(true, Ordering::Relaxed);
    }

    pub fn arm() {
        // SAFETY: installing an `extern "C"` handler whose body is a
        // single atomic store is async-signal-safe; `signal` itself is
        // only ever handed a valid function pointer.
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn arm() {}
}

/// Installs the SIGTERM handler (idempotent) and returns the flag to
/// poll. On non-Unix targets the flag is returned un-armed and never
/// sets.
pub fn arm_termination_flag() -> &'static AtomicBool {
    imp::arm();
    &TERMINATED
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[allow(unsafe_code)]
    mod raise {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }

        pub fn sigterm() {
            // SAFETY: raising a signal whose handler was just installed.
            unsafe {
                raise(15);
            }
        }
    }

    #[test]
    fn sigterm_sets_the_flag() {
        let flag = arm_termination_flag();
        // Arming twice is fine.
        let again = arm_termination_flag();
        assert!(std::ptr::eq(flag, again));
        assert!(!flag.load(Ordering::Relaxed));
        raise::sigterm();
        assert!(flag.load(Ordering::Relaxed), "handler stored the flag");
    }
}
