//! The metrics rendezvous: periodic snapshot swaps from a live run.
//!
//! A running session owns its [`sw_observe::Recorder`] exclusively —
//! that is what keeps recording free of synchronization. The hub is
//! the bridge to concurrent observers: once per interval the publisher
//! assembles a [`Published`] value (gauges it computed, labels, and —
//! when observing — a clone of everything the recorder has seen so
//! far) and swaps it in behind an `Arc`. The mutex guards only the
//! pointer swap and the pointer clone, so readers polling `/metrics`
//! can never hold the publisher for longer than an `Arc::clone`.

use std::sync::{Arc, Mutex};

use sw_observe::ObserveSnapshot;

/// One published view of a live session, immutable once swapped in.
#[derive(Debug, Clone, Default)]
pub struct Published {
    /// The broadcast interval this view was published at (0: none yet).
    pub interval: u64,
    /// Constant identity labels rendered onto every metric
    /// (`strategy`, `role`, …).
    pub labels: Vec<(&'static str, String)>,
    /// Instantaneous gauges computed by the publisher (queue depths,
    /// latencies in seconds, population counts).
    pub gauges: Vec<(&'static str, f64)>,
    /// Everything the live recorder has accumulated so far; `None`
    /// when the `observe` feature is off or the recorder is disabled.
    pub snapshot: Option<ObserveSnapshot>,
}

impl Published {
    /// A view stamped at `interval` with no labels, gauges, or
    /// snapshot yet.
    pub fn at(interval: u64) -> Self {
        Published {
            interval,
            ..Published::default()
        }
    }

    /// Adds a constant identity label.
    pub fn label(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.labels.push((name, value.into()));
        self
    }

    /// Sets a gauge (last write wins on duplicate names).
    pub fn gauge(mut self, name: &'static str, value: f64) -> Self {
        match self.gauges.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name, value)),
        }
        self
    }

    /// Attaches the recorder snapshot (pass [`sw_observe::Recorder::snapshot`]
    /// output directly; `None` is the disabled recorder and is fine).
    pub fn snapshot(mut self, snap: Option<ObserveSnapshot>) -> Self {
        self.snapshot = snap;
        self
    }

    /// Reads a gauge back, `None` if never set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| *k == name).map(|&(_, v)| v)
    }
}

/// The shared slot a publisher swaps [`Published`] views into and
/// readers clone them out of.
#[derive(Debug)]
pub struct MetricsHub {
    slot: Mutex<Arc<Published>>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        MetricsHub {
            slot: Mutex::new(Arc::new(Published::default())),
        }
    }
}

impl MetricsHub {
    /// A hub holding an empty view (interval 0, nothing published).
    pub fn new() -> Arc<Self> {
        Arc::new(MetricsHub::default())
    }

    /// Swaps in a freshly built view. O(1) under the lock: the old
    /// `Arc` drops outside any reader's critical section.
    pub fn publish(&self, view: Published) {
        *self.slot.lock().expect("metrics hub lock") = Arc::new(view);
    }

    /// Clones the current view's handle out. O(1) under the lock; the
    /// returned view is immutable and can be rendered without any
    /// further coordination.
    pub fn read(&self) -> Arc<Published> {
        Arc::clone(&self.slot.lock().expect("metrics hub lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_read_round_trips() {
        let hub = MetricsHub::new();
        assert_eq!(hub.read().interval, 0);
        hub.publish(
            Published::at(7)
                .label("strategy", "TS")
                .gauge("queue_depth", 3.0)
                .gauge("queue_depth", 4.0),
        );
        let view = hub.read();
        assert_eq!(view.interval, 7);
        assert_eq!(view.labels, vec![("strategy", "TS".to_string())]);
        assert_eq!(view.gauge_value("queue_depth"), Some(4.0));
        assert_eq!(view.gauge_value("absent"), None);
        assert!(view.snapshot.is_none());
    }

    #[test]
    fn readers_keep_old_views_alive_across_swaps() {
        let hub = MetricsHub::new();
        hub.publish(Published::at(1));
        let old = hub.read();
        hub.publish(Published::at(2));
        assert_eq!(old.interval, 1, "a held view is immutable");
        assert_eq!(hub.read().interval, 2);
    }
}
