//! `sw-top` — a terminal dashboard for a live `sw-serve` session.
//!
//! Polls the daemon's metrics endpoint (see `sw-serve
//! --metrics-port`) and renders a refreshing per-strategy view of the
//! session: identity labels, instantaneous gauges, and — when the
//! server was built with `--features observe` — the recorder's
//! counters.
//!
//! Usage:
//!
//! ```text
//! sw-top --metrics ADDR[,ADDR...] [--interval-ms N] [--retries N] [--once]
//! ```
//!
//! `--once` prints a single snapshot and exits (the CI smoke mode);
//! otherwise the screen refreshes every `--interval-ms` (default 500).
//! A failed poll is not the end: the dashboard shows a
//! `DISCONNECTED (n attempts)` banner and retries, rotating through
//! the `--metrics` list — so when a replicated fleet's primary dies,
//! sw-top reattaches to the successor's exporter and the header's
//! epoch/role line shows the takeover. Only after `--retries`
//! consecutive failures (default 10) does it conclude the session is
//! over and exit.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

use sw_experiments::live_cli::{take_flag, take_switch};

/// One parsed sample: metric name, rendered label set, value text.
struct Sample {
    name: String,
    labels: String,
    value: String,
}

/// Parses a Prometheus text page into (gauges, counters), keyed off
/// the `# TYPE` comments the exporter emits. Histogram families are
/// summarized by their `_count` sample.
fn parse_page(page: &str) -> (Vec<Sample>, Vec<Sample>) {
    let mut kind = "";
    let mut gauges = Vec::new();
    let mut counters = Vec::new();
    for line in page.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            kind = rest.split_whitespace().nth(1).unwrap_or("");
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let (name, labels) = match key.split_once('{') {
            Some((n, l)) => (n, format!("{{{l}")),
            None => (key, String::new()),
        };
        let sample = |n: &str| Sample {
            name: n.to_string(),
            labels: labels.clone(),
            value: value.to_string(),
        };
        match kind {
            "gauge" => gauges.push(sample(name)),
            "counter" => counters.push(sample(name)),
            "histogram" => {
                if let Some(base) = name.strip_suffix("_count") {
                    counters.push(sample(&format!("{base}_count")));
                }
            }
            _ => {}
        }
    }
    (gauges, counters)
}

/// Pulls a label's value out of a rendered `{k="v",…}` set.
fn label_value<'a>(labels: &'a str, key: &str) -> Option<&'a str> {
    let start = labels.find(&format!("{key}=\""))? + key.len() + 2;
    let end = labels[start..].find('"')?;
    Some(&labels[start..start + end])
}

fn render(addr: SocketAddr, page: &str) -> String {
    let (gauges, counters) = parse_page(page);
    let mut out = String::new();
    let identity = gauges
        .iter()
        .chain(&counters)
        .map(|s| s.labels.as_str())
        .find(|l| !l.is_empty())
        .unwrap_or("");
    let strategy = label_value(identity, "strategy").unwrap_or("?");
    let role = label_value(identity, "role").unwrap_or("?");
    let interval = gauges
        .iter()
        .find(|s| s.name == "sw_interval")
        .map(|s| s.value.as_str())
        .unwrap_or("?");
    // Cluster view, present only when the server runs replicated
    // (`sw-serve --ha-node`): the primary epoch and whether this
    // node is the one broadcasting.
    let gauge_value = |name: &str| gauges.iter().find(|s| s.name == name).map(|s| &s.value);
    let ha = gauge_value("sw_ha_epoch").map(|epoch| {
        let primary = gauge_value("sw_ha_role")
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0)
            >= 1.0;
        let ha_role = if primary { "PRIMARY" } else { "replica" };
        format!(" — epoch {epoch} {ha_role}")
    });
    let _ = writeln!(
        out,
        "sw-top — {addr} — {role}/{strategy} — interval {interval}{}",
        ha.unwrap_or_default()
    );
    let _ = writeln!(out, "{:—<64}", "");
    let width = gauges
        .iter()
        .chain(&counters)
        .map(|s| s.name.len())
        .max()
        .unwrap_or(0);
    for s in gauges.iter().filter(|s| s.name != "sw_interval") {
        let _ = writeln!(out, "  {:width$}  {}", s.name, s.value);
    }
    if !counters.is_empty() {
        let _ = writeln!(out, "  {:—<62}", "");
        for s in &counters {
            let _ = writeln!(out, "  {:width$}  {}", s.name, s.value);
        }
    }
    out
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let addrs: Vec<SocketAddr> = take_flag(&mut args, "--metrics")
        .unwrap_or_else(|| die("--metrics ADDR[,ADDR...] is required"))
        .split(',')
        .map(|a| a.parse().unwrap_or_else(|e| die(&format!("--metrics {a}: {e}"))))
        .collect();
    let interval_ms: u64 = take_flag(&mut args, "--interval-ms")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--interval-ms: {e}"))))
        .unwrap_or(500);
    let retries: u32 = take_flag(&mut args, "--retries")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--retries: {e}"))))
        .unwrap_or(10);
    let once = take_switch(&mut args, "--once");
    if !args.is_empty() {
        die(&format!("unrecognized arguments: {args:?}"));
    }

    let timeout = Duration::from_secs(2);
    let mut seen_any = false;
    let mut attempts = 0u32;
    let mut at = 0usize;
    loop {
        let addr = addrs[at % addrs.len()];
        match sw_ops::http::get(addr, "/metrics", timeout) {
            Ok(page) => {
                seen_any = true;
                attempts = 0;
                if once {
                    print!("{}", render(addr, &page));
                    return;
                }
                // Clear + home, then the fresh frame.
                print!("\x1b[2J\x1b[H{}", render(addr, &page));
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
            Err(e) if once => die(&format!("GET {addr}/metrics: {e}")),
            Err(e) => {
                // Not the end of the world: the primary may have just
                // crashed. Rotate to the next exporter (the announced
                // successor carries the session forward) and keep
                // polling until the retry budget is gone.
                attempts += 1;
                if attempts > retries {
                    if seen_any {
                        println!("sw-top: endpoint gone after {attempts} attempts; session over");
                        return;
                    }
                    die(&format!("GET {addr}/metrics: {e}"));
                }
                at += 1;
                println!(
                    "sw-top: DISCONNECTED ({attempts} attempts) — retrying {}",
                    addrs[at % addrs.len()]
                );
            }
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("sw-top: {msg}");
    exit(2);
}
