//! Regenerates Figure 8 of the paper (see DESIGN.md experiment index).

fn main() {
    sw_experiments::figures::run_figure_main(8);
}
