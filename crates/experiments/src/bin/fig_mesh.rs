//! E21 (extension): caching strategies under inter-cell mobility.
//!
//! The paper's gap rules are derived for units that sleep through
//! reports; a handoff produces the same gap (the one-interval transit
//! blackout makes it 2L) plus a change of report stream. This sweep
//! runs the real mesh — a 4-cell ring with shared-backbone replicas —
//! and measures hit ratio, uplink traffic, and handoff cache drops as
//! a function of the per-barrier migration rate, with the safety
//! checker armed: a never-stale strategy (TS, AT, SF) that validates a
//! stale entry after a handoff aborts the whole sweep.
//!
//! Expected shape: TS degrades gracefully (the 2L gap sits well inside
//! w = 10L, so only divergent-history drops and colder caches bite),
//! AT collapses toward its no-sleep baseline minus a whole-cache drop
//! per move, SIG re-diagnoses by signature and keeps most of the
//! cache, and the stateful baseline pays a re-registration per move.

use sleepers::prelude::*;
use sw_mesh::{CellGraph, MeshConfig, MeshSimulation, MobilityModel};
use sw_sim::{mesh_seed, MasterSeed};

#[derive(serde::Serialize)]
struct Row {
    strategy: String,
    migration_rate: f64,
    hit_ratio: f64,
    uplink_query_bits: u64,
    handoff_drops: u64,
    migrations: u64,
    cross_cell_registrations: u64,
    safety_violations: u64,
}

fn run_mesh(strategy: Strategy, tag: u64, rate: f64, intervals: u64) -> Row {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 1_000;
    params.mu = 1e-3;
    params.k = 10;
    let params = params.with_s(0.3);
    let base = CellConfig::new(params)
        .with_clients(8)
        .with_hotspot_size(25)
        .with_safety_checking();
    let seed = MasterSeed(mesh_seed(0xF1_6AE5, &[rate.to_bits(), tag]));
    let config = MeshConfig::new(CellGraph::ring(4), base, seed)
        .with_mobility(MobilityModel::Markov { rate });
    let mut mesh = MeshSimulation::new(config, strategy).expect("valid config");
    let report = mesh
        .run_measured(intervals / 4, intervals)
        .unwrap_or_else(|e| {
            panic!(
                "{} at migration rate {rate} broke its safety contract: {e}",
                strategy.name()
            )
        });
    let m = report.migration();
    Row {
        strategy: strategy.name().to_string(),
        migration_rate: rate,
        hit_ratio: report.hit_ratio(),
        uplink_query_bits: report.uplink_bits(),
        handoff_drops: m.handoff_drops,
        migrations: report.migrations,
        cross_cell_registrations: m.cross_cell_registrations,
        safety_violations: report.safety_violations(),
    }
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 200 } else { 600 };
    let rates: &[f64] = if fast {
        &[0.0, 0.05, 0.2]
    } else {
        &[0.0, 0.02, 0.05, 0.1, 0.2]
    };
    let strategies = [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
        Strategy::Stateful,
    ];

    let mut rows = Vec::new();
    for (si, &strategy) in strategies.iter().enumerate() {
        for &rate in rates {
            // Meshes shard internally via SW_THREADS; the sweep itself
            // stays sequential to avoid nesting thread pools.
            rows.push(run_mesh(strategy, si as u64, rate, intervals));
        }
    }

    println!("E21 — hit ratio, uplink traffic, and handoff drops vs migration rate");
    println!(
        "{:>6} {:>7} {:>9} {:>14} {:>8} {:>8} {:>8} {:>6}",
        "strat", "rate", "h", "uplink bits", "drops", "moves", "re-reg", "viol"
    );
    for row in &rows {
        println!(
            "{:>6} {:>7.2} {:>9.4} {:>14} {:>8} {:>8} {:>8} {:>6}",
            row.strategy,
            row.migration_rate,
            row.hit_ratio,
            row.uplink_query_bits,
            row.handoff_drops,
            row.migrations,
            row.cross_cell_registrations,
            row.safety_violations,
        );
    }

    // The acceptance contract, asserted rather than eyeballed.
    let point = |name: &str, rate: f64| {
        rows.iter()
            .find(|r| r.strategy == name && r.migration_rate == rate)
            .expect("swept point")
    };
    let top_rate = *rates.last().expect("non-empty sweep");
    // TS degrades gracefully: the 2L handoff gap sits inside w = 10L,
    // so it never drops a cache to a move and stays far above AT.
    assert_eq!(
        point("TS", top_rate).handoff_drops,
        0,
        "TS must keep caches across the 2L handoff gap (w = 10L)"
    );
    assert!(
        point("TS", top_rate).hit_ratio > point("AT", top_rate).hit_ratio,
        "TS must out-hit AT under heavy mobility"
    );
    // AT collapses: every move costs it the whole cache.
    assert!(
        point("AT", top_rate).handoff_drops > 0
            && point("AT", top_rate).hit_ratio < point("AT", 0.0).hit_ratio,
        "AT's gap rule must fire on handoffs and drag its hit ratio down"
    );
    // SIG re-diagnoses: the combined signatures identify the surviving
    // entries, so mobility costs it blackout misses but never a drop.
    assert_eq!(
        point("SIG", top_rate).handoff_drops,
        0,
        "SIG must re-diagnose by signature instead of dropping on handoff"
    );
    for row in &rows {
        if row.strategy != "SIG" {
            assert_eq!(
                row.safety_violations, 0,
                "{} at rate {} validated a stale entry",
                row.strategy, row.migration_rate
            );
        }
    }
    println!();
    println!("ordering ok: TS keeps every cache and out-hits AT; AT drops one cache");
    println!("per move and collapses; SIG re-diagnoses with zero handoff drops; zero");
    println!("safety violations for the never-stale strategies.");

    match sw_experiments::write_json("fig_mesh", &rows) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
