//! E16 (extension): caching strategies under report loss.
//!
//! The paper's recovery rules — AT drops its whole cache after any
//! missed report, TS restamps across gaps shorter than `w = kL`, SIG
//! shrugs and eats collision risk — are derived for units that *sleep*
//! through reports. A lossy downlink produces exactly the same gaps
//! without the energy savings, so this sweep measures what each rule
//! costs when the channel (not the sleep schedule) is the adversary:
//! hit ratio, uplink traffic, and whole-cache drops as a function of
//! the per-report loss rate, plus a Gilbert–Elliott burst point at a
//! matched average rate to show that *clustered* losses are the regime
//! separating TS's window recovery from AT's drop-everything rule.
//!
//! Requires the `faults` cargo feature:
//! `cargo run --release -p sw-experiments --features faults --bin fig_loss`.

use sleepers::prelude::*;
use sw_experiments::{cell_seed, ParallelRunner};

#[derive(serde::Serialize)]
struct Row {
    strategy: String,
    loss_model: String,
    loss_rate: f64,
    hit_ratio: f64,
    uplink_query_bits: u64,
    cache_drops: u64,
    reports_lost: u64,
    reports_missed_per_client_interval: f64,
}

struct Cell {
    strategy: Strategy,
    label: &'static str,
    loss_rate: f64,
    loss: LossModel,
    tag: u64,
}

fn run_cell(cell: &Cell, intervals: u64) -> Row {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 1_000;
    params.mu = 1e-3;
    params.k = 10;
    let params = params.with_s(0.3);
    let seed = cell_seed(0xFA_0175, &[cell.loss_rate.to_bits(), cell.tag]);
    let cfg = CellConfig::new(params)
        .with_clients(10)
        .with_hotspot_size(25)
        .with_seed(seed)
        .with_faults(FaultPlan::none().with_loss(cell.loss));
    let mut sim = CellSimulation::new(cfg, cell.strategy).expect("valid config");
    let r = sim.run_measured(intervals / 4, intervals).expect("fits");
    Row {
        strategy: cell.strategy.name().to_string(),
        loss_model: cell.label.to_string(),
        loss_rate: cell.loss_rate,
        hit_ratio: r.hit_ratio(),
        uplink_query_bits: r.traffic.query_bits,
        cache_drops: r.cache_drops,
        reports_lost: r.faults.reports_lost,
        reports_missed_per_client_interval: r.faults.reports_missed_total() as f64
            / (r.intervals * r.n_clients as u64) as f64,
    }
}

fn main() {
    if !sleepers::faults::compiled_in() {
        eprintln!(
            "fig_loss: fault injection is compiled out; rebuild with \
             `--features faults` to run this sweep"
        );
        std::process::exit(2);
    }
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 200 } else { 800 };
    let rates: &[f64] = if fast {
        &[0.0, 0.05, 0.2]
    } else {
        &[0.0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5]
    };
    let strategies = [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
    ];

    let mut cells = Vec::new();
    for (si, &strategy) in strategies.iter().enumerate() {
        for &p in rates {
            cells.push(Cell {
                strategy,
                label: "bernoulli",
                loss_rate: p,
                loss: LossModel::bernoulli(p),
                tag: si as u64,
            });
        }
        // A bursty channel with the same ~20% average loss: entering a
        // burst at 5%/report, leaving at 30%, losing 90% while inside
        // gives a stationary loss rate of 0.05/(0.05+0.30) × 0.9 ≈ 0.13
        // — but in *runs*, which is what multi-report gaps are made of.
        cells.push(Cell {
            strategy,
            label: "burst",
            loss_rate: 0.13,
            loss: LossModel::burst(0.05, 0.3, 0.9),
            tag: 0x100 + si as u64,
        });
    }

    let rows = ParallelRunner::from_env().run(&cells, |_, cell| run_cell(cell, intervals));

    println!("E16 — hit ratio and uplink traffic vs report loss");
    println!(
        "{:>6} {:>10} {:>7} {:>9} {:>14} {:>8} {:>8} {:>10}",
        "strat", "model", "loss", "h", "uplink bits", "drops", "lost", "missed/ci"
    );
    for row in &rows {
        println!(
            "{:>6} {:>10} {:>7.2} {:>9.4} {:>14} {:>8} {:>8} {:>10.4}",
            row.strategy,
            row.loss_model,
            row.loss_rate,
            row.hit_ratio,
            row.uplink_query_bits,
            row.cache_drops,
            row.reports_lost,
            row.reports_missed_per_client_interval,
        );
    }
    println!();
    println!("Expected shape: every strategy loses hits as loss grows, but AT");
    println!("pays a whole-cache drop per gap (drops ≈ lost reports) while TS");
    println!("restamps across gaps shorter than w = kL and SIG's signatures");
    println!("re-validate the surviving cache; bursty loss at a matched average");
    println!("rate widens the TS-vs-AT spread (multi-report gaps).");

    match sw_experiments::write_json("fig_loss", &rows) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
