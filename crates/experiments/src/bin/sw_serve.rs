//! `sw-serve` — the live invalidation-report daemon.
//!
//! Boots a [`sw_live::LiveServer`]: TCP registration/uplink listener
//! plus a UDP broadcast ticker emitting one invalidation report per
//! interval, built by the same report builders the simulator uses.
//!
//! Usage:
//!
//! ```text
//! sw-serve [--port N] [--intervals N] [--interval-ms N] [--lockstep]
//!          [--announce FILE]
//!          [--metrics-port N] [--metrics-announce FILE]
//!          [--flight N] [--flight-dir DIR]
//!          [--strategy ts|at|sig|hyb] [--clients N] [--n-items N]
//!          [--update-rate MU] [--s S] [--hotspot N] [--seed HEX]
//!          [--observe LABEL]
//! ```
//!
//! The bound address is printed to stdout as `listening ADDR` before
//! the first report goes out; `--announce FILE` additionally writes
//! the bare `ADDR` to `FILE` so scripts can poll for it (the smoke leg
//! of `scripts/check.sh` does exactly that). `--metrics-port` arms the
//! ops plane: `GET /metrics` (Prometheus text), `/healthz`, and
//! `/snapshot.json` on that port for the session's lifetime, announced
//! as `metrics ADDR` (and to `--metrics-announce FILE`).
//!
//! `--flight N` keeps the last N broadcast ticks in a flight-recorder
//! ring. On SIGTERM the daemon stops the session cleanly, prints its
//! summary, and — when `--flight-dir` is set — dumps the ring as
//! NDJSON forensics before exiting.

use std::net::SocketAddr;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sw_experiments::live_cli::{parse_cell_args, take_flag, take_switch};
use sw_live::{arm_termination_flag, LiveOptions, LiveServer};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let port: u16 = take_flag(&mut args, "--port")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--port: {e}"))))
        .unwrap_or(0);
    let intervals: u64 = take_flag(&mut args, "--intervals")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--intervals: {e}"))))
        .unwrap_or(600);
    let interval_ms: u64 = take_flag(&mut args, "--interval-ms")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--interval-ms: {e}"))))
        .unwrap_or(100);
    let lockstep = take_switch(&mut args, "--lockstep");
    let announce = take_flag(&mut args, "--announce");
    let metrics_port: Option<u16> = take_flag(&mut args, "--metrics-port")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--metrics-port: {e}"))));
    let metrics_announce = take_flag(&mut args, "--metrics-announce");
    let flight: usize = take_flag(&mut args, "--flight")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--flight: {e}"))))
        .unwrap_or(0);
    let flight_dir = take_flag(&mut args, "--flight-dir").map(std::path::PathBuf::from);
    let cell = parse_cell_args(&mut args).unwrap_or_else(|e| die(&e));
    if !args.is_empty() {
        die(&format!("unrecognized arguments: {args:?}"));
    }

    let bind: SocketAddr = ([127, 0, 0, 1], port).into();
    let mut opts = if lockstep {
        LiveOptions::lockstep(intervals)
    } else {
        LiveOptions::paced(intervals, interval_ms)
    }
    .with_bind(bind)
    .with_flight_capacity(flight);
    if let Some(mp) = metrics_port {
        opts = opts.with_metrics(([127, 0, 0, 1], mp).into());
    }

    let handle = LiveServer::spawn(cell.config, cell.strategy, opts)
        .unwrap_or_else(|e| die(&format!("could not start server: {e}")));
    let addr = handle.addr();
    println!("listening {addr}");
    if let Some(path) = announce {
        if let Err(e) = std::fs::write(&path, format!("{addr}\n")) {
            eprintln!("sw-serve: could not write announce file {path}: {e}");
            handle.shutdown();
            let _ = handle.wait();
            exit(1);
        }
    }
    if let Some(maddr) = handle.metrics_addr() {
        println!("metrics {maddr}");
        if let Some(path) = metrics_announce {
            if let Err(e) = std::fs::write(&path, format!("{maddr}\n")) {
                eprintln!("sw-serve: could not write metrics announce file {path}: {e}");
            }
        }
    }

    // The SIGTERM watcher: a `kill` stops the session cleanly (partial
    // summary, flight dump) instead of vaporizing it.
    let term = arm_termination_flag();
    let stopper = handle.stopper();
    let session_over = Arc::new(AtomicBool::new(false));
    let watcher = {
        let session_over = Arc::clone(&session_over);
        std::thread::spawn(move || loop {
            if term.load(Ordering::Relaxed) {
                eprintln!("sw-serve: SIGTERM; stopping the session");
                stopper.stop();
                return true;
            }
            if session_over.load(Ordering::Relaxed) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(50));
        })
    };

    let result = handle.wait();
    session_over.store(true, Ordering::Relaxed);
    let terminated = watcher.join().expect("signal watcher thread");

    match result {
        Ok(report) => {
            println!(
                "served {} intervals ({}): {} datagrams, {} report bytes, \
                 {} updates, {} uplink answers",
                report.intervals,
                cell.strategy.name(),
                report.datagrams_sent,
                report.report_bytes,
                report.updates_applied,
                report.uplink_answers,
            );
            if terminated {
                if let Some(dir) = flight_dir {
                    let path = dir.join("sw-flight-server.ndjson");
                    let reason = format!(
                        "SIGTERM after {} of {} intervals",
                        report.intervals, intervals
                    );
                    match report.flight.dump(&path, &reason) {
                        Ok(n) => println!("flight ring ({n} B) -> {}", path.display()),
                        Err(e) => eprintln!("sw-serve: flight dump failed: {e}"),
                    }
                }
            }
            if let Some(snap) = report.observe {
                println!("{}", sw_observe::summary(&snap));
            }
        }
        Err(e) => die(&format!("session failed: {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("sw-serve: {msg}");
    exit(2);
}
