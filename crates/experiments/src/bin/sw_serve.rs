//! `sw-serve` — the live invalidation-report daemon.
//!
//! Boots a [`sw_live::LiveServer`]: TCP registration/uplink listener
//! plus a UDP broadcast ticker emitting one invalidation report per
//! interval, built by the same report builders the simulator uses.
//!
//! Usage:
//!
//! ```text
//! sw-serve [--port N] [--intervals N] [--interval-ms N] [--lockstep]
//!          [--announce FILE]
//!          [--strategy ts|at|sig|hyb] [--clients N] [--n-items N]
//!          [--update-rate MU] [--s S] [--hotspot N] [--seed HEX]
//!          [--observe LABEL]
//! ```
//!
//! The bound address is printed to stdout as `listening ADDR` before
//! the first report goes out; `--announce FILE` additionally writes
//! the bare `ADDR` to `FILE` so scripts can poll for it (the smoke leg
//! of `scripts/check.sh` does exactly that). The daemon exits after
//! `--intervals` reports and prints a one-line session summary.

use std::net::SocketAddr;
use std::process::exit;

use sw_experiments::live_cli::{parse_cell_args, take_flag, take_switch};
use sw_live::{LiveOptions, LiveServer};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let port: u16 = take_flag(&mut args, "--port")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--port: {e}"))))
        .unwrap_or(0);
    let intervals: u64 = take_flag(&mut args, "--intervals")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--intervals: {e}"))))
        .unwrap_or(600);
    let interval_ms: u64 = take_flag(&mut args, "--interval-ms")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--interval-ms: {e}"))))
        .unwrap_or(100);
    let lockstep = take_switch(&mut args, "--lockstep");
    let announce = take_flag(&mut args, "--announce");
    let cell = parse_cell_args(&mut args).unwrap_or_else(|e| die(&e));
    if !args.is_empty() {
        die(&format!("unrecognized arguments: {args:?}"));
    }

    let bind: SocketAddr = ([127, 0, 0, 1], port).into();
    let opts = if lockstep {
        LiveOptions::lockstep(intervals)
    } else {
        LiveOptions::paced(intervals, interval_ms)
    }
    .with_bind(bind);

    let handle = LiveServer::spawn(cell.config, cell.strategy, opts)
        .unwrap_or_else(|e| die(&format!("could not start server: {e}")));
    let addr = handle.addr();
    println!("listening {addr}");
    if let Some(path) = announce {
        if let Err(e) = std::fs::write(&path, format!("{addr}\n")) {
            eprintln!("sw-serve: could not write announce file {path}: {e}");
            handle.shutdown();
            let _ = handle.wait();
            exit(1);
        }
    }

    match handle.wait() {
        Ok(report) => {
            println!(
                "served {} intervals ({}): {} datagrams, {} report bytes, \
                 {} updates, {} uplink answers",
                report.intervals,
                cell.strategy.name(),
                report.datagrams_sent,
                report.report_bytes,
                report.updates_applied,
                report.uplink_answers,
            );
            if let Some(snap) = report.observe {
                println!("{}", sw_observe::summary(&snap));
            }
        }
        Err(e) => die(&format!("session failed: {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("sw-serve: {msg}");
    exit(2);
}
