//! `sw-serve` — the live invalidation-report daemon.
//!
//! Boots a [`sw_live::LiveServer`]: TCP registration/uplink listener
//! plus a UDP broadcast ticker emitting one invalidation report per
//! interval, built by the same report builders the simulator uses.
//!
//! Usage:
//!
//! ```text
//! sw-serve [--port N] [--intervals N] [--interval-ms N] [--lockstep]
//!          [--announce FILE]
//!          [--metrics-port N] [--metrics-announce FILE]
//!          [--flight N] [--flight-dir DIR]
//!          [--ha-node N] [--ha-rep-port N] [--ha-announce FILE]
//!          [--ha-peer FILE]... [--crash-at N]
//!          [--strategy ts|at|sig|hyb] [--clients N] [--n-items N]
//!          [--update-rate MU] [--s S] [--hotspot N] [--seed HEX]
//!          [--observe LABEL]
//! ```
//!
//! The bound address is printed to stdout as `listening ADDR` before
//! the first report goes out; `--announce FILE` additionally writes
//! the bare `ADDR` to `FILE` so scripts can poll for it (the smoke leg
//! of `scripts/check.sh` does exactly that). `--metrics-port` arms the
//! ops plane: `GET /metrics` (Prometheus text), `/healthz`, and
//! `/snapshot.json` on that port for the session's lifetime, announced
//! as `metrics ADDR` (and to `--metrics-announce FILE`).
//!
//! `--flight N` keeps the last N broadcast ticks in a flight-recorder
//! ring. On SIGTERM the daemon stops the session cleanly, prints its
//! summary, and — when `--flight-dir` is set — dumps the ring as
//! NDJSON forensics before exiting.
//!
//! `--ha-node N` turns the daemon into one member of a replicated
//! cell-server fleet (see `sw-ha`): it binds a second, peer-facing
//! replication listener (`--ha-rep-port`), writes its own coordinates
//! to `--ha-announce FILE` as one `NODE CLIENT_ADDR REP_ADDR` line,
//! and polls each `--ha-peer FILE` (another node's `--ha-announce`
//! output) to assemble the shared membership list. The lowest node id
//! starts as the broadcasting primary; every other node applies the
//! replicated log silently, ready to take over mid-session. Clients
//! pointed at any member with `sw-mu --server a,b,…` ride a primary
//! crash through to the announced successor. `--crash-at N` injects a
//! deterministic primary crash at interval N — the kill-mid-run demo
//! without having to aim a `kill -9` by hand.

use std::net::SocketAddr;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sw_experiments::live_cli::{parse_cell_args, take_flag, take_switch};
use sw_faults::server::{CrashPoint, ServerFaultPlan};
use sw_ha::{HaHandle, HaNode, HaOptions, PeerSpec};
use sw_live::{arm_termination_flag, LiveOptions, LiveServer, LiveServerReport, ServerHandle};

/// How a session was spawned; both arms share the stopper type, so
/// everything but the final wait is common.
enum Session {
    Plain(ServerHandle),
    Ha(HaHandle),
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let port: u16 = take_flag(&mut args, "--port")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--port: {e}"))))
        .unwrap_or(0);
    let intervals: u64 = take_flag(&mut args, "--intervals")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--intervals: {e}"))))
        .unwrap_or(600);
    let interval_ms: u64 = take_flag(&mut args, "--interval-ms")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--interval-ms: {e}"))))
        .unwrap_or(100);
    let lockstep = take_switch(&mut args, "--lockstep");
    let announce = take_flag(&mut args, "--announce");
    let metrics_port: Option<u16> = take_flag(&mut args, "--metrics-port")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--metrics-port: {e}"))));
    let metrics_announce = take_flag(&mut args, "--metrics-announce");
    let flight: usize = take_flag(&mut args, "--flight")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--flight: {e}"))))
        .unwrap_or(0);
    let flight_dir = take_flag(&mut args, "--flight-dir").map(std::path::PathBuf::from);
    let ha_node: Option<u32> = take_flag(&mut args, "--ha-node")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--ha-node: {e}"))));
    let ha_rep_port: u16 = take_flag(&mut args, "--ha-rep-port")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--ha-rep-port: {e}"))))
        .unwrap_or(0);
    let ha_announce = take_flag(&mut args, "--ha-announce");
    let mut ha_peers: Vec<String> = Vec::new();
    while let Some(p) = take_flag(&mut args, "--ha-peer") {
        ha_peers.push(p);
    }
    let crash_at: Option<u64> = take_flag(&mut args, "--crash-at")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--crash-at: {e}"))));
    let cell = parse_cell_args(&mut args).unwrap_or_else(|e| die(&e));
    if !args.is_empty() {
        die(&format!("unrecognized arguments: {args:?}"));
    }
    if ha_node.is_none() && (ha_announce.is_some() || !ha_peers.is_empty() || crash_at.is_some()) {
        die("--ha-announce/--ha-peer/--crash-at require --ha-node");
    }

    let bind: SocketAddr = ([127, 0, 0, 1], port).into();
    let mut opts = if lockstep {
        LiveOptions::lockstep(intervals)
    } else {
        LiveOptions::paced(intervals, interval_ms)
    }
    .with_bind(bind)
    .with_flight_capacity(flight);
    if let Some(dir) = flight_dir.as_ref() {
        opts = opts.with_flight_dir(dir.clone());
    }
    if let Some(mp) = metrics_port {
        opts = opts.with_metrics(([127, 0, 0, 1], mp).into());
    }

    let session = match ha_node {
        None => Session::Plain(
            LiveServer::spawn(cell.config.clone(), cell.strategy, opts)
                .unwrap_or_else(|e| die(&format!("could not start server: {e}"))),
        ),
        Some(node) => {
            let ha = HaNode::bind(([127, 0, 0, 1], ha_rep_port).into(), bind)
                .unwrap_or_else(|e| die(&format!("could not bind HA listeners: {e}")));
            let myself = PeerSpec {
                node,
                rep: ha.rep_addr().unwrap_or_else(|e| die(&format!("rep addr: {e}"))),
                client: ha
                    .client_addr()
                    .unwrap_or_else(|e| die(&format!("client addr: {e}"))),
            };
            if let Some(path) = &ha_announce {
                let line = format!("{} {} {}\n", myself.node, myself.client, myself.rep);
                std::fs::write(path, line)
                    .unwrap_or_else(|e| die(&format!("could not write {path}: {e}")));
            }
            let mut peers = vec![myself];
            for file in &ha_peers {
                peers.push(await_peer_file(file));
            }
            let mut hopts = HaOptions::new(node, peers, opts);
            if let Some(at) = crash_at {
                hopts = hopts
                    .with_faults(ServerFaultPlan::none().with_crash(at, CrashPoint::AfterAppend));
            }
            Session::Ha(
                ha.start(cell.config.clone(), cell.strategy, hopts)
                    .unwrap_or_else(|e| die(&format!("could not start HA node: {e}"))),
            )
        }
    };

    let (addr, maddr, stopper) = match &session {
        Session::Plain(h) => (h.addr(), h.metrics_addr(), h.stopper()),
        Session::Ha(h) => (h.addr(), h.metrics_addr(), h.stopper()),
    };
    println!("listening {addr}");
    if let Some(path) = announce {
        if let Err(e) = std::fs::write(&path, format!("{addr}\n")) {
            eprintln!("sw-serve: could not write announce file {path}: {e}");
            stopper.stop();
            match session {
                Session::Plain(h) => drop(h.wait()),
                Session::Ha(h) => drop(h.wait()),
            }
            exit(1);
        }
    }
    if let Some(maddr) = maddr {
        println!("metrics {maddr}");
        if let Some(path) = metrics_announce {
            if let Err(e) = std::fs::write(&path, format!("{maddr}\n")) {
                eprintln!("sw-serve: could not write metrics announce file {path}: {e}");
            }
        }
    }

    // The SIGTERM watcher: a `kill` stops the session cleanly (partial
    // summary, flight dump) instead of vaporizing it.
    let term = arm_termination_flag();
    let session_over = Arc::new(AtomicBool::new(false));
    let watcher = {
        let session_over = Arc::clone(&session_over);
        std::thread::spawn(move || loop {
            if term.load(Ordering::Relaxed) {
                eprintln!("sw-serve: SIGTERM; stopping the session");
                stopper.stop();
                return true;
            }
            if session_over.load(Ordering::Relaxed) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(50));
        })
    };

    // Wait the session out. An HA node folds down to the same report
    // shape, prefixed with its cluster view; a node that died to an
    // injected fault has no session report at all — by design, it
    // models a killed process.
    let result = match session {
        Session::Plain(h) => h.wait().map(|r| (None, Some(r))),
        Session::Ha(h) => h.wait().map(|r| {
            let ha = (r.node, r.epoch, r.took_over_at);
            (Some(ha), r.live)
        }),
    };
    session_over.store(true, Ordering::Relaxed);
    let terminated = watcher.join().expect("signal watcher thread");

    match result {
        Ok((ha, live)) => {
            if let Some((node, epoch, took_over_at)) = ha {
                match took_over_at {
                    Some(i) => println!("ha node {node}: epoch {epoch}, took over at interval {i}"),
                    None => println!("ha node {node}: epoch {epoch}"),
                }
            }
            let Some(report) = live else {
                println!("crashed at injected fault; no session report");
                return;
            };
            print_summary(&report, cell.strategy.name());
            if terminated {
                if let Some(dir) = flight_dir {
                    let path = dir.join("sw-flight-server.ndjson");
                    let reason = format!(
                        "sigterm after {} of {} intervals",
                        report.intervals, intervals
                    );
                    match report.flight.dump(&path, &reason) {
                        Ok(n) => println!("flight ring ({n} B) -> {}", path.display()),
                        Err(e) => eprintln!("sw-serve: flight dump failed: {e}"),
                    }
                }
            }
            if let Some(snap) = report.observe {
                println!("{}", sw_observe::summary(&snap));
            }
        }
        Err(e) => die(&format!("session failed: {e}")),
    }
}

fn print_summary(report: &LiveServerReport, strategy: &str) {
    println!(
        "served {} intervals ({}): {} datagrams, {} report bytes, \
         {} updates, {} uplink answers",
        report.intervals,
        strategy,
        report.datagrams_sent,
        report.report_bytes,
        report.updates_applied,
        report.uplink_answers,
    );
}

/// Polls a peer's `--ha-announce` file until it appears and parses.
/// The fleet boots in any order; whoever comes up first simply waits
/// here for the rest.
fn await_peer_file(path: &str) -> PeerSpec {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Some(spec) = parse_peer_line(&text) {
                return spec;
            }
        }
        if Instant::now() >= deadline {
            die(&format!("peer file {path} never appeared or never parsed"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn parse_peer_line(text: &str) -> Option<PeerSpec> {
    let mut fields = text.split_whitespace();
    let node = fields.next()?.parse().ok()?;
    let client = fields.next()?.parse().ok()?;
    let rep = fields.next()?.parse().ok()?;
    Some(PeerSpec { node, rep, client })
}

fn die(msg: &str) -> ! {
    eprintln!("sw-serve: {msg}");
    exit(2);
}
