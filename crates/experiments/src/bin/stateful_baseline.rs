//! E17 (extension): the §2 stateful-server baseline, measured.
//!
//! "To maintain the server state, the clients must inform the server
//! when they come and go ... Besides, even if the client is not about
//! to use a particular cache, it gets notified about its invalid
//! status. This is a potential waste of bandwidth." This experiment
//! puts numbers on that argument: directed invalidation traffic and
//! registration control messages grow with the client population, while
//! the stateless AT broadcast costs the same regardless of who is
//! listening — the scalability case for statelessness.

use sleepers::prelude::*;

#[derive(serde::Serialize)]
struct Row {
    clients: usize,
    s: f64,
    stateless_downlink_bits: u64,
    stateful_downlink_bits: u64,
    registration_messages: u64,
    hit_ratio_stateless: f64,
    hit_ratio_stateful: f64,
}

fn run(strategy: Strategy, clients: usize, s: f64, intervals: u64) -> SimulationReport {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 1_000;
    params.mu = 2e-3;
    let params = params.with_s(s);
    let cfg = CellConfig::new(params)
        .with_clients(clients)
        .with_hotspot_size(25)
        .with_seed(0xE17);
    let mut sim = CellSimulation::new(cfg, strategy).expect("valid");
    sim.run_measured(intervals / 4, intervals).expect("fits")
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 150 } else { 600 };

    println!("E17 — stateful server (§2) vs stateless AT broadcast");
    println!(
        "{:>8} {:>5} {:>16} {:>16} {:>10} {:>9} {:>9}",
        "clients", "s", "stateless bits", "stateful bits", "reg msgs", "h (AT)", "h (SF)"
    );
    let mut rows = Vec::new();
    for &clients in &[4usize, 8, 16, 32] {
        for &s in &[0.0, 0.4] {
            let at = run(Strategy::AmnesicTerminals, clients, s, intervals);
            let sf = run(Strategy::Stateful, clients, s, intervals);
            let stateless_bits = at.traffic.downlink_bits() - at.traffic.answer_bits;
            let stateful_bits = sf.traffic.downlink_bits() - sf.traffic.answer_bits;
            println!(
                "{:>8} {:>5.1} {:>16} {:>16} {:>10} {:>9.4} {:>9.4}",
                clients,
                s,
                stateless_bits,
                stateful_bits,
                sf.registration_messages,
                at.hit_ratio(),
                sf.hit_ratio()
            );
            rows.push(Row {
                clients,
                s,
                stateless_downlink_bits: stateless_bits,
                stateful_downlink_bits: stateful_bits,
                registration_messages: sf.registration_messages,
                hit_ratio_stateless: at.hit_ratio(),
                hit_ratio_stateful: sf.hit_ratio(),
            });
        }
    }
    println!();
    println!("Expected shape: identical hit ratios (same client semantics);");
    println!("the stateless broadcast cost is flat in the population, while");
    println!("the stateful directed traffic and registration chatter grow");
    println!("with every client added — §2's argument, measured.");

    match sw_experiments::write_json("stateful_baseline", &rows) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
