//! `sw-mu` — a live mobile-unit client.
//!
//! Connects to a running `sw-serve`, registers over TCP, listens for
//! UDP invalidation reports, and runs the real [`sw_client`] cache
//! against them: queries buffered until the next heard report, misses
//! answered over the TCP uplink, per-strategy recovery on missed
//! frames.
//!
//! Usage:
//!
//! ```text
//! sw-mu --server ADDR[,ADDR...] [--index N] [--rx-drop P] [--audit]
//!       [--reconnect-after N]
//!       [--flight N] [--storm N] [--flight-dir DIR]
//!       [--strategy ts|at|sig|hyb] [--clients N] [--n-items N]
//!       [--update-rate MU] [--s S] [--hotspot N] [--seed HEX]
//!       [--observe LABEL]
//! ```
//!
//! `--server` takes a comma-separated rotation: the first address is
//! dialed at startup, the full list is the successor roster of a
//! replicated fleet (`sw-serve --ha-node`). When the broadcaster goes
//! quiet for `--reconnect-after` consecutive intervals (default 2
//! with a rotation), the unit re-registers through the rotation with
//! bounded exponential backoff and rides the takeover — the blackout
//! is just ordinary missed reports to the caching strategy.
//!
//! `--flight N` keeps the last N intervals in a flight-recorder ring;
//! `--storm N` dumps that ring to `--flight-dir` (NDJSON) after N
//! consecutive missed reports — post-mortem forensics for a unit that
//! fell off the broadcast.
//!
//! The cell flags must match the server's: both sides derive their
//! deterministic streams from the same `CellConfig`. Exits 0 after the
//! server halts the session, printing a one-line client summary.

use std::net::SocketAddr;
use std::process::exit;

use sw_experiments::live_cli::{parse_cell_args, take_flag, take_switch};
use sw_live::{run_mu, MuOptions};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let servers: Vec<SocketAddr> = take_flag(&mut args, "--server")
        .unwrap_or_else(|| die("--server ADDR[,ADDR...] is required"))
        .split(',')
        .map(|a| a.parse().unwrap_or_else(|e| die(&format!("--server {a}: {e}"))))
        .collect();
    let server = servers[0];
    let reconnect_after: u64 = take_flag(&mut args, "--reconnect-after")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|e| die(&format!("--reconnect-after: {e}")))
        })
        .unwrap_or(0);
    let index: usize = take_flag(&mut args, "--index")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--index: {e}"))))
        .unwrap_or(0);
    let rx_drop: f64 = take_flag(&mut args, "--rx-drop")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--rx-drop: {e}"))))
        .unwrap_or(0.0);
    let audit_cache = take_switch(&mut args, "--audit");
    let flight_capacity: usize = take_flag(&mut args, "--flight")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--flight: {e}"))))
        .unwrap_or(0);
    let storm_threshold: u64 = take_flag(&mut args, "--storm")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--storm: {e}"))))
        .unwrap_or(0);
    let flight_dir = take_flag(&mut args, "--flight-dir").map(std::path::PathBuf::from);
    let cell = parse_cell_args(&mut args).unwrap_or_else(|e| die(&e));
    if !args.is_empty() {
        die(&format!("unrecognized arguments: {args:?}"));
    }
    if index >= cell.config.n_clients {
        die(&format!(
            "--index {index} out of range for --clients {}",
            cell.config.n_clients
        ));
    }

    let opts = MuOptions {
        rx_drop,
        audit_cache,
        flight_capacity,
        storm_threshold,
        flight_dir,
        successors: if servers.len() > 1 { servers } else { Vec::new() },
        reconnect_after,
        ..MuOptions::default()
    };
    match run_mu(server, &cell.config, cell.strategy, index, opts) {
        Ok(report) => {
            let s = &report.stats;
            println!(
                "mu {} ({}): {} intervals ({} awake), {} queries \
                 ({} hits, {} misses), {} reports heard, {} missed, \
                 {} invalidated, {} cache drops",
                report.index,
                cell.strategy.name(),
                report.rows.len(),
                s.intervals_awake,
                s.queries_posed,
                s.hit_events,
                s.miss_events,
                report.reports_heard,
                report.reports_missed,
                s.items_invalidated,
                s.cache_drops,
            );
            if report.reconnects > 0 {
                println!(
                    "mu {}: re-registered {} time(s) through the successor rotation",
                    report.index, report.reconnects
                );
            }
            if let Some(snap) = report.observe {
                println!("{}", sw_observe::summary(&snap));
            }
        }
        Err(e) => die(&format!("session failed: {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("sw-mu: {msg}");
    exit(2);
}
