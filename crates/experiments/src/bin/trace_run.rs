//! Replays any figure configuration with observation turned on and
//! writes the full trace: NDJSON events, per-interval series CSV, and
//! the end-of-run summary table.
//!
//! Usage: `cargo run --release -p sw-experiments --features observe \
//!   --bin trace_run -- [figure]` (figure defaults to 3; `SW_FAST=1`
//! uses the quick settings). Artifacts land in `results/` as
//! `trace_fig<N>.trace.ndjson`, `trace_fig<N>.series.csv`, and
//! `trace_fig<N>.summary.txt`.
//!
//! The trace is deterministic: the same figure at the same settings
//! produces byte-identical NDJSON and CSV at any `SW_THREADS` value
//! (pinned by the determinism suite). Wall-clock span timings appear
//! only in the summary table.
//!
//! Set `SW_FAULT_LOSS=<p>` to arm a Bernoulli report-loss plan at rate
//! `p` (requires the `faults` cargo feature as well): the fault event
//! family (`report_missed` events, `reports_lost`/`uplink_retries`
//! counters, the `lost`/`retries` series columns) then shows up in all
//! three artifacts.

use sw_experiments::figures::{run_figure_with, FigureSpec, SimSettings};
use sw_experiments::results::write_text;

fn main() {
    let figure: u8 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("figure must be a number in 3..=8"))
        .unwrap_or(3);
    let mut settings = if std::env::var("SW_FAST").is_ok() {
        SimSettings::quick()
    } else {
        SimSettings::default()
    };
    settings.observe = true;
    if let Some(p) = std::env::var("SW_FAULT_LOSS")
        .ok()
        .map(|v| v.parse::<f64>().expect("SW_FAULT_LOSS must be a rate in [0, 1]"))
    {
        if !sleepers::faults::compiled_in() {
            eprintln!(
                "SW_FAULT_LOSS={p} ignored: fault injection is compiled out; \
                 rebuild with `--features observe,faults`"
            );
        }
        settings.faults =
            Some(sleepers::prelude::FaultPlan::none().with_loss(
                sleepers::prelude::LossModel::bernoulli(p),
            ));
    }

    let spec = FigureSpec::for_figure(figure);
    eprintln!(
        "tracing figure {figure} ({}): {} x-points × 4 strategies, {} intervals each ...",
        spec.scenario, settings.points, settings.intervals
    );
    let observed = run_figure_with(&spec, settings);

    let Some(snap) = observed.observe else {
        eprintln!(
            "no trace captured: this binary was built without the `observe` cargo \
             feature. Rerun as\n  cargo run --release -p sw-experiments \
             --features observe --bin trace_run -- {figure}"
        );
        std::process::exit(1);
    };

    let summary = sw_observe::summary(&snap);
    println!("{summary}");
    if let Some(warning) =
        sw_observe::overflow_warning(snap.counter("overflow_exchanges"))
    {
        eprintln!("{warning}");
    }

    for (suffix, body) in [
        ("trace.ndjson", snap.to_ndjson()),
        ("series.csv", snap.series_csv()),
        ("summary.txt", summary),
    ] {
        match write_text(&format!("trace_fig{figure}.{suffix}"), &body) {
            Ok(f) => println!("wrote {}", f.path.display()),
            Err(e) => eprintln!("could not write trace_fig{figure}.{suffix}: {e}"),
        }
    }
}
