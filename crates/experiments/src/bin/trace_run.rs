//! Replays any figure configuration — or a mesh run — with observation
//! turned on and writes the full trace: NDJSON events, per-interval
//! series CSV, and the end-of-run summary table.
//!
//! Usage: `cargo run --release -p sw-experiments --features observe \
//!   --bin trace_run -- [figure|mesh|live]` (defaults to figure 3;
//!   `SW_FAST=1` uses the quick settings). Figure artifacts land in
//! `results/` as `trace_fig<N>.trace.ndjson`, `trace_fig<N>.series.csv`,
//! and `trace_fig<N>.summary.txt`; the `mesh` argument traces a 2-cell
//! mesh with Markov mobility instead, writing per-cell artifacts
//! (`trace_mesh.cell<C>.*`) plus one combined summary; the `live`
//! argument runs a real `sw-live` session over loopback sockets in
//! lockstep pacing and writes its merged server+client trace
//! (`trace_live.*`). Mesh traces
//! carry the handoff counter family (`migrations`, `migrations_out`,
//! `handoff_drops`, `cross_cell_registrations`) and a per-cell
//! `migrations` series column.
//!
//! The trace is deterministic: the same configuration at the same
//! settings produces byte-identical NDJSON and CSV at any `SW_THREADS`
//! value (pinned by the determinism suite). Wall-clock span timings
//! appear only in the summary table.
//!
//! Set `SW_FAULT_LOSS=<p>` to arm a Bernoulli report-loss plan at rate
//! `p` (requires the `faults` cargo feature as well): the fault event
//! family (`report_missed` events, `reports_lost`/`uplink_retries`
//! counters, the `lost`/`retries` series columns) then shows up in all
//! three artifacts.

use sleepers::prelude::*;
use sw_experiments::figures::{run_figure_with, FigureSpec, SimSettings};
use sw_experiments::results::write_text;
use sw_mesh::{CellGraph, MeshConfig, MeshSimulation, MobilityModel};
use sw_sim::MasterSeed;

fn fault_plan() -> Option<FaultPlan> {
    let p = std::env::var("SW_FAULT_LOSS")
        .ok()
        .map(|v| v.parse::<f64>().expect("SW_FAULT_LOSS must be a rate in [0, 1]"))?;
    if !sleepers::faults::compiled_in() {
        eprintln!(
            "SW_FAULT_LOSS={p} ignored: fault injection is compiled out; \
             rebuild with `--features observe,faults`"
        );
    }
    Some(FaultPlan::none().with_loss(LossModel::bernoulli(p)))
}

fn no_observe_bail(rerun_arg: &str) -> ! {
    eprintln!(
        "no trace captured: this binary was built without the `observe` cargo \
         feature. Rerun as\n  cargo run --release -p sw-experiments \
         --features observe --bin trace_run -- {rerun_arg}"
    );
    std::process::exit(1);
}

fn trace_mesh(fast: bool) {
    let intervals = if fast { 150 } else { 600 };
    let mut params = ScenarioParams::scenario1().with_s(0.3);
    params.n_items = 1_000;
    params.mu = 1e-3;
    params.k = 10;
    let mut base = CellConfig::new(params)
        .with_clients(8)
        .with_hotspot_size(25)
        .with_observe("mesh");
    if let Some(plan) = fault_plan() {
        base = base.with_faults(plan);
    }
    let config = MeshConfig::new(CellGraph::line(2), base, MasterSeed(0xACE7))
        .with_mobility(MobilityModel::Markov { rate: 0.1 });
    eprintln!("tracing mesh: 2-cell line, TS, Markov rate 0.1, {intervals} intervals ...");
    let mut mesh =
        MeshSimulation::new(config, Strategy::BroadcastTimestamps).expect("valid config");
    mesh.run(intervals).expect("mesh run");

    let mut combined = String::new();
    for (cell, sim) in mesh.cells().iter().enumerate() {
        let Some(snap) = sim.observe_snapshot() else {
            no_observe_bail("mesh");
        };
        let summary = sw_observe::summary(&snap);
        println!("{summary}");
        combined.push_str(&summary);
        combined.push('\n');
        for (suffix, body) in [
            ("trace.ndjson", snap.to_ndjson()),
            ("series.csv", snap.series_csv()),
        ] {
            match write_text(&format!("trace_mesh.cell{cell}.{suffix}"), &body) {
                Ok(f) => println!("wrote {}", f.path.display()),
                Err(e) => eprintln!("could not write trace_mesh.cell{cell}.{suffix}: {e}"),
            }
        }
    }
    match write_text("trace_mesh.summary.txt", &combined) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write trace_mesh.summary.txt: {e}"),
    }
}

/// Runs a real `sw-live` session — TCP registration, UDP report
/// datagrams, uplink round-trips over loopback sockets — in lockstep
/// pacing, and writes its combined trace (server recorder merged with
/// every mobile unit's, in index order) through the same observe
/// tooling as the figure and mesh traces.
fn trace_live(fast: bool) {
    use sw_live::{run_mu, LiveOptions, LiveServer, MuOptions};

    let intervals = if fast { 80 } else { 320 };
    let clients = 6;
    let mut params = ScenarioParams::scenario1().with_s(0.4);
    params.n_items = 400;
    params.mu = 2e-3;
    params.k = 10;
    let mut config = CellConfig::new(params)
        .with_clients(clients)
        .with_hotspot_size(20)
        .with_seed(0x11FE_7ACE)
        .with_observe("live");
    if let Some(plan) = fault_plan() {
        config = config.with_faults(plan);
    }
    eprintln!("tracing live session: {clients} MUs, TS, lockstep, {intervals} intervals ...");

    let handle = LiveServer::spawn(
        config.clone(),
        Strategy::BroadcastTimestamps,
        LiveOptions::lockstep(intervals),
    )
    .expect("spawn live server");
    let addr = handle.addr();
    // A seeded receiver-side drop rate so the recovery path runs and
    // the `report_missed` event family shows up in the NDJSON trace.
    let opts = MuOptions {
        rx_drop: 0.08,
        ..MuOptions::default()
    };
    let workers: Vec<_> = (0..clients)
        .map(|idx| {
            let config = config.clone();
            let opts = opts.clone();
            std::thread::spawn(move || {
                run_mu(addr, &config, Strategy::BroadcastTimestamps, idx, opts)
            })
        })
        .collect();
    let reports: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread").expect("client session"))
        .collect();
    let server = handle.wait().expect("server session");

    let Some(mut snap) = server.observe else {
        no_observe_bail("live");
    };
    for report in reports {
        let Some(mu_snap) = report.observe else {
            no_observe_bail("live");
        };
        snap.merge(mu_snap);
    }

    let summary = sw_observe::summary(&snap);
    println!("{summary}");
    for (suffix, body) in [
        ("trace.ndjson", snap.to_ndjson()),
        ("series.csv", snap.series_csv()),
        ("summary.txt", summary),
    ] {
        match write_text(&format!("trace_live.{suffix}"), &body) {
            Ok(f) => println!("wrote {}", f.path.display()),
            Err(e) => eprintln!("could not write trace_live.{suffix}: {e}"),
        }
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let fast = std::env::var("SW_FAST").is_ok();
    if arg.as_deref() == Some("mesh") {
        trace_mesh(fast);
        return;
    }
    if arg.as_deref() == Some("live") {
        trace_live(fast);
        return;
    }

    let figure: u8 = arg
        .map(|a| a.parse().expect("argument must be `mesh`, `live`, or a figure in 3..=8"))
        .unwrap_or(3);
    let mut settings = if fast {
        SimSettings::quick()
    } else {
        SimSettings::default()
    };
    settings.observe = true;
    settings.faults = fault_plan();

    let spec = FigureSpec::for_figure(figure);
    eprintln!(
        "tracing figure {figure} ({}): {} x-points × 4 strategies, {} intervals each ...",
        spec.scenario, settings.points, settings.intervals
    );
    let observed = run_figure_with(&spec, settings);

    let Some(snap) = observed.observe else {
        no_observe_bail(&figure.to_string());
    };

    let summary = sw_observe::summary(&snap);
    println!("{summary}");
    if let Some(warning) = sw_observe::overflow_warning(snap.counter("overflow_exchanges")) {
        eprintln!("{warning}");
    }

    for (suffix, body) in [
        ("trace.ndjson", snap.to_ndjson()),
        ("series.csv", snap.series_csv()),
        ("summary.txt", summary),
    ] {
        match write_text(&format!("trace_fig{figure}.{suffix}"), &body) {
            Ok(f) => println!("wrote {}", f.path.display()),
            Err(e) => eprintln!("could not write trace_fig{figure}.{suffix}: {e}"),
        }
    }
}
