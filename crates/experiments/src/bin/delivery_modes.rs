//! E15 (extension): §9 network environments and the §10 listening-cost
//! discussion, quantified.
//!
//! The invalidation-report idea is network-agnostic, but *how* a dozing
//! client finds the report is not: reservation-MAC networks (PRMA,
//! MACAW) let it wake on a timer just before `T_i` (paying for clock
//! skew), while CSMA/CDPD networks deliver to a multicast address the
//! NIC filters while the CPU dozes. This experiment measures client
//! energy per interval for each strategy under each mode — showing how
//! report *size* (TS ≫ SIG ≫ AT) turns into listening cost, §10's
//! "this presents a problem if the user is paying for the listening
//! time".

use sleepers::prelude::*;

#[derive(serde::Serialize)]
struct Row {
    strategy: String,
    mode: String,
    energy_per_client_interval: f64,
    report_bits_mean: f64,
    hit_ratio: f64,
}

fn run(strategy: Strategy, delivery: DeliveryMode, intervals: u64) -> SimulationReport {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 1_000;
    params.mu = 1e-3; // visible report sizes
    params.k = 10;
    let params = params.with_s(0.3);
    let cfg = CellConfig::new(params)
        .with_clients(10)
        .with_hotspot_size(25)
        .with_delivery(delivery)
        .with_seed(0xE15);
    let mut sim = CellSimulation::new(cfg, strategy).expect("valid");
    sim.run_measured(intervals / 4, intervals).expect("fits")
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 150 } else { 600 };

    let modes = [
        (
            "timer(skew=0)",
            DeliveryMode::TimerSynchronized {
                clock_skew_bound: 0.0,
            },
        ),
        (
            "timer(skew=0.5s)",
            DeliveryMode::TimerSynchronized {
                clock_skew_bound: 0.5,
            },
        ),
        ("multicast(jitter=1s)", DeliveryMode::Multicast { max_jitter: 1.0 }),
    ];
    let strategies = [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
    ];

    println!("E15 — report delivery modes (§9) and listening energy (§10)");
    println!(
        "{:>6} {:>22} {:>18} {:>14} {:>9}",
        "strat", "mode", "energy/client/ivl", "B_c bits", "h"
    );
    let mut rows = Vec::new();
    for strategy in strategies {
        for (label, mode) in modes {
            let r = run(strategy, mode, intervals);
            println!(
                "{:>6} {:>22} {:>18.3} {:>14.1} {:>9.4}",
                strategy.name(),
                label,
                r.energy_per_client_interval(),
                r.report_bits_mean(),
                r.hit_ratio()
            );
            rows.push(Row {
                strategy: strategy.name().to_string(),
                mode: label.to_string(),
                energy_per_client_interval: r.energy_per_client_interval(),
                report_bits_mean: r.report_bits_mean(),
                hit_ratio: r.hit_ratio(),
            });
        }
        println!();
    }
    println!("Expected shape: within a mode, energy tracks report size");
    println!("(TS > SIG > AT); across modes, clock skew is pure listening");
    println!("waste, and multicast NIC filtering eliminates it.");

    match sw_experiments::write_json("delivery_modes", &rows) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
