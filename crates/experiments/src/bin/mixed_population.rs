//! E19 (extension): a *mixed* population — the title's two species in
//! one cell.
//!
//! The paper analyzes homogeneous populations (every client shares
//! `s`). Real cells mix workaholics and sleepers, and the server must
//! pick ONE strategy for everyone. This experiment puts half-and-half
//! populations under each strategy and reports per-group hit ratios
//! and latencies, quantifying the §5 verdicts as a single-cell policy
//! question: AT sacrifices the sleepers, TS/SIG tax the workaholics
//! with bigger reports, and the latency guarantee (≤ L for every
//! query, §2) holds for everyone regardless.

use sleepers::prelude::*;

#[derive(serde::Serialize)]
struct Row {
    strategy: String,
    h_workaholics: f64,
    h_sleepers: f64,
    latency_mean_workaholics: f64,
    latency_max_overall: f64,
    report_bits_mean: f64,
    effectiveness: f64,
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 200 } else { 800 };

    let mut params = ScenarioParams::scenario1();
    params.n_items = 1_000;
    params.mu = 5e-4;
    params.k = 10;

    // Even client indices are workaholics (s = 0), odd are heavy
    // sleepers (s = 0.8).
    let profile = vec![0.0, 0.8];

    println!("E19 — mixed population: half workaholics (s=0), half sleepers (s=0.8)");
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>10} {:>12} {:>8}",
        "strat", "h work", "h sleep", "lat mean", "lat max", "B_c bits", "e"
    );
    let mut rows = Vec::new();
    for strategy in [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
        Strategy::HybridSig { hot_count: 100 },
    ] {
        let cfg = CellConfig::new(params)
            .with_clients(12)
            .with_hotspot_size(25)
            .with_sleep_profile(profile.clone())
            .with_seed(0xE19);
        let mut sim = CellSimulation::new(cfg, strategy).expect("valid");
        for _ in 0..intervals / 4 {
            sim.step().expect("fits");
        }
        sim.reset_metrics();
        for _ in 0..intervals {
            sim.step().expect("fits");
        }
        let report = sim.report();

        // Per-group stats straight off the fleet.
        let mut work = (0u64, 0u64);
        let mut sleep = (0u64, 0u64);
        let mut lat_sum_work = 0.0;
        let mut queries_work = 0u64;
        let mut lat_max: f64 = 0.0;
        for idx in 0..sim.client_slots() {
            let s = sim.client_stats(idx);
            let bucket = if idx % 2 == 0 { &mut work } else { &mut sleep };
            bucket.0 += s.hit_events;
            bucket.1 += s.miss_events;
            if idx % 2 == 0 {
                lat_sum_work += s.latency_sum_secs;
                queries_work += s.queries_posed;
            }
            lat_max = lat_max.max(s.latency_max_secs);
        }
        let ratio = |(h, m): (u64, u64)| {
            if h + m == 0 {
                0.0
            } else {
                h as f64 / (h + m) as f64
            }
        };
        let row = Row {
            strategy: strategy.name().to_string(),
            h_workaholics: ratio(work),
            h_sleepers: ratio(sleep),
            latency_mean_workaholics: if queries_work == 0 {
                0.0
            } else {
                lat_sum_work / queries_work as f64
            },
            latency_max_overall: lat_max,
            report_bits_mean: report.report_bits_mean(),
            effectiveness: report.effectiveness(),
        };
        println!(
            "{:>6} {:>8.4} {:>8.4} {:>10.2} {:>10.2} {:>12.1} {:>8.4}",
            row.strategy,
            row.h_workaholics,
            row.h_sleepers,
            row.latency_mean_workaholics,
            row.latency_max_overall,
            row.report_bits_mean,
            row.effectiveness
        );
        assert!(
            row.latency_max_overall <= params.latency_secs + 1e-9,
            "§2's synchronous-latency guarantee: every query answered within L"
        );
        rows.push(row);
    }
    println!();
    println!("AT abandons the sleepers (h_sleep ≈ AT's homogeneous s=0.8 value)");
    println!("while its report stays tiny; SIG/TS carry the sleepers at a fixed");
    println!("report tax on everyone. Max latency ≤ L = {} s for every strategy —", params.latency_secs);
    println!("the §2 guarantee of synchronous broadcasting, measured.");

    match sw_experiments::write_json("mixed_population", &rows) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
