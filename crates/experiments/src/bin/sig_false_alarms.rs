//! E14: Monte-Carlo measurement of SIG's false-alarm and missed-
//! detection rates against the analytical quantities of §4.5 — the
//! Chernoff bound of Eq. 22 and the detection guarantee of the
//! degree-normalized decoder (see `sw_signature::syndrome` for why the
//! operational threshold differs from the paper's literal `K·m·p`).

use sleepers::signature::{
    combine, item_signature, SigPlan, SubsetFamily, SyndromeDecoder,
};
use sleepers::sim::{MasterSeed, StreamId};

#[derive(serde::Serialize)]
struct Row {
    f: u32,
    actual_differing: u32,
    trials: u32,
    false_alarm_rate: f64,
    missed_detection_rate: f64,
    chernoff_bound_k2: f64,
}

fn experiment(f: u32, d: u32, trials: u32) -> Row {
    let n = 1_000u64;
    let g = 16;
    let cache_size = 30usize;
    let plan = SigPlan::new(f, g, n, 0.05, SigPlan::DEFAULT_K);
    let mut rng = MasterSeed(0xE14).stream(StreamId::Custom { tag: (f as u64) << 32 | d as u64 });

    let mut false_alarms = 0u64;
    let mut valid_checked = 0u64;
    let mut missed = 0u64;
    let mut invalid_checked = 0u64;

    for trial in 0..trials {
        let family = SubsetFamily::new(0xBEEF ^ trial as u64, plan.m, f);
        let decoder = SyndromeDecoder::new(family, plan);
        let values: Vec<u64> = (0..n).map(|i| i * 77 + 13).collect();
        // Client caches items 0..cache_size with current signatures.
        let cached: Vec<u64> = (0..cache_size as u64).collect();
        let broadcast_before: Vec<u64> = (0..plan.m)
            .map(|j| {
                combine(
                    (0..n)
                        .filter(|&i| family.contains(j, i))
                        .map(|i| item_signature(i, values[i as usize], g)),
                )
            })
            .collect();
        // d items change: the first ⌈d/3⌉ inside the cache, the rest
        // outside (so both false alarms and detections are exercised).
        let inside = (d as usize / 3).max(usize::from(d > 0)).min(cache_size);
        let mut new_values = values.clone();
        for c in 0..inside as u64 {
            new_values[c as usize] ^= (0xDEAD_0000 + rng.next_u64()) | 1;
        }
        for r in 0..(d as u64).saturating_sub(inside as u64) {
            let idx = (cache_size as u64 + 100 + r) % n;
            new_values[idx as usize] ^= (0xBEEF_0000 + rng.next_u64()) | 1;
        }
        let broadcast_after: Vec<u64> = (0..plan.m)
            .map(|j| {
                combine(
                    (0..n)
                        .filter(|&i| family.contains(j, i))
                        .map(|i| item_signature(i, new_values[i as usize], g)),
                )
            })
            .collect();
        let diag = decoder.diagnose(
            &cached,
            |j| Some(broadcast_before[j as usize]),
            &broadcast_after,
        );
        for &item in &cached {
            let truly_changed = item < inside as u64;
            let flagged = diag.invalidated.contains(&item);
            if truly_changed {
                invalid_checked += 1;
                if !flagged {
                    missed += 1;
                }
            } else {
                valid_checked += 1;
                if flagged {
                    false_alarms += 1;
                }
            }
        }
    }

    Row {
        f,
        actual_differing: d,
        trials,
        false_alarm_rate: false_alarms as f64 / valid_checked.max(1) as f64,
        missed_detection_rate: missed as f64 / invalid_checked.max(1) as f64,
        chernoff_bound_k2: plan.false_alarm_bound,
    }
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let trials = if fast { 10 } else { 60 };

    println!("E14 — SIG diagnosis quality (Monte Carlo, n=1000, g=16, cache=30)");
    println!(
        "{:>4} {:>8} {:>8} {:>14} {:>14} {:>14}",
        "f", "actual d", "trials", "false alarm", "missed", "Chernoff(K)"
    );
    let mut rows = Vec::new();
    for (f, d) in [(10u32, 1u32), (10, 5), (10, 10), (10, 30), (20, 10), (20, 60)] {
        let row = experiment(f, d, trials);
        println!(
            "{:>4} {:>8} {:>8} {:>14.4} {:>14.4} {:>14.6}",
            row.f,
            row.actual_differing,
            row.trials,
            row.false_alarm_rate,
            row.missed_detection_rate,
            row.chernoff_bound_k2
        );
        rows.push(row);
    }
    println!();
    println!("Shape checks (paper §3.3/§4.5):");
    println!("  * d ≤ f: false alarms rare, detections ~certain;");
    println!("  * d > f: decoder returns a SUPERSET — false alarms climb,");
    println!("    detections stay (safe direction).");

    match sw_experiments::write_json("sig_false_alarms", &rows) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
