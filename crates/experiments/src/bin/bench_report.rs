//! Machine-readable performance report (`BENCH_report.json`).
//!
//! Three wall-clock measurements of the hot-path overhaul:
//!
//! 1. **Figure grid**: the Figure-3 sweep grid (x × strategy cells)
//!    through [`ParallelRunner`] at 1 thread vs all available threads.
//!    Cells are independent and identically seeded either way (the
//!    determinism tests pin byte-identical output), so the speedup is
//!    the runner's parallel efficiency × available cores.
//! 2. **Per-interval loop**: the current cell driver (columnar
//!    struct-of-arrays fleet, single-pass prepared report kernels,
//!    wake-run scheduling, zero-copy report charge) vs a re-creation
//!    of the pre-overhaul loop — the seed's three-lookup TS report
//!    handler, hashed per-item caches, and a per-interval deep clone
//!    of the payload — swept over the sleep probability `s`.
//!
//!    Both drivers consume the *identical* random streams
//!    (`Hotspot{idx}`/`Queries{idx}`/`Sleep{idx}` per client,
//!    `Database`/`Updates` from the protocol seed) and the channel is
//!    given enough bandwidth that it never defers an exchange, so the
//!    two runs execute the same workload — enforced, not assumed: the
//!    measured windows must agree exactly on (queries, hits, misses)
//!    or the bench aborts. Earlier revisions drew legacy hotspots and
//!    queries from different streams and ran the current driver
//!    through its cold-start saturation transient, which is why their
//!    hit ratios diverged (0.68 cumulative vs 0.99): the 0.68 was a
//!    cumulative average dragged down by a queue-draining start-up
//!    phase the legacy driver never modeled.
//! 3. **Scale runs**: the columnar sweep at 100k (and, outside gate
//!    mode, 1M) clients in one cell, timed at 1 sweep thread vs all
//!    available — the intra-cell parallel speedup.
//!
//! Usage: `cargo run --release -p sw-experiments --bin bench_report`.
//! Knobs: `SW_BENCH_INTERVALS` / `SW_BENCH_WARMUP` /
//! `SW_BENCH_CLIENTS` / `SW_BENCH_LAMBDA_SCALE`.
//! `SW_BENCH_GATE=1` runs only the s = 0.5 leg (no artifact rewrite)
//! and exits nonzero if the current driver is slower than the legacy
//! loop — the regression gate wired into `scripts/check.sh`.

use std::collections::HashMap;
use std::time::Instant;

use sleepers::client::handler::{time_from_micros, time_to_micros};
use sleepers::client::{Cache, MobileUnit, MuConfig, ProcessOutcome, ReplacementPolicy, ReportHandler};
use sleepers::prelude::*;
use sleepers::server::{Database, ItemId, ReportBuilder, TsBuilder, UpdateEngine, UplinkProcessor};
use sleepers::sim::{SimDuration, SimTime, StreamId};
use sleepers::wireless::FramePayload;
use sleepers::workload::HotspotSpec;
use sw_experiments::figures::{run_figure, FigureSpec, SimSettings};

const CLIENTS: usize = 1_000;
const N_ITEMS: u64 = 2_000;
/// Per-client hot spot (≈ steady-state cache size).
const HOTSPOT: usize = 30;
/// Swept sleep probabilities: workaholic cell → paper's sleeper cell.
const SLEEPS: [f64; 3] = [0.5, 0.9, 0.99];
const SEED: u64 = 11;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn client_count() -> usize {
    env_u64("SW_BENCH_CLIENTS", CLIENTS as u64) as usize
}

fn horizon_intervals() -> u64 {
    env_u64("SW_BENCH_INTERVALS", 400)
}

/// Unmeasured intervals discarded before timing/counting starts. Long
/// enough that every client has been awake, filled its hot spot, and
/// settled into the TS steady state.
fn warmup_intervals() -> u64 {
    env_u64("SW_BENCH_WARMUP", 120)
}

fn gate_mode() -> bool {
    std::env::var("SW_BENCH_GATE").is_ok_and(|v| v != "0")
}

fn bench_params(sleep_s: f64) -> ScenarioParams {
    let mut p = ScenarioParams::scenario1();
    p.n_items = N_ITEMS;
    // Wide-open channel: the cold-start fetch burst (≈ awake clients ×
    // hot-spot items exchanges) must clear within its own interval, so
    // the channel never defers an exchange and the legacy driver —
    // which has no channel — sees the exact same install schedule.
    // This is the precondition for the workload-identity assertion.
    p.bandwidth_bps *= 2_048;
    if let Ok(scale) = std::env::var("SW_BENCH_LAMBDA_SCALE") {
        p.lambda *= scale.parse::<f64>().unwrap_or(1.0);
    }
    p.with_s(sleep_s)
}

/// What a measured window observed, for the workload-identity check.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct Counts {
    queries: u64,
    hits: u64,
    misses: u64,
}

impl Counts {
    fn hit_ratio(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// The current per-interval loop: the real cell driver (columnar fleet
/// auto-selected for this TS configuration). Warm-up intervals are run
/// and discarded, then the measured horizon is timed. With
/// `SW_OBSERVE=1` (and the `observe` cargo feature) the run also
/// records a per-interval series and writes it next to the JSON
/// report — the timing then deliberately includes the recorder, which
/// is how observation overhead itself gets measured.
fn run_current(sleep_s: f64, warmup: u64, intervals: u64) -> (f64, Counts) {
    let mut cfg = CellConfig::new(bench_params(sleep_s))
        .with_clients(client_count())
        .with_hotspot_size(HOTSPOT)
        .with_seed(SEED);
    if std::env::var("SW_OBSERVE").is_ok() {
        cfg = cfg.with_observe(format!("bench:s={sleep_s}"));
    }
    let mut sim =
        CellSimulation::new(cfg, Strategy::BroadcastTimestamps).expect("bench cell constructs");
    sim.run(warmup).expect("bench warmup runs");
    sim.reset_metrics();
    let start = Instant::now();
    let report = sim.run(intervals).expect("bench cell runs");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        report.overflow_exchanges, 0,
        "the bench channel must never defer an exchange (s={sleep_s}); \
         widen the bandwidth headroom"
    );
    if let Some(snap) = &report.observe {
        match sw_experiments::results::write_text(
            &format!("BENCH_series_s{sleep_s}.csv"),
            &snap.series_csv(),
        ) {
            Ok(f) => eprintln!("wrote {}", f.path.display()),
            Err(e) => eprintln!("could not write bench series: {e}"),
        }
    }
    let counts = Counts {
        queries: report.queries_posed,
        hits: report.hit_events,
        misses: report.miss_events,
    };
    (secs, counts)
}

/// The seed's `TsHandler::process`, verbatim: a per-report hash map of
/// the entries, then a `sorted_items` walk doing a `peek` plus a
/// `restamp`/`remove` per cached item — an id-vector allocation and
/// three table lookups per entry, all replaced in the overhaul by one
/// single-pass walk over a prepared, binary-searched slice.
struct SeedTsHandler {
    window: SimDuration,
}

impl ReportHandler for SeedTsHandler {
    fn name(&self) -> &'static str {
        "TS(seed)"
    }

    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        t_l: Option<SimTime>,
    ) -> ProcessOutcome {
        let (report_ts_micros, entries) = match payload {
            FramePayload::TimestampReport {
                report_ts_micros,
                entries,
            } => (*report_ts_micros, entries),
            other => panic!("TS handler fed a non-TS report: {other:?}"),
        };
        let t_i = time_from_micros(report_ts_micros);
        let gap_too_large = match t_l {
            Some(t_l) => t_i.saturating_duration_since(t_l) > self.window,
            None => !cache.is_empty(),
        };
        if gap_too_large {
            cache.clear();
            return ProcessOutcome {
                report_time: t_i,
                dropped_all: true,
                invalidated: Vec::new(),
                revalidated: 0,
            };
        }
        let reported: HashMap<ItemId, u64> = entries.iter().copied().collect();
        let mut invalidated = Vec::new();
        for item in cache.sorted_items() {
            let cached_micros =
                time_to_micros(cache.peek(item).expect("iterating cached items").timestamp);
            match reported.get(&item) {
                Some(&t_j) if cached_micros < t_j => {
                    cache.remove(item);
                    invalidated.push(item);
                }
                _ => cache.restamp(item, t_i),
            }
        }
        let revalidated = cache.len();
        ProcessOutcome {
            report_time: t_i,
            dropped_all: false,
            invalidated,
            revalidated,
        }
    }
}

/// The pre-overhaul per-interval loop, re-created from the seed's
/// `step()`: a full-fleet scan every interval, hashed per-item caches
/// (`item_universe: None`), the seed's three-lookup TS report
/// processing, and a per-interval deep clone of the payload into the
/// wire frame.
///
/// Unlike earlier revisions of this bench, the driver consumes the
/// *same* streams the cell driver does — `Hotspot{idx}` through
/// [`HotspotSpec`], `Queries{idx}` into [`MobileUnit::new`] and the
/// arrival draws, `Sleep{idx}` for whole sleep runs, and the protocol
/// seed's `Database`/`Updates` streams — so both drivers run one
/// workload and their measured windows must agree exactly.
fn run_legacy(sleep_s: f64, warmup: u64, intervals: u64) -> (f64, Counts) {
    let params = bench_params(sleep_s);
    let latency = SimDuration::from_secs(params.latency_secs);
    // Same retention the cell driver derives: cover the TS window kL.
    let retention = latency.scaled((params.k as f64 + 2.0).max(4.0));
    let mut db_rng = MasterSeed(SEED).stream(StreamId::Database);
    let mut db = Database::new(N_ITEMS, |_| db_rng.next_u64(), retention);
    let mut update_rng = MasterSeed(SEED).stream(StreamId::Updates);
    let mut engine = UpdateEngine::new(N_ITEMS, params.mu, &mut update_rng);
    let mut builder = TsBuilder::new(latency, params.k);
    let mut uplink = UplinkProcessor::new();
    let spec = HotspotSpec::new(N_ITEMS, HOTSPOT, Popularity::Uniform);

    let n_clients = client_count();
    let mut query_rngs = Vec::with_capacity(n_clients);
    let mut sleep_rngs = Vec::with_capacity(n_clients);
    // Interval index at which each client next wakes (u64::MAX: never).
    let mut next_wake = Vec::with_capacity(n_clients);
    let mut clients: Vec<MobileUnit> = (0..n_clients as u64)
        .map(|id| {
            let mut hotspot_rng = MasterSeed(SEED).stream(StreamId::Hotspot { index: id });
            let hotspot = spec.draw(&mut hotspot_rng);
            let mut query_rng = MasterSeed(SEED).stream(StreamId::Queries { index: id });
            let handler: Box<dyn ReportHandler + Send> = Box::new(SeedTsHandler {
                window: latency.scaled(params.k as f64),
            });
            let mut mu = MobileUnit::new(
                MuConfig {
                    id,
                    hotspot,
                    query_rate_per_item: params.lambda,
                    sleep_probability: sleep_s,
                    cache_capacity: None,
                    replacement: ReplacementPolicy::Lru,
                    replacement_window: SimDuration::ZERO,
                    piggyback_hits: false,
                    item_universe: None,
                },
                handler,
                &mut query_rng,
            );
            let mut sleep_rng = MasterSeed(SEED).stream(StreamId::Sleep { index: id });
            let k0 = mu.draw_sleep_run(&mut sleep_rng);
            if k0 > 0 {
                mu.enter_sleep();
            }
            next_wake.push(1u64.saturating_add(k0));
            query_rngs.push(query_rng);
            sleep_rngs.push(sleep_rng);
            mu
        })
        .collect();

    let mut measuring = false;
    let mut start = Instant::now();
    let mut secs = 0.0;
    for i in 1..=warmup + intervals {
        if i == warmup + 1 {
            for mu in &mut clients {
                mu.reset_stats();
            }
            measuring = true;
            start = Instant::now();
        }
        let from = SimTime::from_secs((i - 1) as f64 * params.latency_secs);
        let to = SimTime::from_secs(i as f64 * params.latency_secs);
        engine.advance(&mut db, from, to, &mut update_rng);
        let payload = builder.build(i, to, &db);
        // Old loop: the payload was deep-cloned into the wire frame
        // every interval (pre-`Arc`, pre-zero-copy charge).
        let frame_copy = std::hint::black_box(payload.clone());
        drop(frame_copy);
        // Old loop: a full-fleet scan every interval. (The sleep draws
        // themselves come as whole runs from the same `Sleep{idx}`
        // streams the cell driver consumes — the workload identity
        // requires it — so the scan is cheaper here than the seed's
        // per-sleeper coin flip was, making the speedups conservative.)
        for (idx, client) in clients.iter_mut().enumerate() {
            if next_wake[idx] != i {
                continue;
            }
            client.begin_awake_interval(from, to, &mut query_rngs[idx]);
            let outcome = client.hear_report_and_answer(&payload);
            for (item, _) in outcome.uplink_requests {
                let ans = uplink.answer(&db, item, to, None);
                client.install_answer(ans);
            }
            let k = client.draw_sleep_run(&mut sleep_rngs[idx]);
            if k > 0 {
                client.enter_sleep();
            }
            next_wake[idx] = if k == u64::MAX { u64::MAX } else { i + 1 + k };
        }
        db.prune_log(to);
    }
    if measuring {
        secs = start.elapsed().as_secs_f64();
    }

    let counts = clients.iter().fold(
        Counts {
            queries: 0,
            hits: 0,
            misses: 0,
        },
        |acc, c| {
            let s = c.stats();
            Counts {
                queries: acc.queries + s.queries_posed,
                hits: acc.hits + s.hit_events,
                misses: acc.misses + s.miss_events,
            }
        },
    );
    (secs, counts)
}

/// The bounded-cache leg: the same columnar TS cell as `run_current`,
/// but with capacity clamped to half the hot spot, timed per interval.
/// Compared against the unbounded run it isolates what capacity
/// enforcement — victim ranking at every install plus the ghost
/// table — costs on the columnar hot path. `None` runs the unbounded
/// baseline through the identical code path for a fair denominator.
fn run_bounded(
    bound: Option<(usize, ReplacementPolicy)>,
    warmup: u64,
    intervals: u64,
) -> (f64, f64, u64) {
    let mut cfg = CellConfig::new(bench_params(0.5))
        .with_clients(client_count())
        .with_hotspot_size(HOTSPOT)
        .with_seed(SEED);
    if let Some((cap, policy)) = bound {
        cfg = cfg.with_cache_capacity(cap).with_replacement(policy);
    }
    let mut sim =
        CellSimulation::new(cfg, Strategy::BroadcastTimestamps).expect("bounded cell constructs");
    assert!(
        sim.is_columnar(),
        "the bounded bench must exercise the columnar fleet"
    );
    sim.run(warmup).expect("bounded warmup runs");
    sim.reset_metrics();
    let start = Instant::now();
    let report = sim.run(intervals).expect("bounded cell runs");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(report.overflow_exchanges, 0, "bounded channel saturated");
    (
        secs / intervals as f64 * 1e6,
        report.hit_ratio(),
        report.capacity.evictions,
    )
}

/// Columnar sweep at fleet scale: one cell, `clients` units, timed per
/// interval at a given sweep-thread count. Bandwidth and query rate
/// scale with the fleet so the per-client workload shape is preserved
/// without the channel deferring exchanges.
fn run_at_scale(clients: usize, threads: usize, warmup: u64, intervals: u64) -> (f64, f64) {
    let mut params = bench_params(0.5);
    params.bandwidth_bps *= (clients as u64 / 1_000).max(1);
    // Tame the raw query volume (λ·H·L = 30 per awake client-interval
    // at scenario-1 rates): the scale runs measure fleet-sweep
    // throughput, not query generation.
    params.lambda *= if clients >= 1_000_000 { 0.05 } else { 0.1 };
    let cfg = CellConfig::new(params)
        .with_clients(clients)
        .with_hotspot_size(HOTSPOT)
        .with_seed(SEED)
        .with_sweep_threads(threads);
    let mut sim =
        CellSimulation::new(cfg, Strategy::BroadcastTimestamps).expect("scale cell constructs");
    sim.run(warmup).expect("scale warmup runs");
    sim.reset_metrics();
    let start = Instant::now();
    let report = sim.run(intervals).expect("scale cell runs");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(report.overflow_exchanges, 0, "scale channel saturated");
    (secs / intervals as f64 * 1e6, report.hit_ratio())
}

fn time_figure_grid(threads: &str) -> (f64, usize) {
    std::env::set_var("SW_THREADS", threads);
    let spec = FigureSpec::for_figure(3);
    let start = Instant::now();
    let result = run_figure(&spec, SimSettings::quick());
    let secs = start.elapsed().as_secs_f64();
    std::env::remove_var("SW_THREADS");
    (secs, result.simulated.len())
}

/// One sleep-probability leg: both drivers, workload identity
/// asserted, speedup computed.
fn per_interval_leg(s: f64, warmup: u64, intervals: u64) -> (serde_json::Value, f64) {
    eprintln!("per-interval loop at s={s}, current driver, {warmup}+{intervals} intervals ...");
    let (current_secs, current) = run_current(s, warmup, intervals);
    eprintln!("per-interval loop at s={s}, legacy-style driver, {warmup}+{intervals} intervals ...");
    let (legacy_secs, legacy) = run_legacy(s, warmup, intervals);
    assert_eq!(
        current, legacy,
        "the two drivers must execute the same workload at s={s}; \
         a stream or scheduling divergence crept back in"
    );
    let speedup = legacy_secs / current_secs;
    let leg = serde_json::json!({
        "sleep_probability": s,
        "legacy_us_per_interval": legacy_secs / intervals as f64 * 1e6,
        "current_us_per_interval": current_secs / intervals as f64 * 1e6,
        "single_thread_speedup": speedup,
        "hit_ratio": current.hit_ratio(),
        "workload_match": true,
        "queries": current.queries,
    });
    (leg, speedup)
}

/// The short git revision the binary is benchmarked at, `"unknown"`
/// outside a git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Run metadata stamped into both artifacts: a bench number is only
/// interpretable against the host's core count, the revision it ran
/// at, and which instrumentation features were compiled in.
fn run_metadata(auto_threads: usize) -> serde_json::Value {
    let mut features = Vec::new();
    if cfg!(feature = "observe") {
        features.push("observe");
    }
    if cfg!(feature = "faults") {
        features.push("faults");
    }
    serde_json::json!({
        "available_parallelism": auto_threads,
        "git_rev": git_rev(),
        "features": features,
        "profile": if cfg!(debug_assertions) { "dev" } else { "release" },
    })
}

fn main() {
    let intervals = horizon_intervals();
    let warmup = warmup_intervals();
    let auto_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if gate_mode() {
        // The check.sh regression gate: one leg, hard threshold, no
        // artifact rewrite.
        let (leg, speedup) = per_interval_leg(0.5, warmup, intervals);
        let gate = serde_json::json!({
            "host": run_metadata(auto_threads),
            "leg": leg,
        });
        let pretty = serde_json::to_string_pretty(&gate).expect("serializes");
        // The gate writes its own artifact instead of clobbering the
        // committed full report with a single-leg run.
        std::fs::write("BENCH_gate.json", &pretty).expect("writes BENCH_gate.json");
        println!("{pretty}");
        if speedup < 1.0 {
            eprintln!(
                "BENCH GATE FAILED: current driver is {:.2}x the legacy loop at s=0.5 \
                 (must be >= 1.0x)",
                speedup
            );
            std::process::exit(1);
        }
        eprintln!("bench gate passed: {speedup:.2}x vs legacy at s=0.5");
        return;
    }

    eprintln!("figure grid (fig 3, quick settings), 1 thread ...");
    let (grid_1, cells) = time_figure_grid("1");
    eprintln!("figure grid, {auto_threads} thread(s) ...");
    let (grid_auto, _) = time_figure_grid(&auto_threads.to_string());

    let mut sweep = Vec::new();
    for s in SLEEPS {
        let (leg, _) = per_interval_leg(s, warmup, intervals);
        sweep.push(leg);
    }

    eprintln!("bounded-cache leg: unbounded baseline, {warmup}+{intervals} intervals ...");
    let (base_us, base_hit, _) = run_bounded(None, warmup, intervals);
    let mut bounded = Vec::new();
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::WindowAge] {
        let cap = HOTSPOT / 2;
        eprintln!("bounded-cache leg: capacity {cap}, {} ...", policy.name());
        let (us, hit, evictions) = run_bounded(Some((cap, policy)), warmup, intervals);
        bounded.push(serde_json::json!({
            "policy": policy.name(),
            "capacity": cap,
            "us_per_interval": us,
            "enforcement_overhead": us / base_us,
            "hit_ratio": hit,
            "evictions": evictions,
        }));
    }

    let mut scale = Vec::new();
    for &clients in &[100_000usize, 1_000_000] {
        let (scale_warmup, scale_intervals) = if clients >= 1_000_000 {
            (5u64, 10u64)
        } else {
            (10, 20)
        };
        eprintln!("scale run: {clients} clients, 1 sweep thread ...");
        let (us_1, hit) = run_at_scale(clients, 1, scale_warmup, scale_intervals);
        // On a single-core host the "all threads" leg is the identical
        // configuration; rerunning it would report run-to-run variance
        // as a parallel speedup.
        let us_auto = if auto_threads > 1 {
            eprintln!("scale run: {clients} clients, {auto_threads} sweep thread(s) ...");
            run_at_scale(clients, auto_threads, scale_warmup, scale_intervals).0
        } else {
            us_1
        };
        scale.push(serde_json::json!({
            "clients": clients,
            "intervals": scale_intervals,
            "threads_1_us_per_interval": us_1,
            "threads_auto": auto_threads,
            "threads_auto_us_per_interval": us_auto,
            "parallel_speedup": us_1 / us_auto,
            "hit_ratio": hit,
        }));
    }

    let report = serde_json::json!({
        "host": run_metadata(auto_threads),
        "figure_grid": serde_json::json!({
            "figure": 3,
            "cells": cells,
            "threads_1_secs": grid_1,
            "threads_auto": auto_threads,
            "threads_auto_secs": grid_auto,
            "multi_thread_speedup": grid_1 / grid_auto,
            "note": "cells are independent and deterministically seeded; speedup \
                     tracks available cores (≈1.0 on a 1-core host by construction)",
        }),
        "per_interval": serde_json::json!({
            "strategy": "TS",
            "clients": client_count(),
            "n_items": N_ITEMS,
            "warmup_intervals": warmup,
            "intervals": intervals,
            "sweep": serde_json::Value::Array(sweep),
            "note": "both drivers consume identical random streams on a channel \
                     wide enough never to defer an exchange; each leg asserts the \
                     measured windows saw the same (queries, hits, misses), so the \
                     timings compare one workload. The legacy driver re-creates the \
                     pre-overhaul costs (seed TS handler's per-client hash map, \
                     hashed caches, per-interval deep payload clone, full-fleet \
                     scan) but skips the simulator's channel/energy/safety \
                     accounting, so the speedups are conservative",
        }),
        "bounded": serde_json::json!({
            "strategy": "TS",
            "sleep_probability": 0.5,
            "clients": client_count(),
            "hotspot": HOTSPOT,
            "unbounded_us_per_interval": base_us,
            "unbounded_hit_ratio": base_hit,
            "runs": serde_json::Value::Array(bounded),
            "note": "capacity clamped to half the hot spot on the columnar TS \
                     cell; enforcement_overhead is bounded-vs-unbounded wall \
                     clock through the identical driver — victim ranking and \
                     ghost bookkeeping plus the extra uplink exchanges the \
                     halved hit ratio genuinely costs. The zero-cost claim for \
                     the *unbounded* path is pinned separately by the bench \
                     gate and hot_guard",
        }),
        "scale": serde_json::json!({
            "strategy": "TS",
            "sleep_probability": 0.5,
            "n_items": N_ITEMS,
            "runs": serde_json::Value::Array(scale),
            "note": "columnar intra-cell sweep at fleet scale; parallel speedup \
                     tracks available cores (exactly 1.0 on a 1-core host, where \
                     the all-threads leg is the same configuration and is not \
                     rerun — the chunked sweep is byte-identical at any thread \
                     count, so the figure is the headroom, not a simulation \
                     change)",
        }),
        "microbenches": "cargo bench -p sw-bench --bench hot_paths",
    });
    let path = "BENCH_report.json";
    std::fs::write(path, serde_json::to_string_pretty(&report).expect("serializes"))
        .expect("writes BENCH_report.json");
    println!("{}", serde_json::to_string_pretty(&report).expect("serializes"));
    println!("wrote {path}");
}
