//! Machine-readable performance report (`BENCH_report.json`).
//!
//! Two wall-clock measurements of the hot-path overhaul:
//!
//! 1. **Figure grid**: the Figure-3 sweep grid (x × strategy cells)
//!    through [`ParallelRunner`] at 1 thread vs all available threads.
//!    Cells are independent and identically seeded either way (the
//!    determinism tests pin byte-identical output), so the speedup is
//!    the runner's parallel efficiency × available cores.
//! 2. **Per-interval loop**: the current cell driver (dense per-item
//!    tables, single-pass report handlers, hybrid sleeper skip-list,
//!    zero-copy report charge) vs a faithful re-creation of the
//!    pre-overhaul loop — the seed's three-lookup TS report handler,
//!    hashed per-item caches, and a per-interval deep clone of the
//!    payload — swept over the sleep probability `s`.
//!    The legacy driver runs *less* total machinery than the simulator
//!    (no channel/energy accounting), so the reported speedup is a
//!    conservative lower bound.
//!
//! Usage: `cargo run --release -p sw-experiments --bin bench_report`
//! (optionally `SW_BENCH_INTERVALS=N` to change the horizon).

use std::collections::HashMap;
use std::time::Instant;

use sleepers::client::handler::{time_from_micros, time_to_micros};
use sleepers::client::{Cache, MobileUnit, MuConfig, ProcessOutcome, ReportHandler};
use sleepers::prelude::*;
use sleepers::server::{Database, ItemId, ReportBuilder, TsBuilder, UpdateEngine, UplinkProcessor};
use sleepers::sim::{MasterSeed, SimDuration, SimTime, StreamId};
use sleepers::wireless::FramePayload;
use sw_experiments::figures::{run_figure, FigureSpec, SimSettings};

const CLIENTS: usize = 1_000;
const N_ITEMS: u64 = 2_000;
/// Per-client hot spot (≈ steady-state cache size).
const HOTSPOT: usize = 30;
/// Swept sleep probabilities: workaholic cell → paper's sleeper cell.
const SLEEPS: [f64; 3] = [0.5, 0.9, 0.99];

fn client_count() -> usize {
    std::env::var("SW_BENCH_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CLIENTS)
}

fn horizon_intervals() -> u64 {
    std::env::var("SW_BENCH_INTERVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400)
}

fn bench_params(sleep_s: f64) -> ScenarioParams {
    let mut p = ScenarioParams::scenario1();
    p.n_items = N_ITEMS;
    // Headroom so the TS report fits the broadcast interval at this
    // item count; this is a throughput bench, not a figure run.
    p.bandwidth_bps *= 2;
    if let Ok(scale) = std::env::var("SW_BENCH_LAMBDA_SCALE") {
        p.lambda *= scale.parse::<f64>().unwrap_or(1.0);
    }
    p.with_s(sleep_s)
}

/// The current per-interval loop: the real cell driver. With
/// `SW_OBSERVE=1` (and the `observe` cargo feature) the run also
/// records a per-interval series and writes it next to the JSON
/// report — the timing then deliberately includes the recorder, which
/// is how observation overhead itself gets measured.
fn run_current(sleep_s: f64, intervals: u64) -> (f64, f64) {
    let mut cfg = CellConfig::new(bench_params(sleep_s))
        .with_clients(client_count())
        .with_hotspot_size(HOTSPOT)
        .with_seed(11);
    if std::env::var("SW_OBSERVE").is_ok() {
        cfg = cfg.with_observe(format!("bench:s={sleep_s}"));
    }
    let mut sim =
        CellSimulation::new(cfg, Strategy::BroadcastTimestamps).expect("bench cell constructs");
    let start = Instant::now();
    let report = sim.run(intervals).expect("bench cell runs");
    let secs = start.elapsed().as_secs_f64();
    if let Some(snap) = &report.observe {
        match sw_experiments::results::write_text(
            &format!("BENCH_series_s{sleep_s}.csv"),
            &snap.series_csv(),
        ) {
            Ok(f) => eprintln!("wrote {}", f.path.display()),
            Err(e) => eprintln!("could not write bench series: {e}"),
        }
    }
    (secs, report.hit_ratio())
}

/// The seed's `TsHandler::process`, verbatim: a per-report hash map of
/// the entries, then a `sorted_items` walk doing a `peek` plus a
/// `restamp`/`remove` per cached item — an id-vector allocation and
/// three table lookups per entry, all replaced in the overhaul by one
/// `retain_entries` pass over a binary-searched slice.
struct SeedTsHandler {
    window: SimDuration,
}

impl ReportHandler for SeedTsHandler {
    fn name(&self) -> &'static str {
        "TS(seed)"
    }

    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        t_l: Option<SimTime>,
    ) -> ProcessOutcome {
        let (report_ts_micros, entries) = match payload {
            FramePayload::TimestampReport {
                report_ts_micros,
                entries,
            } => (*report_ts_micros, entries),
            other => panic!("TS handler fed a non-TS report: {other:?}"),
        };
        let t_i = time_from_micros(report_ts_micros);
        let gap_too_large = match t_l {
            Some(t_l) => t_i.saturating_duration_since(t_l) > self.window,
            None => !cache.is_empty(),
        };
        if gap_too_large {
            cache.clear();
            return ProcessOutcome {
                report_time: t_i,
                dropped_all: true,
                invalidated: Vec::new(),
                revalidated: 0,
            };
        }
        let reported: HashMap<ItemId, u64> = entries.iter().copied().collect();
        let mut invalidated = Vec::new();
        for item in cache.sorted_items() {
            let cached_micros =
                time_to_micros(cache.peek(item).expect("iterating cached items").timestamp);
            match reported.get(&item) {
                Some(&t_j) if cached_micros < t_j => {
                    cache.remove(item);
                    invalidated.push(item);
                }
                _ => cache.restamp(item, t_i),
            }
        }
        let revalidated = cache.len();
        ProcessOutcome {
            report_time: t_i,
            dropped_all: false,
            invalidated,
            revalidated,
        }
    }
}

/// The pre-overhaul per-interval loop, re-created from the seed's
/// `step()`: every client visited every interval (one Bernoulli sleep
/// draw plus bookkeeping each), hashed per-item caches
/// (`item_universe: None`), the seed's three-lookup TS report
/// processing, and a per-interval deep clone of the payload into the
/// wire frame.
fn run_legacy(sleep_s: f64, intervals: u64) -> (f64, f64) {
    let params = bench_params(sleep_s);
    let latency = SimDuration::from_secs(params.latency_secs);
    let mut db = Database::new(N_ITEMS, |i| i * 13 + 5, latency.scaled(params.k as f64 + 2.0));
    let mut update_rng = MasterSeed(11).stream(StreamId::Updates);
    let mut engine = UpdateEngine::new(N_ITEMS, params.mu, &mut update_rng);
    let mut builder = TsBuilder::new(latency, params.k);
    let mut uplink = UplinkProcessor::new();

    let n_clients = client_count() as u64;
    let mut clients: Vec<MobileUnit> = (0..n_clients)
        .map(|id| {
            let mut rng = MasterSeed(11).stream(StreamId::Queries { index: id });
            let hotspot = rng.sample_distinct(N_ITEMS, HOTSPOT);
            let handler: Box<dyn ReportHandler + Send> = Box::new(SeedTsHandler {
                window: latency.scaled(params.k as f64),
            });
            MobileUnit::new(
                MuConfig {
                    id,
                    hotspot,
                    query_rate_per_item: params.lambda,
                    sleep_probability: sleep_s,
                    cache_capacity: None,
                    piggyback_hits: false,
                    item_universe: None,
                },
                handler,
                &mut rng,
            )
        })
        .collect();
    let mut sleep_rngs: Vec<_> = (0..n_clients)
        .map(|id| MasterSeed(11).stream(StreamId::Sleep { index: id }))
        .collect();
    let mut query_rngs: Vec<_> = (0..n_clients)
        .map(|id| MasterSeed(11).stream(StreamId::Custom { tag: id }))
        .collect();

    let start = Instant::now();
    for i in 1..=intervals {
        let from = SimTime::from_secs((i - 1) as f64 * params.latency_secs);
        let to = SimTime::from_secs(i as f64 * params.latency_secs);
        engine.advance(&mut db, from, to, &mut update_rng);
        let payload = builder.build(i, to, &db);
        // Old loop: the payload was deep-cloned into the wire frame
        // every interval (signatures included, pre-`Arc`).
        let frame_copy = std::hint::black_box(payload.clone());
        drop(frame_copy);
        for (idx, client) in clients.iter_mut().enumerate() {
            // Old loop: every client touched every interval.
            client.begin_interval(from, to, &mut sleep_rngs[idx], &mut query_rngs[idx]);
            if !client.is_awake() {
                let _ = client.skip_report();
                continue;
            }
            let outcome = client.hear_report_and_answer(&payload);
            for (item, _) in outcome.uplink_requests {
                let ans = uplink.answer(&db, item, to, None);
                client.install_answer(ans);
            }
        }
        db.prune_log(to);
    }
    let secs = start.elapsed().as_secs_f64();

    let (hits, misses) = clients.iter().fold((0u64, 0u64), |(h, m), c| {
        (h + c.stats().hit_events, m + c.stats().miss_events)
    });
    let ratio = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    (secs, ratio)
}

fn time_figure_grid(threads: &str) -> (f64, usize) {
    std::env::set_var("SW_THREADS", threads);
    let spec = FigureSpec::for_figure(3);
    let start = Instant::now();
    let result = run_figure(&spec, SimSettings::quick());
    let secs = start.elapsed().as_secs_f64();
    std::env::remove_var("SW_THREADS");
    (secs, result.simulated.len())
}

fn main() {
    let intervals = horizon_intervals();
    let auto_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("figure grid (fig 3, quick settings), 1 thread ...");
    let (grid_1, cells) = time_figure_grid("1");
    eprintln!("figure grid, {auto_threads} thread(s) ...");
    let (grid_auto, _) = time_figure_grid(&auto_threads.to_string());

    let mut sweep = Vec::new();
    for s in SLEEPS {
        eprintln!("per-interval loop at s={s}, current driver, {intervals} intervals ...");
        let (current_secs, current_h) = run_current(s, intervals);
        eprintln!("per-interval loop at s={s}, legacy-style driver, {intervals} intervals ...");
        let (legacy_secs, legacy_h) = run_legacy(s, intervals);
        sweep.push(serde_json::json!({
            "sleep_probability": s,
            "legacy_us_per_interval": legacy_secs / intervals as f64 * 1e6,
            "current_us_per_interval": current_secs / intervals as f64 * 1e6,
            "single_thread_speedup": legacy_secs / current_secs,
            "legacy_hit_ratio": legacy_h,
            "current_hit_ratio": current_h,
        }));
    }

    let report = serde_json::json!({
        "host": serde_json::json!({ "available_parallelism": auto_threads }),
        "figure_grid": serde_json::json!({
            "figure": 3,
            "cells": cells,
            "threads_1_secs": grid_1,
            "threads_auto": auto_threads,
            "threads_auto_secs": grid_auto,
            "multi_thread_speedup": grid_1 / grid_auto,
            "note": "cells are independent and deterministically seeded; speedup \
                     tracks available cores (≈1.0 on a 1-core host by construction)",
        }),
        "per_interval": serde_json::json!({
            "strategy": "TS",
            "clients": client_count(),
            "n_items": N_ITEMS,
            "intervals": intervals,
            "sweep": serde_json::Value::Array(sweep),
            "note": "legacy driver re-creates the pre-overhaul loop (seed report \
                     handler, hashed caches, per-interval deep payload clone) with \
                     LESS total machinery than the simulator, so the speedups are \
                     conservative; the win concentrates where caches are full and \
                     reports do real work (s=0.5) and compresses toward s=1, where \
                     both drivers touch little per interval",
        }),
        "microbenches": "cargo bench -p sw-bench --bench hot_paths",
    });
    let path = "BENCH_report.json";
    std::fs::write(path, serde_json::to_string_pretty(&report).expect("serializes"))
        .expect("writes BENCH_report.json");
    println!("{}", serde_json::to_string_pretty(&report).expect("serializes"));
    println!("wrote {path}");
}
