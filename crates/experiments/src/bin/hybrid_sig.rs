//! E16 (extension): §10's weighted hybrid reports — "the 'hot spot'
//! items can be individually broadcasted, while the rest of the
//! database items would participate in the signatures."
//!
//! Under a Zipf query population, the hybrid strategy is compared
//! against pure AT and pure SIG across the sleep spectrum, and the hot
//! set size is swept to expose the tradeoff: more individually
//! broadcast items help workaholic-style precision on the hottest data,
//! while the signatures keep everything else nap-proof at fixed cost.

use sleepers::prelude::*;
use sleepers::workload::Popularity;

#[derive(serde::Serialize)]
struct Row {
    s: f64,
    strategy: String,
    hot_count: u64,
    hit_ratio: f64,
    effectiveness: f64,
    report_bits_mean: f64,
}

fn run(strategy: Strategy, s: f64, intervals: u64) -> SimulationReport {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 1_000;
    params.mu = 1e-3;
    params.k = 10;
    let params = params.with_s(s);
    let cfg = CellConfig::new(params)
        .with_clients(10)
        .with_hotspot_size(25)
        .with_popularity(Popularity::Zipf { theta: 1.0 })
        .with_seed(0xE16);
    let mut sim = CellSimulation::new(cfg, strategy).expect("valid");
    sim.run_measured(intervals / 4, intervals).expect("fits")
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 150 } else { 600 };

    println!("E16 — §10 hybrid weighted reports under Zipf(1.0) queries");
    println!(
        "{:>5} {:>6} {:>5} {:>9} {:>9} {:>12}",
        "s", "strat", "hot", "h", "e", "B_c bits"
    );
    let mut rows = Vec::new();
    for &s in &[0.0, 0.3, 0.6] {
        let mut entries: Vec<(Strategy, u64)> = vec![
            (Strategy::AmnesicTerminals, 0),
            (Strategy::Signatures, 0),
        ];
        for hot in [10u64, 50, 200] {
            entries.push((Strategy::HybridSig { hot_count: hot }, hot));
        }
        for (strategy, hot) in entries {
            let r = run(strategy, s, intervals);
            println!(
                "{:>5.1} {:>6} {:>5} {:>9.4} {:>9.4} {:>12.1}",
                s,
                strategy.name(),
                hot,
                r.hit_ratio(),
                r.effectiveness(),
                r.report_bits_mean()
            );
            rows.push(Row {
                s,
                strategy: strategy.name().to_string(),
                hot_count: hot,
                hit_ratio: r.hit_ratio(),
                effectiveness: r.effectiveness(),
                report_bits_mean: r.report_bits_mean(),
            });
        }
        println!();
    }
    println!("Expected shape: at s = 0 hybrid ≈ SIG (hot list adds little);");
    println!("for sleepers hybrid beats AT on hit ratio (cold items survive");
    println!("naps) while carrying a smaller id list than full TS would.");

    match sw_experiments::write_json("hybrid_sig", &rows) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
