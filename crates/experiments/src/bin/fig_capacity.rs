//! E18 (extension): bounded caches under memory pressure.
//!
//! The paper's units cache every answer they ever fetch — fine for a
//! 25-item hotspot, wrong for a palmtop. This sweep arms finite cache
//! capacity with each replacement policy (LRU, LFU, strategy-aware
//! window-age) on TS, AT, and SIG across the sleep axis, with a
//! Zipf-skewed query stream so the working set has a genuine head and
//! tail, and measures where memory pressure *reorders* the paper's
//! strategy ranking: a strategy that wins unbounded can lose bounded
//! once eviction churn swamps its recovery rule.
//!
//! A second leg runs the mesh with cooperative misses armed: at equal
//! capacity, a fresh miss served from a neighbor cell's vouched copy
//! (`b_coop` bits over the backbone) replaces a full uplink exchange,
//! and the leg records exactly how many uplink bits that saves.
//!
//! `cargo run --release -p sw-experiments --bin fig_capacity`
//! (`SW_FAST=1` for a coarse sweep).

use sleepers::prelude::*;
use sw_experiments::{cell_seed, ParallelRunner};
use sw_mesh::{CellGraph, MeshConfig, MeshSimulation, MobilityModel};
use sw_sim::MasterSeed;

/// Zipf exponent for the skewed query stream: a pronounced head
/// without making the tail unreachable.
const THETA: f64 = 0.8;

#[derive(serde::Serialize)]
struct Row {
    strategy: String,
    /// Replacement policy name; "unbounded" for the no-capacity
    /// baseline (where the policy never fires).
    policy: String,
    /// Cache capacity in items; `null` for the unbounded baseline.
    capacity: Option<usize>,
    s: f64,
    theta: f64,
    hit_ratio: f64,
    evictions: u64,
    capacity_misses: u64,
    evicted_then_requeried: u64,
    uplink_query_bits: u64,
}

#[derive(Clone, Copy)]
struct Cell {
    strategy: Strategy,
    /// `None` = unbounded baseline.
    bound: Option<(usize, ReplacementPolicy)>,
    s: f64,
    tag: u64,
}

fn run_cell(cell: &Cell, intervals: u64) -> Row {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 500;
    params.mu = 2e-3;
    params.k = 10;
    let params = params.with_s(cell.s);
    let seed = cell_seed(0xCA9A_C17F, &[cell.s.to_bits(), cell.tag]);
    let mut cfg = CellConfig::new(params)
        .with_clients(10)
        .with_hotspot_size(25)
        .with_seed(seed)
        .with_query_zipf(THETA);
    if let Some((cap, policy)) = cell.bound {
        cfg = cfg.with_cache_capacity(cap).with_replacement(policy);
    }
    let mut sim = CellSimulation::new(cfg, cell.strategy).expect("valid config");
    let r = sim.run_measured(intervals / 4, intervals).expect("fits");
    Row {
        strategy: cell.strategy.name().to_string(),
        policy: match cell.bound {
            Some((_, policy)) => policy.name().to_string(),
            None => "unbounded".to_string(),
        },
        capacity: cell.bound.map(|(cap, _)| cap),
        s: cell.s,
        theta: THETA,
        hit_ratio: r.hit_ratio(),
        evictions: r.capacity.evictions,
        capacity_misses: r.capacity.capacity_misses,
        evicted_then_requeried: r.capacity.evicted_then_requeried,
        uplink_query_bits: r.traffic.query_bits,
    }
}

/// One (capacity, policy, s) cell where the bounded hit-ratio ranking
/// of TS/AT/SIG differs from the unbounded ranking at the same s.
#[derive(serde::Serialize)]
struct Flip {
    s: f64,
    capacity: usize,
    policy: String,
    unbounded_order: Vec<String>,
    bounded_order: Vec<String>,
}

/// Strategies ranked by descending hit ratio within one config cell.
fn ranking<'a>(rows: impl Iterator<Item = &'a Row>) -> Vec<String> {
    let mut ranked: Vec<(&str, f64)> = rows.map(|r| (r.strategy.as_str(), r.hit_ratio)).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    ranked.into_iter().map(|(name, _)| name.to_string()).collect()
}

fn find_flips(rows: &[Row]) -> Vec<Flip> {
    let mut flips = Vec::new();
    let mut cells: Vec<(f64, usize, &str)> = rows
        .iter()
        .filter_map(|r| Some((r.s, r.capacity?, r.policy.as_str())))
        .collect();
    cells.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(b.2)));
    cells.dedup();
    for (s, cap, policy) in cells {
        let unbounded = ranking(rows.iter().filter(|r| r.s == s && r.capacity.is_none()));
        let bounded = ranking(
            rows.iter()
                .filter(|r| r.s == s && r.capacity == Some(cap) && r.policy == policy),
        );
        if unbounded != bounded {
            flips.push(Flip {
                s,
                capacity: cap,
                policy: policy.to_string(),
                unbounded_order: unbounded,
                bounded_order: bounded,
            });
        }
    }
    flips
}

/// The cooperative-miss leg: one mesh with coop armed, one without,
/// both at the same per-unit capacity. The coop mesh serves part of
/// its misses from neighbor directories at `b_coop` bits instead of a
/// full uplink exchange.
#[derive(serde::Serialize)]
struct CoopLeg {
    capacity: usize,
    uplink_bits_plain: u64,
    uplink_bits_coop: u64,
    coop_served: u64,
    coop_declined: u64,
    coop_bits: u64,
    /// Uplink bits the coop mesh did not spend, net of the backbone
    /// bits the served copies cost.
    net_saved_bits: i64,
}

fn run_coop_leg(intervals: u64) -> CoopLeg {
    const CAPACITY: usize = 8;
    let run = |coop: bool| {
        let mut params = ScenarioParams::scenario1();
        params.n_items = 200;
        params.mu = 1e-3;
        params.k = 10;
        let base = CellConfig::new(params.with_s(0.3))
            .with_clients(8)
            .with_hotspot_size(20)
            .with_cache_capacity(CAPACITY);
        let mut config = MeshConfig::new(CellGraph::ring(4), base, MasterSeed(0xC0_09))
            .with_mobility(MobilityModel::Markov { rate: 0.05 });
        if coop {
            config = config.with_coop(CoopConfig::default());
        }
        let mut mesh =
            MeshSimulation::new(config, Strategy::BroadcastTimestamps).expect("valid mesh");
        mesh.run_measured(intervals / 4, intervals).expect("fits")
    };
    let plain = run(false);
    let coop = run(true);
    let stats = coop.coop();
    CoopLeg {
        capacity: CAPACITY,
        uplink_bits_plain: plain.uplink_bits(),
        uplink_bits_coop: coop.uplink_bits(),
        coop_served: stats.coop_served,
        coop_declined: stats.coop_declined,
        coop_bits: stats.coop_bits,
        net_saved_bits: plain.uplink_bits() as i64
            - coop.uplink_bits() as i64
            - stats.coop_bits as i64,
    }
}

#[derive(serde::Serialize)]
struct FigCapacity {
    rows: Vec<Row>,
    flips: Vec<Flip>,
    coop: CoopLeg,
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 200 } else { 800 };
    let sleep_probs: &[f64] = if fast {
        &[0.0, 0.4, 0.8]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8]
    };
    let capacities: &[usize] = &[6, 12];
    let policies = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Lfu,
        ReplacementPolicy::WindowAge,
    ];
    let strategies = [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
    ];

    let mut cells = Vec::new();
    for (si, &strategy) in strategies.iter().enumerate() {
        for &s in sleep_probs {
            cells.push(Cell {
                strategy,
                bound: None,
                s,
                tag: si as u64,
            });
            for &cap in capacities {
                for (pi, &policy) in policies.iter().enumerate() {
                    cells.push(Cell {
                        strategy,
                        bound: Some((cap, policy)),
                        s,
                        tag: si as u64 ^ ((cap as u64) << 8) ^ ((pi as u64) << 24),
                    });
                }
            }
        }
    }

    let rows = ParallelRunner::from_env().run(&cells, |_, cell| run_cell(cell, intervals));

    println!("E18 — bounded caches: capacity × replacement × strategy × s (theta = {THETA})");
    println!(
        "{:>6} {:>10} {:>4} {:>5} {:>8} {:>8} {:>9} {:>9} {:>13}",
        "strat", "policy", "cap", "s", "hit", "evicted", "cap miss", "requery", "uplink bits"
    );
    for row in &rows {
        println!(
            "{:>6} {:>10} {:>4} {:>5.2} {:>8.4} {:>8} {:>9} {:>9} {:>13}",
            row.strategy,
            row.policy,
            row.capacity.map_or("∞".to_string(), |c| c.to_string()),
            row.s,
            row.hit_ratio,
            row.evictions,
            row.capacity_misses,
            row.evicted_then_requeried,
            row.uplink_query_bits,
        );
    }

    let flips = find_flips(&rows);
    println!();
    if flips.is_empty() {
        println!("no ranking flips found — widen the sweep");
    } else {
        println!("ranking flips under memory pressure ({} cells):", flips.len());
        for f in &flips {
            println!(
                "  s={:.2} cap={:>2} {:>10}: unbounded {} → bounded {}",
                f.s,
                f.capacity,
                f.policy,
                f.unbounded_order.join(" > "),
                f.bounded_order.join(" > "),
            );
        }
    }

    let coop = run_coop_leg(intervals);
    println!();
    println!(
        "coop leg (mesh, cap {}): uplink {} → {} bits, {} served / {} declined, \
         {} backbone bits, net saved {}",
        coop.capacity,
        coop.uplink_bits_plain,
        coop.uplink_bits_coop,
        coop.coop_served,
        coop.coop_declined,
        coop.coop_bits,
        coop.net_saved_bits,
    );

    println!();
    println!("Expected shape: unbounded, the paper's ranking holds (TS/SIG lead,");
    println!("AT trails as s grows). Bounded, eviction churn taxes the strategies");
    println!("that *hold* state across gaps — TS and SIG lose hot entries they");
    println!("would have kept, AT (which drops wholesale anyway) loses least —");
    println!("so at tight capacity the ranking flips in some (capacity, s) cells.");
    println!("The window-age policy tracks LRU closely for workaholics but evicts");
    println!("report-stale entries first, buying back a little hit ratio for");
    println!("sleepers. The coop mesh converts part of its uplink spend into");
    println!("cheaper backbone traffic at equal capacity.");

    let out = FigCapacity { rows, flips, coop };
    match sw_experiments::write_json("fig_capacity", &out) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
