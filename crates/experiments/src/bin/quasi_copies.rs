//! E12: §7 quasi-copies — how much report traffic the delay condition
//! (obligation lists) and the arithmetic condition (ε-filter) save,
//! relative to plain TS reporting.

use sleepers::prelude::*;
use sleepers::quasi::EpsilonFilter;
use sleepers::sim::{MasterSeed, StreamId};

#[derive(serde::Serialize)]
struct DelayRow {
    alpha_intervals: u64,
    report_bits_plain_ts: u64,
    report_bits_quasi: u64,
    saving_pct: f64,
    hit_ratio_plain: f64,
    hit_ratio_quasi: f64,
}

fn run_delay(alpha: u64, intervals: u64) -> DelayRow {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 1_000;
    params.mu = 1e-3;
    params.k = alpha as u32; // plain TS gets the same window for fairness
    // A wider channel than Scenario 1: at α = 20 the *plain* TS report
    // would not even fit 10 kb/s (which is the quasi scheme's whole
    // point); the experiment compares report bits, not channel fit.
    params.bandwidth_bps = 50_000;
    let params = params.with_s(0.3);
    let cfg = || {
        CellConfig::new(params)
            .with_clients(12)
            .with_hotspot_size(25)
            .with_seed(0xE12)
    };
    let mut plain = CellSimulation::new(cfg(), Strategy::BroadcastTimestamps).unwrap();
    let plain_report = plain.run_measured(intervals / 4, intervals).unwrap();
    let mut quasi = CellSimulation::new(
        cfg(),
        Strategy::QuasiDelay {
            alpha_intervals: alpha,
        },
    )
    .unwrap();
    let quasi_report = quasi.run_measured(intervals / 4, intervals).unwrap();
    DelayRow {
        alpha_intervals: alpha,
        report_bits_plain_ts: plain_report.report_bits_total,
        report_bits_quasi: quasi_report.report_bits_total,
        saving_pct: 100.0
            * (1.0
                - quasi_report.report_bits_total as f64
                    / plain_report.report_bits_total.max(1) as f64),
        hit_ratio_plain: plain_report.hit_ratio(),
        hit_ratio_quasi: quasi_report.hit_ratio(),
    }
}

#[derive(serde::Serialize)]
struct ArithmeticRow {
    epsilon: u64,
    updates: u64,
    reported: u64,
    suppressed_pct: f64,
}

/// Random-walk stock prices through the ε-filter (Eq. 28).
fn run_arithmetic(epsilon: u64, steps: u64) -> ArithmeticRow {
    let mut filter = EpsilonFilter::new(epsilon);
    let mut rng = MasterSeed(0xE12).stream(StreamId::Custom { tag: epsilon });
    let n_items = 100u64;
    let mut prices = vec![10_000i64; n_items as usize];
    for (i, p) in prices.iter_mut().enumerate() {
        filter.seed(i as u64, *p as u64);
    }
    for _ in 0..steps {
        let item = rng.uniform_index(n_items);
        // ±1..8 tick move, the classic small-drift price process.
        let mv = rng.uniform_index(8) as i64 + 1;
        let sign = if rng.bernoulli(0.5) { 1 } else { -1 };
        prices[item as usize] += sign * mv;
        let _ = filter.should_report(item, prices[item as usize] as u64);
    }
    ArithmeticRow {
        epsilon,
        updates: filter.passed() + filter.suppressed(),
        reported: filter.passed(),
        suppressed_pct: 100.0 * filter.suppression_ratio(),
    }
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 150 } else { 600 };

    println!("E12a — delay condition (obligation lists) vs plain TS, s=0.3, μ=1e-3");
    println!(
        "{:>8} {:>16} {:>16} {:>9} {:>9} {:>9}",
        "α (×L)", "TS bits", "quasi bits", "saved %", "h plain", "h quasi"
    );
    let mut delay_rows = Vec::new();
    for alpha in [2u64, 5, 10, 20] {
        let row = run_delay(alpha, intervals);
        println!(
            "{:>8} {:>16} {:>16} {:>9.1} {:>9.4} {:>9.4}",
            row.alpha_intervals,
            row.report_bits_plain_ts,
            row.report_bits_quasi,
            row.saving_pct,
            row.hit_ratio_plain,
            row.hit_ratio_quasi
        );
        delay_rows.push(row);
    }

    println!();
    println!("E12b — arithmetic condition: ε-filter suppression on random-walk prices");
    println!("{:>8} {:>10} {:>10} {:>12}", "ε", "updates", "reported", "suppressed %");
    let steps = if fast { 20_000 } else { 100_000 };
    let mut arith_rows = Vec::new();
    for eps in [0u64, 5, 10, 25, 50, 100] {
        let row = run_arithmetic(eps, steps);
        println!(
            "{:>8} {:>10} {:>10} {:>12.1}",
            row.epsilon, row.updates, row.reported, row.suppressed_pct
        );
        arith_rows.push(row);
    }

    let payload = serde_json::json!({ "delay": delay_rows, "arithmetic": arith_rows });
    match sw_experiments::write_json("quasi_copies", &payload) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
