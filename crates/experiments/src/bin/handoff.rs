//! E20 (extension): inter-cell handoff — the future work §2 defers
//! ("In this article, we do not treat the case of MUs moving between
//! cells. Therefore, all our algorithms deal with caching data within
//! one cell only.").
//!
//! Setting: two cells whose servers hold fully replicated databases fed
//! the *same* update stream (§2: "the database is fully replicated at
//! each data server" and "the replicated copies are kept consistently"),
//! with synchronized report schedules `T_i = i·L`. Mobile units
//! ping-pong between the cells every few intervals.
//!
//! Expected outcome, and why it matters: under these (paper-stated)
//! replication assumptions the invalidation reports of the two cells
//! are *identical functions of the shared database state*, so a
//! handoff is indistinguishable from staying — except for the transit
//! blackout, a one-interval nap baked into the move. The ordinary gap
//! rules (`> w` for TS, `> L` for AT) apply unchanged: TS (w = 10L)
//! shrugs the 2L gap off, AT loses everything, every time.
//!
//! Two implementations measure the same claim:
//!
//! 1. **Twin harness** — the original hand-driven pair of replicated
//!    servers and one client, kept as a cross-check of the raw client
//!    algorithms (its nap is elective, so its "migrates without nap"
//!    row shows the pure-relocation case the full mesh cannot
//!    express).
//! 2. **Mesh** — the real [`sw_mesh::MeshSimulation`] on a 2-cell
//!    graph with periodic mobility: full fleets, real channels, real
//!    handoff machinery. Before measuring, a stationary mesh is
//!    asserted bit-identical to two independent single-cell runs — the
//!    sharded environment itself must be invisible.

use sleepers::client::{AtHandler, MobileUnit, MuConfig, ReplacementPolicy, ReportHandler, TsHandler};
use sleepers::server::AtBuilder;
use sleepers::server::{Database, ReportBuilder, TsBuilder, UpdateEngine, UplinkProcessor};
use sleepers::sim::{MasterSeed, SimDuration, SimTime, StreamId};
use sleepers::{CellConfig, CellSimulation, Strategy};
use sw_mesh::{CellGraph, MeshConfig, MeshSimulation, MobilityModel};
use sw_workload::ScenarioParams;

struct Cell {
    db: Database,
    ts: TsBuilder,
    at: AtBuilder,
    uplink: UplinkProcessor,
}

fn new_cell(n: u64, k: u32, latency: SimDuration) -> Cell {
    Cell {
        db: Database::new(n, |i| i * 13 + 5, latency.scaled(k as f64 + 2.0)),
        ts: TsBuilder::new(latency, k),
        at: AtBuilder::new(latency),
        uplink: UplinkProcessor::new(),
    }
}

fn mu(seed: u64, hotspot: Vec<u64>, handler: Box<dyn ReportHandler + Send>) -> MobileUnit {
    let mut rng = MasterSeed(seed).stream(StreamId::Queries { index: seed });
    MobileUnit::new(
        MuConfig {
            id: seed,
            hotspot,
            query_rate_per_item: 0.05,
            sleep_probability: 0.0,
            cache_capacity: None,
            replacement: ReplacementPolicy::Lru,
            replacement_window: SimDuration::ZERO,
            piggyback_hits: false,
            item_universe: None,
        },
        handler,
        &mut rng,
    )
}

/// Runs one client for `intervals`, hearing cell A or B's report per
/// the `in_cell_a` schedule; `nap_on_handoff` adds a one-interval nap
/// at every cell switch.
fn run_client(
    use_ts: bool,
    migrate_every: Option<u64>,
    nap_on_handoff: bool,
    intervals: u64,
) -> f64 {
    let n = 500u64;
    let k = 10u32;
    let latency = SimDuration::from_secs(10.0);
    let mut a = new_cell(n, k, latency);
    let mut b = new_cell(n, k, latency);
    // One shared update stream keeps the replicas consistent.
    let mut update_rng = MasterSeed(0xE20).stream(StreamId::Updates);
    let mut engine = UpdateEngine::new(n, 1e-3, &mut update_rng);

    let handler: Box<dyn ReportHandler + Send> = if use_ts {
        Box::new(TsHandler::new(latency, k))
    } else {
        Box::new(AtHandler::new(latency))
    };
    let mut client = mu(1, (0..25).collect(), handler);
    let mut srng = MasterSeed(2).stream(StreamId::Sleep { index: 1 });
    let mut qrng = MasterSeed(3).stream(StreamId::Custom { tag: 1 });

    let mut in_a = true;
    for i in 1..=intervals {
        let from = SimTime::from_secs((i - 1) as f64 * 10.0);
        let to = SimTime::from_secs(i as f64 * 10.0);
        // Replicated update stream reaches both servers identically.
        let recs = engine.advance(&mut a.db, from, to, &mut update_rng);
        for rec in &recs {
            b.db.apply_update(rec.item, rec.value, rec.at);
        }
        let payload_a = if use_ts {
            a.ts.build(i, to, &a.db)
        } else {
            a.at.build(i, to, &a.db)
        };
        let payload_b = if use_ts {
            b.ts.build(i, to, &b.db)
        } else {
            b.at.build(i, to, &b.db)
        };

        let mut napping = false;
        if let Some(every) = migrate_every {
            if i % every == 0 {
                in_a = !in_a;
                napping = nap_on_handoff;
            }
        }
        client.begin_interval(from, to, &mut srng, &mut qrng);
        if napping {
            // Model the relocation blackout: the unit misses this
            // interval's report entirely. MobileUnit's sleep draw is
            // s = 0, so emulate the nap by dropping its pending queries
            // through a skipped report — we simply do not deliver one,
            // which the next interval's gap check will see.
            // (Queries posed during the blackout are answered after it,
            // matching the paper's elective-disconnection model.)
            let _ = client.is_awake();
            continue;
        }
        let payload = if in_a { &payload_a } else { &payload_b };
        let outcome = client.hear_report_and_answer(payload);
        for (item, _) in outcome.uplink_requests {
            let cell = if in_a { &mut a } else { &mut b };
            let ans = cell.uplink.answer(&cell.db, item, to, None);
            client.install_answer(ans);
        }
        a.db.prune_log(to);
        b.db.prune_log(to);
    }
    client.stats().hit_ratio()
}

fn mesh_config(mobility: MobilityModel) -> MeshConfig {
    let mut params = ScenarioParams::scenario1().with_s(0.0);
    params.n_items = 500;
    params.lambda = 0.05;
    params.mu = 1e-3;
    params.k = 10;
    let base = CellConfig::new(params).with_clients(8).with_hotspot_size(25);
    MeshConfig::new(CellGraph::line(2), base, MasterSeed(0xE20)).with_mobility(mobility)
}

/// Cross-check: a stationary mesh must be bit-identical to its cells
/// run standalone — the sharded environment adds nothing by itself.
fn assert_mesh_matches_single_cells(strategy: Strategy, intervals: u64) {
    let config = mesh_config(MobilityModel::Stationary);
    let mut mesh = MeshSimulation::new(config.clone(), strategy).expect("mesh construction");
    let report = mesh.run(intervals).expect("mesh run");
    for cell in 0..2 {
        let mut solo =
            CellSimulation::new(config.cell_config(cell), strategy).expect("cell construction");
        let solo_report = solo.run(intervals).expect("cell run");
        assert_eq!(
            format!("{:?}", report.cells[cell]),
            format!("{solo_report:?}"),
            "stationary mesh cell {cell} diverged from its standalone twin ({})",
            strategy.name()
        );
    }
}

/// Full-mesh measurement: mesh-wide hit ratio and handoff drops.
fn run_mesh(strategy: Strategy, mobility: MobilityModel, intervals: u64) -> (f64, u64) {
    let mut mesh = MeshSimulation::new(mesh_config(mobility), strategy).expect("mesh construction");
    let report = mesh.run(intervals).expect("mesh run");
    (report.hit_ratio(), report.migration().handoff_drops)
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 300 } else { 1000 };

    println!("E20 — inter-cell handoff with replicated servers and synchronized reports");
    println!();
    println!("Twin harness (single hand-driven client):");
    println!("{:>28} {:>10} {:>10}", "client", "h (TS)", "h (AT)");
    let mut rows = Vec::new();
    for (label, every, nap) in [
        ("stationary", None, false),
        ("migrates every 5 ivls", Some(5), false),
        ("migrates + naps in transit", Some(5), true),
    ] {
        let h_ts = run_client(true, every, nap, intervals);
        let h_at = run_client(false, every, nap, intervals);
        println!("{label:>28} {h_ts:>10.4} {h_at:>10.4}");
        rows.push(serde_json::json!({
            "harness": "twin", "client": label, "h_ts": h_ts, "h_at": h_at
        }));
    }

    // The real mesh. First prove the environment itself is invisible…
    for strategy in [Strategy::BroadcastTimestamps, Strategy::AmnesicTerminals] {
        assert_mesh_matches_single_cells(strategy, intervals.min(200));
    }
    println!();
    println!("cross-check ok: stationary mesh ≡ independent single-cell runs (bit-identical)");

    // …then measure migration on it.
    println!();
    println!("Mesh (2-cell line, full fleets, periodic mobility):");
    println!(
        "{:>28} {:>10} {:>10} {:>12}",
        "fleet", "h (TS)", "h (AT)", "drops TS/AT"
    );
    for (label, mobility) in [
        ("stationary", MobilityModel::Stationary),
        ("migrates every 5 ivls", MobilityModel::Periodic { every: 5 }),
    ] {
        let (h_ts, d_ts) = run_mesh(Strategy::BroadcastTimestamps, mobility, intervals);
        let (h_at, d_at) = run_mesh(Strategy::AmnesicTerminals, mobility, intervals);
        println!("{label:>28} {h_ts:>10.4} {h_at:>10.4} {:>12}", format!("{d_ts}/{d_at}"));
        rows.push(serde_json::json!({
            "harness": "mesh", "client": label, "h_ts": h_ts, "h_at": h_at,
            "handoff_drops_ts": d_ts, "handoff_drops_at": d_at
        }));
    }

    println!();
    println!("With consistent replicas and synchronized schedules, a clean");
    println!("handoff is invisible — the stationary and migrating rows match.");
    println!("Only the transit blackout hurts, and it hurts by the ordinary");
    println!("gap rules: AT loses everything, TS (w = 10L) shrugs it off. The");
    println!("§3 algorithms extend to mobility between cells without");
    println!("modification.");

    match sw_experiments::write_json("handoff", &serde_json::Value::Array(rows)) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
