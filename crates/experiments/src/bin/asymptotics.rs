//! Regenerates the two asymptotic tables of §5 (experiments E7/E8):
//! limits of q₀, p₀ and the hit ratios as s → 0, s → 1, and u₀ → 1,
//! plus a programmatic check of §5's qualitative conclusions.

use sleepers::analysis::asymptotics::{
    section5_conclusions, sleep_limit_table, update_limit_table,
};
use sleepers::prelude::ScenarioParams;

fn main() {
    let base = ScenarioParams::scenario1();

    println!("§5 Table 1 — limits as s → 0 (workaholics) and s → 1 (sleepers)");
    println!("(Scenario 1 parameters: λ=0.1, μ=1e-4, L=10, k=100, f=10, g=16)");
    println!();
    let table = sleep_limit_table(&base);
    println!("{:>10} | {:>14} {:>14} | {:>14} {:>14}", "parameter", "s→0 symbolic", "s→0 numeric", "s→1 symbolic", "s→1 numeric");
    for (w, s) in table.workaholic.iter().zip(&table.sleeper) {
        println!(
            "{:>10} | {:>14.8} {:>14.8} | {:>14.8} {:>14.8}",
            w.parameter, w.symbolic, w.numeric, s.symbolic, s.numeric
        );
    }

    println!();
    println!("§5 Table 2 — limits as u₀ → 1 (infrequent updates), by sleep level");
    for s in [0.0, 0.3, 0.7] {
        println!("\n  s = {s}:");
        println!("  {:>28} | {:>14} {:>14}", "parameter", "symbolic", "numeric");
        for row in update_limit_table(&base.with_s(s)) {
            println!(
                "  {:>28} | {:>14.8} {:>14.8}",
                row.parameter, row.symbolic, row.numeric
            );
        }
    }

    println!();
    println!("§5 qualitative conclusions, checked against the model:");
    let conclusions = section5_conclusions(&base);
    for (claim, holds) in &conclusions {
        println!("  [{}] {}", if *holds { "ok" } else { "FAIL" }, claim);
    }

    let payload = serde_json::json!({
        "workaholic": table.workaholic.iter().map(|r| serde_json::json!({
            "parameter": r.parameter, "symbolic": r.symbolic, "numeric": r.numeric
        })).collect::<Vec<_>>(),
        "sleeper": table.sleeper.iter().map(|r| serde_json::json!({
            "parameter": r.parameter, "symbolic": r.symbolic, "numeric": r.numeric
        })).collect::<Vec<_>>(),
        "conclusions": conclusions.iter().map(|(c, ok)| serde_json::json!({
            "claim": c, "holds": ok
        })).collect::<Vec<_>>(),
    });
    match sw_experiments::write_json("asymptotics", &payload) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
