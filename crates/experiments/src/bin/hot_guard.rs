//! Hot-path zero-cost guard probe.
//!
//! Runs one fixed, deterministic hot-path workload — a TS cell big
//! enough that the per-interval sweep dominates — and prints the
//! measured µs/interval as a bare number on stdout.
//!
//! `scripts/check.sh` builds this binary twice (feature-off, and with
//! `observe,faults` compiled in but disabled at runtime), interleaves
//! several rounds of each, and fails the check if the feature-armed
//! build's best round is more than 5% slower than the feature-off
//! build's: the "zero-cost disabled path" contract, enforced instead
//! of eyeballed. The workload is identical in both builds (neither a
//! fault plan nor an observe label is configured, and disabled
//! instrumentation consumes no randomness), so any gap is pure
//! compiled-in overhead.

use std::time::Instant;

use sleepers::prelude::*;

fn main() {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 2_000;
    // Non-saturating channel: measure the sweep, not queue churn.
    params.bandwidth_bps *= 2_048;
    let params = params.with_s(0.2);
    let cfg = CellConfig::new(params)
        .with_clients(2_000)
        .with_hotspot_size(30)
        .with_seed(17)
        .with_sweep_threads(1);
    let mut sim =
        CellSimulation::new(cfg, Strategy::BroadcastTimestamps).expect("guard cell constructs");
    sim.run(20).expect("guard warmup runs");
    sim.reset_metrics();
    let intervals = 60u64;
    let start = Instant::now();
    let report = sim.run(intervals).expect("guard cell runs");
    let us = start.elapsed().as_secs_f64() / intervals as f64 * 1e6;
    assert_eq!(report.overflow_exchanges, 0, "guard channel saturated");
    println!("{us:.1}");
}
