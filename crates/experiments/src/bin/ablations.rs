//! E18 (ablations): the design knobs behind the strategies, swept one
//! at a time on a Scenario-1-like base.
//!
//! * **TS window multiple k** — the sleeper-immunity vs report-size
//!   dial (§3.1/§8's motivation);
//! * **timestamp width b_T** — §10's "timestamps given on the per
//!   minute instead of per second basis" granularity idea, as its
//!   report-size consequence;
//! * **broadcast latency L** — the paper's fixed 10 s, swept: longer
//!   intervals amortize the report but batch more updates and delay
//!   answers;
//! * **SIG signature width g and diagnosable-difference budget f** —
//!   false-alarm probability vs report size (Eqs. 21–25);
//! * **group-report granularity G** — §10's aggregate reports: report
//!   bits vs collateral invalidation, simulated.

use sleepers::prelude::*;

fn base() -> ScenarioParams {
    let mut p = ScenarioParams::scenario1();
    p.n_items = 1_000;
    p.mu = 1e-3;
    p.k = 10;
    p
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 150 } else { 600 };
    let mut out = serde_json::Map::new();

    // --- k: TS window multiple (analytic, s = 0.5 sleepers) ---------
    println!("Ablation 1 — TS window multiple k (s = 0.5, μ = 1e-3)");
    println!("{:>6} {:>10} {:>12} {:>10}", "k", "h_ts(mid)", "B_c bits", "e_ts");
    let mut k_rows = Vec::new();
    for k in [1u32, 2, 5, 10, 20, 50] {
        let mut p = base().with_s(0.5);
        p.k = k;
        let h = h_ts_estimate(&p);
        let bits = sleepers::analysis::throughput::ts_report_bits(&p);
        let e = effectiveness_at(&p, 0.5).e_ts;
        println!(
            "{:>6} {:>10.4} {:>12.0} {:>10}",
            k,
            h,
            bits,
            e.map(|e| format!("{e:.4}")).unwrap_or_else(|| "--".into())
        );
        k_rows.push(serde_json::json!({"k": k, "h_ts": h, "report_bits": bits, "e_ts": e}));
    }
    out.insert("ts_window_k".into(), k_rows.into());

    // --- b_T: timestamp width (analytic) ----------------------------
    println!();
    println!("Ablation 2 — timestamp width b_T (TS report size / effectiveness)");
    println!("{:>6} {:>12} {:>10}", "b_T", "B_c bits", "e_ts");
    let mut bt_rows = Vec::new();
    for bt in [32u32, 64, 128, 256, 512] {
        let mut p = base().with_s(0.3);
        p.timestamp_bits = bt;
        let bits = sleepers::analysis::throughput::ts_report_bits(&p);
        let e = effectiveness_at(&p, 0.3).e_ts;
        println!(
            "{:>6} {:>12.0} {:>10}",
            bt,
            bits,
            e.map(|e| format!("{e:.4}")).unwrap_or_else(|| "--".into())
        );
        bt_rows.push(serde_json::json!({"b_t": bt, "report_bits": bits, "e_ts": e}));
    }
    out.insert("timestamp_bits".into(), bt_rows.into());

    // --- L: broadcast latency (analytic) -----------------------------
    println!();
    println!("Ablation 3 — broadcast latency L (s = 0.3)");
    println!("{:>6} {:>10} {:>10} {:>10}", "L", "e_ts", "e_at", "e_sig");
    let mut l_rows = Vec::new();
    for l in [1.0f64, 5.0, 10.0, 30.0, 60.0] {
        let mut p = base().with_s(0.3);
        p.latency_secs = l;
        let e = effectiveness_at(&p, 0.3);
        let show = |v: Option<f64>| v.map(|e| format!("{e:.4}")).unwrap_or_else(|| "--".into());
        println!("{:>6} {:>10} {:>10} {:>10}", l, show(e.e_ts), show(e.e_at), show(e.e_sig));
        l_rows.push(serde_json::json!({
            "latency": l, "e_ts": e.e_ts, "e_at": e.e_at, "e_sig": e.e_sig
        }));
    }
    out.insert("latency".into(), l_rows.into());

    // --- SIG g and f (analytic) --------------------------------------
    println!();
    println!("Ablation 4 — SIG width g and budget f");
    println!("{:>4} {:>4} {:>8} {:>12} {:>10}", "f", "g", "m", "B_c bits", "e_sig");
    let mut sig_rows = Vec::new();
    for (f, g) in [(5u32, 16u32), (10, 8), (10, 16), (10, 32), (20, 16), (40, 16)] {
        let mut p = base().with_s(0.3);
        p.f = f;
        p.g = g;
        let m = sleepers::analysis::throughput::sig_m(&p);
        let bits = sleepers::analysis::throughput::sig_report_bits(&p);
        let e = effectiveness_at(&p, 0.3).e_sig;
        println!(
            "{:>4} {:>4} {:>8} {:>12.0} {:>10}",
            f,
            g,
            m,
            bits,
            e.map(|e| format!("{e:.4}")).unwrap_or_else(|| "--".into())
        );
        sig_rows.push(serde_json::json!({
            "f": f, "g": g, "m": m, "report_bits": bits, "e_sig": e
        }));
    }
    out.insert("sig_f_g".into(), sig_rows.into());

    // --- Group granularity (simulated) --------------------------------
    println!();
    println!("Ablation 5 — §10 aggregate reports: group count G (simulated, s = 0.3)");
    println!(
        "{:>6} {:>12} {:>10} {:>14}",
        "G", "mean grp sz", "h (sim)", "report entries"
    );
    let mut g_rows = Vec::new();
    for groups in [1_000u64, 200, 50, 10] {
        let cfg = CellConfig::new(base().with_s(0.3))
            .with_clients(10)
            .with_hotspot_size(25)
            .with_seed(0xE18);
        let mut sim =
            CellSimulation::new(cfg, Strategy::GroupReports { groups }).expect("valid");
        let r = sim.run_measured(intervals / 4, intervals).expect("fits");
        let entries_per_interval = r.report_bits_mean() / 10.0; // ⌈log₂1000⌉ = 10 bits/id
        println!(
            "{:>6} {:>12.1} {:>10.4} {:>14.1}",
            groups,
            1000.0 / groups as f64,
            r.hit_ratio(),
            entries_per_interval
        );
        g_rows.push(serde_json::json!({
            "groups": groups,
            "hit_ratio": r.hit_ratio(),
            "entries_per_interval": entries_per_interval
        }));
    }
    out.insert("group_granularity".into(), g_rows.into());
    println!();
    println!("G = n is exact AT; coarser groups shrink the id list but");
    println!("invalidate innocent same-group neighbours (lower h).");

    match sw_experiments::write_json("ablations", &serde_json::Value::Object(out)) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
