//! E13: §8 adaptive invalidation reports.
//!
//! Reproduces the two motivating cases and the headline comparison:
//!
//! * a never-changing, heavily queried item under sleepers — the
//!   adaptive window grows (toward "infinite"), rescuing sleepers' hit
//!   ratio;
//! * a constantly changing item — its window shrinks to zero and stops
//!   bloating the report;
//! * overall: adaptive TS vs static TS for a sleepy population, with
//!   both feedback methods.

use sleepers::prelude::*;

#[derive(serde::Serialize)]
struct ComparisonRow {
    s: f64,
    method: String,
    hit_static: f64,
    hit_adaptive: f64,
    report_bits_static: u64,
    report_bits_adaptive: u64,
}

fn run(strategy: Strategy, params: ScenarioParams, intervals: u64) -> SimulationReport {
    let cfg = CellConfig::new(params)
        .with_clients(12)
        .with_hotspot_size(20)
        .with_seed(0xE13);
    let mut sim = CellSimulation::new(cfg, strategy).unwrap();
    sim.run_measured(intervals / 4, intervals).unwrap()
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 300 } else { 1200 };

    // A sleepy population with a modest static window: static TS drops
    // caches after k intervals of sleep; adaptive TS can learn better
    // per-item windows.
    let mut base = ScenarioParams::scenario1();
    base.n_items = 500;
    base.mu = 5e-4;
    base.k = 3;

    println!("E13 — adaptive TS (per-item windows, Eq. 29–32) vs static TS");
    println!("{:>5} {:>9} {:>10} {:>12} {:>14} {:>16}", "s", "method", "h static", "h adaptive", "bits static", "bits adaptive");
    let mut rows = Vec::new();
    for &s in &[0.3, 0.5, 0.7] {
        let params = base.with_s(s);
        let static_report = run(Strategy::BroadcastTimestamps, params, intervals);
        for (label, method) in [
            ("method1", FeedbackMethod::Method1),
            ("method2", FeedbackMethod::Method2),
        ] {
            let adaptive_report = run(
                Strategy::AdaptiveTs {
                    method,
                    eval_period: 10,
                    step: 2,
                },
                params,
                intervals,
            );
            println!(
                "{:>5.1} {:>9} {:>10.4} {:>12.4} {:>14} {:>16}",
                s,
                label,
                static_report.hit_ratio(),
                adaptive_report.hit_ratio(),
                static_report.report_bits_total,
                adaptive_report.report_bits_total
            );
            rows.push(ComparisonRow {
                s,
                method: label.to_string(),
                hit_static: static_report.hit_ratio(),
                hit_adaptive: adaptive_report.hit_ratio(),
                report_bits_static: static_report.report_bits_total,
                report_bits_adaptive: adaptive_report.report_bits_total,
            });
        }
    }

    // Window trajectories for the two §8 extreme cases, observed
    // directly on the controller.
    println!();
    println!("Window trajectories (direct controller drive, §8's two extremes):");
    use sleepers::adaptive::{AdaptiveController, PeriodItemStats, WindowTable};
    let mut controller = AdaptiveController::new(FeedbackMethod::Method1, 1, 0.0, 512, 512, 500);
    let mut windows = WindowTable::new(3);
    let mut hot_static_window = Vec::new();
    let mut hot_churn_window = Vec::new();
    let mut ahr = 0.2f64;
    for period in 0..15 {
        ahr = (ahr + 0.06).min(0.98);
        let hits = (ahr * 100.0) as u64;
        let stats = [
            // Item 1: never changes, queried a lot by sleepers.
            PeriodItemStats {
                item: 1,
                uplink_queries: 100 - hits,
                piggybacked_hits: hits,
                mentions: 0,
                mhr: Some(1.0),
            },
            // Item 2: changes every interval, hit ratio pinned at zero.
            PeriodItemStats {
                item: 2,
                uplink_queries: 50,
                piggybacked_hits: 0,
                mentions: 10,
                mhr: Some(0.02),
            },
        ];
        controller.end_period(&mut windows, stats);
        hot_static_window.push(windows.get(1));
        hot_churn_window.push(windows.get(2));
        println!(
            "  period {:>2}: w(hot-static) = {:>3}, w(hot-churn) = {:>3}",
            period,
            windows.get(1),
            windows.get(2)
        );
    }
    assert!(
        hot_static_window.last().unwrap() > &3,
        "hot-static window must grow"
    );
    assert_eq!(*hot_churn_window.last().unwrap(), 0, "hot-churn window must hit zero");

    let payload = serde_json::json!({
        "comparison": rows,
        "hot_static_window_trajectory": hot_static_window,
        "hot_churn_window_trajectory": hot_churn_window,
    });
    match sw_experiments::write_json("adaptive_ts", &payload) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
