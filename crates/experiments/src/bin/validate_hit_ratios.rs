//! E11: validates the simulator against the closed-form hit ratios —
//! simulated `h_AT` vs Eq. 41, `h_SIG` vs Eq. 43, and `h_TS` against
//! the Appendix-1 bounds — across a grid of (s, μ).

use sleepers::prelude::*;

#[derive(serde::Serialize)]
struct Row {
    s: f64,
    mu: f64,
    h_at_sim: f64,
    h_at_eq41: f64,
    h_sig_sim: f64,
    h_sig_eq43: f64,
    h_ts_sim: f64,
    h_ts_lower: f64,
    h_ts_upper: f64,
    ts_in_bounds: bool,
}

fn simulate(params: ScenarioParams, strategy: Strategy, intervals: u64) -> f64 {
    let config = CellConfig::new(params)
        .with_clients(16)
        .with_hotspot_size(25)
        .with_seed(0xE11);
    let mut sim = CellSimulation::new(config, strategy).expect("valid config");
    sim.run_measured(intervals / 4, intervals)
        .expect("run")
        .hit_ratio()
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals: u64 = if fast { 200 } else { 800 };

    // A small-n base so simulation is fast; hit ratios do not depend on
    // n in the model (per-item rates are fixed).
    let mut base = ScenarioParams::scenario1();
    base.n_items = 1_000;
    base.k = 10;

    let s_values = [0.0, 0.2, 0.4, 0.6, 0.8];
    let mu_values = [1e-4, 1e-3];

    println!("E11 — simulated hit ratios vs the closed forms ({} intervals/cell)", intervals);
    println!(
        "{:>5} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} {:>9} {:>6}",
        "s", "mu", "h_at sim", "Eq.41", "h_sig sim", "Eq.43", "h_ts sim", "lower", "upper", "in?"
    );

    let mut rows = Vec::new();
    let mut worst_at: f64 = 0.0;
    let mut worst_sig: f64 = 0.0;
    let mut ts_out_of_bounds = 0u32;
    for &mu in &mu_values {
        for &s in &s_values {
            let params = base.with_s(s).with_mu(mu);
            let h_at_sim = simulate(params, Strategy::AmnesicTerminals, intervals);
            let h_sig_sim = simulate(params, Strategy::Signatures, intervals);
            let h_ts_sim = simulate(params, Strategy::BroadcastTimestamps, intervals);
            let at_model = h_at(&params);
            let p_nf = sleepers::analysis::throughput::sig_p_nf(&params);
            let sig_model = h_sig(&params, p_nf);
            let b = h_ts_bounds(&params);
            // Allow statistical slack around the bounds.
            let slack = 0.05;
            let in_bounds = h_ts_sim >= b.lower - slack && h_ts_sim <= b.upper + slack;
            if !in_bounds {
                ts_out_of_bounds += 1;
            }
            worst_at = worst_at.max((h_at_sim - at_model).abs());
            worst_sig = worst_sig.max((h_sig_sim - sig_model).abs());
            println!(
                "{:>5.2} {:>8.0e} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4} {:>9.4} {:>6}",
                s, mu, h_at_sim, at_model, h_sig_sim, sig_model, h_ts_sim, b.lower, b.upper,
                if in_bounds { "yes" } else { "NO" }
            );
            rows.push(Row {
                s,
                mu,
                h_at_sim,
                h_at_eq41: at_model,
                h_sig_sim,
                h_sig_eq43: sig_model,
                h_ts_sim,
                h_ts_lower: b.lower,
                h_ts_upper: b.upper,
                ts_in_bounds: in_bounds,
            });
        }
    }
    println!();
    println!("worst |h_at sim − Eq.41|  = {worst_at:.4}");
    println!("worst |h_sig sim − Eq.43| = {worst_sig:.4}");
    println!("h_ts points outside the Appendix-1 bounds (±0.05 slack): {ts_out_of_bounds}");

    match sw_experiments::write_json("validate_hit_ratios", &rows) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
