//! E17 (extension): query-result caching over the invalidation stream.
//!
//! The paper's figures measure the *item* cache. This sweep arms the
//! `sw-query` plane — cached predicate screens plus multi-item
//! transactional reads — on TS, AT, and SIG across the sleep axis and
//! measures what the result layer inherits from each strategy's
//! recovery rule: query hit ratio, footprint items refetched over the
//! uplink, entries dropped by the footprint check, and the fraction of
//! multi-item reads aborted because their pinned rows straddled an
//! update (non-serializable under the report clock).
//!
//! `cargo run --release -p sw-experiments --bin fig_query`
//! (`SW_FAST=1` for a coarse sweep).

use sleepers::prelude::*;
use sw_experiments::{cell_seed, ParallelRunner};

#[derive(serde::Serialize)]
struct Row {
    strategy: String,
    s: f64,
    item_hit_ratio: f64,
    query_hit_ratio: f64,
    uplink_query_bits: u64,
    query_fetch_items: u64,
    entries_invalidated: u64,
    entries_reverified: u64,
    txns_begun: u64,
    txn_abort_rate: f64,
}

struct Cell {
    strategy: Strategy,
    s: f64,
    tag: u64,
}

fn run_cell(cell: &Cell, intervals: u64) -> Row {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 500;
    params.mu = 2e-3;
    params.k = 10;
    let params = params.with_s(cell.s);
    let seed = cell_seed(0xF1_9E34, &[cell.s.to_bits(), cell.tag]);
    let cfg = CellConfig::new(params)
        .with_clients(10)
        .with_hotspot_size(25)
        .with_seed(seed)
        .with_query(QueryPlaneConfig::new().with_txn_probability(0.2));
    let mut sim = CellSimulation::new(cfg, cell.strategy).expect("valid config");
    let r = sim.run_measured(intervals / 4, intervals).expect("fits");
    let q = &r.query;
    let resolved = q.txn_commits + q.txn_aborts;
    Row {
        strategy: cell.strategy.name().to_string(),
        s: cell.s,
        item_hit_ratio: r.hit_ratio(),
        query_hit_ratio: q.hit_ratio(),
        uplink_query_bits: r.traffic.query_bits,
        query_fetch_items: q.fetch_items,
        entries_invalidated: q.entries_invalidated,
        entries_reverified: q.entries_reverified,
        txns_begun: q.txns_begun,
        txn_abort_rate: if resolved == 0 {
            0.0
        } else {
            q.txn_aborts as f64 / resolved as f64
        },
    }
}

fn main() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 200 } else { 800 };
    let sleep_probs: &[f64] = if fast {
        &[0.0, 0.4, 0.8]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    let strategies = [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
    ];

    let mut cells = Vec::new();
    for (si, &strategy) in strategies.iter().enumerate() {
        for &s in sleep_probs {
            cells.push(Cell {
                strategy,
                s,
                tag: si as u64,
            });
        }
    }

    let rows = ParallelRunner::from_env().run(&cells, |_, cell| run_cell(cell, intervals));

    println!("E17 — query-result caching vs sleep probability");
    println!(
        "{:>6} {:>5} {:>8} {:>8} {:>13} {:>8} {:>8} {:>8} {:>7} {:>8}",
        "strat", "s", "item h", "query h", "uplink bits", "fetched", "inval", "reverif", "txns", "abort%"
    );
    for row in &rows {
        println!(
            "{:>6} {:>5.2} {:>8.4} {:>8.4} {:>13} {:>8} {:>8} {:>8} {:>7} {:>8.2}",
            row.strategy,
            row.s,
            row.item_hit_ratio,
            row.query_hit_ratio,
            row.uplink_query_bits,
            row.query_fetch_items,
            row.entries_invalidated,
            row.entries_reverified,
            row.txns_begun,
            100.0 * row.txn_abort_rate,
        );
    }
    println!();
    println!("Expected shape: the query hit ratio sits below the item hit ratio");
    println!("everywhere (a screen is only as fresh as its *coldest* footprint");
    println!("item) and tracks each strategy's recovery rule as s grows — AT's");
    println!("whole-cache drops empty the result layer after long sleeps, TS");
    println!("restamps screens across sub-window gaps, and SIG re-validates by");
    println!("diagnosis. The abort rate *climbs* with s: a sleeper holds its");
    println!("pinned reads across more reports, so more multi-item reads watch");
    println!("an update land between their legs and get detected-and-aborted.");

    match sw_experiments::write_json("fig_query", &rows) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}
