//! Figure sweeps: analytic curves plus simulated validation points.

use serde::{Deserialize, Serialize};
use sleepers::prelude::*;

/// Which figure to regenerate and how.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Paper figure number (3–8).
    pub figure: u8,
    /// Scenario label ("Scenario 1" …).
    pub scenario: &'static str,
    /// Base parameters.
    pub base: ScenarioParams,
    /// Swept axis.
    pub axis: SweepAxis,
}

impl FigureSpec {
    /// The spec for paper figure `figure` (3–8).
    ///
    /// # Panics
    /// Panics for figure numbers outside 3–8.
    pub fn for_figure(figure: u8) -> FigureSpec {
        let (scenario, base) = match figure {
            3 => ("Scenario 1", ScenarioParams::scenario1()),
            4 => ("Scenario 2", ScenarioParams::scenario2()),
            5 => ("Scenario 3", ScenarioParams::scenario3()),
            6 => ("Scenario 4", ScenarioParams::scenario4()),
            7 => ("Scenario 5", ScenarioParams::scenario5()),
            8 => ("Scenario 6", ScenarioParams::scenario6()),
            other => panic!("the paper has figures 3..=8, not {other}"),
        };
        let axis = if figure <= 6 {
            SweepAxis::sleep_default()
        } else {
            SweepAxis::update_default()
        };
        FigureSpec {
            figure,
            scenario,
            base,
            axis,
        }
    }

    /// The x-axis label.
    pub fn x_label(&self) -> &'static str {
        match self.axis {
            SweepAxis::SleepProbability { .. } => "s",
            SweepAxis::UpdateRate { .. } => "mu",
        }
    }
}

/// Simulation settings for the validation points.
#[derive(Debug, Clone, Copy)]
pub struct SimSettings {
    /// Number of x-axis points to simulate (evenly spaced).
    pub points: usize,
    /// Broadcast intervals per run.
    pub intervals: u64,
    /// Clients per cell.
    pub clients: usize,
    /// Hotspot size per client.
    pub hotspot: usize,
    /// Cap on the simulated database size (larger scenarios are scaled
    /// down; hit ratios are n-independent in the model).
    pub max_sim_items: u64,
    /// Master seed.
    pub seed: u64,
    /// Record an observation trace per simulated cell (counters,
    /// per-interval series, NDJSON events), merged across the grid in
    /// task order. Captures nothing unless the `observe` cargo feature
    /// is on; never changes the simulated numbers either way.
    pub observe: bool,
    /// Arm every simulated cell's deterministic fault injector with
    /// this plan. `None` (the default) injects nothing; with the
    /// `faults` cargo feature off the plan is carried but inert.
    pub faults: Option<sleepers::faults::FaultPlan>,
}

impl Default for SimSettings {
    fn default() -> Self {
        // Fleet sized below channel saturation: the narrow-band
        // scenarios carry ≈97 uplink exchanges per interval
        // (`L·W / (b_q + b_a)` = 10⁵/1024), and a worst-case fleet of
        // 6 clients × 15-item hotspots poses ≤90 query events per
        // interval, so even the cache-less strategy fits. The old
        // 10 × 30 default silently overflowed the budget on
        // Scenarios 1/3/5 (validation h and B_c stayed unbiased, but
        // the traffic accounting was fiction); `run_figure_main` now
        // asserts the default configurations stay overflow-free. The
        // longer horizon restores the query-event sample the smaller
        // fleet gives up — Eq. 9's 1/(1−h) amplifies h noise hard
        // near h = 1 (`run_figure_main` trims it back to 400 for the
        // update-intensive figures, whose h sits far from 1 and whose
        // update engines dominate runtime at the scaled item counts).
        SimSettings {
            points: 5,
            intervals: 1200,
            clients: 6,
            hotspot: 15,
            max_sim_items: 10_000,
            seed: 0xF1650,
            observe: false,
            faults: None,
        }
    }
}

impl SimSettings {
    /// Quick settings for tests and benches.
    pub fn quick() -> Self {
        SimSettings {
            points: 3,
            intervals: 120,
            clients: 6,
            hotspot: 15,
            max_sim_items: 2_000,
            seed: 0xF1650,
            observe: false,
            faults: None,
        }
    }
}

/// One simulated validation point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimPoint {
    /// The swept parameter value.
    pub x: f64,
    /// Strategy name.
    pub strategy: String,
    /// Measured hit ratio.
    pub hit_ratio: f64,
    /// Measured effectiveness (Eq. 9/10 with measured h and B_c).
    pub effectiveness: f64,
    /// Mean report size in bits.
    pub report_bits: f64,
    /// Query events simulated.
    pub query_events: u64,
    /// True when the strategy was unusable (report exceeded `L·W`).
    pub unusable: bool,
    /// Query exchanges that overflowed the interval bit budget. Must be
    /// zero for every default figure configuration — a non-zero value
    /// means the cell is oversubscribed and the throughput numbers are
    /// unreliable ([`run_figure_main`] warns and asserts on it).
    pub overflow_exchanges: u64,
}

/// A regenerated figure: the analytic sweep plus simulated points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureResult {
    /// Figure number.
    pub figure: u8,
    /// Scenario label.
    pub scenario: String,
    /// Analytic sweep (one effectiveness point per x).
    pub analytic: Sweep,
    /// Simulated validation points.
    pub simulated: Vec<SimPoint>,
}

/// A regenerated figure bundled with its merged observation snapshot:
/// `observe` is `Some` only when [`SimSettings::observe`] was set *and*
/// the `observe` cargo feature is on.
#[derive(Debug, Clone)]
pub struct ObservedFigure {
    /// The analytic sweep plus simulated points.
    pub result: FigureResult,
    /// Per-cell snapshots merged in task (seed) order — independent of
    /// `SW_THREADS`, like everything else the runner produces.
    pub observe: Option<sw_observe::ObserveSnapshot>,
}

/// Regenerates a figure: full analytic sweep + simulated points.
pub fn run_figure(spec: &FigureSpec, sim: SimSettings) -> FigureResult {
    run_figure_with(spec, sim).result
}

/// [`run_figure`], keeping the observation snapshots the cells
/// captured (the figure bins and `trace_run` use this form).
pub fn run_figure_with(spec: &FigureSpec, sim: SimSettings) -> ObservedFigure {
    let analytic = Sweep::run(
        format!("Figure {} / {}", spec.figure, spec.scenario),
        spec.base,
        spec.axis,
    );

    // Scaled simulation parameters (hit ratios are n-independent).
    let mut sim_base = spec.base;
    if sim_base.n_items > sim.max_sim_items {
        sim_base.n_items = sim.max_sim_items;
    }

    let xs = pick_sim_xs(&spec.axis, sim.points);
    let strategies = [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
        Strategy::NoCache,
    ];

    // Fan the (x, strategy) grid across the shared sweep runner. Seeds
    // are pure functions of the cell coordinates, so the output is
    // identical at any thread count.
    let tasks: Vec<(f64, Strategy)> = xs
        .iter()
        .flat_map(|&x| strategies.iter().map(move |&s| (x, s)))
        .collect();
    let runner = crate::runner::ParallelRunner::from_env();
    let results = runner.run(&tasks, |_, &(x, strategy)| {
        simulate_point(sim_base, spec.axis, x, strategy, sim)
    });

    // The runner returns outputs in task order regardless of thread
    // count, so merging here keeps the combined trace deterministic.
    let mut simulated = Vec::with_capacity(results.len());
    let mut observe: Option<sw_observe::ObserveSnapshot> = None;
    for (point, snap) in results {
        simulated.push(point);
        if let Some(snap) = snap {
            observe
                .get_or_insert_with(sw_observe::ObserveSnapshot::empty)
                .merge(snap);
        }
    }

    ObservedFigure {
        result: FigureResult {
            figure: spec.figure,
            scenario: spec.scenario.to_string(),
            analytic,
            simulated,
        },
        observe,
    }
}

fn pick_sim_xs(axis: &SweepAxis, points: usize) -> Vec<f64> {
    let all = axis.points();
    if points >= all.len() {
        return all;
    }
    let step = (all.len() - 1) as f64 / (points - 1) as f64;
    (0..points)
        .map(|i| all[(i as f64 * step).round() as usize])
        .collect()
}

fn simulate_point(
    base: ScenarioParams,
    axis: SweepAxis,
    x: f64,
    strategy: Strategy,
    sim: SimSettings,
) -> (SimPoint, Option<sw_observe::ObserveSnapshot>) {
    let params = axis.apply(base, x);
    // Seed is a pure function of the cell coordinates (the old ad-hoc
    // XOR collided for same-length strategy names and depended on float
    // rounding).
    let strategy_tag = strategy
        .name()
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
    let seed = crate::runner::cell_seed(sim.seed, &[x.to_bits(), strategy_tag]);
    let mut config = CellConfig::new(params)
        .with_clients(sim.clients)
        .with_hotspot_size(sim.hotspot.min(params.n_items as usize))
        .with_seed(seed);
    if sim.observe {
        config = config.with_observe(format!("{}:x={x}", strategy.name()));
    }
    if let Some(plan) = sim.faults {
        config = config.with_faults(plan);
    }
    match CellSimulation::new(config, strategy) {
        Ok(mut cell) => match cell.run_measured(sim.intervals / 4, sim.intervals) {
            Ok(report) => {
                let point = SimPoint {
                    x,
                    strategy: strategy.name().to_string(),
                    hit_ratio: report.hit_ratio(),
                    effectiveness: report.effectiveness(),
                    report_bits: report.report_bits_mean(),
                    query_events: report.query_events(),
                    unusable: false,
                    overflow_exchanges: report.overflow_exchanges,
                };
                (point, report.observe)
            }
            // Even an unusable run keeps its trace: the events up to
            // the oversized report show *why* it died.
            Err(SimulationError::ReportTooLarge { .. }) => {
                (unusable(x, strategy), cell.observe_snapshot())
            }
            Err(e) => panic!("simulation failed at x={x}: {e}"),
        },
        Err(e) => panic!("bad config at x={x}: {e}"),
    }
}

fn unusable(x: f64, strategy: Strategy) -> SimPoint {
    SimPoint {
        x,
        strategy: strategy.name().to_string(),
        hit_ratio: 0.0,
        effectiveness: 0.0,
        report_bits: 0.0,
        query_events: 0,
        unusable: true,
        overflow_exchanges: 0,
    }
}

/// Prints the figure as the paper-shaped table: one row per x, one
/// column per strategy, `--` where unusable.
pub fn print_figure_table(result: &FigureResult, x_label: &str) {
    println!(
        "Figure {} — {} (analytic effectiveness, Eq. 10)",
        result.figure, result.scenario
    );
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8}   winner",
        x_label, "e_TS", "e_AT", "e_SIG", "e_NC"
    );
    let fmt = |v: Option<f64>| match v {
        Some(e) => format!("{e:8.4}"),
        None => format!("{:>8}", "--"),
    };
    for p in &result.analytic.points {
        let (winner, _) = p.winner();
        println!(
            "{:>10.5} {} {} {} {:8.4}   {}",
            p.x,
            fmt(p.e_ts),
            fmt(p.e_at),
            fmt(p.e_sig),
            p.e_nc,
            winner
        );
    }
    println!();
    println!("Simulated validation points (discrete-event, scaled n where noted):");
    println!(
        "{:>10} {:>6} {:>10} {:>10} {:>12} {:>10}",
        x_label, "strat", "h_sim", "e_sim", "B_c bits", "events"
    );
    let mut sorted = result.simulated.clone();
    sorted.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.strategy.cmp(&b.strategy))
    });
    for p in &sorted {
        if p.unusable {
            println!(
                "{:>10.5} {:>6} {:>10} {:>10} {:>12} {:>10}",
                p.x, p.strategy, "--", "--", "(too big)", "--"
            );
        } else {
            println!(
                "{:>10.5} {:>6} {:>10.4} {:>10.4} {:>12.1} {:>10}",
                p.x, p.strategy, p.hit_ratio, p.effectiveness, p.report_bits, p.query_events
            );
        }
    }
}

/// Shared `main` for the `fig3`…`fig8` binaries: runs the figure,
/// prints the table and an ASCII chart, writes the JSON artifact.
/// Set `SW_FAST=1` for the quick settings (used by CI-ish smoke runs)
/// and `SW_OBSERVE=1` to also capture and write an observation trace
/// (needs the `observe` cargo feature to record anything).
pub fn run_figure_main(figure: u8) {
    let spec = FigureSpec::for_figure(figure);
    let mut settings = if std::env::var("SW_FAST").is_ok() {
        SimSettings::quick()
    } else {
        let mut s = SimSettings::default();
        // The update-intensive scenarios (figures 5–6) keep the
        // shorter horizon: their hit ratios sit far from 1, where
        // Eq. 9 does not amplify h noise, and their update engines
        // dominate runtime at the scaled item counts — tripling the
        // horizon there buys nothing but minutes.
        if matches!(figure, 5 | 6) {
            s.intervals = 400;
        }
        s
    };
    settings.observe = std::env::var("SW_OBSERVE").is_ok();
    let observed = run_figure_with(&spec, settings);
    let result = observed.result;
    print_figure_table(&result, spec.x_label());

    let curves = result.analytic.curves();
    let series: Vec<crate::plot::Series<'_>> = curves
        .iter()
        .map(|c| {
            let marker = match c.name.as_str() {
                "TS" => 'T',
                "AT" => 'A',
                "SIG" => 'S',
                _ => 'N',
            };
            (marker, c.name.as_str(), c.points.as_slice())
        })
        .collect();
    println!();
    println!(
        "{}",
        crate::plot::ascii_chart(
            &format!(
                "Figure {} — {}: effectiveness vs {}",
                figure,
                spec.scenario,
                spec.x_label()
            ),
            &series,
            64,
            20,
        )
    );

    match crate::results::write_json(&format!("fig{figure}"), &result) {
        Ok(f) => println!("wrote {}", f.path.display()),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }

    if let Some(snap) = &observed.observe {
        println!();
        println!("{}", sw_observe::sink::summary(snap));
        for (suffix, body) in [
            ("trace.ndjson", snap.to_ndjson()),
            ("series.csv", snap.series_csv()),
        ] {
            match crate::results::write_text(&format!("fig{figure}.{suffix}"), &body) {
                Ok(f) => println!("wrote {}", f.path.display()),
                Err(e) => eprintln!("could not write fig{figure}.{suffix}: {e}"),
            }
        }
    } else if settings.observe {
        eprintln!(
            "SW_OBSERVE is set but this binary was built without the `observe` \
             cargo feature; rerun with `--features observe` to capture a trace."
        );
    }

    // The paper's figure configurations run the cell far below channel
    // saturation; overflowing exchanges would make every throughput
    // number above meaningless, so surface it loudly and refuse to
    // pass silently.
    let overflow: u64 = result.simulated.iter().map(|p| p.overflow_exchanges).sum();
    if let Some(warning) = sw_observe::sink::overflow_warning(overflow) {
        eprintln!("{warning}");
    }
    assert_eq!(
        overflow, 0,
        "figure {figure}'s default configuration oversubscribed the uplink channel"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figure_specs_resolve() {
        for fig in 3..=8 {
            let spec = FigureSpec::for_figure(fig);
            assert_eq!(spec.figure, fig);
            spec.base.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "figures 3..=8")]
    fn unknown_figure_panics() {
        let _ = FigureSpec::for_figure(9);
    }

    #[test]
    fn sim_xs_cover_the_range() {
        let axis = SweepAxis::sleep_default();
        let xs = pick_sim_xs(&axis, 5);
        assert_eq!(xs.len(), 5);
        assert_eq!(xs[0], 0.0);
        assert_eq!(*xs.last().unwrap(), 1.0);
    }

    #[test]
    fn quick_figure3_run_is_consistent() {
        let spec = FigureSpec::for_figure(3);
        let result = run_figure(&spec, SimSettings::quick());
        assert_eq!(result.analytic.points.len(), 21);
        // 3 x-points × 4 strategies.
        assert_eq!(result.simulated.len(), 12);
        // At s = 0 every caching strategy should have a high simulated
        // hit ratio.
        for p in &result.simulated {
            if p.x == 0.0 && p.strategy != "NC" && !p.unusable {
                assert!(
                    p.hit_ratio > 0.8,
                    "{} at s=0: hit ratio {}",
                    p.strategy,
                    p.hit_ratio
                );
            }
        }
    }

    #[test]
    fn figure5_marks_ts_unusable() {
        let spec = FigureSpec::for_figure(5);
        let mut sim = SimSettings::quick();
        sim.points = 2;
        let result = run_figure(&spec, sim);
        let ts_points: Vec<_> = result
            .simulated
            .iter()
            .filter(|p| p.strategy == "TS")
            .collect();
        assert!(
            ts_points.iter().all(|p| p.unusable),
            "TS must be unusable throughout Scenario 3: {ts_points:?}"
        );
    }
}
