//! Shared flag parsing for the `sw-serve` / `sw-mu` binaries.
//!
//! Both sides of a live session must build the *same* [`CellConfig`]
//! — the client derives its query/sleep/fault streams from it, the
//! server its database/update/signature streams — so both binaries
//! accept the same cell flags and this module owns their meaning.

use sleepers::{CellConfig, Strategy};
use sw_workload::ScenarioParams;

/// Cell flags common to `sw-serve` and `sw-mu`.
#[derive(Debug, Clone)]
pub struct LiveCellArgs {
    /// The assembled cell configuration.
    pub config: CellConfig,
    /// The broadcast strategy.
    pub strategy: Strategy,
}

/// Parses `--strategy/--clients/--n-items/--lambda/--update-rate/--s/
/// --seed/--hotspot/--observe` out of `args`, consuming the flags it
/// recognizes and leaving the rest for the caller. Unrecognized
/// `--flags` with values are left in place.
pub fn parse_cell_args(args: &mut Vec<String>) -> Result<LiveCellArgs, String> {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 500;
    params.mu = 1e-3;
    let mut strategy = Strategy::BroadcastTimestamps;
    let mut clients = 4usize;
    let mut hotspot = 25usize;
    let mut seed = 0x11FE_5EEDu64;
    let mut observe: Option<String> = None;

    let mut rest = Vec::with_capacity(args.len());
    let mut it = std::mem::take(args).into_iter();
    while let Some(flag) = it.next() {
        let mut take = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--strategy" => {
                strategy = match take()?.as_str() {
                    "ts" => Strategy::BroadcastTimestamps,
                    "at" => Strategy::AmnesicTerminals,
                    "sig" => Strategy::Signatures,
                    "hyb" => Strategy::HybridSig { hot_count: 50 },
                    other => return Err(format!("unknown strategy {other} (ts|at|sig|hyb)")),
                }
            }
            "--clients" => clients = take()?.parse().map_err(|e| format!("--clients: {e}"))?,
            "--n-items" => {
                params.n_items = take()?.parse().map_err(|e| format!("--n-items: {e}"))?
            }
            "--lambda" => params.lambda = take()?.parse().map_err(|e| format!("--lambda: {e}"))?,
            "--update-rate" => {
                params.mu = take()?.parse().map_err(|e| format!("--update-rate: {e}"))?
            }
            "--s" => params.s = take()?.parse().map_err(|e| format!("--s: {e}"))?,
            "--hotspot" => hotspot = take()?.parse().map_err(|e| format!("--hotspot: {e}"))?,
            "--seed" => {
                let v = take()?;
                seed = u64::from_str_radix(v.trim_start_matches("0x"), 16)
                    .or_else(|_| v.parse())
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--observe" => observe = Some(take()?),
            _ => rest.push(flag),
        }
    }
    *args = rest;

    let mut config = CellConfig::new(params)
        .with_clients(clients)
        .with_hotspot_size(hotspot)
        .with_seed(seed);
    if let Some(label) = observe {
        config = config.with_observe(&label);
    }
    Ok(LiveCellArgs { config, strategy })
}

/// Pulls the value of one `--flag value` pair out of `args`, if
/// present.
pub fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    if at + 1 >= args.len() {
        return None;
    }
    args.remove(at);
    Some(args.remove(at))
}

/// True iff the bare `--flag` is present (and removes it).
pub fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(at) => {
            args.remove(at);
            true
        }
        None => false,
    }
}
