//! Terminal ASCII charts, so `cargo run -p sw-experiments --bin fig3`
//! shows the curve shapes without any plotting dependency.

/// One chart series: marker character, legend name, and `(x, y)` points.
pub type Series<'a> = (char, &'a str, &'a [(f64, f64)]);

/// Renders named series into a fixed-size ASCII chart. Each series is
/// drawn with its own marker character; overlapping cells keep the
/// earlier series' marker.
pub fn ascii_chart(title: &str, series: &[Series<'_>], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 5, "chart too small to be useful");
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for (_, _, pts) in series {
        for &(x, y) in *pts {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
        }
    }
    if !min_x.is_finite() || max_x <= min_x {
        return format!("{title}\n(no data)\n");
    }
    let max_y = if max_y <= 0.0 { 1.0 } else { max_y * 1.05 };

    let mut grid = vec![vec![' '; width]; height];
    for (marker, _, pts) in series {
        for &(x, y) in *pts {
            let cx = ((x - min_x) / (max_x - min_x) * (width - 1) as f64).round() as usize;
            let cy = (y.max(0.0) / max_y * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            if grid[row][col] == ' ' {
                grid[row][col] = *marker;
            }
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_val = max_y * (height - 1 - i) as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_val:7.3} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "        +{}\n         {:<10.4}{:>width$.4}\n",
        "-".repeat(width),
        min_x,
        max_x,
        width = width - 10
    ));
    let legend: Vec<String> = series
        .iter()
        .map(|(m, name, _)| format!("{m} = {name}"))
        .collect();
    out.push_str(&format!("         {}\n", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_series_and_legend() {
        let a: Vec<(f64, f64)> = (0..=10).map(|i| (i as f64 / 10.0, i as f64 / 10.0)).collect();
        let b: Vec<(f64, f64)> = (0..=10)
            .map(|i| (i as f64 / 10.0, 1.0 - i as f64 / 10.0))
            .collect();
        let chart = ascii_chart(
            "test",
            &[('A', "up", &a), ('B', "down", &b)],
            40,
            10,
        );
        assert!(chart.contains('A'));
        assert!(chart.contains('B'));
        assert!(chart.contains("A = up"));
        assert!(chart.starts_with("test\n"));
    }

    #[test]
    fn empty_series_is_handled() {
        let chart = ascii_chart("empty", &[('X', "none", &[])], 40, 10);
        assert!(chart.contains("no data"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_rejected() {
        let _ = ascii_chart("t", &[], 2, 2);
    }
}
