//! JSON result artifacts under `results/`, consumed by EXPERIMENTS.md.

use std::path::{Path, PathBuf};

use serde::Serialize;

/// A named result artifact.
#[derive(Debug, Clone)]
pub struct ResultFile {
    /// Path the artifact was written to.
    pub path: PathBuf,
}

/// Serializes `value` as pretty JSON into `results/<name>.json`
/// (relative to the workspace root if invoked via cargo, else the
/// current directory).
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<ResultFile> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable result");
    std::fs::write(&path, json)?;
    Ok(ResultFile { path })
}

/// Writes a plain-text artifact (NDJSON trace, CSV series, summary
/// table) to `results/<name>`; `name` carries its own extension.
pub fn write_text(name: &str, body: &str) -> std::io::Result<ResultFile> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, body)?;
    Ok(ResultFile { path })
}

fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR points at crates/experiments; hop to the root.
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = Path::new(&manifest);
        if let Some(root) = p.parent().and_then(Path::parent) {
            return root.join("results");
        }
    }
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_is_readable() {
        let f = write_json("test_artifact", &serde_json::json!({"answer": 42})).unwrap();
        let body = std::fs::read_to_string(&f.path).unwrap();
        assert!(body.contains("42"));
        std::fs::remove_file(&f.path).ok();
    }
}
