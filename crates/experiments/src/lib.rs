//! # sw-experiments — the figure/table regeneration harness
//!
//! One binary per paper artifact (see DESIGN.md §3's experiment index):
//!
//! | bin | artifact |
//! |-----|----------|
//! | `fig3`…`fig8` | Figures 3–8 (Scenarios 1–6 effectiveness curves) |
//! | `asymptotics` | the two §5 limit tables |
//! | `validate_hit_ratios` | E11: simulated vs closed-form hit ratios |
//! | `quasi_copies` | E12: §7 report-size reduction |
//! | `adaptive_ts` | E13: §8 adaptive windows vs static TS |
//! | `sig_false_alarms` | E14: SIG false-alarm rate vs the Chernoff bound |
//!
//! Each binary prints the paper-shaped table to stdout and writes a
//! JSON artifact under `results/` for EXPERIMENTS.md.
//!
//! Simulation points run the full discrete-event simulator. For the
//! 10⁶-item scenarios (2, 4, 6) the simulated database is scaled down
//! (default 10⁴ items, hotspots and rates unchanged) because hit ratios
//! are independent of `n` in the paper's model (per-item λ and μ fixed)
//! while the report-size terms are analytic; EXPERIMENTS.md states this
//! substitution wherever it applies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod live_cli;
pub mod plot;
pub mod results;
pub mod runner;

pub use figures::{FigureResult, FigureSpec, SimPoint, SimSettings};
pub use plot::ascii_chart;
pub use results::{write_json, ResultFile};
pub use runner::{cell_seed, mesh_seed, ParallelRunner};
