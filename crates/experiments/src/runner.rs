//! Re-export shim: the parallel sweep runner moved to `sw_sim::runner`
//! so the mesh layer (which must not depend on the experiment harness)
//! can shard its live cells with the same machinery. Existing
//! `sw_experiments::{cell_seed, ParallelRunner}` imports keep working.

pub use sw_sim::runner::{cell_seed, mesh_seed, ParallelRunner};
