//! End-to-end SIGTERM coverage for the `sw-serve` daemon: a paced
//! session killed mid-run must land cleanly — partial summary on
//! stdout, exit 0, and a flight-recorder dump whose meta line says
//! `reason=sigterm…` — the library half of this contract (the
//! `Stopper`) is pinned in `sw-live`'s `shutdown` suite.

#![cfg(unix)]

use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use sw_experiments::live_cli::parse_cell_args;
use sw_live::{run_mu, MuOptions};

const CLIENTS: usize = 2;
const INTERVALS: u64 = 150;
const INTERVAL_MS: u64 = 20;

/// The cell flags handed to both the daemon and the in-process MUs —
/// both sides must assemble the identical `CellConfig`.
fn cell_flags() -> Vec<String> {
    [
        "--clients", "2", "--n-items", "200", "--update-rate", "4e-3", "--hotspot", "15",
        "--seed", "0x7E475167",
    ]
    .map(String::from)
    .to_vec()
}

fn await_file(path: &std::path::Path, deadline: Duration) -> String {
    let until = Instant::now() + deadline;
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                return text;
            }
        }
        assert!(
            Instant::now() < until,
            "{} never appeared",
            path.display()
        );
        thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_mid_paced_session_exits_cleanly_with_sigterm_flight_dump() {
    let dir = std::env::temp_dir().join(format!("sw-serve-sigterm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let announce = dir.join("addr");

    let mut serve = Command::new(env!("CARGO_BIN_EXE_sw-serve"));
    serve
        .args([
            "--port",
            "0",
            "--intervals",
            &INTERVALS.to_string(),
            "--interval-ms",
            &INTERVAL_MS.to_string(),
            "--flight",
            "16",
        ])
        .arg("--flight-dir")
        .arg(&dir)
        .arg("--announce")
        .arg(&announce)
        .args(cell_flags())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let child = serve.spawn().expect("spawn sw-serve");
    let pid = child.id();

    let addr: SocketAddr = await_file(&announce, Duration::from_secs(10))
        .parse()
        .expect("announced address");

    // A fleet keeps the registration phase honest; the units free-run
    // their local schedule once the daemon is gone, exactly like a
    // real cell losing its server.
    let mut flags = cell_flags();
    let cell = parse_cell_args(&mut flags).expect("cell flags");
    let workers: Vec<_> = (0..CLIENTS)
        .map(|idx| {
            let cfg = cell.config.clone();
            let strategy = cell.strategy;
            thread::spawn(move || run_mu(addr, &cfg, strategy, idx, MuOptions::default()))
        })
        .collect();

    // Let some reports air, then deliver the signal the issue is
    // about: a real SIGTERM to a real process mid-interval.
    thread::sleep(Duration::from_millis(25 * INTERVAL_MS));
    let killed = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -TERM failed");

    let out = child.wait_with_output().expect("wait for sw-serve");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "sw-serve exited {:?}\nstdout: {stdout}\nstderr: {stderr}",
        out.status
    );
    assert!(
        stderr.contains("SIGTERM; stopping the session"),
        "missing signal acknowledgement: {stderr}"
    );
    let served: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("served ")?.split(' ').next()?.parse().ok())
        .unwrap_or_else(|| panic!("no session summary in: {stdout}"));
    assert!(
        served > 0 && served < INTERVALS,
        "expected a partial session, served {served} of {INTERVALS}"
    );
    assert!(stdout.contains("flight ring"), "no dump notice: {stdout}");

    // The forensics file: meta line first, reason starts "sigterm".
    let dump = std::fs::read_to_string(dir.join("sw-flight-server.ndjson"))
        .expect("flight dump file");
    let meta = dump.lines().next().expect("meta line");
    assert!(meta.contains("\"kind\":\"flight_meta\""), "bad meta: {meta}");
    assert!(meta.contains("\"reason\":\"sigterm"), "bad meta: {meta}");

    for w in workers {
        w.join()
            .expect("client thread")
            .expect("client survived the server's death");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
