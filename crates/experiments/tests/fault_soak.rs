//! Fault-injection soak and determinism suite.
//!
//! The tentpole claim of the fault layer: under *any* deterministic
//! fault schedule, never-stale strategies (TS, AT) produce **zero**
//! false validations — every fault-induced report gap is turned into a
//! drop (AT) or a window check (TS) — while SIG's violation rate stays
//! under its documented collision bound. The soak below drives a
//! 10 000-interval run through a hostile mix of bursty loss, frame
//! corruption, clock drift, and uplink failures with the per-interval
//! safety checker armed; the simulation itself aborts at the first
//! stale validation by a never-stale strategy
//! (`SimulationError::SafetyViolated`), so completing the run *is* the
//! proof.
//!
//! The determinism half pins that fault schedules are a pure function
//! of the master seed: the same faulty grid through [`ParallelRunner`]
//! at 1, 2, and 8 threads must yield byte-identical reports.

use sleepers::prelude::*;
use sw_experiments::{cell_seed, ParallelRunner};

fn hostile_plan() -> FaultPlan {
    FaultPlan::none()
        .with_loss(LossModel::burst(0.08, 0.35, 0.9))
        .with_corruption(0.03)
        .with_drift(ClockDrift {
            rate_secs_per_interval: 0.02,
            jitter_secs: 0.01,
        })
        .with_uplink(UplinkFaults {
            p_fail: 0.15,
            max_attempts: 3,
            backoff_base_bits: 64,
        })
}

fn soak_config(seed: u64) -> CellConfig {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 200;
    params.lambda = 0.05;
    params.mu = 1e-3;
    params.k = 10;
    CellConfig::new(params.with_s(0.4))
        .with_clients(8)
        .with_hotspot_size(20)
        .with_seed(seed)
        .with_delivery(DeliveryMode::TimerSynchronized {
            clock_skew_bound: 0.1,
        })
        .with_faults(hostile_plan())
        .with_safety_checking()
}

#[cfg(feature = "faults")]
#[test]
fn ten_thousand_interval_soak_upholds_the_safety_contracts() {
    let intervals = if std::env::var("SW_FAST").is_ok() {
        2_000
    } else {
        10_000
    };
    for (strategy, seed) in [
        (Strategy::BroadcastTimestamps, 0x50AC_0001),
        (Strategy::AmnesicTerminals, 0x50AC_0002),
        (Strategy::Signatures, 0x50AC_0003),
    ] {
        let mut sim = CellSimulation::new(soak_config(seed), strategy).expect("valid config");
        // A never-stale strategy that validated a stale entry would
        // abort here with SimulationError::SafetyViolated.
        let report = sim
            .run(intervals)
            .unwrap_or_else(|e| panic!("{strategy:?} soak aborted: {e}"));
        assert!(
            report.faults.reports_missed_total() > 100,
            "{strategy:?}: the soak must actually miss reports (got {})",
            report.faults.reports_missed_total()
        );
        assert!(
            report.faults.uplink_retries > 0,
            "{strategy:?}: the soak must exercise uplink retries"
        );
        assert_eq!(
            report.faults.undetected_corruptions, 0,
            "{strategy:?}: the 64-bit checksum must catch every single-bit flip"
        );
        assert!(report.safety.entries_checked > 0);
        // The per-strategy contract, verified against the run's counters.
        report
            .safety
            .verify(strategy.safety_expectation())
            .unwrap_or_else(|e| panic!("{strategy:?} broke its safety contract: {e}"));
        if matches!(strategy, Strategy::Signatures) {
            assert!(
                report.safety.violation_rate() < Strategy::SIG_VIOLATION_BOUND,
                "SIG violation rate {} must stay under the documented bound",
                report.safety.violation_rate()
            );
        } else {
            assert_eq!(
                report.safety.violations, 0,
                "{strategy:?} must never validate a stale entry under faults"
            );
        }
    }
}

/// The eviction safety audit: 5 000 intervals of burst loss and clock
/// drift with a *tight* bounded cache (capacity 6 under a 20-item
/// hotspot, so the replacement policy fires constantly) for every
/// policy. Eviction must never launder staleness: a ghost consumed as
/// `Fresh` re-enters through the uplink with a server timestamp, so
/// TS and AT keep their zero-violation contract (the armed checker
/// aborts the run otherwise — completing is the proof), and SIG stays
/// under its documented collision bound.
#[cfg(feature = "faults")]
#[test]
fn five_thousand_interval_eviction_soak_stays_never_stale() {
    let intervals = if std::env::var("SW_FAST").is_ok() {
        1_000
    } else {
        5_000
    };
    let plan = FaultPlan::none()
        .with_loss(LossModel::burst(0.08, 0.35, 0.9))
        .with_drift(ClockDrift {
            rate_secs_per_interval: 0.02,
            jitter_secs: 0.01,
        });
    for (strategy, seed) in [
        (Strategy::BroadcastTimestamps, 0x50AC_1001u64),
        (Strategy::AmnesicTerminals, 0x50AC_1002),
        (Strategy::Signatures, 0x50AC_1003),
    ] {
        for (pi, policy) in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Lfu,
            ReplacementPolicy::WindowAge,
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = soak_config(seed ^ ((pi as u64) << 32))
                .with_faults(plan)
                .with_cache_capacity(6)
                .with_replacement(policy);
            let mut sim = CellSimulation::new(cfg, strategy).expect("valid config");
            let report = sim.run(intervals).unwrap_or_else(|e| {
                panic!("{strategy:?}/{policy:?} eviction soak aborted: {e}")
            });
            assert!(
                report.capacity.evictions > intervals / 10,
                "{strategy:?}/{policy:?}: capacity 6 must actually churn (got {})",
                report.capacity.evictions
            );
            assert!(
                report.faults.reports_missed_total() > 100,
                "{strategy:?}/{policy:?}: the soak must actually miss reports"
            );
            assert!(report.safety.entries_checked > 0);
            report.safety.verify(strategy.safety_expectation()).unwrap_or_else(|e| {
                panic!("{strategy:?}/{policy:?} broke its safety contract under eviction: {e}")
            });
            if matches!(strategy, Strategy::Signatures) {
                assert!(
                    report.safety.violation_rate() < Strategy::SIG_VIOLATION_BOUND,
                    "SIG/{policy:?} violation rate {} exceeds the documented bound",
                    report.safety.violation_rate()
                );
            } else {
                assert_eq!(
                    report.safety.violations, 0,
                    "{strategy:?}/{policy:?} validated a stale entry after an eviction"
                );
            }
        }
    }
}

/// One grid cell: a strategy under the hostile plan at a swept seed.
#[derive(Clone, Copy)]
struct Cell {
    strategy: Strategy,
    tag: u64,
}

/// Runs one faulty cell end to end and renders the report
/// byte-for-byte (the `Debug` rendering covers every counter,
/// including the fault totals).
fn run_cell(cell: &Cell) -> String {
    let seed = cell_seed(0xFA_5EED, &[cell.tag]);
    let report = CellSimulation::new(soak_config(seed), cell.strategy)
        .expect("cell constructs")
        .run_measured(20, 80)
        .expect("cell runs");
    format!("{report:?}")
}

#[test]
fn fault_schedules_are_byte_identical_across_thread_counts() {
    // Fault draws come from their own `StreamId::Faults { index }`
    // streams, derived from the cell seed alone — never from
    // scheduling. Holds in both feature configs: compiled out, the
    // plan is inert but the grid must still agree.
    let cells: Vec<Cell> = [
        (Strategy::BroadcastTimestamps, 1u64),
        (Strategy::AmnesicTerminals, 2),
        (Strategy::Signatures, 3),
    ]
    .iter()
    .flat_map(|&(strategy, tag)| {
        (0..3).map(move |rep| Cell {
            strategy,
            tag: tag * 100 + rep,
        })
    })
    .collect();
    let baseline = ParallelRunner::new(1).run(&cells, |_, c| run_cell(c));
    for threads in [2, 8] {
        let reports = ParallelRunner::new(threads).run(&cells, |_, c| run_cell(c));
        assert_eq!(
            baseline, reports,
            "fault schedules changed between 1 and {threads} threads"
        );
    }
}

// ---- faults composing with mobility --------------------------------

/// A lighter hostile plan for the mesh soak: report loss plus clock
/// drift (the uplink/corruption axes are already pinned by the
/// single-cell soak above, and the mesh adds nothing to them).
#[cfg(feature = "faults")]
fn mesh_hostile_plan() -> FaultPlan {
    FaultPlan::none()
        .with_loss(LossModel::burst(0.08, 0.35, 0.9))
        .with_drift(ClockDrift {
            rate_secs_per_interval: 0.02,
            jitter_secs: 0.01,
        })
}

#[cfg(feature = "faults")]
fn mesh_soak_config(strategy_tag: u64) -> sw_mesh::MeshConfig {
    use sw_mesh::{CellGraph, MeshConfig, MobilityModel};
    use sw_sim::{mesh_seed, MasterSeed};

    let mut params = ScenarioParams::scenario1();
    params.n_items = 200;
    params.lambda = 0.05;
    params.mu = 1e-3;
    params.k = 10;
    let base = CellConfig::new(params.with_s(0.4))
        .with_clients(8)
        .with_hotspot_size(20)
        .with_delivery(DeliveryMode::TimerSynchronized {
            clock_skew_bound: 0.1,
        })
        .with_faults(mesh_hostile_plan())
        .with_safety_checking()
        // Free when the `observe` feature is off; with it, exposes the
        // SIG diagnosis counters (`sig_false_alarms`) the pins below
        // cover in the observe+faults build.
        .with_observe("mesh-soak");
    let seed = MasterSeed(mesh_seed(0x50AC_3E5B, &[strategy_tag]));
    MeshConfig::new(CellGraph::ring(3), base, seed)
        .with_mobility(MobilityModel::Markov { rate: 0.05 })
}

/// The mesh soak: 5 000 intervals of burst loss and clock drift
/// *composing* with Markov mobility — faulty gaps and handoff gaps
/// interleave freely. Never-stale strategies (TS, AT) must survive
/// with zero violations (the armed safety checker aborts the run
/// otherwise, so completing is the proof); SIG is allowed signature
/// collisions, and — because the whole mesh is a pure function of its
/// master seed — its diagnosis counters are pinned to exact values
/// rather than bounds. `SW_FAST=1` shortens the soak and keeps only
/// the invariant checks (the pins hold for the full horizon only).
#[cfg(feature = "faults")]
#[test]
fn five_thousand_interval_mesh_soak_composes_faults_with_mobility() {
    let fast = std::env::var("SW_FAST").is_ok();
    let intervals = if fast { 1_000 } else { 5_000 };

    for (strategy, tag) in [
        (Strategy::BroadcastTimestamps, 1u64),
        (Strategy::AmnesicTerminals, 2),
        (Strategy::Signatures, 3),
    ] {
        let mut mesh = sw_mesh::MeshSimulation::new(mesh_soak_config(tag), strategy)
            .expect("valid mesh config");
        // A never-stale strategy that validated a stale entry — after
        // a lost report, a drifted wake-up, or a handoff — aborts here
        // with SimulationError::SafetyViolated.
        let report = mesh
            .run(intervals)
            .unwrap_or_else(|e| panic!("{strategy:?} mesh soak aborted: {e}"));

        assert!(report.migrations > 0, "{strategy:?}: mobility must fire");
        let missed: u64 = report
            .cells
            .iter()
            .map(|c| c.faults.reports_missed_total())
            .sum();
        assert!(
            missed > 100,
            "{strategy:?}: the soak must actually miss reports (got {missed})"
        );
        let checked: u64 = report.cells.iter().map(|c| c.safety.entries_checked).sum();
        assert!(checked > 0);
        for cell in &report.cells {
            cell.safety
                .verify(strategy.safety_expectation())
                .unwrap_or_else(|e| panic!("{strategy:?} broke its safety contract: {e}"));
        }
        if !matches!(strategy, Strategy::Signatures) {
            assert_eq!(
                report.safety_violations(),
                0,
                "{strategy:?} must never validate a stale entry under faults + mobility"
            );
        }

        // The SIG pins: collision and false-alarm accounting is a pure
        // function of the master seed, so exact equality is the test.
        if matches!(strategy, Strategy::Signatures) && !fast {
            assert_eq!(
                report.migrations, MESH_SOAK_SIG_MIGRATIONS,
                "SIG soak: migration schedule drifted"
            );
            assert_eq!(
                report.safety_violations(),
                MESH_SOAK_SIG_COLLISIONS,
                "SIG soak: signature-collision count drifted"
            );
            assert_eq!(
                report.migration().handoff_drops,
                MESH_SOAK_SIG_HANDOFF_DROPS,
                "SIG soak: handoff-drop count drifted"
            );
            assert_eq!(
                checked, MESH_SOAK_SIG_ENTRIES_CHECKED,
                "SIG soak: safety-checker coverage drifted"
            );
            assert_eq!(
                missed, MESH_SOAK_SIG_REPORTS_MISSED,
                "SIG soak: fault schedule drifted"
            );
            // The false-alarm half lives in the observe layer and is
            // only recorded in the observe+faults build.
            #[cfg(feature = "observe")]
            {
                let false_alarms: u64 = report
                    .cells
                    .iter()
                    .map(|c| {
                        c.observe
                            .as_ref()
                            .map_or(0, |snap| snap.counter("sig_false_alarms"))
                    })
                    .sum();
                assert_eq!(
                    false_alarms, MESH_SOAK_SIG_FALSE_ALARMS,
                    "SIG soak: false-alarm count drifted"
                );
            }
        }
    }
}

/// Pinned counters for the full 5 000-interval SIG mesh soak. These
/// are regression pins, not derived quantities: any change to the RNG
/// stream layout, the fault schedule, the mobility walk, or the
/// handoff rules shows up here first.
#[cfg(feature = "faults")]
const MESH_SOAK_SIG_MIGRATIONS: u64 = 6_066;
#[cfg(feature = "faults")]
const MESH_SOAK_SIG_COLLISIONS: u64 = 0;
#[cfg(feature = "faults")]
const MESH_SOAK_SIG_HANDOFF_DROPS: u64 = 0;
#[cfg(feature = "faults")]
const MESH_SOAK_SIG_ENTRIES_CHECKED: u64 = 2_315_309;
#[cfg(feature = "faults")]
const MESH_SOAK_SIG_REPORTS_MISSED: u64 = 13_696;
#[cfg(all(feature = "faults", feature = "observe"))]
const MESH_SOAK_SIG_FALSE_ALARMS: u64 = 32_004;
