//! Fault-injection soak and determinism suite.
//!
//! The tentpole claim of the fault layer: under *any* deterministic
//! fault schedule, never-stale strategies (TS, AT) produce **zero**
//! false validations — every fault-induced report gap is turned into a
//! drop (AT) or a window check (TS) — while SIG's violation rate stays
//! under its documented collision bound. The soak below drives a
//! 10 000-interval run through a hostile mix of bursty loss, frame
//! corruption, clock drift, and uplink failures with the per-interval
//! safety checker armed; the simulation itself aborts at the first
//! stale validation by a never-stale strategy
//! (`SimulationError::SafetyViolated`), so completing the run *is* the
//! proof.
//!
//! The determinism half pins that fault schedules are a pure function
//! of the master seed: the same faulty grid through [`ParallelRunner`]
//! at 1, 2, and 8 threads must yield byte-identical reports.

use sleepers::prelude::*;
use sw_experiments::{cell_seed, ParallelRunner};

fn hostile_plan() -> FaultPlan {
    FaultPlan::none()
        .with_loss(LossModel::burst(0.08, 0.35, 0.9))
        .with_corruption(0.03)
        .with_drift(ClockDrift {
            rate_secs_per_interval: 0.02,
            jitter_secs: 0.01,
        })
        .with_uplink(UplinkFaults {
            p_fail: 0.15,
            max_attempts: 3,
            backoff_base_bits: 64,
        })
}

fn soak_config(seed: u64) -> CellConfig {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 200;
    params.lambda = 0.05;
    params.mu = 1e-3;
    params.k = 10;
    CellConfig::new(params.with_s(0.4))
        .with_clients(8)
        .with_hotspot_size(20)
        .with_seed(seed)
        .with_delivery(DeliveryMode::TimerSynchronized {
            clock_skew_bound: 0.1,
        })
        .with_faults(hostile_plan())
        .with_safety_checking()
}

#[cfg(feature = "faults")]
#[test]
fn ten_thousand_interval_soak_upholds_the_safety_contracts() {
    let intervals = if std::env::var("SW_FAST").is_ok() {
        2_000
    } else {
        10_000
    };
    for (strategy, seed) in [
        (Strategy::BroadcastTimestamps, 0x50AC_0001),
        (Strategy::AmnesicTerminals, 0x50AC_0002),
        (Strategy::Signatures, 0x50AC_0003),
    ] {
        let mut sim = CellSimulation::new(soak_config(seed), strategy).expect("valid config");
        // A never-stale strategy that validated a stale entry would
        // abort here with SimulationError::SafetyViolated.
        let report = sim
            .run(intervals)
            .unwrap_or_else(|e| panic!("{strategy:?} soak aborted: {e}"));
        assert!(
            report.faults.reports_missed_total() > 100,
            "{strategy:?}: the soak must actually miss reports (got {})",
            report.faults.reports_missed_total()
        );
        assert!(
            report.faults.uplink_retries > 0,
            "{strategy:?}: the soak must exercise uplink retries"
        );
        assert_eq!(
            report.faults.undetected_corruptions, 0,
            "{strategy:?}: the 64-bit checksum must catch every single-bit flip"
        );
        assert!(report.safety.entries_checked > 0);
        // The per-strategy contract, verified against the run's counters.
        report
            .safety
            .verify(strategy.safety_expectation())
            .unwrap_or_else(|e| panic!("{strategy:?} broke its safety contract: {e}"));
        if matches!(strategy, Strategy::Signatures) {
            assert!(
                report.safety.violation_rate() < Strategy::SIG_VIOLATION_BOUND,
                "SIG violation rate {} must stay under the documented bound",
                report.safety.violation_rate()
            );
        } else {
            assert_eq!(
                report.safety.violations, 0,
                "{strategy:?} must never validate a stale entry under faults"
            );
        }
    }
}

/// One grid cell: a strategy under the hostile plan at a swept seed.
#[derive(Clone, Copy)]
struct Cell {
    strategy: Strategy,
    tag: u64,
}

/// Runs one faulty cell end to end and renders the report
/// byte-for-byte (the `Debug` rendering covers every counter,
/// including the fault totals).
fn run_cell(cell: &Cell) -> String {
    let seed = cell_seed(0xFA_5EED, &[cell.tag]);
    let report = CellSimulation::new(soak_config(seed), cell.strategy)
        .expect("cell constructs")
        .run_measured(20, 80)
        .expect("cell runs");
    format!("{report:?}")
}

#[test]
fn fault_schedules_are_byte_identical_across_thread_counts() {
    // Fault draws come from their own `StreamId::Faults { index }`
    // streams, derived from the cell seed alone — never from
    // scheduling. Holds in both feature configs: compiled out, the
    // plan is inert but the grid must still agree.
    let cells: Vec<Cell> = [
        (Strategy::BroadcastTimestamps, 1u64),
        (Strategy::AmnesicTerminals, 2),
        (Strategy::Signatures, 3),
    ]
    .iter()
    .flat_map(|&(strategy, tag)| {
        (0..3).map(move |rep| Cell {
            strategy,
            tag: tag * 100 + rep,
        })
    })
    .collect();
    let baseline = ParallelRunner::new(1).run(&cells, |_, c| run_cell(c));
    for threads in [2, 8] {
        let reports = ParallelRunner::new(threads).run(&cells, |_, c| run_cell(c));
        assert_eq!(
            baseline, reports,
            "fault schedules changed between 1 and {threads} threads"
        );
    }
}
