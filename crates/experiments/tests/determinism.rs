//! Determinism across thread counts.
//!
//! The sweep runner's contract: a cell's result is a pure function of
//! its coordinates and the master seed — never of scheduling. These
//! tests pin that by running the same simulation grid through
//! [`ParallelRunner`] at 1, 2, and 8 threads and demanding
//! byte-identical [`SimulationReport`]s (compared via their full
//! `Debug` rendering, which covers every counter and float).

use sleepers::prelude::*;
use sw_experiments::{cell_seed, ParallelRunner};

/// One grid cell: a strategy at a swept sleep probability.
#[derive(Clone, Copy)]
struct Cell {
    strategy: Strategy,
    sleep: f64,
    tag: u64,
}

fn grid() -> Vec<Cell> {
    let strategies: [(Strategy, u64); 6] = [
        (Strategy::BroadcastTimestamps, 1),
        (Strategy::AmnesicTerminals, 2),
        (Strategy::Signatures, 3),
        (Strategy::NoCache, 4),
        (Strategy::QuasiDelay { alpha_intervals: 3 }, 5),
        (Strategy::Stateful, 6),
    ];
    let sleeps = [0.0, 0.4, 0.8];
    strategies
        .iter()
        .flat_map(|&(strategy, tag)| {
            sleeps.iter().map(move |&sleep| Cell {
                strategy,
                sleep,
                tag,
            })
        })
        .collect()
}

/// Runs one cell end to end and renders the report byte-for-byte.
fn run_cell(cell: &Cell) -> String {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 500;
    params.s = cell.sleep;
    let seed = cell_seed(0xD0_0D, &[cell.tag, cell.sleep.to_bits()]);
    let cfg = CellConfig::new(params)
        .with_clients(6)
        .with_hotspot_size(15)
        .with_seed(seed);
    let report = CellSimulation::new(cfg, cell.strategy)
        .expect("cell constructs")
        .run_measured(20, 60)
        .expect("cell runs");
    format!("{report:?}")
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let cells = grid();
    let baseline = ParallelRunner::new(1).run(&cells, |_, c| run_cell(c));
    // Sanity: the grid actually simulated something.
    assert_eq!(baseline.len(), cells.len());
    assert!(baseline.iter().all(|r| r.contains("hit_events")));
    for threads in [2, 8] {
        let got = ParallelRunner::new(threads).run(&cells, |_, c| run_cell(c));
        assert_eq!(
            got, baseline,
            "SimulationReport differed between 1 and {threads} threads"
        );
    }
}

#[test]
fn wake_modes_are_byte_identical() {
    // The scan and heap wake schedules must be pure representation
    // choices: same awake sets, same rng consumption order, same
    // report, at every sleep regime — that is what lets the simulator
    // auto-pick the faster one per cell.
    for cell in grid() {
        let mut params = ScenarioParams::scenario1();
        params.n_items = 500;
        params.s = cell.sleep;
        let seed = cell_seed(0xD0_0D, &[cell.tag, cell.sleep.to_bits()]);
        let run = |mode: WakeMode| {
            let cfg = CellConfig::new(params)
                .with_clients(6)
                .with_hotspot_size(15)
                .with_seed(seed)
                .with_wake_mode(mode);
            let report = CellSimulation::new(cfg, cell.strategy)
                .expect("cell constructs")
                .run_measured(20, 60)
                .expect("cell runs");
            format!("{report:?}")
        };
        assert_eq!(
            run(WakeMode::Scan),
            run(WakeMode::Heap),
            "wake modes diverged for {:?} at s={}",
            cell.strategy,
            cell.sleep
        );
    }
}

#[test]
fn reruns_of_the_same_seed_are_byte_identical() {
    // Same cell, fresh simulation objects: the report must not depend
    // on allocator state, iteration order, or anything else ambient.
    let cell = Cell {
        strategy: Strategy::BroadcastTimestamps,
        sleep: 0.6,
        tag: 1,
    };
    let a = run_cell(&cell);
    let b = run_cell(&cell);
    assert_eq!(a, b);
}

#[test]
fn figure_grid_is_thread_count_invariant() {
    // The real figure pipeline (analytic sweep + simulated points)
    // serializes identically at any thread count. `run_figure` reads
    // SW_THREADS via ParallelRunner::from_env(); exercise it through
    // the env-independent path instead: the simulated points are a
    // (x × strategy) grid, already covered above, so here we only pin
    // that two full figure runs agree with each other.
    use sw_experiments::figures::{run_figure, FigureSpec, SimSettings};
    let spec = FigureSpec::for_figure(3);
    let mut sim = SimSettings::quick();
    sim.intervals = 60;
    let a = serde_json::to_string(&run_figure(&spec, sim)).expect("serializes");
    let b = serde_json::to_string(&run_figure(&spec, sim)).expect("serializes");
    assert_eq!(a, b, "figure pipeline must be deterministic");
}
