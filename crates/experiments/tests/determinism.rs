//! Determinism across thread counts.
//!
//! The sweep runner's contract: a cell's result is a pure function of
//! its coordinates and the master seed — never of scheduling. These
//! tests pin that by running the same simulation grid through
//! [`ParallelRunner`] at 1, 2, and 8 threads and demanding
//! byte-identical [`SimulationReport`]s (compared via their full
//! `Debug` rendering, which covers every counter and float).

use sleepers::prelude::*;
use sw_experiments::{cell_seed, ParallelRunner};

/// One grid cell: a strategy at a swept sleep probability.
#[derive(Clone, Copy)]
struct Cell {
    strategy: Strategy,
    sleep: f64,
    tag: u64,
}

fn grid() -> Vec<Cell> {
    let strategies: [(Strategy, u64); 6] = [
        (Strategy::BroadcastTimestamps, 1),
        (Strategy::AmnesicTerminals, 2),
        (Strategy::Signatures, 3),
        (Strategy::NoCache, 4),
        (Strategy::QuasiDelay { alpha_intervals: 3 }, 5),
        (Strategy::Stateful, 6),
    ];
    let sleeps = [0.0, 0.4, 0.8];
    strategies
        .iter()
        .flat_map(|&(strategy, tag)| {
            sleeps.iter().map(move |&sleep| Cell {
                strategy,
                sleep,
                tag,
            })
        })
        .collect()
}

/// Runs one cell end to end and renders the report byte-for-byte.
fn run_cell(cell: &Cell) -> String {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 500;
    params.s = cell.sleep;
    let seed = cell_seed(0xD0_0D, &[cell.tag, cell.sleep.to_bits()]);
    let cfg = CellConfig::new(params)
        .with_clients(6)
        .with_hotspot_size(15)
        .with_seed(seed);
    let report = CellSimulation::new(cfg, cell.strategy)
        .expect("cell constructs")
        .run_measured(20, 60)
        .expect("cell runs");
    format!("{report:?}")
}

/// Runs one cell with observation on. Returns the report's `Debug`
/// rendering with the snapshot stripped (it contains wall-clock span
/// timings, which are legitimately non-deterministic) plus the
/// snapshot itself — `None` whenever the `observe` feature is off.
fn run_cell_observed(cell: &Cell) -> (String, Option<sleepers::observe::ObserveSnapshot>) {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 500;
    params.s = cell.sleep;
    let seed = cell_seed(0xD0_0D, &[cell.tag, cell.sleep.to_bits()]);
    let cfg = CellConfig::new(params)
        .with_clients(6)
        .with_hotspot_size(15)
        .with_seed(seed)
        .with_observe(format!("{}:s={}", cell.strategy.name(), cell.sleep));
    let mut report = CellSimulation::new(cfg, cell.strategy)
        .expect("cell constructs")
        .run_measured(20, 60)
        .expect("cell runs");
    let snap = report.observe.take();
    (format!("{report:?}"), snap)
}

#[test]
fn observation_does_not_perturb_the_simulation() {
    // An observed run must produce the exact report an unobserved run
    // does: the recorder consumes no randomness and feeds nothing back.
    // Holds identically whether the `observe` feature is on or off.
    for cell in grid() {
        let plain = run_cell(&cell);
        let (observed, _) = run_cell_observed(&cell);
        assert_eq!(
            plain, observed,
            "observing {:?} at s={} changed the simulation",
            cell.strategy, cell.sleep
        );
    }
}

#[test]
fn traces_are_byte_identical_across_thread_counts() {
    // The deterministic half of a trace — NDJSON events, per-interval
    // series, counters, value histograms — must be a pure function of
    // the grid and the seed, never of SW_THREADS. Cells merge in task
    // order, which the runner preserves at any thread count.
    let cells = grid();
    let collect = |threads: usize| {
        let outs = ParallelRunner::new(threads).run(&cells, |_, c| run_cell_observed(c));
        let mut reports = Vec::new();
        let mut merged = sleepers::observe::ObserveSnapshot::empty();
        let mut captured = false;
        for (report, snap) in outs {
            reports.push(report);
            if let Some(snap) = snap {
                merged.merge(snap);
                captured = true;
            }
        }
        (reports, merged, captured)
    };
    let (base_reports, base_snap, captured) = collect(1);
    assert_eq!(captured, cfg!(feature = "observe"));
    for threads in [2, 8] {
        let (reports, snap, _) = collect(threads);
        assert_eq!(
            reports, base_reports,
            "observed reports differed between 1 and {threads} threads"
        );
        assert_eq!(
            snap.to_ndjson(),
            base_snap.to_ndjson(),
            "NDJSON trace differed between 1 and {threads} threads"
        );
        assert_eq!(
            snap.series_csv(),
            base_snap.series_csv(),
            "per-interval series differed between 1 and {threads} threads"
        );
        assert_eq!(
            snap.deterministic_digest(),
            base_snap.deterministic_digest(),
            "trace digest differed between 1 and {threads} threads"
        );
    }
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let cells = grid();
    let baseline = ParallelRunner::new(1).run(&cells, |_, c| run_cell(c));
    // Sanity: the grid actually simulated something.
    assert_eq!(baseline.len(), cells.len());
    assert!(baseline.iter().all(|r| r.contains("hit_events")));
    for threads in [2, 8] {
        let got = ParallelRunner::new(threads).run(&cells, |_, c| run_cell(c));
        assert_eq!(
            got, baseline,
            "SimulationReport differed between 1 and {threads} threads"
        );
    }
}

#[test]
fn wake_modes_are_byte_identical() {
    // The scan and heap wake schedules must be pure representation
    // choices: same awake sets, same rng consumption order, same
    // report, at every sleep regime — that is what lets the simulator
    // auto-pick the faster one per cell.
    for cell in grid() {
        let mut params = ScenarioParams::scenario1();
        params.n_items = 500;
        params.s = cell.sleep;
        let seed = cell_seed(0xD0_0D, &[cell.tag, cell.sleep.to_bits()]);
        let run = |mode: WakeMode| {
            let cfg = CellConfig::new(params)
                .with_clients(6)
                .with_hotspot_size(15)
                .with_seed(seed)
                .with_wake_mode(mode);
            let report = CellSimulation::new(cfg, cell.strategy)
                .expect("cell constructs")
                .run_measured(20, 60)
                .expect("cell runs");
            format!("{report:?}")
        };
        assert_eq!(
            run(WakeMode::Scan),
            run(WakeMode::Heap),
            "wake modes diverged for {:?} at s={}",
            cell.strategy,
            cell.sleep
        );
    }
}

#[test]
fn reruns_of_the_same_seed_are_byte_identical() {
    // Same cell, fresh simulation objects: the report must not depend
    // on allocator state, iteration order, or anything else ambient.
    let cell = Cell {
        strategy: Strategy::BroadcastTimestamps,
        sleep: 0.6,
        tag: 1,
    };
    let a = run_cell(&cell);
    let b = run_cell(&cell);
    assert_eq!(a, b);
}

#[test]
fn figure_grid_is_thread_count_invariant() {
    // The real figure pipeline (analytic sweep + simulated points)
    // serializes identically at any thread count. `run_figure` reads
    // SW_THREADS via ParallelRunner::from_env(); exercise it through
    // the env-independent path instead: the simulated points are a
    // (x × strategy) grid, already covered above, so here we only pin
    // that two full figure runs agree with each other.
    use sw_experiments::figures::{run_figure, FigureSpec, SimSettings};
    let spec = FigureSpec::for_figure(3);
    let mut sim = SimSettings::quick();
    sim.intervals = 60;
    let a = serde_json::to_string(&run_figure(&spec, sim)).expect("serializes");
    let b = serde_json::to_string(&run_figure(&spec, sim)).expect("serializes");
    assert_eq!(a, b, "figure pipeline must be deterministic");
}
