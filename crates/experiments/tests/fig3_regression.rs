//! Figure-artifact regression suite.
//!
//! The mesh layer derives its shard seeds in a separate domain
//! (`mesh_seed`) from the figure sweeps (`cell_seed`). These tests pin
//! that separation from the artifact side: the exact seeds the Figure 3
//! harness derives, the non-aliasing of the two domains, and — byte for
//! byte — the committed `results/fig3.json` itself. If any of them
//! fail, a seed-derivation change has invalidated every committed
//! `fig<N>.json`; regenerate them all or revert.

use sleepers::prelude::*;
use sw_experiments::figures::{run_figure, FigureSpec, SimSettings};
use sw_experiments::{cell_seed, mesh_seed};

fn committed_fig3() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/fig3.json");
    std::fs::read_to_string(path).expect("results/fig3.json is committed")
}

/// The strategy tag `simulate_point` folds out of a strategy name.
fn strategy_tag(name: &str) -> u64 {
    name.bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
}

/// Pins the exact `cell_seed` values the Figure 3 sweep derives for
/// its corner coordinates (default master seed `0xF1650`, the swept
/// sleep probability, the strategy-name tag).
#[test]
fn figure_seed_domain_is_pinned() {
    let master = SimSettings::default().seed;
    assert_eq!(
        cell_seed(master, &[0.0f64.to_bits(), strategy_tag("TS")]),
        0xC951_2002_55E4_5CFE
    );
    assert_eq!(
        cell_seed(master, &[0.2f64.to_bits(), strategy_tag("AT")]),
        0xF96A_5B6B_0FBF_EE38
    );
}

/// Same master seed, same coordinate words, different domain: a mesh
/// shard can never alias onto a figure-sweep cell.
#[test]
fn mesh_seed_never_aliases_the_figure_domain() {
    for master in [0u64, 41, 0xF1650, u64::MAX] {
        for coords in [
            &[][..],
            &[0][..],
            &[0.0f64.to_bits(), strategy_tag("TS")][..],
            &[3, 7][..],
        ] {
            assert_ne!(
                cell_seed(master, coords),
                mesh_seed(master, coords),
                "domains collided at master {master:#x}, coords {coords:?}"
            );
        }
    }
}

/// The analytic half of Figure 3 is pure math and cheap to recompute;
/// it must match the committed artifact exactly.
#[test]
fn fig3_analytic_sweep_matches_the_committed_artifact() {
    let spec = FigureSpec::for_figure(3);
    let fresh = Sweep::run(
        format!("Figure {} / {}", spec.figure, spec.scenario),
        spec.base,
        spec.axis,
    );
    let committed: serde_json::Value =
        serde_json::from_str(&committed_fig3()).expect("committed artifact parses");
    assert_eq!(
        Some(&serde::Serialize::to_value(&fresh)),
        committed.get("analytic"),
        "the analytic sweep drifted from the committed results/fig3.json"
    );
}

/// Full-fidelity regression: regenerating Figure 3 at the default
/// settings reproduces the committed `results/fig3.json` byte for
/// byte — proof that the mesh subsystem (shared-backbone plumbing,
/// mobility streams, `mesh_seed`) left the single-cell figure harness
/// untouched. Expensive (the real 1200-interval sweep), so ignored by
/// default; `scripts/check.sh` runs it in release.
#[test]
#[ignore = "full Figure 3 regeneration; run in release via scripts/check.sh"]
fn fig3_results_are_bit_identical_to_the_committed_artifact() {
    let result = run_figure(&FigureSpec::for_figure(3), SimSettings::default());
    let fresh = serde_json::to_string_pretty(&result).expect("serializable figure");
    assert_eq!(
        fresh,
        committed_fig3(),
        "Figure 3 regenerated differently — the figure seed domain moved"
    );
}
