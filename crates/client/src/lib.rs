//! # sw-client — the mobile unit (MU side)
//!
//! Everything that runs on the palmtop:
//!
//! * [`cache`] — the MU cache: item → (value, validity timestamp `t_x`),
//!   with optional capacity-bounded eviction under a pluggable
//!   `sw-capacity` replacement policy (LRU/LFU/window-age) plus ghost
//!   bookkeeping for the capacity-miss statistics;
//! * [`handler`] — the per-strategy report-processing algorithms,
//!   transcribed from §3 of the paper: [`handler::TsHandler`] (window
//!   check, per-item timestamp comparison), [`handler::AtHandler`]
//!   (gap check, drop reported ids), [`handler::SigHandler`] (syndrome
//!   decoding over cached combined signatures);
//! * [`mu`] — the [`mu::MobileUnit`] driver that ties the sleep process,
//!   the query stream, the pending-query list `Q_i`, and the handler
//!   together, implementing the interval semantics of Figure 2: queries
//!   posed during `(T_{i−1}, T_i]` are answered only after the report at
//!   `T_i` is processed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod handler;
pub mod mu;

pub use cache::{Cache, CacheEntry};
pub use sw_capacity::{GhostFate, ReplacementPolicy};
pub use handler::{
    AtHandler, GroupHandler, HybridHandler, NoCacheHandler, ProcessOutcome, ReportHandler,
    SigHandler, TsHandler,
};
pub use mu::{IntervalReport, MobileUnit, MuConfig, MuStats, PendingQuery};
