//! The MU-side report-processing algorithms of §3.
//!
//! Each strategy is a [`ReportHandler`] invoked when the unit hears the
//! report broadcast at `T_i`. The handler mutates the cache exactly as
//! the paper's pseudo-code prescribes and reports what happened. The
//! caller (the [`crate::mu::MobileUnit`]) owns `T_l` — "a variable that
//! indicates the last time it received a report" — and passes it in.
//!
//! Safety discipline: TS and AT "will only allow false alarm errors and
//! will always correctly inform the client if his copy is invalid" (§2).
//! SIG is probabilistic: a changed item escapes only if its combined
//! signatures collide (probability ≈ 2^−g each), plus a one-interval
//! blind spot for items fetched mid-interval whose subsets were not
//! previously tracked (see [`SigHandler`] docs); both are measured, not
//! assumed, by the integration tests.

use std::sync::Arc;

use sw_server::ItemId;
use sw_signature::{CombinedSignature, SyndromeDecoder};
use sw_sim::{SimDuration, SimTime};
use sw_wireless::FramePayload;

use crate::cache::Cache;

/// Converts a wire timestamp (integer micros) back to [`SimTime`].
#[inline]
pub fn time_from_micros(micros: u64) -> SimTime {
    SimTime::from_secs(micros as f64 / 1e6)
}

/// Converts a [`SimTime`] to wire micros (mirror of the server side).
#[inline]
pub fn time_to_micros(t: SimTime) -> u64 {
    (t.as_secs() * 1e6).round() as u64
}

/// What processing one report did to the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessOutcome {
    /// The report timestamp `T_i`.
    pub report_time: SimTime,
    /// True if the whole cache was dropped (disconnection gap exceeded
    /// the strategy's tolerance).
    pub dropped_all: bool,
    /// Items individually invalidated by this report.
    pub invalidated: Vec<ItemId>,
    /// Items that survived and were restamped to `T_i`.
    pub revalidated: usize,
}

/// A strategy's client half.
pub trait ReportHandler {
    /// Strategy name, matching the server builder ("TS", "AT", "SIG",
    /// "NC").
    fn name(&self) -> &'static str;

    /// Observes an uplink fetch installing `item` into the cache
    /// (called after the report for the current interval was
    /// processed). Default: no-op. SIG uses it to start tracking the
    /// fetched item's subsets *from the just-heard report*, closing the
    /// fetch-to-next-report blind spot: the fetched value is current as
    /// of `T_i`, exactly the state the report's signatures describe.
    fn on_fetch(&mut self, _item: ItemId) {}

    /// Processes the report heard at `T_i`. `t_l` is the time the unit
    /// last heard a report (`None` if it never has).
    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        t_l: Option<SimTime>,
    ) -> ProcessOutcome;

    /// Syndrome-decode telemetry: how many cached subsets' signatures
    /// failed to match in the last processed report. `None` for
    /// non-signature strategies. Mismatched subsets are where SIG's
    /// false alarms (and, when the mismatch count stays under the
    /// decoding threshold, its false validations) originate, so the
    /// observability layer tracks them per interval.
    fn last_unmatched_subsets(&self) -> Option<u32> {
        None
    }
}

/// Broadcasting Timestamps — client algorithm of §3.1.
#[derive(Debug, Clone)]
pub struct TsHandler {
    window: SimDuration,
}

impl TsHandler {
    /// Creates the handler with window `w = k·L` (must match the
    /// server's [`sw_server::TsBuilder`]).
    pub fn new(latency: SimDuration, k: u32) -> Self {
        assert!(k >= 1, "TS window multiple k must be at least 1");
        TsHandler {
            window: latency.scaled(k as f64),
        }
    }

    /// Creates the handler with an explicit window.
    pub fn with_window(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "TS window must be positive");
        TsHandler { window }
    }

    /// The window `w`.
    pub fn window(&self) -> SimDuration {
        self.window
    }
}

impl ReportHandler for TsHandler {
    fn name(&self) -> &'static str {
        "TS"
    }

    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        t_l: Option<SimTime>,
    ) -> ProcessOutcome {
        let (report_ts_micros, entries) = match payload {
            FramePayload::TimestampReport {
                report_ts_micros,
                entries,
            } => (*report_ts_micros, entries),
            other => panic!("TS handler fed a non-TS report: {other:?}"),
        };
        let t_i = time_from_micros(report_ts_micros);

        // if (T_i − T_l > w) { drop the entire cache }
        let gap_too_large = match t_l {
            Some(t_l) => t_i.saturating_duration_since(t_l) > self.window,
            None => !cache.is_empty(), // never heard a report: nothing provable
        };
        if gap_too_large {
            cache.clear();
            return ProcessOutcome {
                report_time: t_i,
                dropped_all: true,
                invalidated: Vec::new(),
                revalidated: 0,
            };
        }

        // Report builders emit entries in ascending item order, so a
        // binary search replaces the per-report hash table; an unsorted
        // payload (hand-built in tests) falls back to sorting a copy.
        let sorted_copy: Vec<(u64, u64)>;
        let reported: &[(u64, u64)] = if entries.windows(2).all(|w| w[0].0 < w[1].0) {
            entries
        } else {
            sorted_copy = {
                let mut v = entries.clone();
                v.sort_unstable_by_key(|&(item, _)| item);
                v
            };
            &sorted_copy
        };
        let mut invalidated = Vec::new();
        // for every item j in the MU cache:
        //   if [j, t_j] in U_i { if t_cache < t_j drop else t_cache := T_i }
        //   (not mentioned ⇒ unchanged within w ⇒ t_cache := T_i)
        cache.retain_entries(|item, entry| {
            let cached_micros = time_to_micros(entry.timestamp);
            match reported
                .binary_search_by_key(&item, |&(reported_item, _)| reported_item)
                .ok()
                .map(|ix| reported[ix].1)
            {
                Some(t_j) if cached_micros < t_j => {
                    invalidated.push(item);
                    false
                }
                _ => {
                    entry.timestamp = t_i;
                    true
                }
            }
        });
        // Ascending already for dense caches; hashed ones visit in
        // arbitrary order, so sort for deterministic output.
        invalidated.sort_unstable();
        // Ghost retire: a report entry [j, t_j] with t_j newer than an
        // evicted copy's stamp proves that copy would have been dropped
        // anyway — the eviction cost nothing. Sound because any update
        // inside the window w appears in the report.
        cache.ghosts_mark_stale(|item, stamp| {
            let stamp_micros = time_to_micros(stamp);
            reported
                .binary_search_by_key(&item, |&(reported_item, _)| reported_item)
                .ok()
                .is_some_and(|ix| stamp_micros < reported[ix].1)
        });
        let revalidated = cache.len();
        ProcessOutcome {
            report_time: t_i,
            dropped_all: false,
            invalidated,
            revalidated,
        }
    }
}

/// Amnesic Terminals — client algorithm of §3.2.
#[derive(Debug, Clone)]
pub struct AtHandler {
    latency: SimDuration,
}

impl AtHandler {
    /// Creates the handler for broadcast latency `L`.
    pub fn new(latency: SimDuration) -> Self {
        assert!(!latency.is_zero(), "latency must be positive");
        AtHandler { latency }
    }
}

impl ReportHandler for AtHandler {
    fn name(&self) -> &'static str {
        "AT"
    }

    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        t_l: Option<SimTime>,
    ) -> ProcessOutcome {
        let (report_ts_micros, ids) = match payload {
            FramePayload::AmnesicReport {
                report_ts_micros,
                ids,
            } => (*report_ts_micros, ids),
            other => panic!("AT handler fed a non-AT report: {other:?}"),
        };
        let t_i = time_from_micros(report_ts_micros);

        // if (T_i − T_l > L) { drop the entire cache }
        // A missed report means a whole interval of changes was never
        // heard — the amnesic client cannot reconstruct it.
        let epsilon = SimDuration::from_secs(self.latency.as_secs() * 1e-9);
        let gap_too_large = match t_l {
            Some(t_l) => t_i.saturating_duration_since(t_l) > self.latency + epsilon,
            None => !cache.is_empty(),
        };
        if gap_too_large {
            cache.clear();
            return ProcessOutcome {
                report_time: t_i,
                dropped_all: true,
                invalidated: Vec::new(),
                revalidated: 0,
            };
        }

        let mut invalidated = Vec::new();
        for &item in ids {
            if cache.remove(item).is_some() {
                invalidated.push(item);
            }
            // A reported id changed this interval, so any evicted copy
            // of it is provably stale: the eviction cost nothing.
            cache.ghost_mark_stale_item(item);
        }
        // Surviving entries are verified as of T_i.
        cache.restamp_all(t_i);
        let revalidated = cache.len();
        ProcessOutcome {
            report_time: t_i,
            dropped_all: false,
            invalidated,
            revalidated,
        }
    }
}

/// Signatures — client algorithm of §3.3.
///
/// The handler tracks, between reports, the combined signatures of every
/// subset containing a cached item. On a report it syndrome-decodes:
/// subsets whose tracked signature differs from the broadcast are
/// unmatched; cached items in more than `K·m·p · m⁻¹`… i.e. more than
/// the plan's count threshold of unmatched subsets are dropped. Tracked
/// signatures are then refreshed to the broadcast values and re-scoped
/// to the surviving cache contents.
///
/// **Blind spot (documented deviation):** an item fetched uplink during
/// the interval joins the tracked set only at the *next* report; a
/// subset of that item not already tracked cannot witness an update to
/// it that lands between the fetch and that report. The stale window is
/// at most one interval and occurs with probability ≤ 1 − e^(−μL) per
/// fetch; the integration suite measures it. TS/AT have no such window.
#[derive(Debug, Clone)]
pub struct SigHandler {
    decoder: SyndromeDecoder,
    /// Tracked combined signature per subset index, dense over the
    /// plan's `m` subsets (`None` = untracked). Subset indices are
    /// dense by construction, so no hashing on the per-report path.
    tracked: Vec<Option<CombinedSignature>>,
    tracked_count: usize,
    /// The signatures of the last heard report — an [`Arc`] share of
    /// the broadcast payload, never a copy — kept so that uplink
    /// fetches within the current interval can adopt tracking for their
    /// subsets (see [`ReportHandler::on_fetch`]).
    last_report: Arc<Vec<CombinedSignature>>,
    /// Unmatched-subset count from the last diagnosis (telemetry).
    last_unmatched: u32,
}

impl SigHandler {
    /// Creates the handler sharing the server's decoder configuration.
    pub fn new(decoder: SyndromeDecoder) -> Self {
        let m = decoder.family().m() as usize;
        SigHandler {
            decoder,
            tracked: vec![None; m],
            tracked_count: 0,
            last_report: Arc::new(Vec::new()),
            last_unmatched: 0,
        }
    }

    /// Number of subset signatures currently tracked.
    pub fn tracked_subsets(&self) -> usize {
        self.tracked_count
    }
}

impl ReportHandler for SigHandler {
    fn name(&self) -> &'static str {
        "SIG"
    }

    fn on_fetch(&mut self, item: ItemId) {
        if self.last_report.is_empty() {
            return; // fetched before any report was heard
        }
        for j in self.decoder.family().subsets_of(item) {
            let slot = &mut self.tracked[j as usize];
            if slot.is_none() {
                *slot = Some(self.last_report[j as usize]);
                self.tracked_count += 1;
            }
        }
    }

    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        _t_l: Option<SimTime>,
    ) -> ProcessOutcome {
        let (report_ts_micros, signatures) = match payload {
            FramePayload::SignatureReport {
                report_ts_micros,
                signatures,
                ..
            } => (*report_ts_micros, signatures),
            other => panic!("SIG handler fed a non-SIG report: {other:?}"),
        };
        let t_i = time_from_micros(report_ts_micros);

        let cached_items = cache.sorted_items();
        let tracked = &self.tracked;
        let diagnosis = self.decoder.diagnose(
            &cached_items,
            |j| tracked.get(j as usize).copied().flatten(),
            signatures,
        );
        self.last_unmatched = diagnosis.unmatched_subsets;
        for &item in &diagnosis.invalidated {
            cache.remove(item);
        }
        // Re-scope tracking to the surviving cache and adopt the
        // broadcast signatures ("the combined uncached signatures are
        // considered equal to the ones that are being broadcast").
        self.tracked.iter_mut().for_each(|slot| *slot = None);
        self.tracked_count = 0;
        for item in cache.items() {
            for j in self.decoder.family().subsets_of(item) {
                let slot = &mut self.tracked[j as usize];
                if slot.is_none() {
                    self.tracked_count += 1;
                }
                *slot = Some(signatures[j as usize]);
            }
        }
        // Survivors are valid as of T_i with probability P_nf.
        cache.restamp_all(t_i);
        self.last_report = Arc::clone(signatures);
        let revalidated = cache.len();
        ProcessOutcome {
            report_time: t_i,
            dropped_all: false,
            invalidated: diagnosis.invalidated,
            revalidated,
        }
    }

    fn last_unmatched_subsets(&self) -> Option<u32> {
        Some(self.last_unmatched)
    }
}

/// Hybrid weighted reports — client half of the §10 extension.
///
/// Hot cached items follow AT rules: a missed report drops them (the
/// amnesic id list cannot be reconstructed), and a listed id is
/// dropped. Cold cached items follow SIG rules: syndrome decoding over
/// the cold-only combined signatures, nap-proof. One report serves
/// both.
#[derive(Debug, Clone)]
pub struct HybridHandler {
    latency: SimDuration,
    hot: sw_server::HotSet,
    decoder: SyndromeDecoder,
    /// Dense per-subset tracking, as in [`SigHandler`].
    tracked: Vec<Option<CombinedSignature>>,
    tracked_count: usize,
    last_report: Arc<Vec<CombinedSignature>>,
    /// Unmatched-subset count from the last cold-half diagnosis.
    last_unmatched: u32,
}

impl HybridHandler {
    /// Creates the handler; `hot` and `decoder` must match the server's
    /// [`sw_server::HybridSigBuilder`].
    pub fn new(latency: SimDuration, hot: sw_server::HotSet, decoder: SyndromeDecoder) -> Self {
        assert!(!latency.is_zero(), "latency must be positive");
        let m = decoder.family().m() as usize;
        HybridHandler {
            latency,
            hot,
            decoder,
            tracked: vec![None; m],
            tracked_count: 0,
            last_report: Arc::new(Vec::new()),
            last_unmatched: 0,
        }
    }

    /// Number of cold-subset signatures currently tracked.
    pub fn tracked_subsets(&self) -> usize {
        self.tracked_count
    }
}

impl ReportHandler for HybridHandler {
    fn name(&self) -> &'static str {
        "HYB"
    }

    fn on_fetch(&mut self, item: ItemId) {
        if self.hot.contains(item) || self.last_report.is_empty() {
            return;
        }
        for j in self.decoder.family().subsets_of(item) {
            let slot = &mut self.tracked[j as usize];
            if slot.is_none() {
                *slot = Some(self.last_report[j as usize]);
                self.tracked_count += 1;
            }
        }
    }

    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        t_l: Option<SimTime>,
    ) -> ProcessOutcome {
        let (report_ts_micros, hot_ids, signatures) = match payload {
            FramePayload::HybridReport {
                report_ts_micros,
                hot_ids,
                signatures,
                ..
            } => (*report_ts_micros, hot_ids, signatures),
            other => panic!("hybrid handler fed a wrong report: {other:?}"),
        };
        let t_i = time_from_micros(report_ts_micros);
        let mut invalidated = Vec::new();

        // Hot half: AT semantics, scoped to hot items only.
        let epsilon = SimDuration::from_secs(self.latency.as_secs() * 1e-9);
        let missed_report = match t_l {
            Some(t_l) => t_i.saturating_duration_since(t_l) > self.latency + epsilon,
            None => true,
        };
        let hot = &self.hot;
        if missed_report {
            let mut dropped: Vec<ItemId> = cache
                .sorted_items()
                .into_iter()
                .filter(|&i| hot.contains(i))
                .collect();
            for &i in &dropped {
                cache.remove(i);
            }
            invalidated.append(&mut dropped);
        } else {
            for &id in hot_ids {
                if cache.remove(id).is_some() {
                    invalidated.push(id);
                }
            }
        }

        // Cold half: SIG semantics over the remaining cached items.
        let cold_items: Vec<ItemId> = cache
            .sorted_items()
            .into_iter()
            .filter(|&i| !hot.contains(i))
            .collect();
        let tracked = &self.tracked;
        let diagnosis = self.decoder.diagnose(
            &cold_items,
            |j| tracked.get(j as usize).copied().flatten(),
            signatures,
        );
        self.last_unmatched = diagnosis.unmatched_subsets;
        for &item in &diagnosis.invalidated {
            cache.remove(item);
            invalidated.push(item);
        }
        self.tracked.iter_mut().for_each(|slot| *slot = None);
        self.tracked_count = 0;
        for item in cache.items() {
            if self.hot.contains(item) {
                continue;
            }
            for j in self.decoder.family().subsets_of(item) {
                let slot = &mut self.tracked[j as usize];
                if slot.is_none() {
                    self.tracked_count += 1;
                }
                *slot = Some(signatures[j as usize]);
            }
        }
        self.last_report = Arc::clone(signatures);

        cache.restamp_all(t_i);
        let revalidated = cache.len();
        ProcessOutcome {
            report_time: t_i,
            dropped_all: false,
            invalidated,
            revalidated,
        }
    }

    fn last_unmatched_subsets(&self) -> Option<u32> {
        Some(self.last_unmatched)
    }
}

/// Aggregate group-granularity reports — client half of the §10
/// "changes reported only per group of items" extension.
///
/// AT semantics lifted to groups: a missed report drops everything; a
/// listed group drops every cached member (group-level false alarms —
/// safe, coarse).
#[derive(Debug, Clone)]
pub struct GroupHandler {
    latency: SimDuration,
    map: sw_server::GroupMap,
}

impl GroupHandler {
    /// Creates the handler; `map` must match the server's
    /// [`sw_server::GroupReportBuilder`].
    pub fn new(latency: SimDuration, map: sw_server::GroupMap) -> Self {
        assert!(!latency.is_zero(), "latency must be positive");
        GroupHandler { latency, map }
    }
}

impl ReportHandler for GroupHandler {
    fn name(&self) -> &'static str {
        "GR"
    }

    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        t_l: Option<SimTime>,
    ) -> ProcessOutcome {
        let (report_ts_micros, group_ids) = match payload {
            FramePayload::AmnesicReport {
                report_ts_micros,
                ids,
            } => (*report_ts_micros, ids),
            other => panic!("group handler fed a wrong report: {other:?}"),
        };
        let t_i = time_from_micros(report_ts_micros);
        let epsilon = SimDuration::from_secs(self.latency.as_secs() * 1e-9);
        let gap_too_large = match t_l {
            Some(t_l) => t_i.saturating_duration_since(t_l) > self.latency + epsilon,
            None => !cache.is_empty(),
        };
        if gap_too_large {
            cache.clear();
            return ProcessOutcome {
                report_time: t_i,
                dropped_all: true,
                invalidated: Vec::new(),
                revalidated: 0,
            };
        }
        // The group id list is tiny and (from the builder) sorted; a
        // binary search over a sorted copy beats hashing per item.
        let changed = {
            let mut v = group_ids.clone();
            v.sort_unstable();
            v
        };
        let map = self.map;
        let mut invalidated: Vec<ItemId> = Vec::new();
        cache.retain_entries(|i, entry| {
            if changed.binary_search(&map.group_of(i)).is_ok() {
                invalidated.push(i);
                false
            } else {
                entry.timestamp = t_i;
                true
            }
        });
        invalidated.sort_unstable();
        let revalidated = cache.len();
        ProcessOutcome {
            report_time: t_i,
            dropped_all: false,
            invalidated,
            revalidated,
        }
    }
}

/// The no-caching baseline: the unit never keeps anything, so every
/// query goes uplink (§4.2).
#[derive(Debug, Clone, Default)]
pub struct NoCacheHandler;

impl ReportHandler for NoCacheHandler {
    fn name(&self) -> &'static str {
        "NC"
    }

    fn process(
        &mut self,
        cache: &mut Cache,
        payload: &FramePayload,
        _t_l: Option<SimTime>,
    ) -> ProcessOutcome {
        let t_i = match payload {
            FramePayload::AmnesicReport {
                report_ts_micros, ..
            } => time_from_micros(*report_ts_micros),
            FramePayload::TimestampReport {
                report_ts_micros, ..
            } => time_from_micros(*report_ts_micros),
            FramePayload::SignatureReport {
                report_ts_micros, ..
            } => time_from_micros(*report_ts_micros),
            other => panic!("NC handler fed a non-report frame: {other:?}"),
        };
        cache.clear();
        ProcessOutcome {
            report_time: t_i,
            dropped_all: false,
            invalidated: Vec::new(),
            revalidated: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts_report(t_i: f64, entries: Vec<(u64, f64)>) -> FramePayload {
        FramePayload::TimestampReport {
            report_ts_micros: (t_i * 1e6) as u64,
            entries: entries
                .into_iter()
                .map(|(i, t)| (i, (t * 1e6) as u64))
                .collect(),
        }
    }

    fn at_report(t_i: f64, ids: Vec<u64>) -> FramePayload {
        FramePayload::AmnesicReport {
            report_ts_micros: (t_i * 1e6) as u64,
            ids,
        }
    }

    #[test]
    fn ts_drops_updated_item() {
        let mut h = TsHandler::new(SimDuration::from_secs(10.0), 10);
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0));
        c.insert(2, 20, SimTime::from_secs(10.0));
        // Item 1 changed at t = 15 > its cache stamp.
        let out = h.process(
            &mut c,
            &ts_report(20.0, vec![(1, 15.0)]),
            Some(SimTime::from_secs(10.0)),
        );
        assert_eq!(out.invalidated, vec![1]);
        assert!(!c.contains(1));
        assert!(c.contains(2));
        // Survivor restamped to T_i.
        assert_eq!(c.peek(2).unwrap().timestamp, SimTime::from_secs(20.0));
    }

    #[test]
    fn ts_keeps_item_updated_before_fetch() {
        // Cache stamped at 16 (uplink fetch), item's last change was 15:
        // the cached copy already reflects it.
        let mut h = TsHandler::new(SimDuration::from_secs(10.0), 10);
        let mut c = Cache::unbounded();
        c.insert(1, 99, SimTime::from_secs(16.0));
        let out = h.process(
            &mut c,
            &ts_report(20.0, vec![(1, 15.0)]),
            Some(SimTime::from_secs(10.0)),
        );
        assert!(out.invalidated.is_empty());
        assert!(c.contains(1));
    }

    #[test]
    fn ts_window_gap_drops_cache() {
        let mut h = TsHandler::new(SimDuration::from_secs(10.0), 2); // w = 20
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0));
        // Last report heard at 10; this one at 40: gap 30 > 20.
        let out = h.process(&mut c, &ts_report(40.0, vec![]), Some(SimTime::from_secs(10.0)));
        assert!(out.dropped_all);
        assert!(c.is_empty());
    }

    #[test]
    fn ts_gap_exactly_w_is_kept() {
        let mut h = TsHandler::new(SimDuration::from_secs(10.0), 2); // w = 20
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0));
        let out = h.process(&mut c, &ts_report(30.0, vec![]), Some(SimTime::from_secs(10.0)));
        assert!(!out.dropped_all);
        assert!(c.contains(1));
    }

    #[test]
    fn at_drops_reported_ids() {
        let mut h = AtHandler::new(SimDuration::from_secs(10.0));
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0));
        c.insert(2, 20, SimTime::from_secs(10.0));
        let out = h.process(&mut c, &at_report(20.0, vec![1, 5]), Some(SimTime::from_secs(10.0)));
        assert_eq!(out.invalidated, vec![1]);
        assert!(c.contains(2));
    }

    #[test]
    fn at_missed_report_drops_cache() {
        let mut h = AtHandler::new(SimDuration::from_secs(10.0));
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0));
        // Heard the report at 10, slept through 20, hears 30: gap 20 > L.
        let out = h.process(&mut c, &at_report(30.0, vec![]), Some(SimTime::from_secs(10.0)));
        assert!(out.dropped_all);
        assert!(c.is_empty());
    }

    #[test]
    fn at_consecutive_reports_keep_cache() {
        let mut h = AtHandler::new(SimDuration::from_secs(10.0));
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0));
        let out = h.process(&mut c, &at_report(20.0, vec![]), Some(SimTime::from_secs(10.0)));
        assert!(!out.dropped_all);
        assert!(c.contains(1));
        assert_eq!(out.revalidated, 1);
    }

    #[test]
    fn first_report_with_empty_cache_is_clean() {
        let mut ts = TsHandler::new(SimDuration::from_secs(10.0), 5);
        let mut at = AtHandler::new(SimDuration::from_secs(10.0));
        let mut c = Cache::unbounded();
        assert!(!ts.process(&mut c, &ts_report(10.0, vec![]), None).dropped_all);
        assert!(!at.process(&mut c, &at_report(10.0, vec![]), None).dropped_all);
    }

    #[test]
    fn nc_never_retains() {
        let mut h = NoCacheHandler;
        let mut c = Cache::unbounded();
        c.insert(1, 1, SimTime::ZERO);
        let out = h.process(&mut c, &at_report(10.0, vec![]), None);
        assert!(c.is_empty());
        assert_eq!(out.revalidated, 0);
    }

    #[test]
    #[should_panic(expected = "non-TS report")]
    fn ts_rejects_wrong_payload() {
        let mut h = TsHandler::new(SimDuration::from_secs(10.0), 5);
        let mut c = Cache::unbounded();
        h.process(&mut c, &at_report(10.0, vec![]), None);
    }

    mod hybrid {
        use super::*;
        use sw_server::{Database, HotSet, HybridSigBuilder, ReportBuilder};
        use sw_signature::{SigPlan, SubsetFamily, SyndromeDecoder};
        use sw_sim::SimDuration;

        fn setup() -> (Database, HybridSigBuilder, HybridHandler) {
            let n = 300;
            let db = Database::new(n, |i| i + 9000, SimDuration::from_secs(1e6));
            let plan = SigPlan::new(8, 16, n, 0.05, SigPlan::DEFAULT_K);
            let family = SubsetFamily::new(0xCAFE, plan.m, plan.f);
            let latency = SimDuration::from_secs(10.0);
            let builder = HybridSigBuilder::new(
                latency,
                HotSet::top_by_rank(20),
                plan,
                family,
                &db,
            );
            let handler = HybridHandler::new(
                latency,
                HotSet::top_by_rank(20),
                SyndromeDecoder::new(family, plan),
            );
            (db, builder, handler)
        }

        #[test]
        fn hot_item_follows_at_rules() {
            let (mut db, mut builder, mut handler) = setup();
            let mut c = Cache::unbounded();
            let r1 = builder.build(1, SimTime::from_secs(10.0), &db);
            handler.process(&mut c, &r1, None);
            c.insert(5, db.value(5), SimTime::from_secs(10.0)); // hot
            c.insert(100, db.value(100), SimTime::from_secs(10.0)); // cold
            // Hot item updated in interval 2.
            let rec = db.apply_update(5, 777, SimTime::from_secs(15.0));
            builder.on_update(&rec);
            let r2 = builder.build(2, SimTime::from_secs(20.0), &db);
            let out = handler.process(&mut c, &r2, Some(SimTime::from_secs(10.0)));
            assert_eq!(out.invalidated, vec![5]);
            assert!(c.contains(100));
        }

        #[test]
        fn missed_report_drops_hot_but_not_cold() {
            let (db, mut builder, mut handler) = setup();
            let mut c = Cache::unbounded();
            let r1 = builder.build(1, SimTime::from_secs(10.0), &db);
            handler.process(&mut c, &r1, None);
            c.insert(5, db.value(5), SimTime::from_secs(10.0)); // hot
            c.insert(100, db.value(100), SimTime::from_secs(10.0)); // cold
            // Track cold subsets by hearing report 2, then nap through 3.
            let r2 = builder.build(2, SimTime::from_secs(20.0), &db);
            handler.process(&mut c, &r2, Some(SimTime::from_secs(10.0)));
            let r4 = builder.build(4, SimTime::from_secs(40.0), &db);
            let out = handler.process(&mut c, &r4, Some(SimTime::from_secs(20.0)));
            assert!(out.invalidated.contains(&5), "hot items are amnesic");
            assert!(c.contains(100), "cold items ride the signatures");
        }

        #[test]
        fn cold_update_diagnosed_after_nap() {
            let (mut db, mut builder, mut handler) = setup();
            let mut c = Cache::unbounded();
            let r1 = builder.build(1, SimTime::from_secs(10.0), &db);
            handler.process(&mut c, &r1, None);
            for i in 100..110 {
                c.insert(i, db.value(i), SimTime::from_secs(10.0));
            }
            let r2 = builder.build(2, SimTime::from_secs(20.0), &db);
            handler.process(&mut c, &r2, Some(SimTime::from_secs(10.0)));
            let rec = db.apply_update(105, 31337, SimTime::from_secs(33.0));
            builder.on_update(&rec);
            // Nap through report 3; wake at 5.
            let r5 = builder.build(5, SimTime::from_secs(50.0), &db);
            let out = handler.process(&mut c, &r5, Some(SimTime::from_secs(20.0)));
            assert!(out.invalidated.contains(&105));
            assert!(c.contains(104), "untouched cold neighbours survive");
        }
    }

    mod sig {
        use super::*;
        use sw_server::{Database, ReportBuilder, SigBuilder};
        use sw_signature::{SigPlan, SubsetFamily};

        fn setup(n: u64) -> (Database, SigBuilder, SigHandler) {
            let db = Database::new(n, |i| i + 5000, SimDuration::from_secs(1e6));
            let plan = SigPlan::new(8, 16, n, 0.05, SigPlan::DEFAULT_K);
            let family = SubsetFamily::new(0xFEED, plan.m, plan.f);
            let builder = SigBuilder::new(plan, family, &db);
            let handler = SigHandler::new(builder.decoder());
            (db, builder, handler)
        }

        fn report(builder: &mut SigBuilder, i: u64, t: f64, db: &Database) -> FramePayload {
            builder.build(i, SimTime::from_secs(t), db)
        }

        #[test]
        fn survives_sleep_and_detects_change() {
            let (mut db, mut builder, mut handler) = setup(300);
            let mut c = Cache::unbounded();
            // Hear report 1, cache items 0..20.
            let r1 = report(&mut builder, 1, 10.0, &db);
            handler.process(&mut c, &r1, None);
            for i in 0..20 {
                c.insert(i, db.value(i), SimTime::from_secs(10.0));
            }
            // Track the subsets by hearing report 2.
            let r2 = report(&mut builder, 2, 20.0, &db);
            let out = handler.process(&mut c, &r2, Some(SimTime::from_secs(10.0)));
            assert!(out.invalidated.is_empty());
            // Sleep through reports 3..7 while item 5 changes.
            let rec = db.apply_update(5, 123_456, SimTime::from_secs(42.0));
            builder.on_update(&rec);
            // Wake for report 8 — SIG does NOT drop the cache on a gap.
            let r8 = report(&mut builder, 8, 80.0, &db);
            let out = handler.process(&mut c, &r8, Some(SimTime::from_secs(20.0)));
            assert!(out.invalidated.contains(&5), "stale item must be caught");
            assert!(c.contains(6), "untouched items survive the nap");
        }

        #[test]
        fn no_updates_no_invalidation() {
            let (db, mut builder, mut handler) = setup(300);
            let mut c = Cache::unbounded();
            let r1 = report(&mut builder, 1, 10.0, &db);
            handler.process(&mut c, &r1, None);
            for i in 0..30 {
                c.insert(i, db.value(i), SimTime::from_secs(10.0));
            }
            let r2 = report(&mut builder, 2, 20.0, &db);
            handler.process(&mut c, &r2, Some(SimTime::from_secs(10.0)));
            let r3 = report(&mut builder, 3, 30.0, &db);
            let out = handler.process(&mut c, &r3, Some(SimTime::from_secs(20.0)));
            assert!(out.invalidated.is_empty());
            assert_eq!(c.len(), 30);
        }

        #[test]
        fn tracking_scopes_to_cache() {
            let (db, mut builder, mut handler) = setup(300);
            let mut c = Cache::unbounded();
            c.insert(7, db.value(7), SimTime::from_secs(5.0));
            let r1 = report(&mut builder, 1, 10.0, &db);
            handler.process(&mut c, &r1, None);
            let with_item = handler.tracked_subsets();
            assert!(with_item > 0);
            c.clear();
            let r2 = report(&mut builder, 2, 20.0, &db);
            handler.process(&mut c, &r2, Some(SimTime::from_secs(10.0)));
            assert_eq!(handler.tracked_subsets(), 0);
        }
    }
}
