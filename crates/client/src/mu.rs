//! The mobile unit driver.
//!
//! Ties together the sleep process, the query stream, the cache, and the
//! strategy handler, implementing the interval semantics of Figure 2:
//!
//! * the unit "keeps a list of items queried during an interval and
//!   answers them after receiving the next report";
//! * "if two or more queries of the same item are posed in an interval,
//!   they will all be answered at the same time in the next interval" —
//!   so hit/miss accounting is per *query event* (item × interval), the
//!   granularity the paper's hit-ratio analysis uses;
//! * an asleep interval produces no queries and hears no report (the
//!   combined probability `p_0 = s + (1−s)e^{−λL}` of Eq. 5);
//! * a unit that posed queries stays up to hear the closing report and
//!   answer them, then may sleep again (§4's stated simplification).

use sw_capacity::{GhostFate, ReplacementPolicy};
use sw_server::{ItemId, ItemTable, PiggybackInfo, QueryAnswer};
use sw_sim::{BernoulliIntervalProcess, PoissonProcess, RngStream, SimDuration, SimTime};
use sw_wireless::FramePayload;

use crate::cache::Cache;
use crate::handler::{ProcessOutcome, ReportHandler};

/// A query waiting for the next report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingQuery {
    /// The queried item.
    pub item: ItemId,
    /// When the query was posed (within the current interval).
    pub posed_at: SimTime,
}

/// Static configuration of one mobile unit.
#[derive(Debug, Clone)]
pub struct MuConfig {
    /// Client id within the cell.
    pub id: u64,
    /// The unit's hotspot: the subset of the database it queries
    /// repeatedly (§2: "The MUs exhibit a large degree of data locality,
    /// repeatedly querying a particular subset of the database").
    pub hotspot: Vec<ItemId>,
    /// Per-item query rate λ (queries/second).
    pub query_rate_per_item: f64,
    /// Per-interval disconnection probability `s`.
    pub sleep_probability: f64,
    /// Optional cache capacity (None = unbounded, the paper's model).
    pub cache_capacity: Option<usize>,
    /// Replacement policy for a bounded cache (ignored when unbounded).
    pub replacement: ReplacementPolicy,
    /// TS window `w = kL` consulted by
    /// [`ReplacementPolicy::WindowAge`]; ignored by the other policies.
    pub replacement_window: SimDuration,
    /// Whether to collect local-hit timestamps for uplink piggybacking
    /// (adaptive Method 1, §8.1).
    pub piggyback_hits: bool,
    /// Size of the item universe, when known: pre-sizes the cache and
    /// hit-history tables as dense vectors (no hashing on the query hot
    /// path). `None` falls back to hashed tables.
    pub item_universe: Option<u64>,
}

/// Counters the experiments read out.
#[derive(Debug, Clone, Copy, Default)]
pub struct MuStats {
    /// Raw queries posed (each arrival counts).
    pub queries_posed: u64,
    /// Query events (item × interval) answered from cache.
    pub hit_events: u64,
    /// Query events that had to go uplink.
    pub miss_events: u64,
    /// Intervals spent awake.
    pub intervals_awake: u64,
    /// Intervals spent asleep.
    pub intervals_asleep: u64,
    /// Whole-cache drops forced by disconnection gaps.
    pub cache_drops: u64,
    /// Individual items invalidated by reports.
    pub items_invalidated: u64,
    /// Reports the unit listened for but never received intact (lost,
    /// corrupted, or missed through clock drift — fault injection).
    pub reports_missed: u64,
    /// Sum of query answer latencies in seconds (posed → answered at
    /// the next report; §2's guaranteed-latency property of synchronous
    /// methods).
    pub latency_sum_secs: f64,
    /// Largest single query latency observed, in seconds.
    pub latency_max_secs: f64,
    /// Entries evicted to make room (capacity enforcement only — not
    /// invalidations or gap drops). Zero for unbounded caches.
    pub evictions: u64,
    /// Misses on items whose evicted copy was still fresh: the misses
    /// the capacity bound itself caused.
    pub capacity_misses: u64,
    /// Misses on any previously evicted item, fresh or stale.
    pub evicted_then_requeried: u64,
}

impl MuStats {
    /// Measured hit ratio over query events.
    pub fn hit_ratio(&self) -> f64 {
        let events = self.hit_events + self.miss_events;
        if events == 0 {
            0.0
        } else {
            self.hit_events as f64 / events as f64
        }
    }

    /// Total query events.
    pub fn query_events(&self) -> u64 {
        self.hit_events + self.miss_events
    }

    /// Mean query latency in seconds (0 when no queries were posed).
    /// Synchronous methods bound this by `L` (§2): a query waits at
    /// most one full interval for the next report.
    pub fn latency_mean_secs(&self) -> f64 {
        if self.queries_posed == 0 {
            0.0
        } else {
            self.latency_sum_secs / self.queries_posed as f64
        }
    }
}

/// What one interval did at this unit (for the cell driver's log).
#[derive(Debug, Clone)]
pub struct IntervalReport {
    /// Whether the unit was awake this interval.
    pub awake: bool,
    /// Outcome of report processing (None when asleep).
    pub outcome: Option<ProcessOutcome>,
    /// Query events that missed and must go uplink, deduplicated.
    pub uplink_requests: Vec<(ItemId, Option<PiggybackInfo>)>,
}

/// One mobile unit.
pub struct MobileUnit {
    config: MuConfig,
    cache: Cache,
    handler: Box<dyn ReportHandler + Send>,
    sleep: BernoulliIntervalProcess,
    queries: PoissonProcess,
    t_l: Option<SimTime>,
    pending: Vec<PendingQuery>,
    awake: bool,
    local_hits: ItemTable<Vec<SimTime>>,
    stats: MuStats,
}

impl std::fmt::Debug for MobileUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobileUnit")
            .field("id", &self.config.id)
            .field("strategy", &self.handler.name())
            .field("cache_len", &self.cache.len())
            .field("t_l", &self.t_l)
            .finish_non_exhaustive()
    }
}

impl MobileUnit {
    /// Creates the unit with its strategy handler, drawing the query
    /// process's first arrival from `rng`.
    pub fn new(
        config: MuConfig,
        handler: Box<dyn ReportHandler + Send>,
        rng: &mut RngStream,
    ) -> Self {
        assert!(!config.hotspot.is_empty(), "hotspot cannot be empty");
        assert!(
            config.query_rate_per_item.is_finite() && config.query_rate_per_item >= 0.0,
            "query rate must be non-negative"
        );
        let total_rate = config.query_rate_per_item * config.hotspot.len() as f64;
        let mut cache = match (config.cache_capacity, config.item_universe) {
            (Some(cap), Some(n)) => Cache::with_capacity_for_universe(cap, n),
            (Some(cap), None) => Cache::with_capacity(cap),
            (None, Some(n)) => Cache::for_universe(n),
            (None, None) => Cache::unbounded(),
        };
        cache.set_replacement(config.replacement, config.replacement_window);
        let local_hits = match config.item_universe {
            Some(n) if config.piggyback_hits => ItemTable::dense(n),
            _ => ItemTable::hashed(),
        };
        MobileUnit {
            sleep: BernoulliIntervalProcess::new(config.sleep_probability),
            queries: PoissonProcess::new(total_rate, rng),
            cache,
            handler,
            t_l: None,
            pending: Vec::new(),
            awake: true,
            local_hits,
            stats: MuStats::default(),
            config,
        }
    }

    /// Unit id.
    pub fn id(&self) -> u64 {
        self.config.id
    }

    /// Strategy name.
    pub fn strategy(&self) -> &'static str {
        self.handler.name()
    }

    /// The unit's hotspot.
    pub fn hotspot(&self) -> &[ItemId] {
        &self.config.hotspot
    }

    /// Read access to the cache (tests and invariant checks).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MuStats {
        self.stats
    }

    /// Zeroes the statistics (cache and protocol state untouched) —
    /// used to discard warm-up intervals before measuring.
    pub fn reset_stats(&mut self) {
        self.stats = MuStats::default();
    }

    /// Time the unit last heard a report.
    pub fn last_report_heard(&self) -> Option<SimTime> {
        self.t_l
    }

    /// Strategy telemetry passthrough: unmatched subsets in the last
    /// processed report (signature strategies only; see
    /// [`ReportHandler::last_unmatched_subsets`]).
    pub fn last_unmatched_subsets(&self) -> Option<u32> {
        self.handler.last_unmatched_subsets()
    }

    /// Whether the unit is awake in the current interval.
    pub fn is_awake(&self) -> bool {
        self.awake
    }

    /// Starts interval `(from, to]`: draws the sleep state and, if
    /// awake, generates this interval's query arrivals into the pending
    /// list.
    ///
    /// Unit-level convenience built on [`Self::begin_awake_interval`] /
    /// [`Self::enter_sleep`]; the cell driver schedules wake-ups with a
    /// heap instead and never touches sleeping units.
    pub fn begin_interval(
        &mut self,
        from: SimTime,
        to: SimTime,
        sleep_rng: &mut RngStream,
        query_rng: &mut RngStream,
    ) {
        if self.sleep.draw_asleep(sleep_rng) {
            self.enter_sleep();
            self.credit_asleep_intervals(1);
        } else {
            self.begin_awake_interval(from, to, query_rng);
        }
    }

    /// Starts interval `(from, to]` with the unit known awake: generates
    /// this interval's query arrivals into the pending list. The sleep
    /// decision is the caller's (the cell driver's wake heap).
    pub fn begin_awake_interval(&mut self, from: SimTime, to: SimTime, query_rng: &mut RngStream) {
        self.begin_awake_interval_skewed(from, to, query_rng, None);
    }

    /// [`Self::begin_awake_interval`] with an optional skewed item
    /// pick: when `pick` is `Some`, each arrival's hotspot index comes
    /// from the closure (a Zipf draw over a dedicated RNG stream)
    /// instead of a uniform draw on `query_rng` — so the classic
    /// uniform draw sequence is *not consumed*, and unarmed runs are
    /// untouched. Arrival times keep coming from `query_rng` either
    /// way.
    pub fn begin_awake_interval_skewed(
        &mut self,
        from: SimTime,
        to: SimTime,
        query_rng: &mut RngStream,
        mut pick: Option<&mut dyn FnMut() -> usize>,
    ) {
        self.awake = true;
        self.stats.intervals_awake += 1;
        for at in self.queries.arrivals_in(from, to, query_rng) {
            let idx = match pick.as_deref_mut() {
                Some(pick) => pick(),
                None => query_rng.uniform_index(self.config.hotspot.len() as u64) as usize,
            };
            let item = self.config.hotspot[idx];
            self.pending.push(PendingQuery { item, posed_at: at });
            self.stats.queries_posed += 1;
        }
    }

    /// Marks the unit asleep. Asleep intervals are credited lazily with
    /// [`Self::credit_asleep_intervals`] when the unit wakes (the cell
    /// driver never iterates sleeping units).
    pub fn enter_sleep(&mut self) {
        self.awake = false;
    }

    /// Draws a whole sleep run from the unit's sleep process (see
    /// [`BernoulliIntervalProcess::draw_sleep_run`]): the number of
    /// consecutive asleep intervals before the next awake one. The cell
    /// driver uses this to schedule the unit's wake-up on a heap.
    pub fn draw_sleep_run(&self, rng: &mut RngStream) -> u64 {
        self.sleep.draw_sleep_run(rng)
    }

    /// Credits `k` intervals spent asleep (lazy settlement of a whole
    /// sleep run at wake-up time).
    pub fn credit_asleep_intervals(&mut self, k: u64) {
        self.stats.intervals_asleep += k;
    }

    /// Hears the report closing the current interval (awake units only)
    /// and answers the pending queries: returns the deduplicated uplink
    /// requests for the misses.
    ///
    /// # Panics
    /// Panics if called while asleep — the cell driver must not deliver
    /// reports to sleeping units.
    pub fn hear_report_and_answer(&mut self, payload: &FramePayload) -> IntervalReport {
        assert!(self.awake, "a sleeping unit cannot hear a report");
        let outcome = self.handler.process(&mut self.cache, payload, self.t_l);
        let t_i = outcome.report_time;
        // Latency accounting: every pending query is answered now.
        for q in &self.pending {
            let lat = t_i.saturating_duration_since(q.posed_at).as_secs();
            self.stats.latency_sum_secs += lat;
            if lat > self.stats.latency_max_secs {
                self.stats.latency_max_secs = lat;
            }
        }
        self.t_l = Some(t_i);
        if outcome.dropped_all {
            self.stats.cache_drops += 1;
        }
        self.stats.items_invalidated += outcome.invalidated.len() as u64;
        // Note: the piggyback history survives invalidation on purpose —
        // §8.1 defines it as "all the timestamps of requests ... satisfied
        // locally from the time of the previous uplink request", a query
        // history, not a property of the current cache incarnation.

        // Answer Q_i: one event per distinct pending item.
        let mut seen: Vec<ItemId> = self.pending.iter().map(|q| q.item).collect();
        seen.sort_unstable();
        seen.dedup();
        let mut uplink = Vec::new();
        for item in seen {
            if self.cache.get(item).is_some() {
                self.stats.hit_events += 1;
                if self.config.piggyback_hits {
                    self.local_hits
                        .get_or_insert_with(item, Vec::new)
                        .push(t_i);
                }
            } else {
                self.stats.miss_events += 1;
                match self.cache.take_ghost(item) {
                    Some(GhostFate::Fresh) => {
                        self.stats.capacity_misses += 1;
                        self.stats.evicted_then_requeried += 1;
                    }
                    Some(GhostFate::Stale) => self.stats.evicted_then_requeried += 1,
                    None => {}
                }
                let piggyback = if self.config.piggyback_hits {
                    Some(PiggybackInfo {
                        local_hit_times: self.local_hits.remove(item).unwrap_or_default(),
                    })
                } else {
                    None
                };
                uplink.push((item, piggyback));
            }
        }
        self.pending.clear();
        IntervalReport {
            awake: true,
            outcome: Some(outcome),
            uplink_requests: uplink,
        }
    }

    /// Records that the awake unit listened for the interval-closing
    /// report but never received it intact (lost, corrupted, or missed
    /// through clock drift).
    ///
    /// Crucially, `t_l` does *not* advance and the pending queries are
    /// *not* answered: to this unit the interval looks exactly like a
    /// nap, so the next intact report triggers the strategy's ordinary
    /// gap recovery (AT drops the cache after any missed report, TS
    /// drops iff the silent span exceeds the window `w`, SIG proceeds
    /// modulo collisions). Pending queries wait for that next report,
    /// accruing latency — the §2 latency guarantee is exactly what a
    /// lossy channel breaks.
    ///
    /// # Panics
    /// Panics if called while asleep — a sleeping unit was not
    /// listening in the first place.
    pub fn miss_report(&mut self) {
        assert!(self.awake, "a sleeping unit was not listening for the report");
        self.stats.reports_missed += 1;
    }

    /// Skips the interval-closing report (asleep units). Pending queries
    /// cannot exist (no queries are posed while asleep).
    pub fn skip_report(&mut self) -> IntervalReport {
        assert!(!self.awake, "an awake unit must hear the report");
        debug_assert!(self.pending.is_empty());
        IntervalReport {
            awake: false,
            outcome: None,
            uplink_requests: Vec::new(),
        }
    }

    /// Installs the answer to an uplink request: caches the fresh copy
    /// with the request's server timestamp and notifies the strategy
    /// handler (SIG starts tracking the item's subsets immediately).
    pub fn install_answer(&mut self, answer: QueryAnswer) {
        let before = self.cache.evictions();
        self.cache
            .insert(answer.item, answer.value, answer.timestamp);
        self.stats.evictions += self.cache.evictions() - before;
        self.handler.on_fetch(answer.item);
    }

    /// Number of queries waiting for the next report (test hook).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Reassigns the unit's id (mesh handoff: the destination cell
    /// hands the arriving unit a fresh id in its own id space, so
    /// stateful registries and traces never alias it with a resident
    /// or a previous visitor).
    pub fn reassign_id(&mut self, id: u64) {
        self.config.id = id;
    }

    /// Drops the entire cache as part of a conservative handoff (the
    /// mesh detected diverged report histories between the source and
    /// destination cells, so no entry can be trusted). Returns how many
    /// entries were dropped; a non-empty drop counts in
    /// [`MuStats::cache_drops`] exactly like the strategies' own gap
    /// drops.
    pub fn drop_cache_for_handoff(&mut self) -> usize {
        let dropped = self.cache.len();
        if dropped > 0 {
            self.cache.clear();
            self.stats.cache_drops += 1;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::AtHandler;
    use sw_sim::{MasterSeed, SimDuration, StreamId};

    fn at_report(t_i: f64, ids: Vec<u64>) -> FramePayload {
        FramePayload::AmnesicReport {
            report_ts_micros: (t_i * 1e6) as u64,
            ids,
        }
    }

    fn unit(s: f64, lambda: f64) -> (MobileUnit, RngStream, RngStream) {
        unit_with_capacity(s, lambda, None)
    }

    fn unit_with_capacity(
        s: f64,
        lambda: f64,
        cache_capacity: Option<usize>,
    ) -> (MobileUnit, RngStream, RngStream) {
        let cfg = MuConfig {
            id: 0,
            hotspot: (0..10).collect(),
            query_rate_per_item: lambda,
            sleep_probability: s,
            cache_capacity,
            replacement: ReplacementPolicy::Lru,
            replacement_window: SimDuration::ZERO,
            piggyback_hits: true,
            item_universe: None,
        };
        let mut qrng = MasterSeed::TEST.stream(StreamId::Queries { index: 0 });
        let srng = MasterSeed::TEST.stream(StreamId::Sleep { index: 0 });
        let handler = Box::new(AtHandler::new(SimDuration::from_secs(10.0)));
        let mu = MobileUnit::new(cfg, handler, &mut qrng);
        (mu, qrng, srng)
    }

    #[test]
    fn awake_unit_generates_queries() {
        let (mut mu, mut qrng, mut srng) = unit(0.0, 1.0);
        mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
        assert!(mu.is_awake());
        assert!(mu.pending_len() > 0, "λ·|hotspot|·L = 100 expected arrivals");
    }

    #[test]
    fn asleep_unit_generates_nothing() {
        let (mut mu, mut qrng, mut srng) = unit(1.0, 1.0);
        mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
        assert!(!mu.is_awake());
        assert_eq!(mu.pending_len(), 0);
        let rep = mu.skip_report();
        assert!(!rep.awake);
        assert_eq!(mu.stats().intervals_asleep, 1);
    }

    #[test]
    fn misses_become_uplink_requests_and_hits_after_install() {
        let (mut mu, mut qrng, mut srng) = unit(0.0, 1.0);
        // Interval 1: all queries miss (cold cache).
        mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
        let rep = mu.hear_report_and_answer(&at_report(10.0, vec![]));
        assert!(!rep.uplink_requests.is_empty());
        assert_eq!(mu.stats().hit_events, 0);
        let misses = rep.uplink_requests.len() as u64;
        assert_eq!(mu.stats().miss_events, misses);
        // Install answers.
        for (item, _) in &rep.uplink_requests {
            mu.install_answer(QueryAnswer {
                item: *item,
                value: 1,
                timestamp: SimTime::from_secs(10.5),
            });
        }
        // Interval 2: no updates — queried items that repeat are hits.
        mu.begin_interval(SimTime::from_secs(10.0), SimTime::from_secs(20.0), &mut srng, &mut qrng);
        let _ = mu.hear_report_and_answer(&at_report(20.0, vec![]));
        assert!(mu.stats().hit_events > 0, "repeat queries should hit");
    }

    #[test]
    fn duplicate_queries_in_interval_are_one_event() {
        let (mut mu, mut qrng, mut srng) = unit(0.0, 10.0);
        // Very high λ: many arrivals, only ≤10 distinct hotspot items.
        mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
        assert!(mu.pending_len() > 100);
        let rep = mu.hear_report_and_answer(&at_report(10.0, vec![]));
        assert!(rep.uplink_requests.len() <= 10);
        assert_eq!(mu.stats().query_events(), rep.uplink_requests.len() as u64);
    }

    #[test]
    fn invalidated_item_misses_next_time() {
        let (mut mu, mut qrng, mut srng) = unit(0.0, 5.0);
        mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
        let rep = mu.hear_report_and_answer(&at_report(10.0, vec![]));
        for (item, _) in &rep.uplink_requests {
            mu.install_answer(QueryAnswer {
                item: *item,
                value: 1,
                timestamp: SimTime::from_secs(10.5),
            });
        }
        // Interval 2: the report invalidates item 3.
        mu.begin_interval(SimTime::from_secs(10.0), SimTime::from_secs(20.0), &mut srng, &mut qrng);
        let rep2 = mu.hear_report_and_answer(&at_report(20.0, vec![3]));
        // If item 3 was queried this interval it must be among the misses.
        let missed: Vec<ItemId> = rep2.uplink_requests.iter().map(|(i, _)| *i).collect();
        assert!(!mu.cache().contains(3));
        if mu.stats().queries_posed > 0 && missed.contains(&3) {
            assert!(missed.contains(&3));
        }
    }

    #[test]
    fn piggyback_carries_local_hit_history() {
        let (mut mu, mut qrng, mut srng) = unit(0.0, 5.0);
        // Warm the cache.
        mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
        let rep = mu.hear_report_and_answer(&at_report(10.0, vec![]));
        for (item, _) in &rep.uplink_requests {
            mu.install_answer(QueryAnswer {
                item: *item,
                value: 1,
                timestamp: SimTime::from_secs(10.5),
            });
        }
        // Several hit intervals.
        for i in 2..6u64 {
            let t0 = (i - 1) as f64 * 10.0;
            mu.begin_interval(
                SimTime::from_secs(t0),
                SimTime::from_secs(t0 + 10.0),
                &mut srng,
                &mut qrng,
            );
            let _ = mu.hear_report_and_answer(&at_report(t0 + 10.0, vec![]));
        }
        assert!(mu.stats().hit_events > 0);
        // Now invalidate everything; the next miss must carry history.
        let all: Vec<ItemId> = (0..10).collect();
        mu.begin_interval(SimTime::from_secs(50.0), SimTime::from_secs(60.0), &mut srng, &mut qrng);
        let rep = mu.hear_report_and_answer(&at_report(60.0, all));
        let with_history = rep
            .uplink_requests
            .iter()
            .filter(|(_, pb)| pb.as_ref().is_some_and(|p| !p.local_hit_times.is_empty()))
            .count();
        assert!(
            with_history > 0,
            "at least one uplink request should piggyback hit history"
        );
    }

    #[test]
    fn gap_drop_counts_once() {
        let (mut mu, mut qrng, mut srng) = unit(0.0, 1.0);
        mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
        let rep = mu.hear_report_and_answer(&at_report(10.0, vec![]));
        for (item, _) in &rep.uplink_requests {
            mu.install_answer(QueryAnswer {
                item: *item,
                value: 1,
                timestamp: SimTime::from_secs(10.5),
            });
        }
        // Simulate a missed report: next heard report is at 30 (gap 20 > L).
        mu.begin_interval(SimTime::from_secs(20.0), SimTime::from_secs(30.0), &mut srng, &mut qrng);
        let _ = mu.hear_report_and_answer(&at_report(30.0, vec![]));
        assert_eq!(mu.stats().cache_drops, 1);
        assert!(mu.cache().is_empty());
    }

    #[test]
    fn missed_report_defers_answers_and_triggers_gap_recovery() {
        let (mut mu, mut qrng, mut srng) = unit(0.0, 1.0);
        mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
        let rep = mu.hear_report_and_answer(&at_report(10.0, vec![]));
        for (item, _) in &rep.uplink_requests {
            mu.install_answer(QueryAnswer {
                item: *item,
                value: 1,
                timestamp: SimTime::from_secs(10.5),
            });
        }
        // Interval 2: the report is lost in flight.
        mu.begin_interval(SimTime::from_secs(10.0), SimTime::from_secs(20.0), &mut srng, &mut qrng);
        let pending_before = mu.pending_len();
        assert!(pending_before > 0);
        mu.miss_report();
        assert_eq!(mu.stats().reports_missed, 1);
        // Queries stay queued; t_l still points at the last heard report.
        assert_eq!(mu.pending_len(), pending_before);
        assert_eq!(mu.last_report_heard(), Some(SimTime::from_secs(10.0)));
        assert_eq!(mu.stats().query_events(), rep.uplink_requests.len() as u64);
        // Interval 3: the next intact report closes a 20 s gap > L = 10 s,
        // so the AT handler drops the whole cache — the paper's recovery.
        mu.begin_interval(SimTime::from_secs(20.0), SimTime::from_secs(30.0), &mut srng, &mut qrng);
        let rep3 = mu.hear_report_and_answer(&at_report(30.0, vec![]));
        assert_eq!(mu.stats().cache_drops, 1);
        assert!(mu.cache().is_empty());
        assert!(!rep3.uplink_requests.is_empty(), "deferred queries answered now");
    }

    #[test]
    fn bounded_unit_accounts_evictions_and_capacity_misses() {
        // Capacity 3 under a 10-item hotspot at high λ: every interval
        // queries most of the hotspot, so insertion churn must evict
        // and later requeries must find fresh ghosts (no invalidations
        // arrive — the reports are empty).
        let (mut mu, mut qrng, mut srng) = unit_with_capacity(0.0, 5.0, Some(3));
        for i in 0..6u64 {
            let t0 = i as f64 * 10.0;
            mu.begin_interval(
                SimTime::from_secs(t0),
                SimTime::from_secs(t0 + 10.0),
                &mut srng,
                &mut qrng,
            );
            let rep = mu.hear_report_and_answer(&at_report(t0 + 10.0, vec![]));
            for (item, _) in &rep.uplink_requests {
                mu.install_answer(QueryAnswer {
                    item: *item,
                    value: 1,
                    timestamp: SimTime::from_secs(t0 + 10.5),
                });
            }
        }
        let s = mu.stats();
        assert!(s.evictions > 0, "capacity 3 must evict under churn");
        assert!(
            s.capacity_misses > 0,
            "requeried fresh ghosts must be classified as capacity misses"
        );
        assert_eq!(
            s.capacity_misses, s.evicted_then_requeried,
            "no report invalidated anything, so every requeried ghost is fresh"
        );
        assert!(mu.cache().len() <= 3);
    }

    #[test]
    fn skewed_picks_bypass_the_uniform_draw() {
        let (mut mu, mut qrng, _) = unit(0.0, 1.0);
        let mut always_zero = || 0usize;
        mu.begin_awake_interval_skewed(
            SimTime::ZERO,
            SimTime::from_secs(10.0),
            &mut qrng,
            Some(&mut always_zero),
        );
        let rep = mu.hear_report_and_answer(&at_report(10.0, vec![]));
        assert_eq!(
            rep.uplink_requests.len(),
            1,
            "a constant pick can only ever miss one distinct item"
        );
        assert_eq!(rep.uplink_requests[0].0, 0);
    }

    #[test]
    #[should_panic(expected = "was not listening")]
    fn sleeping_unit_cannot_miss_a_report() {
        let (mut mu, mut qrng, mut srng) = unit(1.0, 1.0);
        mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
        mu.miss_report();
    }

    #[test]
    #[should_panic(expected = "sleeping unit cannot hear")]
    fn sleeping_unit_rejects_report() {
        let (mut mu, mut qrng, mut srng) = unit(1.0, 1.0);
        mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
        let _ = mu.hear_report_and_answer(&at_report(10.0, vec![]));
    }
}
