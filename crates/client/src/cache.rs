//! The mobile unit's cache.
//!
//! Each entry pairs the item's value with its validity timestamp `t_x`:
//! "if a client determines that a particular item's cache is valid after
//! listening to the report, this cache gets timestamped with the value
//! T_i ... If the client has to submit an uplink request ... the
//! obtained copy has the timestamp equal to the timestamp of the
//! request" (§2). Timestamps in one cache need *not* all be equal
//! (§3.1 notes this explicitly), which is why they live per entry.
//!
//! The paper assumes cache storage survives power-off ("on a disk ...
//! or any storage system that survives power disconnections, such as
//! flash memories", §1) — sleeping does *not* clear the cache; only the
//! strategy algorithms do. An optional capacity bound models small
//! devices, with a pluggable [`ReplacementPolicy`] (LRU by default);
//! the paper's scenarios are capacity-unbounded.
//!
//! A bounded cache also keeps a *ghost list*: the id and stamp of every
//! evicted entry, so a later requery can be classified as a pure
//! capacity miss (the copy was still fresh — one more slot would have
//! made it a hit) or an unavoidable one (a report proved the copy stale
//! anyway). Reports retire ghosts through
//! [`Cache::ghosts_mark_stale`] / [`Cache::ghost_mark_stale_item`].

use sw_capacity::{victim_key, EntryMeta, GhostFate, ReplacementPolicy};
use sw_server::{ItemId, ItemTable};
use sw_sim::{SimDuration, SimTime};

/// One cached item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEntry {
    /// The cached value.
    pub value: u64,
    /// Validity timestamp `t_x`: the latest server-clock instant at
    /// which this value is known to have been current.
    pub timestamp: SimTime,
    /// Recency tick of the last access (insert or read).
    last_used: u64,
    /// Hits since install (1 at install) — the LFU frequency estimate.
    use_count: u64,
}

/// Memory of an evicted entry (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
struct GhostEntry {
    /// The evicted entry's validity stamp at eviction time.
    stamp: SimTime,
    /// True once a report proved the item changed after `stamp`.
    stale: bool,
}

/// The MU cache: item → entry, with optional bounded capacity under a
/// pluggable [`ReplacementPolicy`].
///
/// Item ids are dense, so the cell driver constructs caches with
/// [`Cache::for_universe`]: a vec-indexed table with no hashing on the
/// per-query hot path, and free id-ordered iteration. The hashed
/// constructors remain for callers with unknown universes.
#[derive(Debug, Clone)]
pub struct Cache {
    entries: ItemTable<CacheEntry>,
    /// Ghost list, allocated only for bounded caches (unbounded caches
    /// never evict, so they never pay for the second table).
    ghosts: Option<ItemTable<GhostEntry>>,
    capacity: Option<usize>,
    policy: ReplacementPolicy,
    /// TS window `w = kL` for [`ReplacementPolicy::WindowAge`]; ignored
    /// by the other policies.
    window: SimDuration,
    clock: u64,
    evictions: u64,
}

impl Cache {
    /// Creates an unbounded cache (the paper's model) over an unknown
    /// item universe (hashed table).
    pub fn unbounded() -> Self {
        Cache {
            entries: ItemTable::hashed(),
            ghosts: None,
            capacity: None,
            policy: ReplacementPolicy::Lru,
            window: SimDuration::ZERO,
            clock: 0,
            evictions: 0,
        }
    }

    /// Creates an unbounded cache pre-sized for items `0..universe`
    /// (dense table; the fast path used by the cell simulation).
    pub fn for_universe(universe: u64) -> Self {
        Cache {
            entries: ItemTable::dense(universe),
            ghosts: None,
            capacity: None,
            policy: ReplacementPolicy::Lru,
            window: SimDuration::ZERO,
            clock: 0,
            evictions: 0,
        }
    }

    /// Creates a cache holding at most `capacity` items, evicting the
    /// least recently used on overflow.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Cache {
            entries: ItemTable::hashed(),
            ghosts: Some(ItemTable::hashed()),
            capacity: Some(capacity),
            policy: ReplacementPolicy::Lru,
            window: SimDuration::ZERO,
            clock: 0,
            evictions: 0,
        }
    }

    /// Creates a capacity-bounded LRU cache over a dense universe of
    /// `universe` items.
    pub fn with_capacity_for_universe(capacity: usize, universe: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Cache {
            entries: ItemTable::dense(universe),
            ghosts: Some(ItemTable::dense(universe)),
            capacity: Some(capacity),
            policy: ReplacementPolicy::Lru,
            window: SimDuration::ZERO,
            clock: 0,
            evictions: 0,
        }
    }

    /// Switches a bounded cache's replacement policy (`window` is the
    /// TS window `w = kL`, consulted only by
    /// [`ReplacementPolicy::WindowAge`]). No-op semantics change for
    /// unbounded caches, which never evict.
    pub fn set_replacement(&mut self, policy: ReplacementPolicy, window: SimDuration) {
        self.policy = policy;
        self.window = window;
    }

    /// The active replacement policy.
    pub fn replacement(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of cached items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of capacity evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether the cache runs on the dense (vec-indexed) table layout;
    /// `false` means the hashed fallback activated (unknown universe) —
    /// surfaced by the observability layer at simulation start.
    pub fn is_dense(&self) -> bool {
        self.entries.is_dense()
    }

    /// True if `item` is cached.
    pub fn contains(&self, item: ItemId) -> bool {
        self.entries.contains(item)
    }

    /// Reads `item` (bumping recency; on a hit, also the LFU count).
    pub fn get(&mut self, item: ItemId) -> Option<CacheEntry> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(item).map(|e| {
            e.last_used = clock;
            e.use_count += 1;
            *e
        })
    }

    /// Reads `item` without touching recency (for invariant checks).
    pub fn peek(&self, item: ItemId) -> Option<&CacheEntry> {
        self.entries.get(item)
    }

    /// Inserts or replaces `item`, evicting per the replacement policy
    /// if over capacity. A fresh install clears any ghost of the item.
    pub fn insert(&mut self, item: ItemId, value: u64, timestamp: SimTime) {
        self.clock += 1;
        self.entries.insert(
            item,
            CacheEntry {
                value,
                timestamp,
                last_used: self.clock,
                use_count: 1,
            },
        );
        if let Some(ghosts) = &mut self.ghosts {
            ghosts.remove(item);
        }
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                // The victim key ends in the item id, so the minimum is
                // unique: eviction is independent of iteration order
                // (dense vs hashed) and byte-identical to the columnar
                // fleet's scan.
                let (policy, window) = (self.policy, self.window);
                let victim = self
                    .entries
                    .iter()
                    .map(|(k, e)| {
                        (
                            victim_key(
                                policy,
                                EntryMeta {
                                    last_used: e.last_used,
                                    use_count: e.use_count,
                                    stamp: e.timestamp,
                                },
                                timestamp,
                                window,
                                k,
                            ),
                            k,
                        )
                    })
                    .min()
                    .map(|(_, k)| k)
                    .expect("cache over capacity cannot be empty");
                let gone = self
                    .entries
                    .remove(victim)
                    .expect("victim scan returned a live entry");
                if let Some(ghosts) = &mut self.ghosts {
                    ghosts.insert(
                        victim,
                        GhostEntry {
                            stamp: gone.timestamp,
                            stale: false,
                        },
                    );
                }
                self.evictions += 1;
            }
        }
    }

    /// Removes `item`, returning its entry if present.
    pub fn remove(&mut self, item: ItemId) -> Option<CacheEntry> {
        self.entries.remove(item)
    }

    /// Drops the entire cache (the `T_i − T_l > w` / `> L` path of the
    /// §3 algorithms). Ghosts are dropped too: after a whole-cache drop
    /// *nothing* would have been a hit, so no later miss is
    /// attributable to an earlier eviction.
    pub fn clear(&mut self) {
        self.entries.clear();
        if let Some(ghosts) = &mut self.ghosts {
            ghosts.clear();
        }
    }

    /// Consumes the ghost of `item`, if any: what a requery learned
    /// about the evicted copy. Called on every miss by the unit driver.
    pub fn take_ghost(&mut self, item: ItemId) -> Option<GhostFate> {
        self.ghosts.as_mut()?.remove(item).map(|g| {
            if g.stale {
                GhostFate::Stale
            } else {
                GhostFate::Fresh
            }
        })
    }

    /// Marks every still-fresh ghost for which `proven_stale(item,
    /// eviction_stamp)` returns true as stale — the per-report retire
    /// pass for strategies that name updated items (TS entries).
    pub fn ghosts_mark_stale<F: FnMut(ItemId, SimTime) -> bool>(&mut self, mut proven_stale: F) {
        if let Some(ghosts) = &mut self.ghosts {
            ghosts.for_each_mut(|item, g| {
                if !g.stale && proven_stale(item, g.stamp) {
                    g.stale = true;
                }
            });
        }
    }

    /// Marks the ghost of `item` stale, if one exists — the per-id
    /// retire pass for strategies that broadcast plain id lists (AT).
    pub fn ghost_mark_stale_item(&mut self, item: ItemId) {
        if let Some(ghosts) = &mut self.ghosts {
            if let Some(g) = ghosts.get_mut(item) {
                g.stale = true;
            }
        }
    }

    /// Number of remembered evicted items (test hook).
    pub fn ghost_len(&self) -> usize {
        self.ghosts.as_ref().map_or(0, |g| g.len())
    }

    /// Sets the validity timestamp of `item` (report processing).
    ///
    /// # Panics
    /// Panics if the item is not cached — strategies only restamp items
    /// they just verified.
    pub fn restamp(&mut self, item: ItemId, timestamp: SimTime) {
        let e = self
            .entries
            .get_mut(item)
            .expect("cannot restamp an item that is not cached");
        e.timestamp = timestamp;
    }

    /// Iterates over cached item ids (ascending for dense caches,
    /// arbitrary for hashed ones).
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Cached ids as a sorted vector (deterministic iteration for the
    /// strategy algorithms and tests). Free of sorting for dense caches.
    pub fn sorted_items(&self) -> Vec<ItemId> {
        self.entries.sorted_ids()
    }

    /// One mutable pass over the whole cache — the shape of the §3
    /// report algorithms: `f` restamps the entry in place and returns
    /// `true` to keep it, or `false` to invalidate it. Dense caches are
    /// visited in ascending item order; recency is untouched (report
    /// processing is not a read). Replaces the
    /// `sorted_items` + `peek` + `restamp`/`remove` walk, which cost an
    /// id-vector allocation and three lookups per entry per report.
    pub fn retain_entries<F: FnMut(ItemId, &mut CacheEntry) -> bool>(&mut self, f: F) {
        self.entries.retain_mut(f);
    }

    /// Restamps every cached entry to `timestamp` in one pass (the "all
    /// survivors are verified as of `T_i`" step shared by the report
    /// algorithms).
    pub fn restamp_all(&mut self, timestamp: SimTime) {
        self.entries.for_each_mut(|_, e| e.timestamp = timestamp);
    }

    /// Removes every item for which `predicate` returns true, returning
    /// how many were dropped.
    pub fn drop_where<F: FnMut(ItemId, &CacheEntry) -> bool>(&mut self, mut predicate: F) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, e| !predicate(k, e));
        before - self.entries.len()
    }
}

impl Default for Cache {
    fn default() -> Self {
        Cache::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = Cache::unbounded();
        c.insert(5, 42, SimTime::from_secs(1.0));
        let e = c.get(5).unwrap();
        assert_eq!(e.value, 42);
        assert_eq!(e.timestamp, SimTime::from_secs(1.0));
        assert!(c.contains(5));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn timestamps_can_differ_between_entries() {
        // §3.1: "the timestamps in the cache need not be all the same".
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0));
        c.insert(2, 20, SimTime::from_secs(17.3));
        assert_ne!(
            c.peek(1).unwrap().timestamp,
            c.peek(2).unwrap().timestamp
        );
    }

    #[test]
    fn restamp_updates_validity() {
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0));
        c.restamp(1, SimTime::from_secs(20.0));
        assert_eq!(c.peek(1).unwrap().timestamp, SimTime::from_secs(20.0));
    }

    #[test]
    #[should_panic(expected = "not cached")]
    fn restamp_missing_panics() {
        let mut c = Cache::unbounded();
        c.restamp(1, SimTime::from_secs(1.0));
    }

    #[test]
    fn clear_drops_everything() {
        let mut c = Cache::unbounded();
        for i in 0..10 {
            c.insert(i, i, SimTime::from_secs(1.0));
        }
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = Cache::with_capacity(2);
        c.insert(1, 1, SimTime::ZERO);
        c.insert(2, 2, SimTime::ZERO);
        let _ = c.get(1); // 1 is now more recent than 2
        c.insert(3, 3, SimTime::ZERO);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn peek_does_not_bump_recency() {
        let mut c = Cache::with_capacity(2);
        c.insert(1, 1, SimTime::ZERO);
        c.insert(2, 2, SimTime::ZERO);
        let _ = c.peek(1); // no recency bump: 1 remains LRU
        c.insert(3, 3, SimTime::ZERO);
        assert!(!c.contains(1));
    }

    #[test]
    fn drop_where_filters() {
        let mut c = Cache::unbounded();
        for i in 0..10 {
            c.insert(i, i, SimTime::from_secs(i as f64));
        }
        let dropped = c.drop_where(|i, _| i % 2 == 0);
        assert_eq!(dropped, 5);
        assert_eq!(c.len(), 5);
        assert!(!c.contains(0));
        assert!(c.contains(1));
    }

    #[test]
    fn sorted_items_is_sorted() {
        let mut c = Cache::unbounded();
        for i in [9u64, 3, 7, 1] {
            c.insert(i, 0, SimTime::ZERO);
        }
        assert_eq!(c.sorted_items(), vec![1, 3, 7, 9]);
    }

    #[test]
    fn dense_cache_behaves_like_hashed() {
        let mut dense = Cache::for_universe(16);
        let mut hashed = Cache::unbounded();
        for c in [&mut dense, &mut hashed] {
            for i in [9u64, 3, 7, 1] {
                c.insert(i, i * 2, SimTime::from_secs(i as f64));
            }
            c.remove(7);
        }
        assert_eq!(dense.sorted_items(), hashed.sorted_items());
        assert_eq!(dense.len(), hashed.len());
        assert_eq!(dense.peek(9).unwrap().value, 18);
        // Beyond the pre-sized universe still works (table grows).
        dense.insert(100, 1, SimTime::ZERO);
        assert!(dense.contains(100));
    }

    #[test]
    fn dense_lru_evicts_like_hashed() {
        let mut c = Cache::with_capacity_for_universe(2, 8);
        c.insert(1, 1, SimTime::ZERO);
        c.insert(2, 2, SimTime::ZERO);
        let _ = c.get(1);
        c.insert(3, 3, SimTime::ZERO);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinsert_replaces_value() {
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(1.0));
        c.insert(1, 20, SimTime::from_secs(2.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(1).unwrap().value, 20);
    }

    #[test]
    fn lfu_evicts_least_frequently_used() {
        let mut c = Cache::with_capacity(2);
        c.set_replacement(ReplacementPolicy::Lfu, SimDuration::ZERO);
        c.insert(1, 1, SimTime::ZERO);
        c.insert(2, 2, SimTime::ZERO);
        // Item 2 is hit twice, item 1 never: LFU sacrifices 1 even
        // though 1 was inserted first and 2 touched more recently.
        let _ = c.get(2);
        let _ = c.get(2);
        c.insert(3, 3, SimTime::ZERO);
        assert!(!c.contains(1), "cold item evicted under LFU");
        assert!(c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn window_age_evicts_dead_entries_first() {
        let mut c = Cache::with_capacity(2);
        c.set_replacement(ReplacementPolicy::WindowAge, SimDuration::from_secs(50.0));
        // Item 1 stamped far outside the window but *hot* (recently
        // used); item 2 fresh but LRU-cold. LRU would evict 2;
        // window-age knows 1 is dead weight.
        c.insert(1, 1, SimTime::from_secs(10.0));
        c.insert(2, 2, SimTime::from_secs(99.0));
        let _ = c.get(1);
        c.insert(3, 3, SimTime::from_secs(100.0));
        assert!(!c.contains(1), "dead entry evicted despite recency");
        assert!(c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn ghost_classifies_requeries() {
        let mut c = Cache::with_capacity(1);
        c.insert(1, 1, SimTime::from_secs(1.0));
        c.insert(2, 2, SimTime::from_secs(2.0)); // evicts 1 → fresh ghost
        assert_eq!(c.ghost_len(), 1);
        assert_eq!(c.take_ghost(1), Some(GhostFate::Fresh));
        assert_eq!(c.take_ghost(1), None, "take consumes the ghost");

        c.insert(3, 3, SimTime::from_secs(3.0)); // evicts 2
        c.ghost_mark_stale_item(2);
        assert_eq!(c.take_ghost(2), Some(GhostFate::Stale));
    }

    #[test]
    fn ghosts_mark_stale_uses_eviction_stamp() {
        let mut c = Cache::with_capacity(1);
        c.insert(1, 1, SimTime::from_secs(5.0));
        c.insert(2, 2, SimTime::from_secs(6.0)); // ghost(1) stamped 5.0
        // An update at t = 4 predates the evicted copy: still fresh.
        c.ghosts_mark_stale(|item, stamp| item == 1 && stamp < SimTime::from_secs(4.0));
        assert_eq!(c.take_ghost(1), Some(GhostFate::Fresh));
        c.insert(3, 3, SimTime::from_secs(7.0)); // ghost(2) stamped 6.0
        // An update at t = 8 postdates it: the eviction cost nothing.
        c.ghosts_mark_stale(|item, stamp| item == 2 && stamp < SimTime::from_secs(8.0));
        assert_eq!(c.take_ghost(2), Some(GhostFate::Stale));
    }

    #[test]
    fn reinstall_clears_ghost_and_clear_drops_ghosts() {
        let mut c = Cache::with_capacity(1);
        c.insert(1, 1, SimTime::ZERO);
        c.insert(2, 2, SimTime::ZERO); // ghost(1)
        c.insert(1, 10, SimTime::ZERO); // reinstall 1; ghost(1) gone, ghost(2) born
        assert_eq!(c.take_ghost(1), None);
        assert_eq!(c.ghost_len(), 1);
        c.clear();
        assert_eq!(c.ghost_len(), 0);
        assert_eq!(c.take_ghost(2), None);
    }

    #[test]
    fn unbounded_cache_never_ghosts() {
        let mut c = Cache::unbounded();
        c.insert(1, 1, SimTime::ZERO);
        c.remove(1);
        assert_eq!(c.take_ghost(1), None);
        assert_eq!(c.ghost_len(), 0);
    }

    #[test]
    fn dense_and_hashed_bounded_caches_agree_per_policy() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Lfu,
            ReplacementPolicy::WindowAge,
        ] {
            let mut dense = Cache::with_capacity_for_universe(3, 64);
            let mut hashed = Cache::with_capacity(3);
            for c in [&mut dense, &mut hashed] {
                c.set_replacement(policy, SimDuration::from_secs(20.0));
                for i in 0..6u64 {
                    c.insert(i, i, SimTime::from_secs(i as f64));
                    let _ = c.get(i / 2);
                }
            }
            assert_eq!(
                dense.sorted_items(),
                hashed.sorted_items(),
                "{policy:?} diverged between table layouts"
            );
            assert_eq!(dense.evictions(), hashed.evictions());
        }
    }
}
