//! The mobile unit's cache.
//!
//! Each entry pairs the item's value with its validity timestamp `t_x`:
//! "if a client determines that a particular item's cache is valid after
//! listening to the report, this cache gets timestamped with the value
//! T_i ... If the client has to submit an uplink request ... the
//! obtained copy has the timestamp equal to the timestamp of the
//! request" (§2). Timestamps in one cache need *not* all be equal
//! (§3.1 notes this explicitly), which is why they live per entry.
//!
//! The paper assumes cache storage survives power-off ("on a disk ...
//! or any storage system that survives power disconnections, such as
//! flash memories", §1) — sleeping does *not* clear the cache; only the
//! strategy algorithms do. An optional LRU capacity bound models small
//! devices; the paper's scenarios are capacity-unbounded.

use sw_server::{ItemId, ItemTable};
use sw_sim::SimTime;

/// One cached item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEntry {
    /// The cached value.
    pub value: u64,
    /// Validity timestamp `t_x`: the latest server-clock instant at
    /// which this value is known to have been current.
    pub timestamp: SimTime,
    /// LRU tick of the last access (insert or read).
    last_used: u64,
}

/// The MU cache: item → entry, with optional LRU capacity.
///
/// Item ids are dense, so the cell driver constructs caches with
/// [`Cache::for_universe`]: a vec-indexed table with no hashing on the
/// per-query hot path, and free id-ordered iteration. The hashed
/// constructors remain for callers with unknown universes.
#[derive(Debug, Clone)]
pub struct Cache {
    entries: ItemTable<CacheEntry>,
    capacity: Option<usize>,
    clock: u64,
    evictions: u64,
}

impl Cache {
    /// Creates an unbounded cache (the paper's model) over an unknown
    /// item universe (hashed table).
    pub fn unbounded() -> Self {
        Cache {
            entries: ItemTable::hashed(),
            capacity: None,
            clock: 0,
            evictions: 0,
        }
    }

    /// Creates an unbounded cache pre-sized for items `0..universe`
    /// (dense table; the fast path used by the cell simulation).
    pub fn for_universe(universe: u64) -> Self {
        Cache {
            entries: ItemTable::dense(universe),
            capacity: None,
            clock: 0,
            evictions: 0,
        }
    }

    /// Creates a cache holding at most `capacity` items, evicting the
    /// least recently used on overflow.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Cache {
            entries: ItemTable::hashed(),
            capacity: Some(capacity),
            clock: 0,
            evictions: 0,
        }
    }

    /// Creates a capacity-bounded LRU cache over a dense universe of
    /// `universe` items.
    pub fn with_capacity_for_universe(capacity: usize, universe: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Cache {
            entries: ItemTable::dense(universe),
            capacity: Some(capacity),
            clock: 0,
            evictions: 0,
        }
    }

    /// Number of cached items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether the cache runs on the dense (vec-indexed) table layout;
    /// `false` means the hashed fallback activated (unknown universe) —
    /// surfaced by the observability layer at simulation start.
    pub fn is_dense(&self) -> bool {
        self.entries.is_dense()
    }

    /// True if `item` is cached.
    pub fn contains(&self, item: ItemId) -> bool {
        self.entries.contains(item)
    }

    /// Reads `item` (bumping LRU recency).
    pub fn get(&mut self, item: ItemId) -> Option<CacheEntry> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(item).map(|e| {
            e.last_used = clock;
            *e
        })
    }

    /// Reads `item` without touching recency (for invariant checks).
    pub fn peek(&self, item: ItemId) -> Option<&CacheEntry> {
        self.entries.get(item)
    }

    /// Inserts or replaces `item`, evicting LRU if over capacity.
    pub fn insert(&mut self, item: ItemId, value: u64, timestamp: SimTime) {
        self.clock += 1;
        self.entries.insert(
            item,
            CacheEntry {
                value,
                timestamp,
                last_used: self.clock,
            },
        );
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                let lru = self
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k)
                    .expect("cache over capacity cannot be empty");
                self.entries.remove(lru);
                self.evictions += 1;
            }
        }
    }

    /// Removes `item`, returning its entry if present.
    pub fn remove(&mut self, item: ItemId) -> Option<CacheEntry> {
        self.entries.remove(item)
    }

    /// Drops the entire cache (the `T_i − T_l > w` / `> L` path of the
    /// §3 algorithms).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Sets the validity timestamp of `item` (report processing).
    ///
    /// # Panics
    /// Panics if the item is not cached — strategies only restamp items
    /// they just verified.
    pub fn restamp(&mut self, item: ItemId, timestamp: SimTime) {
        let e = self
            .entries
            .get_mut(item)
            .expect("cannot restamp an item that is not cached");
        e.timestamp = timestamp;
    }

    /// Iterates over cached item ids (ascending for dense caches,
    /// arbitrary for hashed ones).
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Cached ids as a sorted vector (deterministic iteration for the
    /// strategy algorithms and tests). Free of sorting for dense caches.
    pub fn sorted_items(&self) -> Vec<ItemId> {
        self.entries.sorted_ids()
    }

    /// One mutable pass over the whole cache — the shape of the §3
    /// report algorithms: `f` restamps the entry in place and returns
    /// `true` to keep it, or `false` to invalidate it. Dense caches are
    /// visited in ascending item order; recency is untouched (report
    /// processing is not a read). Replaces the
    /// `sorted_items` + `peek` + `restamp`/`remove` walk, which cost an
    /// id-vector allocation and three lookups per entry per report.
    pub fn retain_entries<F: FnMut(ItemId, &mut CacheEntry) -> bool>(&mut self, f: F) {
        self.entries.retain_mut(f);
    }

    /// Restamps every cached entry to `timestamp` in one pass (the "all
    /// survivors are verified as of `T_i`" step shared by the report
    /// algorithms).
    pub fn restamp_all(&mut self, timestamp: SimTime) {
        self.entries.for_each_mut(|_, e| e.timestamp = timestamp);
    }

    /// Removes every item for which `predicate` returns true, returning
    /// how many were dropped.
    pub fn drop_where<F: FnMut(ItemId, &CacheEntry) -> bool>(&mut self, mut predicate: F) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, e| !predicate(k, e));
        before - self.entries.len()
    }
}

impl Default for Cache {
    fn default() -> Self {
        Cache::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = Cache::unbounded();
        c.insert(5, 42, SimTime::from_secs(1.0));
        let e = c.get(5).unwrap();
        assert_eq!(e.value, 42);
        assert_eq!(e.timestamp, SimTime::from_secs(1.0));
        assert!(c.contains(5));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn timestamps_can_differ_between_entries() {
        // §3.1: "the timestamps in the cache need not be all the same".
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0));
        c.insert(2, 20, SimTime::from_secs(17.3));
        assert_ne!(
            c.peek(1).unwrap().timestamp,
            c.peek(2).unwrap().timestamp
        );
    }

    #[test]
    fn restamp_updates_validity() {
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(10.0));
        c.restamp(1, SimTime::from_secs(20.0));
        assert_eq!(c.peek(1).unwrap().timestamp, SimTime::from_secs(20.0));
    }

    #[test]
    #[should_panic(expected = "not cached")]
    fn restamp_missing_panics() {
        let mut c = Cache::unbounded();
        c.restamp(1, SimTime::from_secs(1.0));
    }

    #[test]
    fn clear_drops_everything() {
        let mut c = Cache::unbounded();
        for i in 0..10 {
            c.insert(i, i, SimTime::from_secs(1.0));
        }
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = Cache::with_capacity(2);
        c.insert(1, 1, SimTime::ZERO);
        c.insert(2, 2, SimTime::ZERO);
        let _ = c.get(1); // 1 is now more recent than 2
        c.insert(3, 3, SimTime::ZERO);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn peek_does_not_bump_recency() {
        let mut c = Cache::with_capacity(2);
        c.insert(1, 1, SimTime::ZERO);
        c.insert(2, 2, SimTime::ZERO);
        let _ = c.peek(1); // no recency bump: 1 remains LRU
        c.insert(3, 3, SimTime::ZERO);
        assert!(!c.contains(1));
    }

    #[test]
    fn drop_where_filters() {
        let mut c = Cache::unbounded();
        for i in 0..10 {
            c.insert(i, i, SimTime::from_secs(i as f64));
        }
        let dropped = c.drop_where(|i, _| i % 2 == 0);
        assert_eq!(dropped, 5);
        assert_eq!(c.len(), 5);
        assert!(!c.contains(0));
        assert!(c.contains(1));
    }

    #[test]
    fn sorted_items_is_sorted() {
        let mut c = Cache::unbounded();
        for i in [9u64, 3, 7, 1] {
            c.insert(i, 0, SimTime::ZERO);
        }
        assert_eq!(c.sorted_items(), vec![1, 3, 7, 9]);
    }

    #[test]
    fn dense_cache_behaves_like_hashed() {
        let mut dense = Cache::for_universe(16);
        let mut hashed = Cache::unbounded();
        for c in [&mut dense, &mut hashed] {
            for i in [9u64, 3, 7, 1] {
                c.insert(i, i * 2, SimTime::from_secs(i as f64));
            }
            c.remove(7);
        }
        assert_eq!(dense.sorted_items(), hashed.sorted_items());
        assert_eq!(dense.len(), hashed.len());
        assert_eq!(dense.peek(9).unwrap().value, 18);
        // Beyond the pre-sized universe still works (table grows).
        dense.insert(100, 1, SimTime::ZERO);
        assert!(dense.contains(100));
    }

    #[test]
    fn dense_lru_evicts_like_hashed() {
        let mut c = Cache::with_capacity_for_universe(2, 8);
        c.insert(1, 1, SimTime::ZERO);
        c.insert(2, 2, SimTime::ZERO);
        let _ = c.get(1);
        c.insert(3, 3, SimTime::ZERO);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinsert_replaces_value() {
        let mut c = Cache::unbounded();
        c.insert(1, 10, SimTime::from_secs(1.0));
        c.insert(1, 20, SimTime::from_secs(2.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(1).unwrap().value, 20);
    }
}
