//! Trace events and their NDJSON rendering.
//!
//! One event is one line of the trace: `{"t":…,"cell":…,"kind":…,…}`.
//! The writer is hand-rolled (no serde): the observe crate must stay
//! dependency-free so it can sit below every other crate in the
//! workspace, and the paper's traces only need scalars and short
//! strings. Rendering is fully deterministic — field order is insertion
//! order, floats use Rust's shortest-roundtrip formatting — which is
//! what lets the determinism suite compare traces byte-for-byte across
//! thread counts.

use std::fmt::Write as _;

/// A field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (ids, counts, bits).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Float (probabilities, seconds). Non-finite renders as `null`.
    F64(f64),
    /// Short string (names, modes).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

/// One trace event. `cell` indexes the owning snapshot's cell table so
/// merged traces stay compact.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Index into [`crate::ObserveSnapshot::cells`].
    pub cell: u32,
    /// Broadcast interval the event occurred in.
    pub t: u64,
    /// Event kind (the taxonomy is documented in DESIGN.md §9).
    pub kind: &'static str,
    /// Named payload fields, in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

/// Appends `s` JSON-escaped (quotes included) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a value in JSON form to `out`.
pub fn push_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => push_json_str(out, s),
    }
}

impl Event {
    /// Appends this event's NDJSON line (newline included) to `out`,
    /// resolving the cell index against `cells`.
    pub fn render(&self, cells: &[String], out: &mut String) {
        out.push_str("{\"t\":");
        let _ = write!(out, "{}", self.t);
        out.push_str(",\"cell\":");
        push_json_str(out, &cells[self.cell as usize]);
        out.push_str(",\"kind\":");
        push_json_str(out, self.kind);
        for (name, value) in &self.fields {
            out.push(',');
            push_json_str(out, name);
            out.push(':');
            push_json_value(out, value);
        }
        out.push_str("}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_one_json_line() {
        let e = Event {
            cell: 0,
            t: 7,
            kind: "overflow",
            fields: vec![("client", Value::U64(3)), ("item", Value::U64(42))],
        };
        let mut out = String::new();
        e.render(&["fig3/x=0/TS".to_string()], &mut out);
        assert_eq!(
            out,
            "{\"t\":7,\"cell\":\"fig3/x=0/TS\",\"kind\":\"overflow\",\"client\":3,\"item\":42}\n"
        );
    }

    #[test]
    fn escapes_and_floats() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
        let mut out = String::new();
        push_json_value(&mut out, &Value::F64(0.25));
        assert_eq!(out, "0.25");
        let mut out = String::new();
        push_json_value(&mut out, &Value::F64(f64::NAN));
        assert_eq!(out, "null");
    }
}
