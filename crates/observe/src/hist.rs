//! Fixed power-of-two-bucket histograms.
//!
//! Bucket `0` holds the value `0`; bucket `b ≥ 1` holds the values in
//! `[2^(b−1), 2^b)`. 65 buckets cover the whole `u64` range with no
//! allocation and O(1) recording (`leading_zeros` is one instruction),
//! which is what lets the recorder sit on the per-interval hot path.
//! Exact count/sum/min/max ride along; quantiles are read from the
//! bucket upper bounds (≤ 2× error by construction).

/// Number of buckets: one for zero plus one per bit width.
pub const BUCKETS: usize = 65;

/// A fixed-size power-of-two histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub counts: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Smallest sample (undefined when `count == 0`).
    pub min: u64,
    /// Largest sample (undefined when `count == 0`).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the largest value it can hold).
pub fn bucket_upper(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample, or NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the first
    /// bucket at which the cumulative count reaches `q·count` (exact
    /// min/max are substituted at the extremes). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(bucket).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            let hi = bucket_upper(b);
            assert_eq!(bucket_of(hi), b, "upper bound of bucket {b} stays inside");
        }
    }

    #[test]
    fn record_tracks_exact_stats() {
        let mut h = Histogram::default();
        for v in [3, 0, 17, 17, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 137);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 27.4).abs() < 1e-12);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000, "p100 clamps to exact max");
        let mut empty = Histogram::default();
        assert_eq!(empty.quantile(0.5), 0);
        assert!(empty.mean().is_nan());
        empty.merge(&h);
        assert_eq!(empty.count, 1000);
        assert_eq!(empty.min, 1);
    }
}
