#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `sw-observe`: zero-cost instrumentation for the simulator.
//!
//! The crate provides four recording primitives — monotonic counters,
//! fixed power-of-two-bucket [`Histogram`]s, RAII span timers, and a
//! per-interval time-series recorder — behind one [`Recorder`] handle,
//! plus two sinks: an NDJSON event trace
//! ([`ObserveSnapshot::to_ndjson`], one `{t, cell, kind, …}` object per
//! line) and an end-of-run summary table ([`sink::summary`]).
//!
//! **Zero cost when off.** Everything is gated on the `observe` cargo
//! feature (default off). Without it, [`Recorder`] is a zero-sized
//! type, every method is an inlined no-op, [`Recorder::is_enabled`]
//! returns a compile-time `false` (so `if rec.is_enabled() { … }`
//! blocks are dead code), and the [`obs!`] macro expands to nothing —
//! its arguments are never evaluated. `cargo bench hot_paths` is the
//! enforcement: an instrumented-but-disabled build must be within noise
//! of an uninstrumented one.
//!
//! **Deterministic when on.** Counters, value histograms, events and
//! series are pure functions of the simulation seed; the determinism
//! suite compares [`ObserveSnapshot::deterministic_digest`] output
//! byte-for-byte across `SW_THREADS` values. Wall-clock span timings
//! are inherently non-deterministic, so they are quarantined in
//! [`ObserveSnapshot::timings`] and surface only in the summary table,
//! never in the trace or the series.
//!
//! **Multi-cell runs.** The mesh layer (`sw-mesh`) gives each shard
//! its own recorder labelled `<label>/cell<N>`, so per-cell traces
//! never interleave and can be merged or diffed offline. Mesh cells
//! additionally record the migration counter family — `migrations`
//! (arrivals), `migrations_out`, `handoff_drops`,
//! `cross_cell_registrations` — and append a per-interval `migrations`
//! series column (arrivals settled at the preceding barrier);
//! `trace_run -- mesh` writes one trace and series per cell plus a
//! combined summary.

pub mod event;
pub mod hist;
pub mod series;
pub mod sink;
pub mod snapshot;

pub use event::{Event, Value};
pub use hist::Histogram;
pub use series::{SeriesData, SeriesRow};
pub use sink::{overflow_warning, summary};
pub use snapshot::ObserveSnapshot;

#[cfg(feature = "observe")]
use std::time::Instant;

/// Live recorder state; boxed so a disabled-at-runtime recorder is one
/// null-pointer check on every call.
#[cfg(feature = "observe")]
struct Inner {
    cell: String,
    counters: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Histogram)>,
    timings: Vec<(&'static str, Histogram)>,
    columns: Vec<&'static str>,
    rows: Vec<SeriesRow>,
    events: Vec<Event>,
}

/// The instrumentation handle a simulation owns.
///
/// Three states, two of them free:
/// - feature `observe` **off**: a zero-sized no-op (statically free);
/// - feature on, [`Recorder::disabled`]: one `Option` check per call;
/// - feature on, [`Recorder::enabled`]: records into an owned buffer,
///   harvested once at the end of the run via [`Recorder::snapshot`].
pub struct Recorder {
    #[cfg(feature = "observe")]
    inner: Option<Box<Inner>>,
}

/// A live span: the timing sink to record into, the span name, and the
/// start instant.
#[cfg(feature = "observe")]
type ActiveSpan<'a> = (&'a mut Vec<(&'static str, Histogram)>, &'static str, Instant);

/// RAII span timer: records the elapsed wall-clock nanoseconds into the
/// recorder's timing histograms when dropped. Exclusive — it borrows
/// the recorder for its whole extent; use [`Recorder::timer`] /
/// [`Recorder::finish`] for regions that also record events.
#[must_use = "a span records on drop; binding it to _ discards the measurement"]
#[cfg(feature = "observe")]
pub struct SpanGuard<'a> {
    inner: Option<ActiveSpan<'a>>,
}

/// RAII span timer (no-op: the `observe` feature is off).
#[must_use = "a span records on drop; binding it to _ discards the measurement"]
#[cfg(not(feature = "observe"))]
pub struct SpanGuard<'a> {
    _ph: core::marker::PhantomData<&'a ()>,
}

#[cfg(feature = "observe")]
impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((sink, name, start)) = self.inner.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            snapshot::hist_slot(sink, name).record(ns);
        }
    }
}

/// Detached span timer for regions that keep using the recorder; pass
/// back to [`Recorder::finish`] to record.
#[cfg(feature = "observe")]
pub struct Timer {
    inner: Option<(&'static str, Instant)>,
}

/// Detached span timer (no-op: the `observe` feature is off).
#[cfg(not(feature = "observe"))]
pub struct Timer;

impl Recorder {
    /// A recorder that records nothing (the normal simulation state).
    #[inline]
    pub fn disabled() -> Self {
        Recorder {
            #[cfg(feature = "observe")]
            inner: None,
        }
    }

    /// A recorder capturing under the given cell label. Without the
    /// `observe` feature this still returns the no-op recorder, so
    /// callers never need their own `cfg`.
    pub fn enabled(cell: impl Into<String>) -> Self {
        #[cfg(feature = "observe")]
        {
            Recorder {
                inner: Some(Box::new(Inner {
                    cell: cell.into(),
                    counters: Vec::new(),
                    hists: Vec::new(),
                    timings: Vec::new(),
                    columns: Vec::new(),
                    rows: Vec::new(),
                    events: Vec::new(),
                })),
            }
        }
        #[cfg(not(feature = "observe"))]
        {
            let _ = cell.into();
            Recorder {}
        }
    }

    /// True when calls will actually record. A compile-time `false`
    /// without the `observe` feature, so guarded blocks are dead code.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "observe")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "observe"))]
        {
            false
        }
    }

    /// Adds `n` to the named monotonic counter.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        #[cfg(feature = "observe")]
        if let Some(inner) = self.inner.as_deref_mut() {
            snapshot::bump(&mut inner.counters, name, n);
        }
        #[cfg(not(feature = "observe"))]
        {
            let _ = (&self, name, n);
        }
    }

    /// Records one sample into the named value histogram
    /// (deterministic data: bits, counts — never wall-clock).
    #[inline]
    pub fn record(&mut self, name: &'static str, value: u64) {
        #[cfg(feature = "observe")]
        if let Some(inner) = self.inner.as_deref_mut() {
            snapshot::hist_slot(&mut inner.hists, name).record(value);
        }
        #[cfg(not(feature = "observe"))]
        {
            let _ = (&self, name, value);
        }
    }

    /// Appends one trace event at interval `t`.
    pub fn event(&mut self, t: u64, kind: &'static str, fields: &[(&'static str, Value)]) {
        #[cfg(feature = "observe")]
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.events.push(Event {
                cell: 0,
                t,
                kind,
                fields: fields.to_vec(),
            });
        }
        #[cfg(not(feature = "observe"))]
        {
            let _ = (&self, t, kind, fields);
        }
    }

    /// Declares the time-series column schema (once, before any row).
    pub fn series_schema(&mut self, columns: &[&'static str]) {
        #[cfg(feature = "observe")]
        if let Some(inner) = self.inner.as_deref_mut() {
            debug_assert!(inner.columns.is_empty(), "series schema already declared");
            inner.columns = columns.to_vec();
        }
        #[cfg(not(feature = "observe"))]
        {
            let _ = (&self, columns);
        }
    }

    /// Appends one series row at interval `t`; `values` must be
    /// parallel to the declared schema.
    pub fn series_row(&mut self, t: u64, values: &[u64]) {
        #[cfg(feature = "observe")]
        if let Some(inner) = self.inner.as_deref_mut() {
            debug_assert_eq!(
                values.len(),
                inner.columns.len(),
                "series row width must match the declared schema"
            );
            inner.rows.push(SeriesRow {
                cell: 0,
                t,
                values: values.to_vec(),
            });
        }
        #[cfg(not(feature = "observe"))]
        {
            let _ = (&self, t, values);
        }
    }

    /// Opens an RAII wall-clock span; the elapsed nanoseconds land in
    /// the named timing histogram when the guard drops.
    pub fn span(&mut self, name: &'static str) -> SpanGuard<'_> {
        #[cfg(feature = "observe")]
        {
            SpanGuard {
                inner: self
                    .inner
                    .as_deref_mut()
                    .map(|i| (&mut i.timings, name, Instant::now())),
            }
        }
        #[cfg(not(feature = "observe"))]
        {
            let _ = (&self, name);
            SpanGuard {
                _ph: core::marker::PhantomData,
            }
        }
    }

    /// Starts a detached wall-clock timer (no borrow held; the timed
    /// region may keep recording).
    pub fn timer(&self, name: &'static str) -> Timer {
        #[cfg(feature = "observe")]
        {
            Timer {
                inner: self.inner.is_some().then(|| (name, Instant::now())),
            }
        }
        #[cfg(not(feature = "observe"))]
        {
            let _ = (&self, name);
            Timer
        }
    }

    /// Stops a detached timer and records its elapsed nanoseconds.
    pub fn finish(&mut self, timer: Timer) {
        #[cfg(feature = "observe")]
        if let (Some(inner), Some((name, start))) = (self.inner.as_deref_mut(), timer.inner) {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            snapshot::hist_slot(&mut inner.timings, name).record(ns);
        }
        #[cfg(not(feature = "observe"))]
        {
            let _ = (&self, timer);
        }
    }

    /// Clones everything recorded so far into a detached snapshot;
    /// `None` when disabled (either way).
    pub fn snapshot(&self) -> Option<ObserveSnapshot> {
        #[cfg(feature = "observe")]
        {
            self.inner.as_deref().map(|i| ObserveSnapshot {
                cells: vec![i.cell.clone()],
                counters: i.counters.clone(),
                hists: i.hists.clone(),
                timings: i.timings.clone(),
                series: SeriesData {
                    columns: i.columns.clone(),
                    rows: i.rows.clone(),
                },
                events: i.events.clone(),
            })
        }
        #[cfg(not(feature = "observe"))]
        {
            None
        }
    }
}

/// Calls a [`Recorder`] method when the `observe` feature is compiled
/// in; expands to **nothing** (arguments unevaluated) when it is not:
///
/// ```
/// # use sw_observe::{obs, Recorder};
/// # let mut rec = Recorder::disabled();
/// obs!(rec, add("overflow_exchanges", 1));
/// ```
#[cfg(feature = "observe")]
#[macro_export]
macro_rules! obs {
    ($rec:expr, $method:ident($($arg:expr),* $(,)?)) => {
        $rec.$method($($arg),*)
    };
}

/// Calls a [`Recorder`] method when the `observe` feature is compiled
/// in; expands to **nothing** (arguments unevaluated) when it is not.
#[cfg(not(feature = "observe"))]
#[macro_export]
macro_rules! obs {
    ($rec:expr, $method:ident($($arg:expr),* $(,)?)) => {{
        let _ = &$rec;
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_snapshots_to_none() {
        let mut rec = Recorder::disabled();
        rec.add("c", 1);
        rec.record("h", 10);
        rec.event(1, "k", &[("f", Value::U64(1))]);
        rec.series_schema(&["a"]);
        rec.series_row(1, &[2]);
        let t = rec.timer("t");
        rec.finish(t);
        drop(rec.span("s"));
        obs!(rec, add("c", 1));
        assert!(!rec.is_enabled());
        assert!(rec.snapshot().is_none());
    }

    #[cfg(feature = "observe")]
    #[test]
    fn enabled_recorder_captures_everything() {
        let mut rec = Recorder::enabled("cell-0");
        assert!(rec.is_enabled());
        rec.series_schema(&["hits", "misses"]);
        rec.add("queries", 3);
        obs!(rec, add("queries", 2));
        rec.record("report_bits", 640);
        rec.event(5, "overflow", &[("item", Value::U64(9))]);
        rec.series_row(5, &[2, 1]);
        {
            let _span = rec.span("build");
        }
        let t = rec.timer("process");
        rec.finish(t);
        let snap = rec.snapshot().expect("enabled recorder snapshots");
        assert_eq!(snap.cells, vec!["cell-0"]);
        assert_eq!(snap.counter("queries"), 5);
        assert_eq!(snap.hists[0].0, "report_bits");
        assert_eq!(snap.timings.len(), 2, "span + timer");
        assert_eq!(snap.series.rows.len(), 1);
        let ndjson = snap.to_ndjson();
        assert_eq!(
            ndjson,
            "{\"t\":5,\"cell\":\"cell-0\",\"kind\":\"overflow\",\"item\":9}\n"
        );
        assert!(snap.series_csv().starts_with("cell,t,hits,misses\n"));
        // The digest must exclude the wall-clock timings.
        assert!(!snap.deterministic_digest().contains("process"));
    }

    #[cfg(not(feature = "observe"))]
    #[test]
    fn recorder_is_zero_sized_when_off() {
        assert_eq!(std::mem::size_of::<Recorder>(), 0);
        assert_eq!(std::mem::size_of::<SpanGuard<'_>>(), 0);
        assert_eq!(std::mem::size_of::<Timer>(), 0);
        // `enabled` is also a no-op without the feature.
        assert!(!Recorder::enabled("cell").is_enabled());
    }
}
