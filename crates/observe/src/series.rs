//! Per-interval time series.
//!
//! A series is a fixed column schema (declared once, before the first
//! row) plus one row of `u64` samples per broadcast interval. Rows are
//! tagged with the owning cell so merged sweeps keep every cell's
//! series intact, in merge (= seed) order.

/// One row of samples at interval `t` for one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesRow {
    /// Index into [`crate::ObserveSnapshot::cells`].
    pub cell: u32,
    /// Broadcast interval index.
    pub t: u64,
    /// Samples, parallel to [`SeriesData::columns`].
    pub values: Vec<u64>,
}

/// A recorded time series: column names plus rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeriesData {
    /// Column names, fixed at schema declaration.
    pub columns: Vec<&'static str>,
    /// Rows in recording order (per cell: ascending `t`).
    pub rows: Vec<SeriesRow>,
}

impl SeriesData {
    /// Renders the series as CSV: `cell,t,<columns…>` header plus one
    /// line per row. Deterministic (pure integer formatting).
    pub fn to_csv(&self, cells: &[String]) -> String {
        let mut out = String::new();
        out.push_str("cell,t");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for row in &self.rows {
            // Cell labels are path-ish (`fig3/x=0.5/TS`); no commas.
            out.push_str(&cells[row.cell as usize]);
            out.push(',');
            out.push_str(&row.t.to_string());
            for v in &row.values {
                out.push(',');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Per-column sums across all rows (summary-table fodder).
    pub fn column_sums(&self) -> Vec<u64> {
        let mut sums = vec![0u64; self.columns.len()];
        for row in &self.rows {
            for (s, v) in sums.iter_mut().zip(row.values.iter()) {
                *s = s.saturating_add(*v);
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_shape() {
        let s = SeriesData {
            columns: vec!["hits", "misses"],
            rows: vec![
                SeriesRow {
                    cell: 0,
                    t: 1,
                    values: vec![5, 2],
                },
                SeriesRow {
                    cell: 0,
                    t: 2,
                    values: vec![7, 0],
                },
            ],
        };
        let csv = s.to_csv(&["c0".to_string()]);
        assert_eq!(csv, "cell,t,hits,misses\nc0,1,5,2\nc0,2,7,0\n");
        assert_eq!(s.column_sums(), vec![12, 2]);
    }
}
