//! Output sinks: the end-of-run summary table and warning lines.
//!
//! The NDJSON trace writer lives on the snapshot itself
//! ([`crate::ObserveSnapshot::to_ndjson`]); this module renders the
//! human-facing end-of-run view — counters, histogram quantiles, series
//! totals — plus the overload warning the figure bins print when a run
//! overflowed its channel budget.

use std::fmt::Write as _;

use crate::ObserveSnapshot;

/// Renders the end-of-run summary table. Counters, value histograms,
/// series column totals and the event census are deterministic; the
/// span-timer section is wall clock and labelled as such.
pub fn summary(snap: &ObserveSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== observation summary ({} cell(s)) ===", snap.cells.len());

    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {name:<28} {v:>14}");
        }
    }

    if !snap.hists.is_empty() {
        let _ = writeln!(out, "histograms:");
        let _ = writeln!(
            out,
            "  {:<28} {:>10} {:>12} {:>10} {:>10} {:>10}",
            "name", "count", "mean", "p50", "p99", "max"
        );
        for (name, h) in &snap.hists {
            let _ = writeln!(
                out,
                "  {:<28} {:>10} {:>12.1} {:>10} {:>10} {:>10}",
                name,
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                if h.is_empty() { 0 } else { h.max },
            );
        }
    }

    if !snap.series.columns.is_empty() {
        let _ = writeln!(
            out,
            "series: {} row(s) over {} column(s); totals:",
            snap.series.rows.len(),
            snap.series.columns.len()
        );
        for (name, sum) in snap.series.columns.iter().zip(snap.series.column_sums()) {
            let _ = writeln!(out, "  {name:<28} {sum:>14}");
        }
    }

    if !snap.events.is_empty() {
        let _ = writeln!(out, "events ({} total):", snap.events.len());
        let mut kinds: Vec<(&'static str, u64)> = Vec::new();
        for e in &snap.events {
            crate::snapshot::bump(&mut kinds, e.kind, 1);
        }
        for (kind, n) in kinds {
            let _ = writeln!(out, "  {kind:<28} {n:>14}");
        }
    }

    if !snap.timings.is_empty() {
        let _ = writeln!(out, "span timings (wall-clock ns; non-deterministic):");
        let _ = writeln!(
            out,
            "  {:<28} {:>10} {:>12} {:>10} {:>10}",
            "span", "count", "mean", "p50", "p99"
        );
        for (name, h) in &snap.timings {
            let _ = writeln!(
                out,
                "  {:<28} {:>10} {:>12.0} {:>10} {:>10}",
                name,
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
            );
        }
    }

    if let Some(w) = overflow_warning(snap.counter("overflow_exchanges")) {
        let _ = writeln!(out, "{w}");
    }
    out
}

/// The visible end-of-run warning for channel overflow: `Some` when any
/// query exchange did not fit its interval's bit budget (`§4`'s `L·W`),
/// which means the configuration oversubscribes the channel and the
/// throughput numbers are accounting fiction past that point.
pub fn overflow_warning(overflow_exchanges: u64) -> Option<String> {
    (overflow_exchanges > 0).then(|| {
        format!(
            "WARNING: {overflow_exchanges} query exchange(s) overflowed the interval bit \
             budget; the cell is oversubscribed and throughput figures are unreliable"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::hist_slot;

    #[test]
    fn summary_renders_all_sections() {
        let mut s = ObserveSnapshot::empty();
        s.cells.push("c".into());
        s.counters.push(("overflow_exchanges", 2));
        hist_slot(&mut s.hists, "report_bits").record(512);
        hist_slot(&mut s.timings, "server_build").record(1_000);
        let text = summary(&s);
        assert!(text.contains("counters:"));
        assert!(text.contains("report_bits"));
        assert!(text.contains("non-deterministic"));
        assert!(text.contains("WARNING: 2 query exchange(s)"));
    }

    #[test]
    fn overflow_warning_only_fires_when_nonzero() {
        assert!(overflow_warning(0).is_none());
        assert!(overflow_warning(7).unwrap().contains("7"));
    }
}
