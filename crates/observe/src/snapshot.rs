//! End-of-run observation snapshots and their merge.

use crate::event::Event;
use crate::hist::Histogram;
use crate::series::SeriesData;

/// Everything one recorder observed, detached from the live run.
///
/// Snapshots split into a **deterministic** part (counters, value
/// histograms, events, series — pure functions of the seed, compared
/// byte-for-byte by the determinism suite) and a **non-deterministic**
/// part (`timings`: wall-clock span durations, reported only in the
/// summary table). [`ObserveSnapshot::deterministic_digest`] renders
/// exactly the former.
///
/// Merging (sweep runs) concatenates cells in call order; the figure
/// pipeline merges in `ParallelRunner` input order, which is seed
/// order, so merged output is thread-count invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveSnapshot {
    /// Cell labels, in merge order; events/series rows index into this.
    pub cells: Vec<String>,
    /// Monotonic counters, summed across cells (insertion order).
    pub counters: Vec<(&'static str, u64)>,
    /// Value histograms (deterministic samples: bits, counts).
    pub hists: Vec<(&'static str, Histogram)>,
    /// Span-timer histograms in nanoseconds — **wall clock**, excluded
    /// from every deterministic artifact.
    pub timings: Vec<(&'static str, Histogram)>,
    /// Per-interval time series.
    pub series: SeriesData,
    /// Event trace, one NDJSON line each.
    pub events: Vec<Event>,
}

/// Adds `n` to the named slot, appending it on first sight (linear
/// scan: the name set is small and insertion order is the display
/// order).
pub(crate) fn bump(slots: &mut Vec<(&'static str, u64)>, name: &'static str, n: u64) {
    match slots.iter_mut().find(|(k, _)| *k == name) {
        Some((_, v)) => *v += n,
        None => slots.push((name, n)),
    }
}

pub(crate) fn hist_slot<'a>(
    slots: &'a mut Vec<(&'static str, Histogram)>,
    name: &'static str,
) -> &'a mut Histogram {
    if let Some(pos) = slots.iter().position(|(k, _)| *k == name) {
        return &mut slots[pos].1;
    }
    slots.push((name, Histogram::default()));
    &mut slots.last_mut().expect("just pushed").1
}

impl ObserveSnapshot {
    /// An empty snapshot to merge others into.
    pub fn empty() -> Self {
        ObserveSnapshot {
            cells: Vec::new(),
            counters: Vec::new(),
            hists: Vec::new(),
            timings: Vec::new(),
            series: SeriesData::default(),
            events: Vec::new(),
        }
    }

    /// Folds `other` into this snapshot: cells concatenate (events and
    /// series rows are re-indexed), counters and histograms sum by
    /// name. Call in seed order to keep merged output deterministic.
    pub fn merge(&mut self, other: ObserveSnapshot) {
        let base = self.cells.len() as u32;
        self.cells.extend(other.cells);
        for (name, n) in other.counters {
            bump(&mut self.counters, name, n);
        }
        for (name, h) in other.hists {
            hist_slot(&mut self.hists, name).merge(&h);
        }
        for (name, h) in other.timings {
            hist_slot(&mut self.timings, name).merge(&h);
        }
        if self.series.columns.is_empty() {
            self.series.columns = other.series.columns;
        }
        self.series.rows.extend(other.series.rows.into_iter().map(|mut r| {
            r.cell += base;
            r
        }));
        self.events.extend(other.events.into_iter().map(|mut e| {
            e.cell += base;
            e
        }));
    }

    /// The event trace as NDJSON, one event per line.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            e.render(&self.cells, &mut out);
        }
        out
    }

    /// The per-interval time series as CSV.
    pub fn series_csv(&self) -> String {
        self.series.to_csv(&self.cells)
    }

    /// Value of a counter, zero if never bumped.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Every deterministic artifact in one string: the NDJSON trace,
    /// the series CSV, the counters, and the value histograms — what
    /// the determinism tests compare byte-for-byte across thread
    /// counts. Wall-clock `timings` are deliberately absent.
    pub fn deterministic_digest(&self) -> String {
        let mut out = self.to_ndjson();
        out.push_str(&self.series_csv());
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        for (name, h) in &self.hists {
            out.push_str(&format!(
                "hist {name}: count={} sum={} min={} max={} buckets={:?}\n",
                h.count, h.sum, h.min, h.max, h.counts
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;
    use crate::series::SeriesRow;

    fn snap(label: &str, n: u64) -> ObserveSnapshot {
        let mut s = ObserveSnapshot::empty();
        s.cells.push(label.to_string());
        s.counters.push(("hits", n));
        hist_slot(&mut s.hists, "bits").record(n);
        s.series.columns = vec!["hits"];
        s.series.rows.push(SeriesRow {
            cell: 0,
            t: 1,
            values: vec![n],
        });
        s.events.push(Event {
            cell: 0,
            t: 1,
            kind: "tick",
            fields: vec![("n", Value::U64(n))],
        });
        s
    }

    #[test]
    fn merge_reindexes_and_sums() {
        let mut m = ObserveSnapshot::empty();
        m.merge(snap("a", 2));
        m.merge(snap("b", 3));
        assert_eq!(m.cells, vec!["a", "b"]);
        assert_eq!(m.counter("hits"), 5);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.hists[0].1.count, 2);
        assert_eq!(m.events[1].cell, 1);
        assert_eq!(m.series.rows[1].cell, 1);
        let ndjson = m.to_ndjson();
        assert_eq!(ndjson.lines().count(), 2);
        assert!(ndjson.contains("\"cell\":\"b\""));
        let digest = m.deterministic_digest();
        assert!(digest.contains("counter hits = 5"));
        assert!(!digest.contains("timing"));
    }
}
