//! # sleepers — broadcast cache invalidation for mobile environments
//!
//! A complete, from-scratch reproduction of
//!
//! > Daniel Barbará and Tomasz Imieliński, *"Sleepers and Workaholics:
//! > Caching Strategies in Mobile Environments"*, SIGMOD 1994 (extended
//! > version: The VLDB Journal 4(4), 1995).
//!
//! Mobile units cache database items and listen to a periodic
//! **invalidation report** broadcast by a *stateless* server — one that
//! knows nothing about who is in the cell, who is awake, or what anyone
//! caches. The paper proposes three report designs and analyzes how
//! each fares as clients' disconnection ("sleep") patterns vary:
//!
//! * **TS** — Broadcasting Timestamps: ids + update timestamps for the
//!   last `w = kL` seconds;
//! * **AT** — Amnesic Terminals: ids updated in the last interval only;
//! * **SIG** — combined signatures: XOR-compressed checksums of random
//!   item subsets, decoded by counting unmatched subsets.
//!
//! # Quick start
//!
//! ```
//! use sleepers::prelude::*;
//!
//! // Scenario 1 of the paper (Figure 3), 20 clients, 30% sleep chance.
//! let params = ScenarioParams::scenario1().with_s(0.3);
//! let config = CellConfig::new(params)
//!     .with_clients(20)
//!     .with_hotspot_size(50)
//!     .with_seed(7);
//! let mut sim = CellSimulation::new(config, Strategy::AmnesicTerminals).unwrap();
//! let report = sim.run(200).unwrap();
//! println!("measured hit ratio: {:.3}", report.hit_ratio());
//! println!("measured effectiveness: {:.3}", report.effectiveness());
//! ```
//!
//! The analytical model lives in [`sw_analysis`] (re-exported as
//! [`analysis`]); the discrete-event simulator in [`simulation`]. The
//! two are validated against each other in the integration test-suite
//! and the experiment harness regenerates every figure of the paper
//! from both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub(crate) mod fleet;
pub mod metrics;
pub mod prelude;
pub mod safety;
pub mod simulation;
pub mod strategy;

pub use config::{CellConfig, FleetBackend, WakeMode};
pub use driver::ServerDriver;
pub use metrics::{MigrationStats, SimulationReport};
pub use simulation::{CellSimulation, HandoffClient, SimulationError};
pub use strategy::Strategy;

/// Re-export: the analytical model (closed-form formulas of §4–§5).
pub use sw_analysis as analysis;
/// Re-export: client-side building blocks.
pub use sw_client as client;
/// Re-export: server-side building blocks.
pub use sw_server as server;
/// Re-export: signature machinery.
pub use sw_signature as signature;
/// Re-export: simulation kernel.
pub use sw_sim as sim;
/// Re-export: wireless channel substrate.
pub use sw_wireless as wireless;
/// Re-export: workloads and scenario presets.
pub use sw_workload as workload;
/// Re-export: adaptive invalidation reports (§8).
pub use sw_adaptive as adaptive;
/// Re-export: quasi-copy coherency (§7).
pub use sw_quasi as quasi;
/// Re-export: query-result caching and transactional multi-item reads
/// over the invalidation stream.
pub use sw_query as query;
/// Re-export: zero-cost instrumentation (counters, histograms, span
/// timers, NDJSON traces, per-interval series).
pub use sw_observe as observe;
/// Re-export: deterministic fault injection (report loss, frame
/// corruption, uplink retry with backoff, clock drift).
pub use sw_faults as faults;
/// Re-export: bounded caches — replacement policies, eviction
/// statistics, and the cooperative-miss building blocks.
pub use sw_capacity as capacity;
